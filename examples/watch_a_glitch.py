"""Watch a hazard become a real waveform glitch — and the fix remove it.

The hazard algebra says the two-gate mux ``s·a + s'·b`` can glitch low
when ``s`` changes with ``a = b = 1``.  This example makes the glitch
*visible*: it sweeps concrete gate-delay assignments through the
event-driven simulator, prints the offending waveform, then shows the
consensus-term fix (and the async mapper's output) never glitches.

Run:  python examples/watch_a_glitch.py
"""

from repro import Netlist, async_tmap, minimal_teaching_library
from repro.network import EventSimulator, async_tech_decomp, burst_response


def show_waveform(title, waveforms, output):
    wave = waveforms[output]
    print(f"  {title}")
    value = wave.initial
    print(f"    t=0.000  {output} = {int(value)}")
    for edge in wave.edges:
        if edge.value != value:
            value = edge.value
            print(f"    t={edge.time:.3f}  {output} = {int(value)}")
    print(f"    transitions: {wave.change_count}")


def main() -> None:
    start = {"s": 1, "a": 1, "b": 1}
    end = {"s": 0, "a": 1, "b": 1}

    print("hazardous structure: f = s*a + s'*b, burst: s falls, a=b=1")
    hazardous = async_tech_decomp(Netlist.from_equations({"f": "s*a + s'*b"}))
    for seed in range(60):
        sim = EventSimulator.with_random_delays(hazardous, seed)
        waves = burst_response(sim, start, end, seed=seed)
        if waves["f"].change_count > 0:  # static 1-1: ideal = 0 changes
            print(f"\nglitch witnessed with delay assignment #{seed}:")
            show_waveform("f should stay 1 throughout the burst:", waves, "f")
            break
    else:
        raise SystemExit("no witness found (unexpected)")

    print("\nfixed structure: f = s*a + s'*b + a*b (consensus term)")
    fixed = async_tech_decomp(
        Netlist.from_equations({"f": "s*a + s'*b + a*b"})
    )
    worst = 0
    for seed in range(60):
        sim = EventSimulator.with_random_delays(fixed, seed)
        waves = burst_response(sim, start, end, seed=seed)
        worst = max(worst, waves["f"].change_count)
    print(f"  60 random delay assignments: max transitions = {worst} (clean)")

    print("\nasync-mapped network (library cells):")
    library = minimal_teaching_library()
    mapped = async_tmap(
        Netlist.from_equations({"f": "s*a + s'*b + a*b"}), library
    ).mapped
    worst = 0
    for seed in range(60):
        sim = EventSimulator.with_random_delays(mapped, seed)
        waves = burst_response(sim, start, end, seed=seed)
        worst = max(worst, waves["f"].change_count)
    print(f"  60 random delay assignments: max transitions = {worst} (clean)")


if __name__ == "__main__":
    main()
