"""Figure 1 end to end: burst-mode spec → hazard-free logic → mapped gates.

Builds the paper's Figure-1-style flow for a small handshake
controller:

1. write a burst-mode specification (states, input/output bursts);
2. synthesize hazard-free two-level equations with the exact
   Nowick–Dill minimizer (the paper's reference [12]);
3. map the combinational cloud with ``async_tmap`` onto a real library;
4. prove the specified input bursts are still glitch-free in gates.

Run:  python examples/burstmode_synthesis.py
"""

from repro import BurstModeSpec, async_tmap, load_library, synthesize, verify_mapping
from repro.boolean.paths import label_expression
from repro.hazards.oracle import classify_transition


def build_spec() -> BurstModeSpec:
    """A DMA-engine handshake: request/acknowledge plus a data strobe."""
    spec = BurstModeSpec(
        name="dma-ctrl",
        inputs=["req", "din"],
        outputs=["ack", "load"],
        initial_state="idle",
    )
    spec.add_transition("idle", ["req"], ["ack"], "armed")
    spec.add_transition("armed", ["req", "din"], ["ack", "load"], "draining")
    spec.add_transition("draining", ["din"], ["load"], "idle")
    spec.validate()
    return spec


def main() -> None:
    spec = build_spec()
    print(f"specification {spec.name}: {spec.stats()}")

    synthesis = synthesize(spec)
    print("\nhazard-free equations (inputs + state lines "
          f"{synthesis.state_bits}):")
    for target, cover in synthesis.equations.items():
        engine = "exact" if synthesis.details[target].exact else "heuristic"
        print(f"  {target:8s} = {cover.to_string(synthesis.variables):30s}"
              f" [{engine}]")

    network = synthesis.netlist()
    library = load_library("CMOS3")
    result = async_tmap(network, library)
    print(f"\nmapped onto {library.name}: area={result.area:.0f} "
          f"delay={result.delay:.2f}ns cells={result.cell_usage()}")

    report = verify_mapping(network, result.mapped)
    print(f"functional equivalence: {report.equivalent}, "
          f"hazard-safe: {report.hazard_safe}")

    print("\nspecified input bursts, replayed on the mapped gates:")
    for target in synthesis.equations:
        mapped_structure = label_expression(
            result.mapped.collapse(target), synthesis.variables
        )
        for transition in synthesis.transitions[target]:
            verdict = classify_transition(
                mapped_structure, transition.start, transition.end
            )
            status = "HAZARD" if verdict.logic_hazard else "clean"
            width = len(synthesis.variables)
            print(f"  {target:8s} {transition.start:0{width}b} -> "
                  f"{transition.end:0{width}b}: {status}")
            assert not verdict.logic_hazard


if __name__ == "__main__":
    main()
