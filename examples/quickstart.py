"""Quickstart: hazard-aware technology mapping in a dozen lines.

Maps a hazard-free combinational design (a mux with its consensus term,
exactly the Figure-3 situation) with both the synchronous baseline and
the asynchronous mapper, then verifies which flow kept the design safe.

Run:  python examples/quickstart.py
"""

from repro import Netlist, async_tmap, minimal_teaching_library, tmap, verify_mapping


def main() -> None:
    # A hazard-free design straight out of an asynchronous logic
    # optimizer: the redundant cube a*b exists precisely to hold the
    # output while s changes.
    design = Netlist.from_equations({"f": "s*a + s'*b + a*b"})
    library = minimal_teaching_library()

    sync_result = tmap(design, library)
    async_result = async_tmap(design, library)

    print("design: f = s*a + s'*b + a*b  (hazard-free source)")
    print()
    for result in (sync_result, async_result):
        report = verify_mapping(design, result.mapped)
        print(f"{result.mode:>5} mapper: area={result.area:4.0f} "
              f"delay={result.delay:.2f}  cells={result.cell_usage()}")
        print(f"       equivalent={report.equivalent} "
              f"hazard_safe={report.hazard_safe}")
        for violation in report.violations[:2]:
            print(f"       ! {violation}")
        print()

    assert verify_mapping(design, async_result.mapped).ok
    print("the asynchronous mapper preserved hazard-freedom; "
          "the synchronous one did not.")


if __name__ == "__main__":
    main()
