"""Map any Table-5 benchmark controller onto any standard library.

The full pipeline on real workloads: cached burst-mode synthesis, both
mappers, quality metrics, and hazard-safety verification.

Run:  python examples/map_benchmark.py [benchmark] [library]
      python examples/map_benchmark.py --list
e.g.  python examples/map_benchmark.py dme CMOS3
"""

import sys

from repro import async_tmap, load_library, tmap, verify_mapping
from repro.burstmode import CATALOG, synthesize_benchmark


def main() -> None:
    if "--list" in sys.argv:
        for name, info in CATALOG.items():
            print(f"{name:14s} {info.description}")
        return

    name = sys.argv[1] if len(sys.argv) > 1 else "dme"
    library_name = sys.argv[2] if len(sys.argv) > 2 else "CMOS3"

    synthesis = synthesize_benchmark(name)
    network = synthesis.netlist(name)
    print(f"{name}: {synthesis.spec.stats()}")
    print(f"equations: {len(synthesis.equations)} outputs, "
          f"{synthesis.total_cubes()} cubes, "
          f"{synthesis.total_literals()} literals")

    library = load_library(library_name)
    if not library.annotated:
        report = library.annotate_hazards()
        print(f"annotated {library.name} in {report.elapsed:.2f}s "
              f"({report.hazardous} hazardous cells)")

    for mapper in (tmap, async_tmap):
        result = mapper(network, library)
        print(f"\n{result.mode} mapping: area={result.area:.0f} "
              f"delay={result.delay:.2f}ns cpu={result.elapsed:.2f}s")
        print(f"  cells: {result.cell_usage()}")
        if result.stats.hazardous_matches:
            print(f"  hazard filter: {result.stats.hazardous_matches} screened, "
                  f"{result.stats.hazard_rejections} rejected, "
                  f"{result.stats.hazard_accepts} accepted")
        if len(network.inputs) <= 10:
            report = verify_mapping(network, result.mapped)
            print(f"  equivalent={report.equivalent} "
                  f"hazard_safe={report.hazard_safe}")


if __name__ == "__main__":
    main()
