"""A tour of the section-4 hazard analyses on the paper's examples.

Walks the hazard taxonomy of section 2.3 — static-1, static-0,
m.i.c. dynamic, s.i.c. dynamic — on the circuits of Figures 2–10,
printing what each algorithm finds and cross-checking one case against
the exhaustive event-lattice oracle.

Run:  python examples/hazard_analysis_tour.py
"""

from repro import Cover, analyze_cover, analyze_expression, parse
from repro.hazards.oracle import enumerate_hazards
from repro.boolean.paths import label_expression

W = ["w", "x", "y", "z"]


def show(title: str, analysis) -> None:
    print(f"\n== {title}")
    summary = analysis.summary()
    print(f"   summary: {summary}")
    for line in analysis.describe():
        print(f"   - {line}")


def main() -> None:
    print("static-1: the classic multiplexer (Figure 3 / Table 1)")
    mux = Cover.from_strings(["sa", "s'b"], ["s", "a", "b"])
    show("f = s·a + s'·b  (two-gate mux)", analyze_cover(mux, ["s", "a", "b"]))
    fixed = Cover.from_strings(["sa", "s'b", "ab"], ["s", "a", "b"])
    show("f = s·a + s'·b + a·b (consensus added)",
         analyze_cover(fixed, ["s", "a", "b"]))

    print("\nm.i.c. dynamic: Figure 8's three-cube function")
    fig8 = Cover.from_strings(["w'xz", "w'xy", "xyz"], W)
    show("f = w'xz + w'xy + xyz", analyze_cover(fig8, W))

    print("\nstructure matters: Figure 4's two realizations of (w + x)·y")
    show("wy + xy  (sum of two cubes)", analyze_expression(parse("w*y + x*y")))
    show("(w + x)·y  (factored)", analyze_expression(parse("(w + x)*y")))

    print("\nreconvergent fanout: Figure 6 (McCluskey)")
    fig6 = parse("(w + x' + y')*(x*y + y'*z)")
    show("f = (w + x' + y')(xy + y'z)", analyze_expression(fig6))

    print("\ncross-check against the exhaustive oracle (Figure 4's SOP):")
    lsop = label_expression(parse("w*y + x*y"))
    for kind, verdicts in enumerate_hazards(lsop).items():
        if verdicts:
            print(f"   {kind.value}: {len(verdicts)} hazardous transitions")


if __name__ == "__main__":
    main()
