"""Walk one hazard rejection from decision log to replayed glitch.

Maps a small consensus-covered mux (hazard-free by construction) onto
the teaching library with the explain layer on, picks the MUX21
candidate the §3.2.2 subset filter rejected, prints the recorded
reason — the offending hazard class and the cluster transition the
target network survives but the cell would not — and then *replays* the
cell's witness input burst on the event simulator to show the glitch
actually happens.

This is the observability loop of the explain layer end to end: every
"rejected-hazard" line in a ``repro map --explain`` log is backed by a
transition you can fire on real (simulated) gates.

Run:  python examples/explain_a_rejection.py
"""

from repro import minimal_teaching_library
from repro.hazards.witness import HazardWitness, replay_witness
from repro.mapping.mapper import MappingOptions, async_tmap
from repro.network.netlist import Netlist
from repro.obs.explain import REJECTED_HAZARD, validate_explain_payload


def main() -> None:
    # The consensus term a*b makes the source cover hazard-free, so the
    # hazardous MUX21 cell must NOT be used to implement it.
    network = Netlist.from_equations(
        {"f": "s*a + s'*b + a*b"}, name="mux_consensus"
    )
    library = minimal_teaching_library()

    result = async_tmap(network, library, MappingOptions(explain=True))
    assert result.explain is not None
    payload = result.explain.to_dict()
    validate_explain_payload(payload)

    summary = payload["summary"]
    print(
        f"mapped {network.name} onto {library.name}: "
        f"{summary['candidates']} candidates, "
        f"{summary['rejected_hazard']} hazard-rejected"
    )

    rejected = [
        record
        for record in result.explain.iter_records()
        if record.outcome == REJECTED_HAZARD
    ]
    assert rejected, "expected the MUX21 candidate to be hazard-rejected"
    record = rejected[0]
    reason = record.reason
    assert reason is not None and "witness" in reason

    print(f"\nrejected candidate: {record.cell} at node {record.node}")
    print(f"  cluster leaves: {', '.join(record.leaves)}")
    print(f"  hazard class:   {reason['kind']}")
    print(f"  detail:         {reason['detail']}")
    print(f"  cluster burst:  {reason['target_transition']}  "
          "(the target subnetwork rides this out cleanly)")

    # Replay the cell-space witness on the event simulator: program the
    # path delays the recorded glitch schedule asks for, fire the burst,
    # and watch the output waveform.
    witness = HazardWitness.from_dict(reason["witness"])
    cell = library.cell(record.cell)
    if cell.analysis is None:
        cell.annotate()
    replay = replay_witness(cell.analysis.lsop, witness)

    print(f"\nreplaying witness on {record.cell}: "
          f"{witness.transition_string()}")
    print(f"  expected output changes: {replay.expected}")
    print(f"  observed output changes: {replay.changes}")
    print(f"  glitched: {replay.glitched}")
    assert replay.glitched, "the recorded witness must reproduce a glitch"

    print("\nThe filter's verdict is evidence, not heuristics: this cell "
          "demonstrably glitches on a burst the target never would.")


if __name__ == "__main__":
    main()
