"""Audit a cell library for hazardous elements (the Table-1 workflow).

Loads one of the synthetic standard libraries, runs the section-3.2.1
annotation pass, and prints the hazardous cells with their hazard
records — what an asynchronous-design team would run before adopting a
vendor library.

Run:  python examples/library_audit.py [LSI|CMOS3|GDT|ACTEL]
"""

import sys

from repro import load_library


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "ACTEL"
    library = load_library(name)
    report = library.annotate_hazards()
    print(f"library {library.name}: {report.cells} cells, "
          f"annotation took {report.elapsed:.2f}s")
    print(f"hazardous: {report.hazardous} "
          f"({report.hazardous_fraction:.0%})\n")

    for cell in library.hazardous_cells():
        assert cell.analysis is not None
        print(f"{cell.name:12s} {cell.expression.to_string()}")
        for line in cell.analysis.describe()[:4]:
            print(f"    {line}")

    clean = [c for c in library.cells if not c.is_hazardous]
    print(f"\n{len(clean)} hazard-free cells can be matched with the "
          "ordinary synchronous algorithms at no extra cost.")


if __name__ == "__main__":
    main()
