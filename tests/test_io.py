"""Tests for the equations/BLIF/genlib interchange formats."""

import io

import pytest

from repro.burstmode.benchmarks import synthesize_benchmark
from repro.io import (
    FormatError,
    read_blif,
    read_equations,
    read_genlib,
    write_blif,
    write_equations,
    write_genlib,
)
from repro.library import minimal_teaching_library
from repro.mapping.mapper import async_tmap
from repro.network.netlist import Netlist


def round_trip(writer, reader, payload):
    buffer = io.StringIO()
    writer(payload, buffer)
    buffer.seek(0)
    return reader(buffer)


class TestEquations:
    def test_round_trip_simple(self):
        net = Netlist.from_equations({"f": "a*b + c'"})
        back = round_trip(write_equations, read_equations, net)
        assert back.equivalent(net)

    def test_round_trip_benchmark(self):
        net = synthesize_benchmark("dme").netlist("dme")
        back = round_trip(write_equations, read_equations, net)
        assert back.equivalent(net)

    def test_unused_declared_input_preserved(self):
        net = Netlist.from_equations({"f": "a"}, inputs=["a", "b"])
        back = round_trip(write_equations, read_equations, net)
        assert set(back.inputs) == {"a", "b"}

    def test_multiline_statement(self):
        text = ".inputs a b c\nf = a*b\n    + c;\n"
        net = read_equations(io.StringIO(text))
        assert net.evaluate({"a": 0, "b": 0, "c": 1})["f"]

    def test_missing_semicolon_rejected(self):
        with pytest.raises(FormatError):
            read_equations(io.StringIO("f = a*b"))

    def test_duplicate_target_rejected(self):
        with pytest.raises(FormatError):
            read_equations(io.StringIO("f = a; f = b;"))

    def test_empty_file_rejected(self):
        with pytest.raises(FormatError):
            read_equations(io.StringIO("# nothing\n"))


class TestBlif:
    def test_round_trip_unmapped(self):
        net = Netlist.from_equations({"f": "a*b + c", "g": "a'*c"})
        back = round_trip(write_blif, read_blif, net)
        assert back.equivalent(net)

    def test_round_trip_mapped_network(self, mini_library):
        net = Netlist.from_equations({"f": "s*a + s'*b + a*b"})
        mapped = async_tmap(net, mini_library).mapped
        back = round_trip(write_blif, read_blif, mapped)
        assert back.equivalent(mapped)

    def test_dont_care_rows(self):
        text = (
            ".model t\n.inputs a b\n.outputs f\n"
            ".names a b f\n1- 1\n-1 1\n.end\n"
        )
        net = read_blif(io.StringIO(text))
        assert net.evaluate({"a": 1, "b": 0})["f"]
        assert not net.evaluate({"a": 0, "b": 0})["f"]

    def test_undriven_output_rejected(self):
        text = ".model t\n.inputs a\n.outputs f\n.end\n"
        with pytest.raises(FormatError):
            read_blif(io.StringIO(text))

    def test_bad_row_rejected(self):
        text = ".model t\n.inputs a\n.outputs f\n.names a f\n2 1\n.end\n"
        with pytest.raises(FormatError):
            read_blif(io.StringIO(text))

    def test_buffer_to_output(self):
        text = (
            ".model t\n.inputs a b\n.outputs f\n"
            ".names a b x\n11 1\n.names x f\n1 1\n.end\n"
        )
        net = read_blif(io.StringIO(text))
        assert net.evaluate({"a": 1, "b": 1})["f"]


class TestGenlib:
    def test_round_trip_library(self):
        library = minimal_teaching_library()
        back = round_trip(write_genlib, read_genlib, library)
        assert len(back) == len(library)
        for cell in library.cells:
            twin = back.cell(cell.name)
            assert twin.area == cell.area
            assert twin.truth_table() == cell.truth_table()

    def test_hazard_census_survives_round_trip(self):
        library = minimal_teaching_library()
        back = round_trip(write_genlib, read_genlib, library)
        back.annotate_hazards()
        assert {c.name for c in back.hazardous_cells()} == {"MUX21"}

    def test_malformed_gate_rejected(self):
        with pytest.raises(FormatError):
            read_genlib(io.StringIO("GATE broken\n"))

    def test_non_gate_line_rejected(self):
        with pytest.raises(FormatError):
            read_genlib(io.StringIO("WIRE x\n"))
