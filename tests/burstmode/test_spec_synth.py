"""Tests for burst-mode specifications and the synthesis flow."""

import pytest

from repro.boolean.paths import label_cover
from repro.burstmode.benchmarks import (
    CATALOG,
    TABLE5_ORDER,
    build_loop_machine,
    synthesize_benchmark,
)
from repro.burstmode.spec import Burst, BurstModeSpec, SpecError
from repro.burstmode.synth import synthesize
from repro.hazards.oracle import classify_transition


def simple_spec():
    spec = BurstModeSpec(
        name="t", inputs=["req", "din"], outputs=["ack", "load"],
        initial_state="s0",
    )
    spec.add_transition("s0", ["req"], ["ack"], "s1")
    spec.add_transition("s1", ["req", "din"], ["ack", "load"], "s2")
    spec.add_transition("s2", ["din"], ["load"], "s0")
    return spec


class TestSpec:
    def test_valid_spec(self):
        spec = simple_spec()
        spec.validate()
        assert spec.stats()["states"] == 3

    def test_empty_burst_rejected(self):
        with pytest.raises(SpecError):
            Burst.make([], ["z"], "s1")

    def test_unknown_signal_rejected(self):
        spec = simple_spec()
        with pytest.raises(SpecError):
            spec.add_transition("s0", ["nope"], [], "s1")

    def test_maximal_set_property_enforced(self):
        spec = BurstModeSpec(
            name="bad", inputs=["a", "b"], outputs=["z"], initial_state="s0"
        )
        spec.add_transition("s0", ["a"], ["z"], "s1")
        spec.add_transition("s0", ["a", "b"], [], "s2")
        with pytest.raises(SpecError):
            spec.validate()

    def test_inconsistent_entry_rejected(self):
        spec = BurstModeSpec(
            name="bad", inputs=["a", "b"], outputs=["z"], initial_state="s0"
        )
        spec.add_transition("s0", ["a"], ["z"], "s1")
        spec.add_transition("s0", ["b"], [], "s1")  # different entry values
        with pytest.raises(SpecError):
            spec.validate()

    def test_entry_points_traced(self):
        spec = simple_spec()
        entry = spec.trace_entry_points()
        assert entry["s1"][0] == {"req": True, "din": False}
        assert entry["s1"][1] == {"ack": True, "load": False}


class TestLoopBuilder:
    def test_odd_toggle_rejected(self):
        with pytest.raises(ValueError):
            build_loop_machine(
                "bad", ["a"], ["z"], [[(["a"], ["z"]), (["a"], [])]]
            )

    def test_builds_valid_machine(self):
        spec = build_loop_machine(
            "ok", ["a", "b"], ["z"],
            [[(["a"], ["z"]), (["a"], ["z"])], [(["b"], []), (["b"], [])]],
        )
        spec.validate()
        assert spec.stats()["transitions"] == 4


class TestSynthesis:
    def test_equations_realize_the_machine(self):
        result = synthesize(simple_spec())
        # Walk the machine symbolically: at each reachable state's entry
        # and exit points the outputs/next-state functions must agree
        # with the spec.
        entry = result.spec.trace_entry_points()
        for state, (in_values, out_values) in entry.items():
            code = result.state_codes[state]
            env = dict(in_values)
            for i, bit in enumerate(result.state_bits):
                env[bit] = bool(code >> i & 1)
            point = 0
            for i, var in enumerate(result.variables):
                if env[var]:
                    point |= 1 << i
            for z, expected in out_values.items():
                assert result.equations[z].evaluate(point) == expected, (state, z)
            for i, bit in enumerate(result.state_bits):
                assert result.equations[f"{bit}_next"].evaluate(point) == bool(
                    code >> i & 1
                ), (state, bit)

    def test_all_specified_transitions_hazard_free(self):
        result = synthesize(simple_spec())
        for target, cover in result.equations.items():
            lsop = label_cover(cover, result.variables)
            for spec_t in result.transitions[target]:
                verdict = classify_transition(lsop, spec_t.start, spec_t.end)
                assert not verdict.function_hazard, (target, spec_t)
                assert not verdict.logic_hazard, (target, spec_t)

    def test_netlist_interface(self):
        result = synthesize(simple_spec())
        net = result.netlist("t")
        assert set(net.inputs) == set(result.variables)
        assert set(net.outputs) == set(result.equations)


class TestBenchmarkCatalog:
    def test_catalog_contains_table5_rows(self):
        assert set(TABLE5_ORDER) == set(CATALOG)

    @pytest.mark.parametrize("name", TABLE5_ORDER)
    def test_benchmark_synthesizes(self, name):
        result = synthesize_benchmark(name)
        assert result.total_cubes() > 0
        assert result.total_literals() > 0

    def test_relative_sizes_track_table5(self):
        sizes = {
            name: synthesize_benchmark(name).total_literals()
            for name in TABLE5_ORDER
        }
        assert sizes["dean-ctrl"] == max(sizes.values())
        assert sizes["dean-ctrl"] > sizes["scsi"] > sizes["oscsi-ctrl"]
        assert sizes["oscsi-ctrl"] > sizes["pe-send-ifc"]
        small = {"chu-ad-opt", "vanbek-opt", "dme", "dme-opt"}
        for name in small:
            assert sizes[name] < sizes["pe-send-ifc"]

    def test_specified_transitions_hazard_free_small_benchmarks(self):
        for name in ("chu-ad-opt", "vanbek-opt", "dme", "dme-opt"):
            result = synthesize_benchmark(name)
            for target, cover in result.equations.items():
                lsop = label_cover(cover, result.variables)
                for spec_t in result.transitions[target]:
                    verdict = classify_transition(lsop, spec_t.start, spec_t.end)
                    assert not verdict.logic_hazard, (name, target)
