"""Tests for the Figure-1 sequential machine model."""

import pytest

from repro.burstmode.benchmarks import synthesize_benchmark
from repro.burstmode.sequential import SequentialMachine
from repro.burstmode.spec import BurstModeSpec
from repro.burstmode.synth import synthesize
from repro.library import minimal_teaching_library
from repro.mapping.mapper import async_tmap


def simple_spec():
    spec = BurstModeSpec(
        name="t", inputs=["req", "din"], outputs=["ack", "load"],
        initial_state="s0",
    )
    spec.add_transition("s0", ["req"], ["ack"], "s1")
    spec.add_transition("s1", ["req", "din"], ["ack", "load"], "s2")
    spec.add_transition("s2", ["din"], ["load"], "s0")
    return spec


class TestStepping:
    def test_reset_matches_spec_initial(self):
        machine = SequentialMachine(synthesize(simple_spec()))
        assert machine.state == "s0"
        assert not any(machine.outputs.values())

    def test_step_advances_state_and_outputs(self):
        machine = SequentialMachine(synthesize(simple_spec()))
        burst = machine.enabled_bursts()[0]
        result = machine.step(burst)
        assert result.state == "s1"
        assert result.outputs["ack"]

    def test_wrong_burst_rejected(self):
        machine = SequentialMachine(synthesize(simple_spec()))
        machine.step(machine.enabled_bursts()[0])
        machine.reset()
        later_burst = synthesize(simple_spec()).spec.transitions["s1"][0]
        with pytest.raises(ValueError):
            machine.step(later_burst)

    def test_history_recorded(self):
        machine = SequentialMachine(synthesize(simple_spec()))
        machine.run_random(7, seed=1)
        assert len(machine.history) == 7


class TestConformance:
    def test_synthesized_machine_conforms_and_never_glitches(self):
        machine = SequentialMachine(
            synthesize(simple_spec()), monitor_glitches=True, glitch_trials=4
        )
        assert machine.conforms(steps=40, seed=2) == []

    def test_mapped_machine_conforms_and_never_glitches(self):
        library = minimal_teaching_library()
        if not library.annotated:
            library.annotate_hazards()
        synthesis = synthesize(simple_spec())
        mapped = async_tmap(synthesis.netlist(), library).mapped
        machine = SequentialMachine(
            synthesis, mapped, monitor_glitches=True, glitch_trials=4
        )
        assert machine.conforms(steps=40, seed=2) == []

    @pytest.mark.parametrize("name", ["chu-ad-opt", "dme", "vanbek-opt"])
    def test_benchmark_machines_run_clean(self, name):
        library = minimal_teaching_library()
        if not library.annotated:
            library.annotate_hazards()
        synthesis = synthesize_benchmark(name)
        mapped = async_tmap(synthesis.netlist(name), library).mapped
        machine = SequentialMachine(
            synthesis, mapped, monitor_glitches=True, glitch_trials=3
        )
        assert machine.conforms(steps=40, seed=5) == [], name

    def test_corrupted_network_detected(self):
        synthesis = synthesize(simple_spec())
        net = synthesis.netlist()
        a, b = net.outputs[0], net.outputs[1]
        net.nodes[a].fanins, net.nodes[b].fanins = (
            net.nodes[b].fanins,
            net.nodes[a].fanins,
        )
        machine = SequentialMachine(synthesis, net)
        assert machine.conforms(steps=20, seed=1)
