"""Tests for hazard-free two-level minimization (Nowick–Dill)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.boolean.cover import Cover
from repro.boolean.cube import Cube
from repro.boolean.paths import label_cover
from repro.burstmode.hfmin import (
    HazardFreeError,
    PrivilegedCube,
    TransitionSpec,
    classify_requirements,
    dhf_prime_implicants,
    expand_to_dhf_prime,
    is_dhf_implicant,
    minimize_hazard_free,
    verify_hazard_free_cover,
)
from repro.hazards.oracle import classify_transition

NAMES = ["a", "b", "c", "d"]


def make_function(on_patterns, off_patterns, nvars=4):
    onset = Cover.from_patterns(on_patterns, nvars) if on_patterns else Cover.empty(nvars)
    offset = Cover.from_patterns(off_patterns, nvars) if off_patterns else Cover.empty(nvars)
    return onset, offset


class TestClassifyRequirements:
    def test_static_11_required_cube(self):
        onset, offset = make_function(["11--"], ["00--"])
        required, privileged = classify_requirements(
            onset, offset, [TransitionSpec(0b0011, 0b1111)]
        )
        assert not privileged
        assert len(required) == 1
        assert required[0].to_pattern() == "11--"

    def test_static_11_function_hazard_rejected(self):
        onset, offset = make_function(["0011", "1111"], ["0111"])
        with pytest.raises(HazardFreeError):
            classify_requirements(onset, offset, [TransitionSpec(0b1100, 0b1111)])

    def test_dynamic_10_privileged_and_required(self):
        # f falls from 1100 (a=b=0... pattern "0011" means a=0,b=0,c=1,d=1).
        onset, offset = make_function(["--11"], ["--00", "--01", "--10"])
        # transition: start 0b1100 (c,d) -> end 0b0000, f: 1 -> 0
        required, privileged = classify_requirements(
            onset, offset, [TransitionSpec(0b1100, 0b0000)]
        )
        assert len(privileged) == 1
        assert privileged[0].start == 0b1100
        # required: maximal ON subcubes containing the start
        for cube in required:
            assert cube.contains_point(0b1100)

    def test_static_00_needs_nothing(self):
        onset, offset = make_function(["11--"], ["00--"])
        required, privileged = classify_requirements(
            onset, offset, [TransitionSpec(0b0000, 0b1100)]
        )
        assert not required and not privileged

    def test_unspecified_endpoint_rejected(self):
        onset, offset = make_function(["1111"], ["0000"])
        with pytest.raises(HazardFreeError):
            classify_requirements(onset, offset, [TransitionSpec(0, 1)])


class TestPrivilegedCube:
    def test_illegal_intersection(self):
        priv = PrivilegedCube(Cube.from_pattern("11--").with_universe(4), 0b0011)
        assert priv.illegally_intersected_by(Cube.from_pattern("1--1").with_universe(4))
        # containing the start point is legal:
        assert not priv.illegally_intersected_by(
            Cube.from_pattern("11-0").with_universe(4)
        )
        # disjoint is legal:
        assert not priv.illegally_intersected_by(
            Cube.from_pattern("0---").with_universe(4)
        )


class TestDhfPrimes:
    def test_no_privileged_gives_ordinary_primes(self):
        onset, offset = make_function(["11--", "1-1-"], ["0-0-", "0--0", "--00"])
        dhf = dhf_prime_implicants(onset, offset, [])
        function = offset.complement()
        expected = set(function.all_primes())
        assert set(dhf) == expected

    def test_splitting_removes_illegal_intersections(self):
        onset, offset = make_function(["1---"], ["0---"])
        priv = PrivilegedCube(Cube.from_pattern("-1--").with_universe(4), 0b0010)
        dhf = dhf_prime_implicants(onset, offset, [priv])
        for cube in dhf:
            assert not priv.illegally_intersected_by(cube)

    def test_expand_to_dhf_prime_maximal(self):
        onset, offset = make_function(["11--"], ["00--"])
        cube = Cube.from_pattern("11-1").with_universe(4)
        expanded = expand_to_dhf_prime(cube, offset, [])
        assert expanded.contains(cube)
        assert is_dhf_implicant(expanded, offset, [])

    def test_expand_rejects_non_implicant(self):
        onset, offset = make_function(["11--"], ["00--"])
        with pytest.raises(HazardFreeError):
            expand_to_dhf_prime(Cube.from_pattern("0---").with_universe(4), offset, [])


class TestMinimize:
    def _verify_cover_hazard_free(self, result, onset, offset, transitions):
        # every specified transition replayed on the event lattice
        names = [f"x{i}" for i in range(onset.nvars)]
        lsop = label_cover(result.cover, names)
        for spec in transitions:
            verdict = classify_transition(lsop, spec.start, spec.end)
            assert not verdict.logic_hazard, (
                f"{result.cover.to_string(names)} {spec.start:b}->{spec.end:b}"
            )

    def test_static_mux_requirement(self):
        # The classic: two 1-1 bursts forcing the consensus cube.
        names = ["s", "a", "b"]
        onset = Cover.from_strings(["sa", "s'b"], names)
        offset = onset.complement()
        transitions = [
            TransitionSpec(0b0111, 0b0110),  # a=b=1, s falls: 1-1
        ]
        result = minimize_hazard_free(onset, offset, transitions)
        assert not verify_hazard_free_cover(
            result.cover, result.required_cubes, result.privileged_cubes
        )
        # ab must be singly held
        assert result.cover.single_cube_contains(
            Cube.from_string("ab", names)
        )
        self._verify_cover_hazard_free(result, onset, offset, transitions)

    def test_dynamic_transition_no_illegal_intersection(self):
        # f = ab + cd; off-set = its true complement.
        onset, offset = make_function(
            ["--11", "11--"], ["0-0-", "0--0", "-00-", "-0-0"]
        )
        transitions = [TransitionSpec(0b1100, 0b0000)]  # 1 -> 0
        result = minimize_hazard_free(onset, offset, transitions)
        for priv in result.privileged_cubes:
            for cube in result.cover:
                assert not priv.illegally_intersected_by(cube)
        self._verify_cover_hazard_free(result, onset, offset, transitions)

    def test_function_correctness(self):
        onset, offset = make_function(["11--", "--11"], ["00-0", "0-00"])
        transitions = [TransitionSpec(0b0011, 0b1111)]
        result = minimize_hazard_free(onset, offset, transitions)
        for point in onset.minterms():
            assert result.cover.evaluate(point)
        for point in offset.minterms():
            assert not result.cover.evaluate(point)

    def test_heuristic_engine_hazard_free(self):
        onset = Cover.from_strings(["sa", "s'b"], ["s", "a", "b"])
        offset = onset.complement()
        transitions = [TransitionSpec(0b0111, 0b0110)]
        result = minimize_hazard_free(onset, offset, transitions, exact=False)
        assert not result.exact
        assert not verify_hazard_free_cover(
            result.cover, result.required_cubes, result.privileged_cubes
        )
        self._verify_cover_hazard_free(result, onset, offset, transitions)

    def test_exact_not_larger_than_heuristic(self):
        onset = Cover.from_strings(["sa", "s'b"], ["s", "a", "b"])
        offset = onset.complement()
        transitions = [TransitionSpec(0b0111, 0b0110)]
        exact = minimize_hazard_free(onset, offset, transitions, exact=True)
        heuristic = minimize_hazard_free(onset, offset, transitions, exact=False)
        assert len(exact.cover) <= len(heuristic.cover)

    def test_unrealizable_specification(self):
        # Require a 1-1 burst whose transition cube is cut by a
        # privileged cube that forbids every containing implicant:
        # classic unrealizable pattern — a required cube strictly inside
        # a privileged cube not containing its start.
        names = ["a", "b", "c"]
        onset = Cover.from_strings(["ab", "bc", "a'c"], names)
        offset = onset.complement()
        transitions = [
            TransitionSpec(0b011, 0b110),  # static 1-1 over b, needs cube b..
            TransitionSpec(0b111, 0b000),  # dynamic making cube b illegal
        ]
        with pytest.raises(HazardFreeError):
            minimize_hazard_free(onset, offset, transitions)
