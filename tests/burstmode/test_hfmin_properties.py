"""Property tests for hazard-free minimization on random functions.

Hypothesis generates random completely-specified functions plus random
function-hazard-free transitions; whenever a hazard-free cover exists,
both engines must deliver one whose specified transitions replay clean
on the event-lattice oracle — and the exact engine must never use more
cubes than the heuristic.
"""

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.boolean.cover import Cover
from repro.boolean.cube import Cube
from repro.boolean.paths import label_cover
from repro.burstmode.hfmin import (
    HazardFreeError,
    TransitionSpec,
    classify_requirements,
    minimize_hazard_free,
    verify_hazard_free_cover,
)
from repro.hazards.oracle import classify_transition
from repro.hazards.transition import is_fhf

NVARS = 4


@st.composite
def function_and_transitions(draw):
    """A random function plus up to three FHF transitions on it."""
    cubes = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=1, max_value=(1 << NVARS) - 1),
                st.integers(min_value=0, max_value=(1 << NVARS) - 1),
            ),
            min_size=1,
            max_size=4,
        )
    )
    onset = Cover([Cube(u, p, NVARS) for u, p in cubes], NVARS).dedup()
    offset = onset.complement()
    pairs = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=(1 << NVARS) - 1),
                st.integers(min_value=0, max_value=(1 << NVARS) - 1),
            ),
            min_size=1,
            max_size=3,
        )
    )
    transitions = []
    for start, end in pairs:
        if start == end:
            continue
        if is_fhf(onset, start, end):
            transitions.append(TransitionSpec(start, end))
    return onset, offset, transitions


class TestRandomHazardFreeMinimization:
    @given(function_and_transitions())
    @settings(max_examples=40, deadline=None)
    def test_result_replays_clean_on_oracle(self, data):
        onset, offset, transitions = data
        assume(transitions)
        try:
            result = minimize_hazard_free(onset, offset, transitions)
        except HazardFreeError:
            return  # legitimately unrealizable
        # conditions verified structurally...
        assert not verify_hazard_free_cover(
            result.cover, result.required_cubes, result.privileged_cubes
        )
        # ...and semantically, transition by transition.
        names = [f"x{i}" for i in range(NVARS)]
        lsop = label_cover(result.cover, names)
        for spec in transitions:
            verdict = classify_transition(lsop, spec.start, spec.end)
            assert not verdict.logic_hazard, (
                result.cover.to_string(names),
                f"{spec.start:04b}->{spec.end:04b}",
            )

    @given(function_and_transitions())
    @settings(max_examples=30, deadline=None)
    def test_function_is_preserved(self, data):
        onset, offset, transitions = data
        try:
            result = minimize_hazard_free(onset, offset, transitions)
        except HazardFreeError:
            return
        assert result.cover.equivalent(onset)

    @given(function_and_transitions())
    @settings(max_examples=25, deadline=None)
    def test_exact_no_bigger_than_heuristic(self, data):
        onset, offset, transitions = data
        try:
            exact = minimize_hazard_free(onset, offset, transitions, exact=True)
            heuristic = minimize_hazard_free(
                onset, offset, transitions, exact=False
            )
        except HazardFreeError:
            return
        assert len(exact.cover) <= len(heuristic.cover)

    @given(function_and_transitions())
    @settings(max_examples=30, deadline=None)
    def test_requirements_are_consistent(self, data):
        onset, offset, transitions = data
        required, privileged = classify_requirements(onset, offset, transitions)
        for cube in required:
            # required cubes are implicants of the function
            assert not any(cube.intersects(off) for off in offset)
        for priv in privileged:
            # a privileged cube's start point is ON (by orientation)
            assert onset.evaluate(priv.start)
