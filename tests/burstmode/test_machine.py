"""Tests for the burst-mode machine simulators and conformance checks."""

import pytest

from repro.burstmode.benchmarks import synthesize_benchmark
from repro.burstmode.machine import (
    ImplementationSimulator,
    SpecSimulator,
    conformance_check,
)
from repro.burstmode.spec import BurstModeSpec
from repro.burstmode.synth import synthesize
from repro.library import minimal_teaching_library
from repro.mapping.mapper import async_tmap


def simple_spec():
    spec = BurstModeSpec(
        name="t", inputs=["req", "din"], outputs=["ack", "load"],
        initial_state="s0",
    )
    spec.add_transition("s0", ["req"], ["ack"], "s1")
    spec.add_transition("s1", ["req", "din"], ["ack", "load"], "s2")
    spec.add_transition("s2", ["din"], ["load"], "s0")
    return spec


class TestSpecSimulator:
    def test_reset(self):
        sim = SpecSimulator(simple_spec())
        status = sim.reset()
        assert status.state == "s0"
        assert not any(status.inputs.values())

    def test_fire_updates_values(self):
        sim = SpecSimulator(simple_spec())
        status = sim.reset()
        burst = sim.enabled_bursts(status)[0]
        after = sim.fire(status, burst)
        assert after.state == "s1"
        assert after.inputs["req"]
        assert after.outputs["ack"]

    def test_fire_wrong_burst_rejected(self):
        sim = SpecSimulator(simple_spec())
        status = sim.reset()
        later = sim.fire(status, sim.enabled_bursts(status)[0])
        with pytest.raises(ValueError):
            sim.fire(status, sim.enabled_bursts(later)[0])

    def test_random_walk_cycles(self):
        sim = SpecSimulator(simple_spec())
        trace = sim.random_walk(30, seed=3)
        assert len(trace) == 30
        # the machine is a 3-cycle: state sequence repeats
        states = [status.state for status, __ in trace]
        assert states[:3] == ["s0", "s1", "s2"]
        assert states[3] == "s0"


class TestConformance:
    def test_synthesized_network_conforms(self):
        synthesis = synthesize(simple_spec())
        assert conformance_check(synthesis, steps=60) == []

    def test_benchmarks_conform(self):
        for name in ("chu-ad-opt", "dme", "dme-fast", "pe-send-ifc"):
            synthesis = synthesize_benchmark(name)
            problems = conformance_check(synthesis, steps=120, seed=1)
            assert problems == [], (name, problems[:2])

    def test_mapped_network_conforms(self):
        library = minimal_teaching_library()
        if not library.annotated:
            library.annotate_hazards()
        synthesis = synthesize(simple_spec())
        result = async_tmap(synthesis.netlist(), library)
        assert conformance_check(synthesis, result.mapped, steps=60) == []

    def test_broken_network_detected(self):
        synthesis = synthesize(simple_spec())
        net = synthesis.netlist()
        # sabotage: swap an output's driver with another's
        a, b = net.outputs[0], net.outputs[1]
        net.nodes[a].fanins, net.nodes[b].fanins = (
            net.nodes[b].fanins,
            net.nodes[a].fanins,
        )
        problems = conformance_check(synthesis, net, steps=40)
        assert problems

    def test_interface_mismatch_rejected(self):
        from repro.network.netlist import Netlist

        synthesis = synthesize(simple_spec())
        wrong = Netlist.from_equations({"ack": "a"})
        with pytest.raises(ValueError):
            ImplementationSimulator(synthesis, wrong)
