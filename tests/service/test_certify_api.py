"""The ``/v1/certify`` endpoint and its ``repro-api/v1`` payloads."""

from __future__ import annotations

import pytest

from repro.api import (
    ApiError,
    CertifyRequest,
    CertifyResponse,
    MapRequest,
    parse_request,
)

BLIF_STUB = ".model m\n.inputs a\n.outputs f\n.names a f\n1 1\n.end\n"


class TestPayloads:
    def test_request_roundtrip(self):
        request = CertifyRequest(
            mapped_blif=BLIF_STUB,
            design="chu-ad-opt",
            library="CMOS3",
            samples=99,
            seed=4,
        )
        parsed = parse_request(request.to_payload())
        assert isinstance(parsed, CertifyRequest)
        assert parsed == request

    def test_inline_network_roundtrip(self):
        request = CertifyRequest(
            mapped_blif=BLIF_STUB,
            network={"equations": {"f": "a"}, "name": "inline"},
        )
        parsed = parse_request(request.to_payload())
        assert parsed.network == request.network

    def test_mapped_blif_is_required(self):
        with pytest.raises(ApiError):
            CertifyRequest(mapped_blif="", design="chu-ad-opt")

    def test_exactly_one_source_spec(self):
        with pytest.raises(ApiError):
            CertifyRequest(mapped_blif=BLIF_STUB)
        with pytest.raises(ApiError):
            CertifyRequest(
                mapped_blif=BLIF_STUB,
                design="chu-ad-opt",
                network={"equations": {"f": "a"}},
            )

    def test_knob_validation(self):
        with pytest.raises(ApiError):
            CertifyRequest(
                mapped_blif=BLIF_STUB, design="chu-ad-opt", samples=0
            )
        with pytest.raises(ApiError):
            CertifyRequest(
                mapped_blif=BLIF_STUB,
                design="chu-ad-opt",
                exhaustive_limit=0,
            )

    def test_tampered_kind_is_rejected(self):
        payload = CertifyRequest(
            mapped_blif=BLIF_STUB, design="chu-ad-opt"
        ).to_payload()
        payload["kind"] = "certify_v2"
        with pytest.raises(ApiError):
            parse_request(payload)

    def test_response_roundtrip(self):
        response = CertifyResponse(
            verdict="rejected",
            certified=False,
            equivalent=True,
            hazard_safe=False,
            outputs_checked=2,
            transitions_checked=180,
            replays=1,
            evidence_digest="ab" * 32,
            violations=("output f: new static-1 hazard",),
            counterexamples=(),
            certificate={"schema": "repro-cert/v1"},
        )
        parsed = CertifyResponse.from_payload(response.to_payload())
        assert parsed == response


class TestEndpoint:
    def test_certify_over_http_accepts_real_mapping(self, make_service):
        _, client = make_service()
        mapped = client.map(
            MapRequest(design="chu-ad-opt", library="CMOS3", max_depth=3)
        )
        response = client.certify(
            CertifyRequest(
                mapped_blif=mapped.blif,
                design="chu-ad-opt",
                library="CMOS3",
            )
        )
        assert response.certified
        assert response.verdict == "certified"
        assert response.certificate["schema"] == "repro-cert/v1"
        assert response.evidence_digest == (
            response.certificate["evidence_digest"]
        )

    def test_certify_over_http_rejects_wrong_netlist(self, make_service):
        _, client = make_service()
        mapped = client.map(
            MapRequest(design="vanbek-opt", library="CMOS3", max_depth=3)
        )
        # vanbek-opt's netlist certified against chu-ad-opt's spec must
        # fail (interface and/or function mismatch).
        response = client.certify(
            CertifyRequest(
                mapped_blif=mapped.blif,
                design="chu-ad-opt",
                library="CMOS3",
            )
        )
        assert not response.certified
        assert response.violations

    def test_certify_endpoint_counts_metrics(self, make_service):
        _, client = make_service()
        mapped = client.map(
            MapRequest(design="chu-ad-opt", library="CMOS3", max_depth=3)
        )
        client.certify(
            CertifyRequest(
                mapped_blif=mapped.blif,
                design="chu-ad-opt",
                library="CMOS3",
            )
        )
        metrics = client.metrics()["metrics"]
        assert metrics["conformance.certificates"]["value"] >= 1
