"""Fixtures for the service tests: hermetic in-process daemons.

Each test gets factory-fresh libraries (both the ``lru_cache``'d
standard-library constructors and the facade's process-wide warm cache
are cleared), so cold-vs-warm annotation behaviour is deterministic no
matter which tests ran before.
"""

from __future__ import annotations

import pytest

from repro.api.facade import clear_library_cache
from repro.library import anncache, standard
from repro.service import MappingService, ServiceConfig
from repro.service.client import ServiceClient


@pytest.fixture(autouse=True)
def fresh_libraries():
    def _reset() -> None:
        clear_library_cache()
        for factory in standard.ALL_LIBRARIES.values():
            factory.cache_clear()

    _reset()
    yield
    _reset()


@pytest.fixture
def make_service():
    """Factory for running in-process services (ephemeral ports).

    Returns ``(service, client)`` pairs; every service is drained and
    closed at teardown in reverse creation order.
    """
    active = []

    def _make(**kwargs):
        kwargs.setdefault("port", 0)
        # Hermetic: tests must not read or write the user's annotation
        # cache unless they opt in with an explicit cache_dir.
        kwargs.setdefault("cache_dir", anncache.DISABLED)
        service = MappingService(ServiceConfig(**kwargs))
        context = service.running()
        context.__enter__()
        active.append(context)
        return service, ServiceClient(service.url)

    yield _make
    for context in reversed(active):
        context.__exit__(None, None, None)
