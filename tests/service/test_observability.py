"""Daemon observability: trace propagation, enriched health, Prometheus.

The distributed-tracing contract under test: a client that sends
``X-Repro-Trace`` gets back its own ``trace_id`` with the daemon's
``service.request`` span and the worker's full mapping tree already
stitched together — grafting the response under the client's root span
yields ONE well-formed tree spanning three processes.
"""

from __future__ import annotations

import json
import urllib.request

import pytest

from repro.api.schema import MapRequest
from repro.obs import log as obs_log
from repro.obs.export import parse_prometheus_text
from repro.obs.tracer import TRACE_HEADER, Tracer

REQUEST = MapRequest(library="CMOS3", design="chu-ad-opt", max_depth=3)


def _traced_map(client, request=REQUEST):
    tracer = Tracer()
    root = tracer.start_span("map.client", design=request.design)
    client.trace_context = tracer.context(root)
    response = client.map(request)
    tracer.finish_span(root)
    client.trace_context = None
    return tracer, root, response


@pytest.mark.parametrize("backend", ["threads", "processes"])
def test_traced_request_round_trips_one_tree(make_service, backend):
    service, client = make_service(backend=backend)
    tracer, root, response = _traced_map(client)

    assert response.trace is not None
    assert response.trace["trace_id"] == tracer.trace_id
    tracer.graft(response.trace, parent=root)
    tracer.assert_well_formed()

    spans = {span.name: span for span in tracer.all_spans()}
    assert "service.request" in spans, "daemon span missing from the stitch"
    assert "async_tmap" in spans, "worker mapping tree missing"
    request_span = spans["service.request"]
    assert request_span.attrs["remote_parent"] == root.span_id
    # One root: the client's; everything else hangs beneath it.
    assert tracer.roots() == [root]


def test_untraced_request_has_no_trace_key(make_service):
    service, client = make_service()
    response = client.map(REQUEST)
    assert response.trace is None
    # Untraced requests still land on the service's own tracer.
    assert any(
        span.name == "service.request" for span in service.tracer.all_spans()
    )


def test_malformed_trace_header_is_rejected(make_service):
    service, client = make_service()
    request = urllib.request.Request(
        f"{client.base_url}/healthz", headers={TRACE_HEADER: "no-span-id"}
    )
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        urllib.request.urlopen(request)
    assert excinfo.value.code == 400
    assert "malformed" in json.loads(excinfo.value.read())["error"]


def test_healthz_reports_queue_and_libraries(make_service):
    service, client = make_service(preload=("CMOS3",))
    health = client.health()
    assert health["status"] == "ok"
    assert health["queue_depth"] == 0
    assert health["queue_available"] == service.config.queue_limit
    assert health["uptime_seconds"] >= 0
    assert health["libraries"] == ["CMOS3"]


def test_per_endpoint_latency_histograms(make_service):
    service, client = make_service()
    client.map(REQUEST)
    client.health()
    client.metrics()
    snapshot = service.metrics.snapshot()
    for name in (
        "service.request.latency.map",
        "service.request.latency.healthz",
        "service.request.latency.metrics",
    ):
        assert snapshot[name]["type"] == "histogram", name
        assert snapshot[name]["count"] >= 1, name


def test_prometheus_endpoint_parses(make_service):
    service, client = make_service()
    client.map(REQUEST)
    text = client.metrics_prometheus()
    parsed = parse_prometheus_text(text)
    assert parsed["samples"]["service_requests_total"] >= 1.0
    assert parsed["types"]["service_request_seconds"] == "histogram"
    assert (
        parsed["samples"]['service_request_seconds_bucket{le="+Inf"}'] >= 1.0
    )


def test_metrics_unknown_format_is_rejected(make_service):
    from repro.service.client import ServiceError

    service, client = make_service()
    with pytest.raises(ServiceError) as excinfo:
        client._request("GET", "/metrics?format=xml", None)
    assert excinfo.value.status == 400


def test_access_log_lines_carry_the_request_trace_id(make_service, tmp_path):
    service, client = make_service()
    log_path = tmp_path / "access.jsonl"
    with obs_log.event_log(log_path):
        tracer, root, response = _traced_map(client)
    lines = obs_log.read_log(log_path)
    requests = [l for l in lines if l["event"] == "request"]
    assert requests, "daemon must emit a per-request access-log event"
    line = requests[-1]
    assert line["trace_id"] == tracer.trace_id
    assert line["span_id"] is not None
    assert line["fields"]["endpoint"] == "map"
    assert line["fields"]["status"] == 200
    assert line["fields"]["seconds"] > 0
    assert "queue_depth" in line["fields"]
