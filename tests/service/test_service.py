"""Behavioural tests for the in-process mapping service.

The load-bearing guarantees: responses are byte-identical to direct
``map_network`` runs even under concurrency; a warm service never
re-annotates a library (the ``library.annotate.calls`` counter stays
flat); admission control answers ``429`` when the queue is full;
deadline overruns degrade to the trivial cover over HTTP; and drain
finishes in-flight work while refusing new work with ``503``.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.api import MapRequest, VerifyRequest, netlist_blif
from repro.service.client import ServiceError
from repro.service.daemon import RETRY_AFTER_SECONDS
from repro.testing.faults import FaultPlan

DESIGNS = ("dme", "vanbek-opt", "chu-ad-opt", "dme")


class TestMappingParity:
    def test_concurrent_requests_match_sequential_map_network(
        self, make_service
    ):
        service, client = make_service(workers=3, queue_limit=16)
        requests = [
            MapRequest(design=design, library="CMOS3") for design in DESIGNS
        ]
        with ThreadPoolExecutor(max_workers=len(requests)) as pool:
            responses = list(pool.map(client.map, requests))

        from repro.mapping.mapper import MappingOptions, map_network

        for request, response in zip(requests, responses):
            result = map_network(
                request.design, "CMOS3", MappingOptions(), mode="async"
            )
            assert response.blif == netlist_blif(result.mapped)
            assert response.area == result.area
            assert response.cells == sum(result.cell_usage().values())

    def test_warm_requests_skip_annotation_entirely(self, make_service):
        service, client = make_service()
        first = client.map(MapRequest(design="dme", library="CMOS3"))
        second = client.map(MapRequest(design="dme", library="CMOS3"))
        assert first.blif == second.blif
        assert first.digest == second.digest
        assert first.annotate_source == "cold"
        # The second response did no annotation work at all.
        assert second.annotate_source is None
        assert second.annotate_seconds == 0.0
        metrics = client.metrics()["metrics"]
        assert metrics["library.annotate.calls"]["value"] == 1
        assert metrics["service.requests.map"]["value"] == 2

    def test_preload_pays_annotation_before_first_request(self, make_service):
        service, client = make_service(preload=("CMOS3",))
        response = client.map(MapRequest(design="dme", library="CMOS3"))
        assert response.annotate_source is None  # already warm at boot
        metrics = client.metrics()["metrics"]
        assert metrics["library.annotate.calls"]["value"] == 1


class TestAdmissionAndDeadlines:
    def test_queue_full_answers_429(self, make_service):
        plan = FaultPlan.parse(["hang@cover.cone"], hang_seconds=30.0)
        service, client = make_service(
            workers=1, queue_limit=1, fault_plan=plan
        )
        slow = MapRequest(
            design="dme", library="CMOS3", deadline_seconds=2.0
        )
        holder: dict = {}

        def _slow_call():
            holder["response"] = client.map(slow)

        thread = threading.Thread(target=_slow_call)
        thread.start()
        try:
            # Wait until the slow request actually occupies the queue slot.
            for _ in range(200):
                if service.inflight >= 1:
                    break
                threading.Event().wait(0.01)
            assert service.inflight >= 1
            with pytest.raises(ServiceError) as info:
                client.map(MapRequest(design="dme", library="CMOS3"))
            assert info.value.status == 429
            assert info.value.retry_after == RETRY_AFTER_SECONDS
        finally:
            thread.join(timeout=30)
        # The admitted request still finished — degraded, not dropped.
        response = holder["response"]
        assert response.fallback == "trivial-cover"
        metrics = client.metrics()["metrics"]
        assert metrics["service.rejected.429"]["value"] == 1

    def test_deadline_overrun_degrades_over_http(self, make_service):
        plan = FaultPlan.parse(["hang@cover.cone"], hang_seconds=30.0)
        service, client = make_service(fault_plan=plan)
        response = client.map(
            MapRequest(design="dme", library="CMOS3", deadline_seconds=0.5)
        )
        assert response.status == "ok"
        assert response.fallback == "trivial-cover"
        assert response.deadline_site == "cover.cone"
        metrics = client.metrics()["metrics"]
        assert metrics["service.fallbacks"]["value"] == 1

    def test_service_default_deadline_applies(self, make_service):
        plan = FaultPlan.parse(["hang@annotate.library"], hang_seconds=30.0)
        service, client = make_service(
            fault_plan=plan, deadline_seconds=0.5
        )
        response = client.map(MapRequest(design="dme", library="CMOS3"))
        assert response.fallback == "trivial-cover"
        assert response.deadline_site == "annotate.library"


class TestProtocol:
    def test_bad_payloads_answer_400(self, make_service):
        service, client = make_service()
        with pytest.raises(ServiceError) as info:
            client._post("/v1/map", {"schema": "repro-api/v1",
                                     "kind": "map"})
        assert info.value.status == 400
        # Wrong kind for the endpoint.
        with pytest.raises(ServiceError) as info:
            client._post(
                "/v1/verify",
                MapRequest(design="dme", library="CMOS3").to_payload(),
            )
        assert info.value.status == 400
        assert "verify" in info.value.message
        # Not JSON at all.
        with pytest.raises(ServiceError) as info:
            client._request("POST", "/v1/map", None)
        assert info.value.status == 400

    def test_unknown_endpoint_answers_404(self, make_service):
        service, client = make_service()
        with pytest.raises(ServiceError) as info:
            client._request("GET", "/v1/nonsense", None)
        assert info.value.status == 404

    def test_metrics_counters_match_request_mix(self, make_service):
        service, client = make_service()
        mapped = client.map(MapRequest(design="dme", library="CMOS3"))
        client.map(MapRequest(design="dme", library="CMOS3", verify=True))
        verdict = client.verify(
            VerifyRequest(design="dme", mapped_blif=mapped.blif)
        )
        assert verdict.ok
        with pytest.raises(ServiceError):
            client._post("/v1/map", {"schema": "repro-api/v1"})
        metrics = client.metrics()["metrics"]
        assert metrics["service.requests"]["value"] == 4
        assert metrics["service.requests.map"]["value"] == 3
        assert metrics["service.requests.verify"]["value"] == 1
        assert metrics["service.errors"]["value"] == 1
        assert metrics["service.request_seconds"]["count"] == 3

    def test_health_reports_shape(self, make_service):
        service, client = make_service(workers=3, queue_limit=5)
        health = client.health()
        assert health["status"] == "ok"
        assert health["inflight"] == 0
        assert health["queue_limit"] == 5
        assert health["backend"] == "threads"
        assert health["workers"] == 3


class TestDrain:
    def test_drain_finishes_inflight_and_rejects_new(self, make_service):
        plan = FaultPlan.parse(["hang@cover.cone"], hang_seconds=30.0)
        service, client = make_service(fault_plan=plan, queue_limit=4)
        holder: dict = {}

        def _slow_call():
            holder["response"] = client.map(
                MapRequest(design="dme", library="CMOS3",
                           deadline_seconds=2.0)
            )

        thread = threading.Thread(target=_slow_call)
        thread.start()
        for _ in range(200):
            if service.inflight >= 1:
                break
            threading.Event().wait(0.01)
        assert service.inflight >= 1

        drainer = threading.Thread(target=service.drain)
        drainer.start()
        for _ in range(200):
            if service.draining:
                break
            threading.Event().wait(0.01)
        with pytest.raises(ServiceError) as info:
            client.map(MapRequest(design="dme", library="CMOS3"))
        assert info.value.status == 503
        drainer.join(timeout=30)
        thread.join(timeout=30)
        assert not drainer.is_alive()
        # The in-flight request completed during the drain.
        assert holder["response"].status == "ok"
        assert service.inflight == 0
