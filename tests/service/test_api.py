"""Contract tests for the ``repro-api/v1`` schema and its shims.

Round-trip: every request/response type survives ``to_payload`` →
``from_payload`` unchanged.  Tamper: a wrong schema stamp, an unknown
field, a mistyped value, or a missing required field raises
:class:`ApiError` at the boundary instead of being silently dropped.
Correspondence: ``BatchJob`` specs and the option table stay in lock
step, so a new option declared in ``OPTION_FIELDS`` cannot silently
miss one of the derived surfaces.
"""

from __future__ import annotations

import dataclasses
import warnings

import pytest

from repro.api import (
    API_SCHEMA,
    ApiError,
    BATCH_OPTION_NAMES,
    BatchRequest,
    ExplainRequest,
    MapRequest,
    MapResponse,
    OPTION_FIELDS,
    OPTION_NAMES,
    VerifyRequest,
    VerifyResponse,
    parse_request,
)
from repro.batch.jobs import BatchJob


REQUESTS = [
    MapRequest(design="dme", library="CMOS3", verify=True,
               max_depth=3, objective="delay", deadline_seconds=2.5),
    MapRequest(network={"blif": ".model t\n.inputs a\n.outputs y\n"
                        ".names a y\n1 1\n.end\n"},
               library="CMOS3"),
    BatchRequest(designs=("dme", "vanbek-opt"), libraries=("CMOS3", "LSI9K"),
                 verify=True, include_blif=True),
    ExplainRequest(design="dme", library="CMOS3", limit=3,
                   rejected_only=True),
    VerifyRequest(design="dme", mapped_blif=".model m\n.end\n"),
]


class TestRoundTrip:
    @pytest.mark.parametrize("request_obj", REQUESTS,
                             ids=lambda r: type(r).__name__)
    def test_request_round_trips(self, request_obj):
        payload = request_obj.to_payload()
        assert payload["schema"] == API_SCHEMA
        assert type(request_obj).from_payload(payload) == request_obj
        # parse_request dispatches on the payload's kind discriminator.
        assert parse_request(payload) == request_obj

    def test_payloads_are_plain_json(self):
        import json

        for request_obj in REQUESTS:
            json.loads(json.dumps(request_obj.to_payload()))

    def test_map_response_round_trips(self):
        response = MapResponse(
            status="ok", design="dme", library="CMOS3", mode="async",
            area=12.0, delay=0.66, cells=5,
            cell_usage={"AO21": 2, "OR2": 3}, cones=4, matches=10,
            filter_invocations=1, map_seconds=0.1, annotate_seconds=0.2,
            annotate_source="cold", workers=1, digest="d" * 64,
            blif=".model dme\n.end\n", fallback=None, deadline_site=None,
            verify={"equivalent": True, "hazard_safe": True, "ok": True},
            explain=None,
        )
        assert MapResponse.from_payload(response.to_payload()) == response

    def test_verify_response_round_trips(self):
        response = VerifyResponse(
            equivalent=True, hazard_safe=False, ok=False,
            outputs_checked=5, transitions_checked=32,
            violations=("y: glitch on a+ b+",),
        )
        assert VerifyResponse.from_payload(response.to_payload()) == response


class TestTamper:
    def payload(self) -> dict:
        return MapRequest(design="dme", library="CMOS3").to_payload()

    def test_wrong_schema_stamp(self):
        payload = self.payload()
        payload["schema"] = "repro-api/v0"
        with pytest.raises(ApiError, match="schema"):
            MapRequest.from_payload(payload)

    def test_missing_schema_stamp(self):
        payload = self.payload()
        del payload["schema"]
        with pytest.raises(ApiError):
            MapRequest.from_payload(payload)

    def test_wrong_kind(self):
        payload = self.payload()
        payload["kind"] = "batch"
        with pytest.raises(ApiError, match="kind"):
            MapRequest.from_payload(payload)
        with pytest.raises(ApiError):
            parse_request({**self.payload(), "kind": "nonsense"})

    def test_unknown_field_rejected(self):
        payload = self.payload()
        payload["max_deth"] = 3  # a typo'd knob must not be dropped
        with pytest.raises(ApiError, match="max_deth"):
            MapRequest.from_payload(payload)

    def test_mistyped_value_rejected(self):
        payload = self.payload()
        payload["max_depth"] = "five"
        with pytest.raises(ApiError, match="max_depth"):
            MapRequest.from_payload(payload)

    def test_missing_required_field(self):
        payload = self.payload()
        del payload["library"]
        with pytest.raises(ApiError, match="library"):
            MapRequest.from_payload(payload)

    def test_bad_option_values(self):
        with pytest.raises(ApiError):
            MapRequest(design="dme", library="CMOS3", objective="power")
        with pytest.raises(ApiError):
            MapRequest(design="dme", library="CMOS3", max_depth=0)
        with pytest.raises(ApiError):
            MapRequest(design="dme", library="CMOS3", deadline_seconds=0.0)

    def test_design_network_exclusivity(self):
        with pytest.raises(ApiError):
            MapRequest(library="CMOS3")
        with pytest.raises(ApiError):
            MapRequest(library="CMOS3", design="dme",
                       network={"blif": ".model x\n.end\n"})

    def test_bad_network_shapes(self):
        with pytest.raises(ApiError):
            MapRequest(library="CMOS3", network={})
        with pytest.raises(ApiError):
            MapRequest(library="CMOS3",
                       network={"blif": ".model x\n.end\n", "extra": 1})


class TestBatchJobCorrespondence:
    """BatchJob specs derive from the one option declaration table."""

    def test_job_fields_track_the_schema(self):
        job_fields = {f.name for f in dataclasses.fields(BatchJob)}
        assert job_fields == (
            {"design", "library", "verify", "explain"} | set(BATCH_OPTION_NAMES)
        )

    def test_option_table_is_authoritative(self):
        assert set(BATCH_OPTION_NAMES) <= set(OPTION_NAMES)
        # workers cannot change results, so it must stay out of specs.
        assert "workers" in OPTION_NAMES
        assert "workers" not in BATCH_OPTION_NAMES
        for field in OPTION_FIELDS:
            assert hasattr(MapRequest(design="dme", library="CMOS3"),
                           field.name)

    def test_job_round_trips_through_request(self):
        job = BatchJob(design="dme", library="CMOS3", mode="sync",
                       max_depth=3, verify=True)
        assert BatchJob.from_request(job.to_request()) == job

    def test_request_rejects_inline_networks(self):
        inline = MapRequest(
            library="CMOS3", network={"blif": ".model x\n.end\n"}
        )
        with pytest.raises(ApiError, match="catalog"):
            BatchJob.from_request(inline)

    def test_bad_spec_rejected_as_value_error(self):
        with pytest.raises(ValueError):
            BatchJob(design="dme", library="CMOS3", objective="power")


class TestLegacyKeywordShims:
    def test_legacy_keywords_warn_and_apply(self, mini_library):
        from repro.burstmode.benchmarks import synthesize_benchmark
        from repro.mapping.mapper import MappingOptions, map_network

        network = synthesize_benchmark("dme").netlist("dme")
        with pytest.warns(DeprecationWarning, match="deprecated"):
            legacy = map_network(network, mini_library, depth=2)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            modern = map_network(
                network, mini_library, MappingOptions(max_depth=2)
            )
        assert legacy.area == modern.area
        assert legacy.cell_usage() == modern.cell_usage()

    def test_options_and_keywords_conflict(self, mini_library):
        from repro.burstmode.benchmarks import synthesize_benchmark
        from repro.mapping.mapper import MappingOptions, tmap

        network = synthesize_benchmark("dme").netlist("dme")
        with pytest.raises(TypeError, match="not both"):
            tmap(network, mini_library, MappingOptions(), max_depth=2)

    def test_unknown_keyword_rejected(self, mini_library):
        from repro.burstmode.benchmarks import synthesize_benchmark
        from repro.mapping.mapper import async_tmap

        network = synthesize_benchmark("dme").netlist("dme")
        with pytest.raises(TypeError, match="cluster_depth"):
            async_tmap(network, mini_library, cluster_depth=2)
