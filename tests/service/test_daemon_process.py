"""Real-process drain test: SIGTERM finishes in-flight requests.

Boots ``python -m repro serve`` as a subprocess, parks a slow request
in flight (an injected covering hang cut short by the service's default
deadline), delivers a real SIGTERM, and asserts the in-flight request
still completes — degraded to the trivial cover, not dropped — before
the daemon exits cleanly.
"""

from __future__ import annotations

import signal
import subprocess
import sys
import threading
import time

import pytest

from repro.api import MapRequest
from repro.service.client import ServiceClient, ServiceError


@pytest.fixture
def daemon():
    process = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--port", "0",
            "--no-cache",
            "--deadline", "3.0",
            "--inject", "hang@cover.cone",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )
    try:
        banner = process.stdout.readline().strip()
        assert banner.startswith("serving on http://"), banner
        yield process, banner.split()[-1]
    finally:
        if process.poll() is None:
            process.kill()
        process.wait(timeout=10)


def test_sigterm_drains_inflight_requests(daemon):
    process, url = daemon
    client = ServiceClient(url)
    client.wait_ready(timeout=10)
    holder: dict = {}

    def _slow_call():
        try:
            holder["response"] = client.map(
                MapRequest(design="dme", library="CMOS3")
            )
        except ServiceError as exc:  # pragma: no cover - failure detail
            holder["error"] = exc

    thread = threading.Thread(target=_slow_call)
    thread.start()
    deadline = time.monotonic() + 10
    while time.monotonic() < deadline:
        if client.health().get("inflight", 0) >= 1:
            break
        time.sleep(0.02)
    else:
        pytest.fail("slow request never became in-flight")

    process.send_signal(signal.SIGTERM)
    thread.join(timeout=30)
    assert not thread.is_alive()
    assert "error" not in holder, f"in-flight request failed: {holder}"
    response = holder["response"]
    assert response.status == "ok"
    assert response.fallback == "trivial-cover"

    assert process.wait(timeout=30) == 0
    tail = process.stdout.read()
    assert "drained; bye" in tail
