"""The independent certifier: accept real mappings, reject broken ones.

Every rejection here is cross-checked by replaying the certificate's
counterexample on the event simulator *outside* the certifier — the
evidence must stand on its own, not just the verdict.
"""

from __future__ import annotations

import inspect

import pytest

from repro.boolean.paths import label_expression
from repro.conformance import certify_mapping
from repro.conformance import certifier as certifier_module
from repro.hazards.witness import HazardWitness, replay_witness
from repro.library import anncache
from repro.library.standard import load_library
from repro.mapping.mapper import MappingOptions, map_network
from repro.network.netlist import Netlist
from repro.obs.export import CERT_SCHEMA
from repro.obs.metrics import MetricsRegistry

DEPTH = 3


@pytest.fixture(scope="module")
def cmos3():
    library = load_library("CMOS3")
    if not library.annotated:
        library.annotate_hazards()
    return library


def _map_catalog(name: str, library):
    from repro.burstmode.benchmarks import synthesize_benchmark

    source = synthesize_benchmark(name).netlist(name)
    options = MappingOptions(
        max_depth=DEPTH, annotation_cache_dir=anncache.DISABLED
    )
    return source, map_network(source, library, options).mapped


class TestAccept:
    def test_certifies_real_mapping(self, cmos3):
        source, mapped = _map_catalog("chu-ad-opt", cmos3)
        certificate = certify_mapping(source, mapped, cmos3)
        assert certificate.certified
        assert certificate.verdict == "certified"
        assert certificate.equivalent and certificate.hazard_safe
        assert certificate.interface_ok and certificate.cells_ok
        assert certificate.outputs_checked == len(source.outputs)
        assert certificate.transitions_checked > 0
        assert not certificate.violations

    def test_certificate_payload_is_stamped(self, cmos3):
        source, mapped = _map_catalog("chu-ad-opt", cmos3)
        payload = certify_mapping(source, mapped, cmos3).to_dict()
        assert payload["schema"] == CERT_SCHEMA
        assert payload["verdict"] == "certified"
        assert len(payload["evidence_digest"]) == 64
        assert payload["outputs"], "per-output evidence must be present"
        for evidence in payload["outputs"]:
            assert len(evidence["digest"]) == 64
            assert evidence["method"] in ("exhaustive", "sampled")

    def test_metrics_are_recorded(self, cmos3):
        source, mapped = _map_catalog("vanbek-opt", cmos3)
        metrics = MetricsRegistry()
        certify_mapping(source, mapped, cmos3, metrics=metrics)
        snapshot = metrics.snapshot()
        assert snapshot["conformance.certificates"]["value"] == 1
        assert snapshot["conformance.outputs_checked"]["value"] > 0
        assert snapshot["conformance.certify_seconds"]["count"] == 1
        assert "conformance.rejections" not in snapshot or (
            snapshot["conformance.rejections"]["value"] == 0
        )


class TestReject:
    def test_new_hazard_rejected_with_replayable_counterexample(self):
        # b + b'·c computes the same function as b + c but carries the
        # textbook static-1 hazard on the b-toggle at c=1 (paper §3).
        source = Netlist.from_equations({"f": "b + c"}, name="spec")
        mapped = Netlist.from_equations({"f": "b + b' * c"}, name="bad")
        certificate = certify_mapping(source, mapped)
        assert not certificate.certified
        assert certificate.verdict == "rejected"
        assert certificate.equivalent  # function is right, hazard is new
        assert not certificate.hazard_safe
        refutations = [
            cx for cx in certificate.counterexamples if not cx.source_hazard
        ]
        assert refutations, "a rejection must carry a refutation"
        # Independent replay: the witness must glitch on the event
        # simulator when driven through the mapped network's own
        # path-labelled structure.
        cx = refutations[0]
        assert cx.replay["glitched"] is True
        lsop = label_expression(
            mapped.collapse("f"), list(cx.support)
        )
        witness = HazardWitness.from_dict(cx.witness)
        replay = replay_witness(lsop, witness, output="f")
        assert replay.glitched
        assert replay.changes > replay.expected

    def test_inequivalent_mapping_rejected(self):
        source = Netlist.from_equations({"f": "b + c"}, name="spec")
        mapped = Netlist.from_equations({"f": "b * c"}, name="wrong")
        certificate = certify_mapping(source, mapped)
        assert not certificate.certified
        assert not certificate.equivalent
        assert any("functional mismatch" in v for v in certificate.violations)

    def test_interface_mismatch_rejected(self):
        source = Netlist.from_equations(
            {"f": "a + b", "g": "a * b"}, name="spec"
        )
        mapped = Netlist.from_equations({"f": "a + b"}, name="partial")
        certificate = certify_mapping(source, mapped)
        assert not certificate.certified
        assert not certificate.interface_ok

    def test_bad_cell_binding_rejected(self, cmos3):
        source, mapped = _map_catalog("chu-ad-opt", cmos3)
        tampered = mapped.copy("tampered")
        victim = next(
            node for node in tampered.gates() if node.cell is not None
        )
        # Rebind the gate to a cell whose function cannot match its own.
        wrong = (
            cmos3.cell("INV_1X")
            if victim.cell.name != "INV_1X"
            else cmos3.cell("AND2")
        )
        victim.cell = wrong
        certificate = certify_mapping(source, tampered, cmos3)
        assert not certificate.certified
        assert not certificate.cells_ok


class TestDeterminism:
    def test_evidence_digest_is_reproducible(self, cmos3):
        source, mapped = _map_catalog("vanbek-opt", cmos3)
        first = certify_mapping(source, mapped, cmos3, seed=5)
        second = certify_mapping(source, mapped, cmos3, seed=5)
        assert first.evidence_digest == second.evidence_digest
        assert [e.digest for e in first.outputs] == [
            e.digest for e in second.outputs
        ]

    def test_seed_changes_sampled_evidence_only_deterministically(
        self, cmos3
    ):
        source, mapped = _map_catalog("chu-ad-opt", cmos3)
        a = certify_mapping(source, mapped, cmos3, seed=1)
        b = certify_mapping(source, mapped, cmos3, seed=1)
        assert a.evidence_digest == b.evidence_digest


class TestTrustModel:
    def test_certifier_has_no_mapper_imports(self):
        """The checker must share no code with what it checks."""
        source = inspect.getsource(certifier_module)
        for forbidden in (
            "mapping.cover",
            "mapping.match",
            "mapping.verify",
            "mapping.mapper",
            "hazards.cache",
            "from ..mapping",
        ):
            assert forbidden not in source, (
                f"certifier must not reference {forbidden!r}"
            )
