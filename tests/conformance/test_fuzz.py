"""Seeded fuzz harness: generation, shrinking, and corpus round-trips."""

from __future__ import annotations

import pytest

from repro.conformance.fuzz import (
    FuzzCase,
    fuzz,
    load_corpus_entry,
    random_case,
    run_case,
    shrink,
    write_corpus_entry,
)


def _rejected_when_seeded(case: FuzzCase) -> bool:
    """The shrink predicate the hazard tests converge under."""
    try:
        outcome = run_case(case)
    except Exception:
        return False
    return outcome.seeded is not None and not outcome.certificate.certified


class TestGeneration:
    def test_random_case_is_seed_deterministic(self):
        assert random_case(42) == random_case(42)
        assert random_case(42) != random_case(43)

    def test_clean_fuzz_run_has_no_failures(self):
        report = fuzz(6, seed=11)
        assert report.ok
        assert report.certified == 6
        assert report.rejected == 0

    def test_hazardize_fuzz_rejects_every_seeded_case(self):
        report = fuzz(8, seed=7, hazardize=True)
        assert report.ok, [case.name for case, _ in report.failures]
        assert report.seeded >= 1, "at least one case must be seedable"
        assert report.rejected == report.seeded
        assert report.certified == 8 - report.seeded


class TestShrinker:
    @pytest.fixture(scope="class")
    def failing_case(self):
        for seed in range(20):
            case = random_case(seed, hazardize=True)
            if _rejected_when_seeded(case):
                return case
        pytest.fail("no seedable hazard case in the first 20 seeds")

    def test_shrinker_converges_to_smaller_failing_case(self, failing_case):
        minimal = shrink(failing_case, _rejected_when_seeded)
        assert _rejected_when_seeded(minimal)
        assert minimal.size() <= failing_case.size()
        # Minimality: no single hoist/drop step still fails.
        assert minimal.size() < 40

    def test_shrinker_is_deterministic(self, failing_case):
        first = shrink(failing_case, _rejected_when_seeded)
        second = shrink(failing_case, _rejected_when_seeded)
        assert first == second


class TestCorpusIO:
    def test_corpus_entry_roundtrip(self, tmp_path):
        case = random_case(3, hazardize=True)
        path = write_corpus_entry(tmp_path / "case.json", case)
        assert load_corpus_entry(path) == case

    def test_corpus_entry_schema_is_enforced(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"schema": "repro-other/v1", "name": "x"}')
        with pytest.raises(ValueError, match="schema"):
            load_corpus_entry(path)
