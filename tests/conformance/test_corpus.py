"""Replay the committed fuzz corpus (``pytest -m corpus``).

Every entry under ``tests/data/corpus/`` is a shrunk, seed-pinned
reproducer: clean cases must keep certifying, hazard-seeded cases must
keep being rejected.  A failure here means the certifier's verdict for
a previously-settled artifact changed — a regression, not flake.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.conformance.fuzz import (
    corpus_entries,
    load_corpus_entry,
    replay_corpus_entry,
)

CORPUS_DIR = Path(__file__).resolve().parent.parent / "data" / "corpus"
ENTRIES = corpus_entries(CORPUS_DIR)


def test_corpus_is_not_empty():
    assert len(ENTRIES) >= 3, f"committed corpus missing at {CORPUS_DIR}"


@pytest.mark.corpus
@pytest.mark.parametrize(
    "entry", ENTRIES, ids=[path.stem for path in ENTRIES]
)
def test_corpus_entry_replays_to_expected_verdict(entry):
    case = load_corpus_entry(entry)
    outcome = replay_corpus_entry(entry)
    assert outcome.ok, (
        f"{case.name}: expected {outcome.expected_verdict}, got "
        f"{outcome.certificate.verdict} "
        f"(violations: {outcome.certificate.violations[:3]})"
    )
    if case.expect == "rejected":
        refutations = [
            cx
            for cx in outcome.certificate.counterexamples
            if not cx.source_hazard
        ]
        assert refutations and refutations[0].replay["glitched"]
