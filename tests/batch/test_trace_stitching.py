"""Cross-process trace stitching: one batch run, one span tree.

The coordinator passes a ``SpanContext`` (same ``trace_id``, parent =
the job's ``batch_job`` span) to every worker; workers map under their
own same-id tracer and ship the span tree back in the result payload;
the engine grafts it under the finished ``batch_job`` span.  These
tests pin the acceptance contract: a processes-backend batch yields a
single well-formed ``repro-trace/v1`` tree with every worker span
re-parented under a coordinator span.
"""

from __future__ import annotations

import pytest

from repro.batch.jobs import execute_job
from repro.library import anncache
from repro.obs.tracer import Tracer

from .util import DEPTH, SMALL, make_jobs, run


def _stitched(tracer: Tracer):
    """(root, batch_job spans) after asserting the tree is well-formed."""
    assert tracer.validate() == []
    roots = tracer.roots()
    assert len(roots) == 1 and roots[0].name == "batch"
    return roots[0], [c for c in roots[0].children if c.name == "batch_job"]


@pytest.mark.parametrize("backend", ["processes", "threads", "serial"])
def test_batch_produces_one_stitched_tree(backend, ann_cache):
    tracer = Tracer()
    report, metrics = run(
        make_jobs(), backend, ann_cache, tracer=tracer, retries=0
    )
    assert report.counts()["ok"] == len(SMALL)
    root, batch_jobs = _stitched(tracer)
    assert len(batch_jobs) == len(SMALL)
    for job_span in batch_jobs:
        # The worker's whole mapping tree hangs under the job span.
        names = {child.name for child in job_span.children}
        assert "async_tmap" in names, names
        for span in job_span.walk():
            assert span.start >= root.start
            assert span.end is not None and span.end <= root.end


def test_span_count_is_coordinator_plus_grafted(ann_cache):
    tracer = Tracer()
    report, metrics = run(
        make_jobs(), "processes", ann_cache, tracer=tracer, retries=0
    )
    grafted = metrics.counter("batch.spans_grafted").value
    assert grafted > 0
    spans = tracer.all_spans()
    # 1 batch span + one batch_job per job + every grafted worker span.
    assert len(spans) == 1 + len(SMALL) + grafted
    ids = [span.span_id for span in spans]
    assert len(ids) == len(set(ids)), "span ids must be unique after graft"


def test_grafted_spans_share_the_run_trace_id(ann_cache):
    tracer = Tracer()
    run(make_jobs(designs=SMALL[:1]), "processes", ann_cache, tracer=tracer,
        retries=0)
    payload = tracer.to_dict()
    assert payload["trace_id"] == tracer.trace_id
    assert payload["schema"] == "repro-trace/v1"


def test_worker_result_carries_trace_only_when_asked(ann_cache):
    job = make_jobs(designs=SMALL[:1])[0]
    untraced = execute_job(job, cache_dir=ann_cache)
    assert "trace" not in untraced

    coordinator = Tracer()
    with coordinator.span("batch_job", job=job.job_id) as parent:
        context = coordinator.context(parent)
    traced = execute_job(job, cache_dir=ann_cache, trace_context=context)
    trace = traced["trace"]
    assert trace["trace_id"] == coordinator.trace_id
    assert trace["spans"], "worker must record its mapping spans"
    # Observation must not change the work: identical mapped netlist.
    assert traced["digest"] == untraced["digest"]


def test_trace_context_does_not_leak_into_the_journal(tmp_path, ann_cache):
    journal = tmp_path / "journal.jsonl"
    tracer = Tracer()
    run(
        make_jobs(designs=SMALL[:1]), "processes", ann_cache,
        tracer=tracer, retries=0, journal=str(journal),
    )
    text = journal.read_text()
    assert '"trace"' not in text, "span trees must not bloat the journal"


def test_untraced_batch_records_no_spans(ann_cache):
    report, metrics = run(make_jobs(designs=SMALL[:1]), "processes",
                          ann_cache, retries=0)
    assert report.counts()["ok"] == 1
    assert metrics.counter("batch.spans_grafted").value == 0
