"""End-to-end coverage of the ``repro batch`` command line.

Drives :func:`repro.cli.main` in-process through the happy path, resume,
``--check`` verification, fault injection, snapshot/trace export, and
every documented non-zero exit code.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.obs.export import BENCH_SCHEMA, TRACE_SCHEMA

from tests.batch.util import DEPTH, SMALL


def batch(tmp_path, ann_cache, *extra, designs=SMALL):
    return main(
        [
            "batch", *designs,
            "--backend", "serial",
            "--depth", str(DEPTH),
            "--output-dir", str(tmp_path / "out"),
            "--cache-dir", ann_cache,
            "--backoff", "0.01",
            *extra,
        ]
    )


class TestHappyPath:
    def test_run_then_check_passes(self, tmp_path, ann_cache, capsys):
        assert batch(tmp_path, ann_cache) == 0
        out = capsys.readouterr().out
        assert "batch: 2 job(s)" in out
        assert "ok=2" in out
        outdir = tmp_path / "out"
        assert (outdir / "batch_journal.jsonl").exists()
        for design in SMALL:
            assert (outdir / f"{design}__CMOS3.blif").exists()

        assert batch(tmp_path, ann_cache, "--check") == 0
        assert "batch check passed" in capsys.readouterr().out

    def test_resume_skips_journalled_jobs(self, tmp_path, ann_cache, capsys):
        assert batch(tmp_path, ann_cache) == 0
        capsys.readouterr()
        assert batch(tmp_path, ann_cache, "--resume") == 0
        out = capsys.readouterr().out
        assert out.count("resumed from journal") == 2
        assert "skipped=2" in out

    def test_bench_snapshot_and_trace_export(self, tmp_path, ann_cache, capsys):
        snapshot = tmp_path / "snap.json"
        trace = tmp_path / "trace.json"
        code = batch(
            tmp_path, ann_cache,
            "--verify",
            "--bench-snapshot", str(snapshot),
            "--trace", str(trace),
            "--metrics",
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "metrics:" in out and "batch.jobs_ok" in out

        snap = json.loads(snapshot.read_text())
        assert snap["schema"] == BENCH_SCHEMA
        assert snap["library"] == "CMOS3"
        assert snap["batch_backend"] == "serial"
        assert set(snap["benchmarks"]) == set(SMALL)
        for row in snap["benchmarks"].values():
            assert row["verify"]["ok"] is True

        payload = json.loads(trace.read_text())
        assert payload["schema"] == TRACE_SCHEMA
        roots = [s["name"] for s in payload["spans"]]
        assert "batch" in roots

    def test_sync_mode_maps_the_burst_mode_flow(self, tmp_path, ann_cache):
        assert batch(
            tmp_path, ann_cache, "--sync", designs=(SMALL[0],)
        ) == 0
        assert (tmp_path / "out" / f"{SMALL[0]}__CMOS3_sync.blif").exists()


class TestFaultsAndFailures:
    def test_injected_transient_fault_retries_to_success(
        self, tmp_path, ann_cache, capsys
    ):
        code = batch(
            tmp_path, ann_cache,
            "--retries", "2",
            "--inject", f"raise@cover.cone#{SMALL[0]}",
        )
        assert code == 0
        assert "(2 attempts)" in capsys.readouterr().out

    def test_persistent_fault_exits_nonzero(self, tmp_path, ann_cache, capsys):
        code = batch(
            tmp_path, ann_cache,
            "--retries", "1",
            "--inject", f"raise@cover.cone#{SMALL[0]}*9",
        )
        assert code == 1
        captured = capsys.readouterr()
        assert f"FAILED {SMALL[0]}@CMOS3" in captured.err
        # The journal still verifies the job that did succeed and
        # reports the failed one.
        code = batch(tmp_path, ann_cache, "--check")
        assert code == 1
        assert "status failed" in capsys.readouterr().out

    def test_deadline_fallback_is_reported(self, tmp_path, ann_cache, capsys):
        code = batch(
            tmp_path, ann_cache,
            "--deadline", "0.5",
            "--inject", f"hang@cover.cone#{SMALL[0]}",
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "deadline fallback: trivial-cover" in out
        assert "fallback=1" in out

    def test_tampered_artifact_fails_check(self, tmp_path, ann_cache, capsys):
        assert batch(tmp_path, ann_cache) == 0
        artifact = tmp_path / "out" / f"{SMALL[0]}__CMOS3.blif"
        artifact.write_text(artifact.read_text() + "# tampered\n")
        capsys.readouterr()
        assert batch(tmp_path, ann_cache, "--check") == 1
        out = capsys.readouterr().out
        assert "batch check FAILED" in out and "does not hash" in out


class TestBadUsage:
    def test_unknown_design_exits_2(self, tmp_path, ann_cache, capsys):
        assert batch(tmp_path, ann_cache, designs=("no-such-design",)) == 2
        assert "unknown benchmark" in capsys.readouterr().err

    def test_bad_inject_spec_exits_2(self, tmp_path, ann_cache, capsys):
        assert batch(tmp_path, ann_cache, "--inject", "nonsense") == 2
        assert "bad --inject spec" in capsys.readouterr().err

    def test_check_without_journal_exits_2(self, ann_cache, capsys):
        code = main(["batch", *SMALL, "--check", "--cache-dir", ann_cache])
        assert code == 2
        assert "--check needs" in capsys.readouterr().err

    def test_check_missing_journal_file_exits_1(
        self, tmp_path, ann_cache, capsys
    ):
        code = batch(tmp_path, ann_cache, "--check")
        assert code == 1
        assert "journal check FAILED" in capsys.readouterr().err
