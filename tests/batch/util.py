"""Shared helpers for the batch-engine test-suite.

All batch tests map at :data:`DEPTH` = 3: catalog-scale quality numbers
at the paper's depth 5 are the perf suite's job, and depth 3 keeps the
full 11-design catalog near one second per library on the CI box while
still exercising the identical engine/worker code paths.
"""

from __future__ import annotations

from repro.batch import BatchConfig, BatchJob, BatchReport, run_batch
from repro.obs.metrics import MetricsRegistry

SMALL = ("chu-ad-opt", "vanbek-opt")
DEPTH = 3


def make_jobs(
    designs=SMALL, library: str = "CMOS3", **overrides
) -> list[BatchJob]:
    overrides.setdefault("max_depth", DEPTH)
    return [
        BatchJob(design=design, library=library, **overrides)
        for design in designs
    ]


def by_id(report: BatchReport, job_id: str) -> dict:
    for record in report.results:
        if record["job_id"] == job_id:
            return record
    raise AssertionError(f"{job_id} not in report: "
                         f"{[r['job_id'] for r in report.results]}")


def run(jobs, backend: str, ann_cache, **overrides):
    """Run a batch with test-friendly defaults; returns (report, metrics)."""
    metrics = MetricsRegistry()
    overrides.setdefault("workers", 2)
    overrides.setdefault("backoff", 0.01)
    config = BatchConfig(
        backend=backend, cache_dir=ann_cache, metrics=metrics, **overrides
    )
    return run_batch(jobs, config), metrics
