"""Regression lock on the coordinator's SHA-256 result verification.

The batch engine only accepts a worker payload whose BLIF text hashes
to the digest computed before transit; these tests pin that contract
directly at the worker level and through the engine's retry machinery.
"""

from __future__ import annotations

import pytest

from repro.api.facade import text_digest
from repro.batch import BatchConfig, run_batch
from repro.batch.jobs import execute_job
from repro.library import anncache
from repro.obs.metrics import MetricsRegistry
from repro.testing.faults import FaultPlan

from tests.batch.util import SMALL, by_id, make_jobs


class TestWorkerPayload:
    def test_clean_payload_digest_matches(self):
        job = make_jobs(designs=SMALL[:1])[0]
        payload = execute_job(job, cache_dir=anncache.DISABLED)
        assert payload["digest"] == text_digest(payload["blif"])
        assert len(payload["digest"]) == 64  # full SHA-256 hex

    def test_corrupt_fault_breaks_the_digest(self):
        """The tamper happens *after* digest computation — exactly what
        the coordinator's verification exists to catch."""
        job = make_jobs(designs=SMALL[:1])[0]
        plan = FaultPlan.parse([f"corrupt@netlist.build#{job.job_id}"])
        payload = execute_job(
            job, fault_plan=plan, cache_dir=anncache.DISABLED
        )
        assert payload["digest"] != text_digest(payload["blif"])

    def test_digest_is_sha256_of_blif_text(self):
        import hashlib

        job = make_jobs(designs=SMALL[:1])[0]
        payload = execute_job(job, cache_dir=anncache.DISABLED)
        expected = hashlib.sha256(payload["blif"].encode()).hexdigest()
        assert payload["digest"] == expected


class TestCoordinatorVerification:
    def _run(self, retries: int, times: str = ""):
        jobs = make_jobs(designs=SMALL[:1])
        plan = FaultPlan.parse(
            [f"corrupt@netlist.build#{jobs[0].job_id}{times}"]
        )
        metrics = MetricsRegistry()
        config = BatchConfig(
            backend="serial",
            retries=retries,
            backoff=0.01,
            cache_dir=anncache.DISABLED,
            fault_plan=plan,
            metrics=metrics,
        )
        return run_batch(jobs, config), metrics, jobs[0].job_id

    def test_corrupted_result_fails_without_retries(self):
        report, metrics, job_id = self._run(retries=0)
        record = by_id(report, job_id)
        assert record["status"] == "failed"
        assert "corrupted result digest" in record["error"]
        assert metrics.counter("batch.corrupt_results").value == 1

    def test_corruption_is_retried_to_a_clean_result(self):
        report, metrics, job_id = self._run(retries=2)
        record = by_id(report, job_id)
        assert record["status"] == "ok"
        assert record["attempts"] == 2
        assert text_digest(record["blif"]) == record["digest"]
        assert metrics.counter("batch.corrupt_results").value == 1

    def test_persistent_corruption_exhausts_retries(self):
        report, metrics, job_id = self._run(retries=1, times="*9")
        record = by_id(report, job_id)
        assert record["status"] == "failed"
        assert "attempts exhausted" in record["error"]
        assert metrics.counter("batch.corrupt_results").value == 2
