"""Checkpoint-journal and resume semantics, including a real kill.

The centrepiece kills an actual ``repro batch`` subprocess with
``SIGKILL`` mid-catalog and resumes from its journal, proving that:

* every job journalled before the kill is *skipped* on resume (no job
  runs twice — each completed job has exactly one ``result`` record);
* a torn final line (the killed-writer signature) is tolerated on read
  and repaired before the resumed run appends;
* the finished journal passes :func:`repro.batch.validate_journal` and
  every artifact hashes to its journalled digest.

The rest covers the forgery guards: tampered artifacts and edited
digests force a re-run, changed job specs are never smuggled past the
header's job table, and malformed journals fail loudly.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.batch import (
    BatchConfig,
    BatchConfigError,
    check_artifacts,
    file_digest,
    read_journal,
    run_batch,
    validate_journal,
)
from repro.batch.journal import JournalError, JournalWriter
from repro.burstmode.benchmarks import TABLE5_ORDER

from tests.batch.util import DEPTH, SMALL, by_id, make_jobs, run

REPO = Path(__file__).resolve().parents[2]


def result_lines(journal: Path) -> list[dict]:
    """Every parseable ``result`` record, in file order."""
    records = []
    for line in journal.read_text().splitlines():
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            continue  # torn tail
        if record.get("kind") == "result":
            records.append(record)
    return records


class TestKillAndResume:
    def test_sigkill_mid_catalog_then_resume(self, tmp_path, ann_cache):
        outdir = tmp_path / "out"
        journal = outdir / "batch_journal.jsonl"
        code = "import sys; from repro.cli import main; sys.exit(main(sys.argv[1:]))"
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO / "src") + os.pathsep + env.get(
            "PYTHONPATH", ""
        )
        proc = subprocess.Popen(
            [
                sys.executable, "-c", code,
                "batch", "--backend", "serial", "--depth", str(DEPTH),
                "--libraries", "CMOS3",
                "--output-dir", str(outdir),
                "--cache-dir", ann_cache,
            ],
            env=env,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        try:
            # Wait for a prefix of the catalog to be journalled, then
            # kill the engine without any chance to clean up.
            give_up = time.monotonic() + 120
            while time.monotonic() < give_up:
                if proc.poll() is not None:
                    break
                if journal.exists() and len(result_lines(journal)) >= 3:
                    break
                time.sleep(0.02)
            else:
                pytest.fail("subprocess never journalled three results")
        finally:
            if proc.poll() is None:
                proc.send_signal(signal.SIGKILL)
            proc.wait()

        completed = result_lines(journal)
        assert completed, "nothing was journalled before the kill"
        assert all(r["status"] == "ok" for r in completed)
        survivors = {r["job_id"] for r in completed}

        jobs = make_jobs(TABLE5_ORDER)
        report = run_batch(
            jobs,
            BatchConfig(
                backend="serial",
                journal=str(journal),
                output_dir=str(outdir),
                resume=True,
                cache_dir=ann_cache,
            ),
        )
        assert report.ok
        assert report.skipped == len(survivors)
        for job_id in survivors:
            assert by_id(report, job_id).get("skipped") is True

        # No job ran twice: one result record per pre-kill job, and the
        # repaired journal now parses end to end.
        final = result_lines(journal)
        per_job = {}
        for record in final:
            per_job[record["job_id"]] = per_job.get(record["job_id"], 0) + 1
        assert all(per_job[job_id] == 1 for job_id in survivors)
        assert sorted(per_job) == sorted(job.job_id for job in jobs)
        for line in journal.read_text().splitlines():
            json.loads(line)

        header, results = validate_journal(journal)
        assert len(results) == len(jobs)
        assert check_artifacts(results, outdir) == []


class TestResume:
    def test_resume_skips_verified_jobs_and_runs_new_ones(
        self, tmp_path, ann_cache
    ):
        journal = tmp_path / "journal.jsonl"
        first, _ = run(
            make_jobs(SMALL), "serial", ann_cache,
            journal=journal, output_dir=tmp_path,
        )
        assert first.ok and first.skipped == 0

        jobs = make_jobs((*SMALL, "dme-opt"))
        second, metrics = run(
            jobs, "serial", ann_cache,
            journal=journal, output_dir=tmp_path, resume=True,
        )
        assert second.ok
        assert second.skipped == 2
        assert metrics.counter("batch.jobs_skipped").value == 2
        assert by_id(second, "dme-opt@CMOS3").get("skipped") is None
        # Skipped results replay the journalled digest verbatim.
        assert (
            by_id(second, f"{SMALL[0]}@CMOS3")["digest"]
            == by_id(first, f"{SMALL[0]}@CMOS3")["digest"]
        )
        marker = [
            json.loads(line)
            for line in journal.read_text().splitlines()
            if '"kind":"resume"' in line
        ]
        assert marker and marker[0]["skipped"] == 2 and marker[0]["rerun"] == 1

    def test_changed_spec_forces_rerun_and_is_never_smuggled(
        self, tmp_path, ann_cache
    ):
        journal = tmp_path / "journal.jsonl"
        run(
            make_jobs(SMALL), "serial", ann_cache,
            journal=journal, output_dir=tmp_path,
        )
        # Same designs, different mapping options: different spec digest.
        changed = make_jobs(SMALL, max_depth=2)
        report, _ = run(
            changed, "serial", ann_cache,
            journal=journal, output_dir=tmp_path, resume=True,
        )
        assert report.ok and report.skipped == 0
        # The journal now mixes specs that contradict its header's job
        # table — the validator refuses to bless it.
        with pytest.raises(JournalError, match="spec digest"):
            validate_journal(journal)

    def test_tampered_artifact_is_rerun_and_repaired(self, tmp_path, ann_cache):
        journal = tmp_path / "journal.jsonl"
        run(
            make_jobs(SMALL), "serial", ann_cache,
            journal=journal, output_dir=tmp_path,
        )
        _, results = validate_journal(journal)
        target = f"{SMALL[0]}@CMOS3"
        artifact = tmp_path / results[target]["artifact"]
        artifact.write_text(artifact.read_text() + "# tampered\n")
        problems = check_artifacts(results, tmp_path)
        assert len(problems) == 1 and "does not hash" in problems[0]

        report, _ = run(
            make_jobs(SMALL), "serial", ann_cache,
            journal=journal, output_dir=tmp_path, resume=True,
        )
        assert report.ok
        assert report.skipped == 1  # only the untampered neighbour
        counts = {}
        for record in result_lines(journal):
            counts[record["job_id"]] = counts.get(record["job_id"], 0) + 1
        assert counts[target] == 2
        assert counts[f"{SMALL[1]}@CMOS3"] == 1
        _, fresh = validate_journal(journal)
        assert check_artifacts(fresh, tmp_path) == []
        assert file_digest(artifact) == fresh[target]["digest"]

    def test_edited_digest_in_journal_forces_rerun(self, tmp_path, ann_cache):
        journal = tmp_path / "journal.jsonl"
        run(
            make_jobs(SMALL), "serial", ann_cache,
            journal=journal, output_dir=tmp_path,
        )
        target = f"{SMALL[0]}@CMOS3"
        lines = journal.read_text().splitlines()
        edited = []
        for line in lines:
            record = json.loads(line)
            if record.get("kind") == "result" and record["job_id"] == target:
                record["digest"] = "0" * 64
                line = json.dumps(record, sort_keys=True, separators=(",", ":"))
            edited.append(line)
        journal.write_text("\n".join(edited) + "\n")

        # The forged digest no longer matches the artifact, so --check
        # flags it and resume re-runs exactly that job.
        _, results = validate_journal(journal)
        assert any("does not hash" in p for p in check_artifacts(results, tmp_path))
        report, _ = run(
            make_jobs(SMALL), "serial", ann_cache,
            journal=journal, output_dir=tmp_path, resume=True,
        )
        assert report.ok and report.skipped == 1
        _, fresh = validate_journal(journal)
        assert check_artifacts(fresh, tmp_path) == []


class TestJournalFormat:
    def test_torn_tail_is_tolerated_and_repaired(self, tmp_path, ann_cache):
        journal = tmp_path / "journal.jsonl"
        run(
            make_jobs((SMALL[0],)), "serial", ann_cache,
            journal=journal, output_dir=tmp_path,
        )
        with open(journal, "a", encoding="utf-8") as handle:
            handle.write('{"kind":"result","job_id":"half-wri')
        header, results = read_journal(journal)  # tolerated
        assert f"{SMALL[0]}@CMOS3" in results

        writer = JournalWriter(journal)
        dropped = writer.repair_tail()
        assert dropped > 0
        assert writer.repair_tail() == 0  # idempotent on a clean file
        for line in journal.read_text().splitlines():
            json.loads(line)

    def test_mid_file_garbage_raises(self, tmp_path, ann_cache):
        journal = tmp_path / "journal.jsonl"
        run(
            make_jobs(SMALL), "serial", ann_cache,
            journal=journal, output_dir=tmp_path,
        )
        lines = journal.read_text().splitlines()
        lines.insert(1, "this is not JSON")
        journal.write_text("\n".join(lines) + "\n")
        with pytest.raises(JournalError, match="malformed journal line 2"):
            read_journal(journal)

    def test_missing_header_raises(self, tmp_path):
        journal = tmp_path / "journal.jsonl"
        journal.write_text(
            '{"kind":"result","job_id":"a@L","spec":"x","status":"ok",'
            '"digest":"d"}\n'
        )
        with pytest.raises(JournalError, match="header"):
            read_journal(journal)

    def test_wrong_schema_raises(self, tmp_path):
        journal = tmp_path / "journal.jsonl"
        journal.write_text('{"kind":"header","schema":"repro-batch/v99"}\n')
        with pytest.raises(JournalError, match="schema"):
            read_journal(journal)

    def test_writer_rejects_malformed_results(self, tmp_path):
        writer = JournalWriter(tmp_path / "j.jsonl")
        with pytest.raises(JournalError, match="status"):
            writer.write_result({"job_id": "a@L", "spec": "x", "status": "meh"})
        with pytest.raises(JournalError, match="job_id"):
            writer.write_result({"status": "ok"})

    def test_duplicate_job_ids_are_rejected(self, ann_cache):
        jobs = make_jobs((SMALL[0], SMALL[0]))
        with pytest.raises(BatchConfigError, match="duplicate job ids"):
            run(jobs, "serial", ann_cache)
