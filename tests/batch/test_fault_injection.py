"""Fault-injection proof of the batch engine's robustness guarantees.

Every claim the engine makes — transient faults are retried with
exponential backoff, hangs degrade to the trivial cover at the
deadline, corrupted results are caught by digest verification, a dead
worker process is isolated without poisoning its neighbours — is
demonstrated here by injecting the corresponding fault through
:mod:`repro.testing.faults` and asserting the engine's observable
behaviour (statuses, attempt counts, backoff schedules, ``batch.*``
metrics) on all three backends.

Fault plans are keyed on (job id, attempt number), so the same plan
replays identically on the ``serial``, ``threads``, and ``processes``
backends — which the determinism test pins down explicitly.
"""

from __future__ import annotations

import pickle
import time

import pytest

from repro.batch import text_digest
from repro.deadline import Deadline, DeadlineExceeded, checked_sleep
from repro.testing import faults
from repro.testing.faults import FaultInjected, FaultPlan, FaultSpec

from tests.batch.util import SMALL, by_id, make_jobs, run

BACKENDS = ("serial", "threads", "processes")
CHU = f"{SMALL[0]}@CMOS3"
VAN = f"{SMALL[1]}@CMOS3"


@pytest.fixture(autouse=True)
def _clean_plan():
    yield
    faults.clear_plan()


class TestFaultPrimitives:
    """The injection machinery itself (no mapping involved)."""

    def test_spec_rejects_unknown_kind_and_bad_window(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultSpec(site="cover.cone", kind="explode")
        with pytest.raises(ValueError, match="times"):
            FaultSpec(site="cover.cone", times=0)

    def test_spec_attempt_window(self):
        spec = FaultSpec(site="cover.cone", job="chu", times=2, after=1)
        assert not spec.matches("cover.cone", "chu-ad-opt@CMOS3", 1)
        assert spec.matches("cover.cone", "chu-ad-opt@CMOS3", 2)
        assert spec.matches("cover.cone", "chu-ad-opt@CMOS3", 3)
        assert not spec.matches("cover.cone", "chu-ad-opt@CMOS3", 4)
        assert not spec.matches("cover.cone", "vanbek-opt@CMOS3", 2)
        assert not spec.matches("netlist.build", "chu-ad-opt@CMOS3", 2)

    def test_plan_parse_round_trip(self):
        plan = FaultPlan.parse(
            ["raise@cover.cone#chu-ad-opt*2", "corrupt@netlist.build"]
        )
        first, second = plan.faults
        assert (first.kind, first.site, first.job, first.times) == (
            "raise", "cover.cone", "chu-ad-opt", 2
        )
        assert (second.kind, second.site, second.job, second.times) == (
            "corrupt", "netlist.build", None, 1
        )
        assert plan.for_site("cover.cone") == (first,)

    def test_plan_parse_rejects_malformed_specs(self):
        with pytest.raises(ValueError, match="expected KIND@SITE"):
            FaultPlan.parse(["nonsense"])
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultPlan.parse(["frobnicate@cover.cone"])

    def test_fire_without_plan_is_a_no_op(self):
        faults.clear_plan()
        faults.fire("cover.cone")
        assert faults.corrupt("netlist.build", "text") == "text"
        assert faults.active_plan() is None

    def test_spec_fires_at_most_once_per_attempt(self):
        plan = FaultPlan((FaultSpec(site="cover.cone"),))
        faults.install_plan(plan, job="j@L", attempt=1)
        with pytest.raises(FaultInjected):
            faults.fire("cover.cone")
        faults.fire("cover.cone")  # second visit in the same attempt
        # A fresh install (new attempt) re-arms it — but attempt 2 is
        # outside the spec's default times=1 window, so it stays quiet.
        faults.install_plan(plan, job="j@L", attempt=2)
        faults.fire("cover.cone")

    def test_corrupt_changes_digest_deterministically(self):
        plan = FaultPlan((FaultSpec(site="netlist.build", kind="corrupt"),))
        faults.install_plan(plan, job="j@L", attempt=1)
        torn = faults.corrupt("netlist.build", "payload")
        assert torn != "payload"
        assert text_digest(torn) != text_digest("payload")
        faults.install_plan(plan, job="j@L", attempt=1)
        assert faults.corrupt("netlist.build", "payload") == torn

    def test_plans_are_thread_local(self):
        """Regression: a process-global runtime let one thread-pool job's
        install clobber another's mid-flight, silently disarming faults
        on the threads backend."""
        import threading

        plan = FaultPlan((FaultSpec(site="cover.cone", job="mine"),))
        faults.install_plan(plan, job="mine@L", attempt=1)
        seen = {}

        def other_thread():
            # This thread has no plan of its own ...
            seen["before"] = faults.active_plan()
            # ... and installing one must not disturb the main thread's.
            faults.install_plan(
                FaultPlan((FaultSpec(site="cover.cone", job="other"),)),
                job="other@L",
                attempt=1,
            )
            try:
                faults.fire("cover.cone")
            except FaultInjected:
                seen["fired"] = True

        worker = threading.Thread(target=other_thread)
        worker.start()
        worker.join()
        assert seen["before"] is None
        assert seen["fired"] is True
        assert faults.active_plan() is plan
        with pytest.raises(FaultInjected):
            faults.fire("cover.cone")

    def test_exceptions_survive_pickling(self):
        """Regression: a mismatched args/__init__ pair fails to unpickle
        in the process pool's result thread and breaks the entire pool."""
        for exc in (FaultInjected("cover.cone", "boom"),
                    DeadlineExceeded("cover.cone", 1.5)):
            clone = pickle.loads(pickle.dumps(exc))
            assert type(clone) is type(exc)
            assert str(clone) == str(exc)
            assert clone.args == exc.args


class TestDeadline:
    def test_rejects_non_positive_budget(self):
        with pytest.raises(ValueError):
            Deadline(0)

    def test_check_raises_with_site_after_expiry(self):
        deadline = Deadline(0.01)
        deadline.check("early")  # inside the budget: no raise
        time.sleep(0.02)
        assert deadline.expired()
        with pytest.raises(DeadlineExceeded) as err:
            deadline.check("cover.cone")
        assert err.value.site == "cover.cone"

    def test_sleep_is_cut_short_at_the_deadline(self):
        deadline = Deadline(0.05)
        started = time.monotonic()
        with pytest.raises(DeadlineExceeded):
            deadline.sleep(30.0, site="hang")
        assert time.monotonic() - started < 1.0

    def test_checked_sleep_without_deadline_sleeps_plainly(self):
        started = time.monotonic()
        checked_sleep(0.01, None)
        assert time.monotonic() - started >= 0.009


@pytest.mark.parametrize("backend", BACKENDS)
class TestRetryAndDegradation:
    def test_transient_fault_is_retried_with_backoff(self, backend, ann_cache):
        plan = FaultPlan.parse([f"raise@cover.cone#{SMALL[0]}"])
        report, metrics = run(
            make_jobs(), backend, ann_cache, retries=2, fault_plan=plan
        )
        assert report.ok
        chu, van = by_id(report, CHU), by_id(report, VAN)
        assert chu["attempts"] == 2
        assert chu["backoff_seconds"] == [0.01]
        assert van["attempts"] == 1 and van["backoff_seconds"] == []
        assert metrics.counter("batch.retries").value == 1
        assert metrics.counter("batch.jobs_ok").value == 2

    def test_backoff_grows_exponentially(self, backend, ann_cache):
        plan = FaultPlan.parse([f"raise@cover.cone#{SMALL[0]}*2"])
        report, _ = run(
            make_jobs(), backend, ann_cache, retries=3, fault_plan=plan
        )
        chu = by_id(report, CHU)
        assert chu["status"] == "ok" and chu["attempts"] == 3
        assert chu["backoff_seconds"] == [0.01, 0.02]

    def test_persistent_fault_exhausts_the_retry_budget(
        self, backend, ann_cache
    ):
        plan = FaultPlan.parse([f"raise@cover.cone#{SMALL[0]}*9"])
        report, metrics = run(
            make_jobs(), backend, ann_cache, retries=1, fault_plan=plan
        )
        chu, van = by_id(report, CHU), by_id(report, VAN)
        assert chu["status"] == "failed"
        assert chu["attempts"] == 2
        assert "attempts exhausted" in chu["error"]
        assert van["status"] == "ok"  # the neighbour is untouched
        assert not report.ok
        assert report.counts()["failed"] == 1
        assert metrics.counter("batch.jobs_failed").value == 1

    def test_hang_degrades_to_trivial_cover_at_the_deadline(
        self, backend, ann_cache
    ):
        plan = FaultPlan.parse([f"hang@cover.cone#{SMALL[0]}"])
        started = time.monotonic()
        report, metrics = run(
            make_jobs(),
            backend,
            ann_cache,
            deadline=0.5,
            retries=1,
            fault_plan=plan,
        )
        # The injected 30s hang must have been cut at the 0.5s deadline.
        assert time.monotonic() - started < 15.0
        chu, van = by_id(report, CHU), by_id(report, VAN)
        assert report.ok
        assert chu["fallback"] == "trivial-cover"
        assert chu["deadline_site"] == "cover.cone"
        assert chu["attempts"] == 1  # degradation, not retry
        assert van.get("fallback") is None
        assert metrics.counter("batch.jobs_fallback").value == 1
        assert metrics.counter("batch.deadline_hits").value == 1
        # The fallback result is a real mapped netlist with a true digest.
        assert chu["blif"].strip() and text_digest(chu["blif"]) == chu["digest"]

    def test_corrupted_result_is_caught_and_retried(self, backend, ann_cache):
        plan = FaultPlan.parse([f"corrupt@netlist.build#{SMALL[0]}"])
        report, metrics = run(
            make_jobs(), backend, ann_cache, retries=2, fault_plan=plan
        )
        assert report.ok
        chu = by_id(report, CHU)
        assert chu["attempts"] == 2
        assert text_digest(chu["blif"]) == chu["digest"]
        assert "torn-by-fault" not in chu["blif"]
        assert metrics.counter("batch.corrupt_results").value == 1

    def test_corruption_every_attempt_fails_closed(self, backend, ann_cache):
        """A result that never verifies must not be reported as ok."""
        plan = FaultPlan.parse([f"corrupt@netlist.build#{SMALL[0]}*9"])
        report, _ = run(
            make_jobs((SMALL[0],)), backend, ann_cache, retries=1,
            fault_plan=plan,
        )
        chu = by_id(report, CHU)
        assert chu["status"] == "failed"
        assert "corrupted result digest" in chu["error"]


class TestHangSites:
    """Deadline coverage of the other two instrumented sites (serial)."""

    @pytest.mark.parametrize("site", ["annotate.library", "netlist.build"])
    def test_deadline_site_names_the_checkpoint(self, site, ann_cache):
        plan = FaultPlan.parse([f"hang@{site}#{SMALL[0]}"])
        report, _ = run(
            make_jobs((SMALL[0],)), "serial", ann_cache,
            deadline=0.4, fault_plan=plan,
        )
        chu = by_id(report, CHU)
        assert chu["status"] == "ok"
        assert chu["fallback"] == "trivial-cover"
        assert chu["deadline_site"] == site


class TestDeterminism:
    def test_same_plan_same_outcome_on_every_backend(self, ann_cache):
        plan = FaultPlan.parse(
            [f"raise@cover.cone#{SMALL[0]}", f"corrupt@netlist.build#{SMALL[1]}"]
        )
        outcomes = []
        for backend in BACKENDS:
            report, _ = run(
                make_jobs(), backend, ann_cache, retries=2, fault_plan=plan
            )
            outcomes.append(
                [
                    (r["job_id"], r["status"], r["attempts"], r["digest"])
                    for r in report.results
                ]
            )
        assert outcomes[0] == outcomes[1] == outcomes[2]


class TestCrashIsolation:
    """Process-backend only: a crash fault ``os._exit``\\ s the worker."""

    def test_transient_crash_breaks_the_pool_once_and_recovers(
        self, ann_cache
    ):
        plan = FaultPlan.parse([f"crash@cover.cone#{SMALL[0]}"])
        report, metrics = run(
            make_jobs(), "processes", ann_cache, retries=1, fault_plan=plan
        )
        assert report.ok
        chu, van = by_id(report, CHU), by_id(report, VAN)
        # The culprit burnt one attempt identifying itself; the innocent
        # neighbour was re-run at its original attempt number.
        assert chu["attempts"] == 2
        assert van["attempts"] == 1
        assert report.pool_breaks >= 1
        assert metrics.counter("batch.pool_breaks").value == report.pool_breaks

    def test_persistent_crasher_fails_alone(self, ann_cache):
        plan = FaultPlan.parse([f"crash@cover.cone#{SMALL[0]}*9"])
        report, _ = run(
            make_jobs(), "processes", ann_cache, retries=1, fault_plan=plan
        )
        chu, van = by_id(report, CHU), by_id(report, VAN)
        assert chu["status"] == "crashed"
        assert chu["attempts"] == 2
        assert "worker process died" in chu["error"]
        assert van["status"] == "ok" and van["attempts"] == 1
        assert report.pool_breaks >= 2
        assert report.counts()["crashed"] == 1
