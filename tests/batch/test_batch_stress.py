"""Catalog-scale determinism: the batch engine vs sequential mapping.

The ISSUE's headline acceptance criterion: every netlist produced by
``repro batch`` on the process backend over the full benchmark catalog
must be **byte-identical** to a sequential
:func:`repro.mapping.map_network` run of the same (design, library,
options) spec — and identical again across backends and worker counts.
"""

from __future__ import annotations

import pytest

from repro.batch import BatchConfig, run_batch, text_digest, validate_journal
from repro.batch import check_artifacts
from repro.batch.jobs import netlist_blif
from repro.burstmode.benchmarks import TABLE5_ORDER
from repro.library.standard import load_library
from repro.mapping import MappingOptions, map_network

from tests.batch.util import DEPTH, make_jobs

LIBRARIES = ("CMOS3", "ACTEL")
SUBSET = ("chu-ad-opt", "vanbek-opt", "dme-opt")


@pytest.fixture(scope="module")
def references(ann_cache) -> dict[str, str]:
    """Sequential ``map_network`` BLIF text for every (design, library)."""
    refs = {}
    for library_name in LIBRARIES:
        library = load_library(library_name)
        for design in TABLE5_ORDER:
            options = MappingOptions(
                max_depth=DEPTH, annotation_cache_dir=ann_cache
            )
            result = map_network(design, library, options)
            refs[f"{design}@{library_name}"] = netlist_blif(result.mapped)
    return refs


class TestFullCatalog:
    def test_process_backend_is_byte_identical_to_sequential(
        self, references, tmp_path, ann_cache
    ):
        jobs = [
            job
            for library in LIBRARIES
            for job in make_jobs(TABLE5_ORDER, library=library)
        ]
        report = run_batch(
            jobs,
            BatchConfig(
                backend="processes",
                workers=2,
                cache_dir=ann_cache,
                journal=tmp_path / "journal.jsonl",
                output_dir=tmp_path,
            ),
        )
        assert report.ok
        assert report.counts()["ok"] == len(jobs) == 2 * len(TABLE5_ORDER)
        # Results come back in job-spec order regardless of completion
        # order on the pool.
        assert [r["job_id"] for r in report.results] == [
            j.job_id for j in jobs
        ]
        for record in report.results:
            assert record["blif"] == references[record["job_id"]]
            assert record["digest"] == text_digest(record["blif"])
            assert record["attempts"] == 1
            # Artifacts on disk are the same bytes.
            artifact = tmp_path / record["artifact"]
            assert artifact.read_text() == record["blif"]
        _, results = validate_journal(tmp_path / "journal.jsonl")
        assert len(results) == len(jobs)
        assert check_artifacts(results, tmp_path) == []

    def test_catalog_quality_stats_survive_the_batch_hop(
        self, references, ann_cache
    ):
        """Spot-check that per-job stats are the sequential ones."""
        library = load_library("CMOS3")
        options = MappingOptions(max_depth=DEPTH, annotation_cache_dir=ann_cache)
        sequential = map_network("chu-ad-opt", library, options)
        report = run_batch(
            make_jobs(("chu-ad-opt",)),
            BatchConfig(backend="processes", cache_dir=ann_cache),
        )
        record = report.results[0]
        assert record["area"] == sequential.area
        assert record["delay"] == round(sequential.delay, 4)
        assert record["cells"] == sum(sequential.cell_usage().values())
        assert record["cones"] == sequential.stats.cones


class TestCrossBackendIdentity:
    @pytest.mark.parametrize(
        "backend,workers",
        [("serial", 1), ("threads", 1), ("threads", 4), ("processes", 4)],
    )
    def test_backend_and_worker_count_never_change_bytes(
        self, references, ann_cache, backend, workers
    ):
        jobs = [
            job
            for library in LIBRARIES
            for job in make_jobs(SUBSET, library=library)
        ]
        report = run_batch(
            jobs,
            BatchConfig(backend=backend, workers=workers, cache_dir=ann_cache),
        )
        assert report.ok
        assert report.backend == backend and report.workers == workers
        for record in report.results:
            assert record["blif"] == references[record["job_id"]], (
                f"{record['job_id']} diverged on {backend}/{workers}"
            )

    def test_verify_and_explain_ride_along(self, ann_cache):
        from repro.obs.explain import validate_explain_payload

        report = run_batch(
            make_jobs(SUBSET, verify=True, explain=True),
            BatchConfig(backend="processes", workers=2, cache_dir=ann_cache),
        )
        assert report.ok
        for record in report.results:
            assert record["verify"]["ok"] is True
            validate_explain_payload(record["explain"])
