"""Session fixtures for the batch tests."""

from __future__ import annotations

import pytest


@pytest.fixture(scope="session")
def ann_cache(tmp_path_factory) -> str:
    """A shared on-disk annotation cache.

    Warmed by whichever test annotates a library first, then replayed by
    every later test — including process-pool workers, which is exactly
    the multi-process read path the anncache lock protects.
    """
    return str(tmp_path_factory.mktemp("anncache"))
