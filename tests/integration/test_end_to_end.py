"""End-to-end integration: burst-mode spec → synthesis → mapping → proof.

This is the paper's complete story: a hazard-free technology-independent
design (section 2's front end) run through ``async_tmap`` yields an
implementation whose logic hazards are a subset of the source's
(Theorem 3.2) — in particular it stays hazard-free for every specified
input burst, which the synchronous mapper does *not* guarantee.
"""

import pytest

from repro.boolean.paths import label_expression
from repro.burstmode.benchmarks import synthesize_benchmark
from repro.hazards.oracle import classify_transition
from repro.library import cmos3, lsi9k, minimal_teaching_library
from repro.mapping.mapper import async_tmap, tmap
from repro.mapping.verify import verify_mapping

SMALL_BENCHMARKS = ["chu-ad-opt", "vanbek-opt", "dme", "dme-opt"]


@pytest.fixture(scope="module")
def mini():
    library = minimal_teaching_library()
    if not library.annotated:
        library.annotate_hazards()
    return library


class TestAsyncPipeline:
    @pytest.mark.parametrize("name", SMALL_BENCHMARKS)
    def test_mapped_network_is_equivalent_and_hazard_safe(self, name, mini):
        synthesis = synthesize_benchmark(name)
        net = synthesis.netlist(name)
        result = async_tmap(net, mini)
        report = verify_mapping(net, result.mapped)
        assert report.ok, (name, report.violations[:3])

    @pytest.mark.parametrize("name", SMALL_BENCHMARKS)
    def test_specified_transitions_stay_hazard_free_after_mapping(
        self, name, mini
    ):
        """The user-visible guarantee: every specified burst of the
        burst-mode machine is still glitch-free in the mapped gates."""
        synthesis = synthesize_benchmark(name)
        net = synthesis.netlist(name)
        result = async_tmap(net, mini)
        order = synthesis.variables
        for target in synthesis.equations:
            lsop = label_expression(result.mapped.collapse(target), order)
            for spec_t in synthesis.transitions[target]:
                verdict = classify_transition(lsop, spec_t.start, spec_t.end)
                assert not verdict.logic_hazard, (name, target, spec_t)

    def test_real_library_run(self):
        library = cmos3()
        if not library.annotated:
            library.annotate_hazards()
        synthesis = synthesize_benchmark("chu-ad-opt")
        net = synthesis.netlist("chu-ad-opt")
        result = async_tmap(net, library)
        report = verify_mapping(net, result.mapped)
        assert report.ok, report.violations[:3]
        assert result.area > 0


class TestSyncBaselineContrast:
    def test_sync_mapper_breaks_a_consensus_bearing_design(self, mini):
        """The paper's motivating observation (Figure 3): on a design
        whose hazard-free cover requires a redundant consensus cube,
        the synchronous flow introduces a logic hazard; the async flow
        never does."""
        from repro.network.netlist import Netlist

        net = Netlist.from_equations(
            {"f": "s*a + s'*b + a*b", "g": "x*c + x'*d + c*d"}
        )
        sync_report = verify_mapping(net, tmap(net, mini).mapped)
        async_report = verify_mapping(net, async_tmap(net, mini).mapped)
        assert async_report.ok
        assert sync_report.equivalent
        assert not sync_report.hazard_safe

    def test_async_never_breaks_the_benchmarks(self, mini):
        for name in SMALL_BENCHMARKS:
            synthesis = synthesize_benchmark(name)
            net = synthesis.netlist(name)
            async_report = verify_mapping(net, async_tmap(net, mini).mapped)
            assert async_report.ok, (name, async_report.violations[:3])

    def test_async_area_premium_is_bounded(self, mini):
        """The async cover pays for the hazard constraints, but only
        moderately (Table 3's ~13 % flavour)."""
        for name in SMALL_BENCHMARKS:
            synthesis = synthesize_benchmark(name)
            net = synthesis.netlist(name)
            sync_area = tmap(net, mini).area
            async_area = async_tmap(net, mini).area
            assert async_area <= 2.0 * sync_area


class TestLsiSmoke:
    def test_lsi_maps_a_midsize_controller(self):
        library = lsi9k()
        if not library.annotated:
            library.annotate_hazards()
        synthesis = synthesize_benchmark("dme-fast-opt")
        net = synthesis.netlist("dme-fast-opt")
        result = async_tmap(net, library)
        assert result.mapped.equivalent(net)
        assert result.stats.matches > 0
