"""Golden end-to-end snapshot of the async mapper on the full catalog.

Every burst-mode benchmark is mapped onto CMOS3 and its area, cell
counts, per-cell usage, and ``verify_mapping`` verdict are pinned to
``tests/data/golden_mappings.json``.  Any intentional mapper change
that alters results must regenerate the file::

    PYTHONPATH=src python tests/data/regen_golden_mappings.py

and justify the new numbers in the commit message.  An unintentional
diff here is a quality regression — exactly what this test exists to
catch before the perf gate does.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.burstmode.benchmarks import TABLE5_ORDER, synthesize_benchmark
from repro.hazards.cache import clear_global_cache
from repro.library.standard import load_library
from repro.mapping.mapper import MappingOptions, async_tmap
from repro.mapping.verify import verify_mapping

GOLDEN_PATH = Path(__file__).resolve().parent.parent / "data" / "golden_mappings.json"
GOLDEN = json.loads(GOLDEN_PATH.read_text())


@pytest.fixture(scope="module")
def cmos3():
    library = load_library(GOLDEN["library"])
    if not library.annotated:
        library.annotate_hazards()
    clear_global_cache()
    return library


def test_golden_file_covers_the_whole_catalog():
    assert sorted(GOLDEN["benchmarks"]) == sorted(TABLE5_ORDER)


@pytest.mark.parametrize("bench", TABLE5_ORDER)
def test_mapping_matches_golden(bench, cmos3):
    golden = GOLDEN["benchmarks"][bench]
    network = synthesize_benchmark(bench).netlist(bench)
    result = async_tmap(network, cmos3, MappingOptions())
    usage = {k: int(v) for k, v in sorted(result.cell_usage().items())}

    assert result.area == golden["area"], (
        f"{bench}: mapped area {result.area} != golden {golden['area']} — "
        "regenerate tests/data/golden_mappings.json if this is intentional"
    )
    assert int(sum(usage.values())) == golden["cells"]
    assert usage == golden["cell_usage"]

    report = verify_mapping(network, result.mapped)
    assert {
        "equivalent": bool(report.equivalent),
        "hazard_safe": bool(report.hazard_safe),
        "ok": bool(report.ok),
    } == golden["verify"]
