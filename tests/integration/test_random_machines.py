"""Property tests over randomly generated burst-mode machines.

Hypothesis builds arbitrary loop-composed burst-mode specifications;
for each we assert the full pipeline's guarantees:

* synthesis succeeds and every specified burst is provably glitch-free
  (event-lattice oracle) in the two-level equations;
* the synthesized network implements the machine (random-walk
  conformance against the golden interpreter);
* the async-mapped network stays functionally equivalent AND keeps
  every specified burst glitch-free.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.boolean.paths import label_expression
from repro.burstmode.benchmarks import build_loop_machine
from repro.burstmode.hfmin import HazardFreeError
from repro.burstmode.machine import conformance_check
from repro.burstmode.spec import SpecError
from repro.burstmode.synth import synthesize
from repro.hazards.oracle import classify_transition
from repro.library import minimal_teaching_library
from repro.mapping.mapper import async_tmap

INPUTS = ["p", "q", "r"]
OUTPUTS = ["u", "v"]


@st.composite
def loop_machines(draw):
    """Random valid loop machines over a small alphabet.

    Loop starters are the distinct singleton input bursts (an antichain
    by construction); each loop does its burst twice with a random
    output burst, guaranteeing even toggle counts.
    """
    num_loops = draw(st.integers(min_value=1, max_value=3))
    starters = draw(
        st.permutations(INPUTS).map(lambda p: list(p)[:num_loops])
    )
    loops = []
    for starter in starters:
        out_burst = draw(
            st.lists(st.sampled_from(OUTPUTS), unique=True, max_size=2)
        )
        mid_extra = draw(st.booleans())
        steps = [
            ([starter], out_burst),
            ([starter], out_burst),
        ]
        if mid_extra:
            other = draw(st.sampled_from([i for i in INPUTS if i != starter]))
            second_out = draw(
                st.lists(st.sampled_from(OUTPUTS), unique=True, max_size=2)
            )
            steps = [
                ([starter], out_burst),
                ([other], second_out),
                ([starter], out_burst),
                ([other], second_out),
            ]
        loops.append(steps)
    return loops


@pytest.fixture(scope="module")
def mini():
    library = minimal_teaching_library()
    if not library.annotated:
        library.annotate_hazards()
    return library


class TestRandomMachines:
    @given(loop_machines())
    @settings(max_examples=15, deadline=None)
    def test_synthesis_is_hazard_free_for_specified_bursts(self, loops):
        try:
            spec = build_loop_machine("rand", INPUTS, OUTPUTS, loops)
        except (ValueError, SpecError):
            return  # generator produced an invalid composition: skip
        try:
            synthesis = synthesize(spec)
        except HazardFreeError:
            return  # legitimately unrealizable specification
        from repro.network.netlist import cover_to_expr

        for target, cover in synthesis.equations.items():
            lsop = label_expression(
                cover_to_expr(cover, synthesis.variables), synthesis.variables
            )
            for spec_t in synthesis.transitions[target]:
                verdict = classify_transition(lsop, spec_t.start, spec_t.end)
                assert not verdict.logic_hazard, (target, spec_t)

    @given(loop_machines())
    @settings(max_examples=10, deadline=None)
    def test_synthesized_machine_conforms(self, loops):
        try:
            spec = build_loop_machine("rand", INPUTS, OUTPUTS, loops)
            synthesis = synthesize(spec)
        except (ValueError, SpecError, HazardFreeError):
            return
        assert conformance_check(synthesis, steps=60, seed=3) == []

    @given(loop_machines())
    @settings(max_examples=8, deadline=None)
    def test_async_mapping_preserves_everything(self, mini, loops):
        try:
            spec = build_loop_machine("rand", INPUTS, OUTPUTS, loops)
            synthesis = synthesize(spec)
        except (ValueError, SpecError, HazardFreeError):
            return
        net = synthesis.netlist("rand")
        result = async_tmap(net, mini)
        assert result.mapped.equivalent(net)
        for target in synthesis.equations:
            lsop = label_expression(
                result.mapped.collapse(target), synthesis.variables
            )
            for spec_t in synthesis.transitions[target]:
                verdict = classify_transition(lsop, spec_t.start, spec_t.end)
                assert not verdict.logic_hazard, (target, spec_t)
        assert conformance_check(synthesis, result.mapped, steps=40, seed=4) == []
