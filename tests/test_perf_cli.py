"""End-to-end CLI coverage of the observability surface.

Drives ``repro map --trace/--metrics`` and ``repro perf`` through
``repro.cli.main`` in-process, then runs
``benchmarks/check_regression.py`` (loaded from its file, exactly as CI
invokes it) against the freshly written snapshot — accepting it
unchanged and rejecting it under an injected 2× slowdown.
"""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

from repro.cli import main
from repro.hazards.cache import clear_global_cache
from repro.obs.export import BENCH_SCHEMA

REPO_ROOT = Path(__file__).resolve().parent.parent
SMOKE = ["chu-ad-opt", "vanbek-opt"]


def load_check_regression():
    spec = importlib.util.spec_from_file_location(
        "check_regression", REPO_ROOT / "benchmarks" / "check_regression.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.fixture()
def fresh_snapshot(tmp_path):
    clear_global_cache()
    out = tmp_path / "BENCH_mapping.json"
    code = main(
        ["perf", "--benchmarks", *SMOKE, "--output", str(out), "--no-verify"]
    )
    assert code == 0
    return out


class TestMapTrace:
    def test_map_emits_valid_span_tree(self, tmp_path, capsys):
        clear_global_cache()
        trace_path = tmp_path / "out.json"
        code = main(
            [
                "map",
                "chu-ad-opt",
                "CMOS3",
                "--no-cache",
                "--trace",
                str(trace_path),
                "--metrics",
            ]
        )
        assert code == 0
        payload = json.loads(trace_path.read_text())
        assert payload["schema"] == "repro-trace/v1"
        (root,) = payload["spans"]
        assert root["name"] == "async_tmap"
        assert root["end"] is not None

        names = set()

        def walk(span):
            names.add(span["name"])
            assert span["end"] is not None, f"span {span['name']} left open"
            for child in span["children"]:
                assert child["parent_id"] == span["span_id"]
                walk(child)

        walk(root)
        # The acceptance contract: decompose/partition/match/cover all
        # appear in the tree (matching happens inside match_cover).
        assert {
            "decompose",
            "partition",
            "cover",
            "cone",
            "enumerate_clusters",
            "match_cover",
            "build_netlist",
        } <= names
        assert "metrics" in payload
        out = capsys.readouterr().out
        assert "trace written" in out and "metrics:" in out

    def test_perf_writes_schema_stamped_snapshot(self, fresh_snapshot):
        snap = json.loads(fresh_snapshot.read_text())
        assert snap["schema"] == BENCH_SCHEMA
        assert sorted(snap["benchmarks"]) == sorted(SMOKE)
        for row in snap["benchmarks"].values():
            assert row["map_seconds"] >= 0
            assert row["area"] > 0 and row["cells"] > 0
            assert 0.0 <= row["cache"]["hit_rate"] <= 1.0

    def test_perf_verify_records_verdicts(self, tmp_path):
        clear_global_cache()
        out = tmp_path / "snap.json"
        code = main(
            ["perf", "--benchmarks", "chu-ad-opt", "--output", str(out)]
        )
        assert code == 0
        snap = json.loads(out.read_text())
        verdict = snap["benchmarks"]["chu-ad-opt"]["verify"]
        assert verdict == {"equivalent": True, "hazard_safe": True, "ok": True}


class TestCheckRegressionScript:
    def test_accepts_snapshot_against_itself(self, fresh_snapshot, capsys):
        checker = load_check_regression()
        code = checker.main(
            [
                "--baseline",
                str(fresh_snapshot),
                "--fresh",
                str(fresh_snapshot),
            ]
        )
        assert code == 0
        assert "passed" in capsys.readouterr().out

    def test_rejects_injected_double_slowdown(
        self, fresh_snapshot, tmp_path, capsys
    ):
        snap = json.loads(fresh_snapshot.read_text())
        for row in snap["benchmarks"].values():
            row["map_seconds"] = row["map_seconds"] * 2 + 1.0
        slow = tmp_path / "slow.json"
        slow.write_text(json.dumps(snap))
        checker = load_check_regression()
        code = checker.main(
            ["--baseline", str(fresh_snapshot), "--fresh", str(slow)]
        )
        assert code == 1
        assert "map_seconds" in capsys.readouterr().out

    def test_subset_mode_matches_committed_baseline_shape(
        self, fresh_snapshot, tmp_path
    ):
        # The committed baseline covers the full catalog; a smoke run
        # covers two benchmarks.  Subset mode bridges exactly that.
        snap = json.loads(fresh_snapshot.read_text())
        del snap["benchmarks"]["vanbek-opt"]
        subset = tmp_path / "subset.json"
        subset.write_text(json.dumps(snap))
        checker = load_check_regression()
        assert (
            checker.main(
                ["--baseline", str(fresh_snapshot), "--fresh", str(subset)]
            )
            == 1
        )
        assert (
            checker.main(
                [
                    "--baseline",
                    str(fresh_snapshot),
                    "--fresh",
                    str(subset),
                    "--subset",
                ]
            )
            == 0
        )

    def test_benchmarks_selector_restricts_comparison(
        self, fresh_snapshot, tmp_path, capsys
    ):
        # Break one benchmark's quality field; gating only on the other
        # must still pass, gating on the broken one must fail.
        snap = json.loads(fresh_snapshot.read_text())
        snap["benchmarks"]["vanbek-opt"]["area"] += 1
        fresh = tmp_path / "fresh.json"
        fresh.write_text(json.dumps(snap))
        checker = load_check_regression()
        base_args = ["--baseline", str(fresh_snapshot), "--fresh", str(fresh)]
        assert checker.main([*base_args, "--benchmarks", "chu-ad-opt"]) == 0
        capsys.readouterr()
        assert checker.main([*base_args, "--benchmarks", "vanbek-opt"]) == 1
        assert "area" in capsys.readouterr().out

    def test_benchmarks_selector_fails_clearly_on_missing_name(
        self, fresh_snapshot, capsys
    ):
        checker = load_check_regression()
        code = checker.main(
            [
                "--baseline",
                str(fresh_snapshot),
                "--fresh",
                str(fresh_snapshot),
                "--benchmarks",
                "chu-ad-opt",
                "not-a-benchmark",
            ]
        )
        assert code == 1
        out = capsys.readouterr().out
        assert "not-a-benchmark" in out
        assert "absent from baseline" in out
        assert "KeyError" not in out
