"""Tests for m.i.c. dynamic hazard analysis (Theorem 4.1, §4.2.1)."""

from hypothesis import given, settings

from repro.boolean.cover import Cover
from repro.boolean.paths import label_cover
from repro.hazards.dynamic import (
    cube_intersections,
    exhibits_mic_dynamic,
    find_mic_dyn_haz_2level,
    theorem41_condition,
)
from repro.hazards.oracle import (
    TransitionKind,
    all_transitions,
    classify_transition,
)
from repro.hazards.static1 import find_static1_hazards_complete
from repro.hazards.transition import dynamic_fhf, transition_space

from ..conftest import cover_strategy

W = ["w", "x", "y", "z"]


class TestPaperExamples:
    def test_figure8_dynamic_hazard(self):
        # f = w'xz + w'xy + xyz; transition alpha->gamma (X rises, Z
        # falls) can pulse cubes w'xz / xyz before w'xy holds.
        cover = Cover.from_strings(["w'xz", "w'xy", "xyz"], W)
        # alpha = w'x'y z (f=0), gamma = w' x y z' (f=1)
        alpha = 0b1100  # z=1,y=1,x=0,w=0 (bit i = var i: w=0,x=1,y=2,z=3)
        gamma = 0b0110  # x=1,y=1
        assert cover.evaluate(gamma)
        assert not cover.evaluate(alpha)
        assert dynamic_fhf(cover, alpha, gamma)
        assert exhibits_mic_dynamic(cover, alpha, gamma)

    def test_figure8_safe_transition(self):
        # T[beta, delta] with delta = w'xyz: every cube of f contains
        # delta, so no cube can pulse — condition 2 fails, no hazard.
        cover = Cover.from_strings(["w'xz", "w'xy", "xyz"], W)
        beta = 0b0011   # w x y' z' — f = 0
        delta = 0b1110  # w' x y z — f = 1
        assert not cover.evaluate(beta)
        assert cover.evaluate(delta)
        space = transition_space(beta, delta, 4)
        for cube in cover:
            if cube.intersects(space):
                assert cube.contains_point(delta)
        assert not theorem41_condition(cover, beta, delta)
        if dynamic_fhf(cover, beta, delta):
            assert not exhibits_mic_dynamic(cover, beta, delta)

    def test_figure4_sop_structure_has_dynamic_hazard(self):
        # Figure 4: the two-cube structure wy + xy has a dynamic hazard
        # (e.g. w falls while y rises with x = 1: gate wy can pulse
        # before gate xy turns on), while the factored (w + x)·y —
        # whose single y wire feeds one AND gate — does not.  The
        # multilevel comparison lives in test_multilevel; here we check
        # the two-level procedure finds the hazard.
        names = ["w", "x", "y"]
        cover = Cover.from_strings(["wy", "xy"], names)
        found = find_mic_dyn_haz_2level(cover)
        assert found, "wy + xy must have a dynamic hazard (Figure 4a)"
        start, end = 0b011, 0b110  # wxy' -> w'xy
        assert exhibits_mic_dynamic(cover, start, end)

    def test_figure10_alpha_beta_sets(self):
        # f with single irredundant intersection c = w'xyz.
        cover = Cover.from_strings(["w'xy", "w'xz", "xyz'", "w'yz"], W)
        inters = cube_intersections(cover)
        assert inters  # intersections exist around w'xyz

    def test_single_cube_has_no_dynamic_hazard(self):
        cover = Cover.from_strings(["wxyz"], W)
        assert not find_mic_dyn_haz_2level(cover)

    def test_disjoint_cubes_have_no_dynamic_hazard(self):
        cover = Cover.from_strings(["wx", "yz"], W)
        # transitions between them carry function hazards, not logic.
        assert not find_mic_dyn_haz_2level(cover)


class TestTheorem41AgainstOracle:
    @given(cover_strategy(4))
    @settings(max_examples=40, deadline=None)
    def test_theorem41_matches_event_lattice(self, cover):
        """Theorem 4.1 ⟺ the arbitrary-delay event-lattice semantics."""
        cover = cover.dedup()
        lsop = label_cover(cover, ["a", "b", "c", "d"])
        for start, end in all_transitions(4):
            if cover.evaluate(start) == cover.evaluate(end):
                continue
            if not dynamic_fhf(cover, start, end):
                continue
            verdict = classify_transition(lsop, start, end)
            assert exhibits_mic_dynamic(cover, start, end) == verdict.logic_hazard

    @given(cover_strategy(4))
    @settings(max_examples=40, deadline=None)
    def test_procedure_records_are_real_hazards(self, cover):
        lsop = label_cover(cover.dedup(), ["a", "b", "c", "d"])
        for hazard in find_mic_dyn_haz_2level(cover):
            verdict = classify_transition(lsop, hazard.start, hazard.end)
            assert verdict.kind == TransitionKind.DYNAMIC
            assert not verdict.function_hazard
            assert verdict.logic_hazard

    @given(cover_strategy(4, max_cubes=4))
    @settings(max_examples=30, deadline=None)
    def test_hazards_characterized_when_no_absorbed_cubes(self, cover):
        """Completeness of the paper's procedure on absorption-free covers.

        Every oracle-found dynamic hazard must contain a recorded
        minimal space or be the shadow of a static-1 hazard.  (With
        absorbed cubes the procedure is incomplete — a documented gap
        covered by the exhaustive filter.)
        """
        cover = cover.dedup()
        cubes = cover.cubes
        if any(
            i != j and cubes[j].contains(cubes[i])
            for i in range(len(cubes))
            for j in range(len(cubes))
        ):
            return  # absorbed cube present: out of the claimed scope
        lsop = label_cover(cover, ["a", "b", "c", "d"])
        records = find_mic_dyn_haz_2level(cover)
        static1 = find_static1_hazards_complete(cover)
        for start, end in all_transitions(4):
            verdict = classify_transition(lsop, start, end)
            if verdict.kind != TransitionKind.DYNAMIC or not verdict.logic_hazard:
                continue
            space = transition_space(start, end, 4)
            characterized = any(space.contains(h.space) for h in records)
            if not characterized:
                for h in static1:
                    inter = h.transition.intersection(space)
                    if inter is not None and not cover.single_cube_contains(inter):
                        characterized = True
                        break
            assert characterized, (
                f"{cover.to_string(['a','b','c','d'])}: "
                f"{start:04b}->{end:04b} uncharacterized"
            )


class TestReverseDirectionSymmetry:
    @given(cover_strategy(4))
    @settings(max_examples=30, deadline=None)
    def test_dynamic_hazard_is_direction_symmetric(self, cover):
        # The offending cube misses the ON endpoint either way, so a
        # 0→1 hazard implies the 1→0 hazard and vice versa.
        cover = cover.dedup()
        for start, end in all_transitions(4):
            if cover.evaluate(start) == cover.evaluate(end):
                continue
            if not dynamic_fhf(cover, start, end):
                continue
            assert exhibits_mic_dynamic(cover, start, end) == exhibits_mic_dynamic(
                cover, end, start
            )
