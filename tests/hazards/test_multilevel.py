"""Tests for multilevel dynamic analysis and the event-lattice checker."""

import pytest
from hypothesis import given, settings

from repro.boolean.cover import Cover
from repro.boolean.expr import parse
from repro.boolean.paths import label_cover, label_expression
from repro.hazards.multilevel import (
    find_mic_dyn_haz_multilevel,
    transition_has_hazard,
)
from repro.hazards.dynamic import find_mic_dyn_haz_2level

from ..conftest import cover_strategy


class TestEventLattice:
    def test_static1_glitch_two_cube_mux(self):
        lsop = label_expression(parse("s*a + s'*b"))
        # a=b=1, s falls: 0b011 (a,b) -> 0b111
        index = lsop.index
        start = (1 << index["a"]) | (1 << index["b"]) | (1 << index["s"])
        end = start & ~(1 << index["s"])
        assert transition_has_hazard(lsop, start, end)

    def test_consensus_cube_removes_glitch(self):
        lsop = label_expression(parse("s*a + s'*b + a*b"))
        index = lsop.index
        start = (1 << index["a"]) | (1 << index["b"]) | (1 << index["s"])
        end = start & ~(1 << index["s"])
        assert not transition_has_hazard(lsop, start, end)

    def test_factored_form_correlates_paths(self):
        # (w + x)·y shares the single y wire: no dynamic glitch for
        # w falls / y rises with x = 1 — unlike the SOP wy + xy.
        factored = label_expression(parse("(w + x)*y"))
        sop = label_expression(parse("w*y + x*y"))
        for lsop, expected in ((factored, False), (sop, True)):
            index = lsop.index
            start = (1 << index["w"]) | (1 << index["x"])
            end = (1 << index["x"]) | (1 << index["y"])
            assert transition_has_hazard(lsop, start, end) == expected

    def test_static_transition_requires_agreeing_endpoints(self):
        lsop = label_expression(parse("a*b"))
        # static 1-1 within the cube: no glitch possible for one gate
        assert not transition_has_hazard(lsop, 0b11, 0b11 | 0b00)

    def test_single_and_gate_is_glitch_free_everywhere(self):
        lsop = label_expression(parse("a*b*c"))
        from repro.hazards.oracle import all_transitions, classify_transition

        for start, end in all_transitions(3):
            verdict = classify_transition(lsop, start, end)
            assert not verdict.logic_hazard


class TestFigure4:
    def test_multilevel_procedure_discards_false_candidates(self):
        # Flattened, (w + x)*y looks like wy + xy (which has a dynamic
        # hazard); step 3 must discard it for the factored structure.
        factored = label_expression(parse("(w + x)*y"))
        assert find_mic_dyn_haz_2level(factored.plain_cover())
        assert not find_mic_dyn_haz_multilevel(factored)

    def test_sop_structure_keeps_candidates(self):
        sop = label_expression(parse("w*y + x*y"))
        assert find_mic_dyn_haz_multilevel(sop)


class TestTwoLevelConsistency:
    @given(cover_strategy(4))
    @settings(max_examples=30, deadline=None)
    def test_two_level_labelled_equals_cover_procedure(self, cover):
        # For a genuine two-level network the multilevel procedure must
        # agree with the plain two-level procedure.
        cover = cover.dedup()
        lsop = label_cover(cover, ["a", "b", "c", "d"])
        direct = {
            (h.start, h.end) for h in find_mic_dyn_haz_2level(cover)
        }
        multi = {
            (h.start, h.end) for h in find_mic_dyn_haz_multilevel(lsop)
        }
        assert multi == direct

    @given(cover_strategy(4))
    @settings(max_examples=30, deadline=None)
    def test_flattening_never_removes_hazards(self, cover):
        """The independent-paths (plain SOP) view over-approximates the
        label-correlated view — the basis for using the two-level
        procedure as a filter (step 2 of §4.2.2)."""
        from repro.hazards.oracle import all_transitions, classify_transition

        cover = cover.dedup()
        names = ["a", "b", "c", "d"]
        lsop = label_cover(cover, names)
        for start, end in all_transitions(4):
            correlated = classify_transition(lsop, start, end)
            if correlated.logic_hazard:
                assert not correlated.function_hazard


class TestEventLimit:
    def test_oversized_transition_rejected(self):
        wide = " + ".join(f"x{i}*y{i}" for i in range(12))
        lsop = label_expression(parse(wide))
        start = 0
        end = (1 << lsop.nvars) - 1
        with pytest.raises(ValueError):
            transition_has_hazard(lsop, start, end)
