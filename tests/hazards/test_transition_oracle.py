"""Tests for transition spaces, FHF predicates, and the oracle itself."""

from hypothesis import given, settings

from repro.boolean.cover import Cover
from repro.boolean.cube import Cube
from repro.boolean.paths import label_cover
from repro.hazards.oracle import (
    TransitionKind,
    all_transitions,
    classify_transition,
    enumerate_hazards,
    is_logic_hazard_free,
    sic_transitions,
)
from repro.hazards.transition import (
    dynamic_fhf,
    is_fhf,
    monotone_paths,
    static_fhf,
    transition_space,
)

from ..conftest import cover_strategy

NAMES = ["a", "b", "c", "d"]


class TestTransitionSpace:
    def test_supercube_definition(self):
        space = transition_space(0b0000, 0b0110, 4)
        assert space.to_pattern() == "0--0"

    def test_self_space_is_minterm(self):
        space = transition_space(0b1010, 0b1010, 4)
        assert space.is_minterm()


class TestStaticFhf:
    def test_static1_fhf_iff_implicant(self):
        cover = Cover.from_strings(["ab"], NAMES)
        assert static_fhf(cover, Cube.from_string("ab", NAMES), True)
        assert not static_fhf(cover, Cube.from_string("a", NAMES), True)

    def test_static0_fhf_iff_disjoint(self):
        cover = Cover.from_strings(["ab"], NAMES)
        assert static_fhf(cover, Cube.from_string("a'b'", NAMES), False)
        assert not static_fhf(cover, Cube.from_string("b", NAMES), False)


class TestDynamicFhf:
    @given(cover_strategy(4))
    @settings(max_examples=25, deadline=None)
    def test_dynamic_fhf_matches_path_enumeration(self, cover):
        """FHF ⟺ the function is monotone along every monotone path."""
        checked = 0
        for start, end in all_transitions(4):
            if cover.evaluate(start) == cover.evaluate(end):
                continue
            if bin(start ^ end).count("1") > 3:
                continue  # keep the factorial enumeration small
            expected = True
            for path in monotone_paths(start, end):
                values = [cover.evaluate(p) for p in path]
                changes = sum(
                    1 for i in range(len(values) - 1) if values[i] != values[i + 1]
                )
                if changes != 1:
                    expected = False
                    break
            assert dynamic_fhf(cover, start, end) == expected
            checked += 1
            if checked > 40:
                break

    def test_is_fhf_dispatches(self):
        cover = Cover.from_strings(["ab", "a'c"], NAMES)
        assert is_fhf(cover, 0b0011, 0b0011 ^ 0b1000)  # static inside ab


class TestOracle:
    def test_classification_kinds(self):
        cover = Cover.from_strings(["sa", "s'b"], ["s", "a", "b"])
        lsop = label_cover(cover, ["s", "a", "b"])
        verdict = classify_transition(lsop, 0b111, 0b110)
        assert verdict.kind == TransitionKind.STATIC_1
        assert verdict.logic_hazard  # the classic mux glitch

    def test_function_hazard_precludes_logic_hazard(self):
        cover = Cover.from_strings(["ab", "cd"], NAMES)
        lsop = label_cover(cover, NAMES)
        for start, end in all_transitions(4):
            verdict = classify_transition(lsop, start, end)
            assert not (verdict.function_hazard and verdict.logic_hazard)

    def test_enumerate_hazards_groups(self):
        cover = Cover.from_strings(["sa", "s'b"], ["s", "a", "b"])
        lsop = label_cover(cover, ["s", "a", "b"])
        groups = enumerate_hazards(lsop)
        assert groups[TransitionKind.STATIC_1]
        assert not groups[TransitionKind.STATIC_0]

    def test_complete_sum_of_mux_is_static1_free(self):
        cover = Cover.from_strings(["sa", "s'b", "ab"], ["s", "a", "b"])
        lsop = label_cover(cover, ["s", "a", "b"])
        groups = enumerate_hazards(lsop)
        assert not groups[TransitionKind.STATIC_1]
        # but the dynamic hazards of intersecting cubes remain
        assert groups[TransitionKind.DYNAMIC]

    def test_single_cube_network_hazard_free(self):
        cover = Cover.from_strings(["abc"], ["a", "b", "c"])
        assert is_logic_hazard_free(label_cover(cover, ["a", "b", "c"]))

    def test_sic_transitions_cover_all_single_flips(self):
        pairs = set(sic_transitions(3))
        assert len(pairs) == 8 * 3
        for start, end in pairs:
            assert bin(start ^ end).count("1") == 1

    @given(cover_strategy(3))
    @settings(max_examples=25, deadline=None)
    def test_ternary_simulation_agrees_on_static_hazards(self, cover):
        """Eichelberger ternary X ⟺ the lattice glitch on static runs."""
        from repro.network.netlist import Netlist, cover_to_expr
        from repro.network.simulate import eichelberger

        names = ["a", "b", "c"]
        net = Netlist("f")
        for name in names:
            net.add_input(name)
        gate = net.add_gate("g", cover_to_expr(cover, names), names)
        net.add_output("f", gate)
        lsop = label_cover(cover, names)
        for start, end in all_transitions(3):
            if cover.evaluate(start) != cover.evaluate(end):
                continue
            env_s = {n: bool(start >> i & 1) for i, n in enumerate(names)}
            env_e = {n: bool(end >> i & 1) for i, n in enumerate(names)}
            ternary = eichelberger(net, env_s, env_e).went_unknown["f"]
            verdict = classify_transition(lsop, start, end)
            lattice = verdict.function_hazard or verdict.logic_hazard
            assert ternary == lattice, f"{cover.to_string(names)} {start}->{end}"
