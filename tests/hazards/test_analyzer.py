"""Tests for the one-call analyzer and the section-3.2.2 matching filter."""

import random

from hypothesis import given, settings

from repro.boolean.cover import Cover
from repro.boolean.cube import Cube
from repro.boolean.expr import parse
from repro.hazards.analyzer import (
    HazardAnalysis,
    analyze_cover,
    analyze_expression,
    hazards_subset,
)
from repro.hazards.oracle import hazard_subset

from ..conftest import cover_strategy

MUXN = ["a", "b", "s"]


class TestAnalyze:
    def test_hazard_free_expression(self):
        analysis = analyze_expression(parse("(a*b + c)'"))
        assert not analysis.has_hazards
        assert analysis.summary().hazard_free

    def test_mux_analysis(self):
        analysis = analyze_expression(parse("s'*a + s*b"))
        assert analysis.has_hazards
        assert analysis.summary().static1 == 1

    def test_describe_lines(self):
        analysis = analyze_expression(parse("s'*a + s*b"))
        lines = analysis.describe()
        assert any("static-1" in line for line in lines)

    def test_exhaustive_verdicts_cached(self):
        analysis = analyze_expression(parse("s'*a + s*b"), exhaustive=True)
        assert analysis.verdicts is not None
        assert analysis.ensure_verdicts() is analysis.verdicts

    def test_verdicts_none_for_oversized(self):
        wide = " + ".join(f"x{i}*y{i}" for i in range(5))
        analysis = analyze_expression(parse(wide))
        assert analysis.ensure_verdicts() is None


class TestFilterBasics:
    def test_hazard_free_cell_always_subset(self):
        cell = analyze_expression(parse("a*b"))
        target = analyze_cover(
            Cover.from_strings(["ab"], ["a", "b"]), ["a", "b"]
        )
        assert hazards_subset(cell, target)

    def test_figure3_mux_rejected_against_hazard_free_subnetwork(self):
        # The Figure-3 situation: the cluster implements mux plus
        # consensus (hazard-free); the 2-cube mux cell must be rejected.
        cell = analyze_expression(parse("s'*a + s*b"), exhaustive=True)
        target = analyze_expression(parse("s'*a + s*b + a*b"))
        assert not hazards_subset(cell, target)

    def test_mux_accepted_against_equally_hazardous_subnetwork(self):
        cell = analyze_expression(parse("s'*a + s*b"), exhaustive=True)
        target = analyze_expression(parse("s'*a + s*b"))
        assert hazards_subset(cell, target)

    def test_pin_mapping_respected(self):
        # Cell over (a, b, s); target over (x, y, z) with s -> z etc.
        cell = analyze_expression(parse("s'*a + s*b"), exhaustive=True)
        target = analyze_expression(parse("z'*x + z*y"))
        # cell pins sorted: a, b, s; target names sorted: x, y, z
        mapping = [0, 1, 2]  # a->x, b->y, s->z
        assert hazards_subset(cell, target, mapping=mapping)

    def test_paper_mode_available(self):
        cell = analyze_expression(parse("s'*a + s*b"))
        target = analyze_expression(parse("s'*a + s*b + a*b"))
        assert not hazards_subset(cell, target, mode="paper")


class TestFilterAgainstOracle:
    @given(cover_strategy(4, max_cubes=4))
    @settings(max_examples=40, deadline=None)
    def test_exact_filter_matches_exhaustive_oracle(self, cover):
        rng = random.Random(cover.truth_table() & 0xFFFF)
        cover = cover.dedup()
        names = ["a", "b", "c", "d"]
        variants = [
            Cover(cover.all_primes(), 4),
            cover.irredundant(),
            Cover(list(cover.cubes)[::-1], 4),
        ]
        other = variants[rng.randrange(len(variants))]
        if not cover.cubes or not other.cubes:
            return
        a1 = analyze_cover(cover, names)
        a2 = analyze_cover(other, names)
        fast = hazards_subset(a1, a2)
        slow = hazard_subset(a1.lsop, a2.lsop)
        assert fast == slow

    @given(cover_strategy(4, max_cubes=3))
    @settings(max_examples=25, deadline=None)
    def test_filter_reflexive(self, cover):
        analysis = analyze_cover(cover.dedup(), ["a", "b", "c", "d"])
        assert hazards_subset(analysis, analysis)

    def test_multilevel_cell_vs_sop_target(self):
        # A hazard-free factored cell against any same-function target
        # is always acceptable (Corollary 3.1).
        cell = analyze_expression(parse("(w + x)*y"), exhaustive=True)
        target = analyze_expression(parse("w*y + x*y"))
        assert hazards_subset(cell, target)
        # The reverse: the SOP structure has a dynamic hazard the
        # factored target lacks.
        cell2 = analyze_expression(parse("w*y + x*y"), exhaustive=True)
        target2 = analyze_expression(parse("(w + x)*y"))
        assert not hazards_subset(cell2, target2)
