"""Tests for static-0 and s.i.c. dynamic hazard analysis (§4.1.2, §4.2.3)."""

from repro.boolean.cover import Cover
from repro.boolean.expr import parse
from repro.boolean.paths import label_cover, label_expression
from repro.hazards.oracle import (
    TransitionKind,
    classify_transition,
    sic_transitions,
)
from repro.hazards.sic import exhibits_sic_dynamic, find_sic_dynamic_hazards
from repro.hazards.static0 import exhibits_static0, find_static0_hazards


class TestStatic0:
    def test_figure6a_static0(self):
        # McCluskey's example (Figure 6): f = (w + x' + y')(xy + y'z).
        # Reconvergent x gives a static-0 hazard at w=0, y=1, z=0 while
        # x changes: the x1'·x2·y2 product can pulse.
        expr = parse("(w + x' + y')*(x*y + y'*z)")
        lsop = label_expression(expr)  # names sorted: w,x,y,z
        hazards = find_static0_hazards(lsop)
        assert hazards
        x_index = lsop.index["x"]
        assert any(h.var == x_index for h in hazards)
        # the sensitizing point w=0,y=1,z=0 is in some condition
        point = 1 << lsop.index["y"]
        assert any(
            h.var == x_index and h.condition.evaluate(point) for h in hazards
        )

    def test_plain_sop_has_no_static0(self):
        cover = Cover.from_strings(["ab", "a'c"], ["a", "b", "c"])
        lsop = label_cover(cover, ["a", "b", "c"])
        assert not find_static0_hazards(lsop)

    def test_unsensitizable_vacuous_term_not_reported(self):
        # y·(y' + 1-ish): vacuous term exists but the function is never
        # 0 on both sides with the residual true.
        expr = parse("y*y' + y + y'")  # constant 1: no 0-0 transition
        lsop = label_expression(expr)
        assert not find_static0_hazards(lsop)

    def test_oracle_agreement_on_sic_static0(self):
        """Every s.i.c. static-0 glitch the lattice oracle finds is
        reported, and vice versa."""
        for text in [
            "(w + x' + y')*(x*y + y'*z)",
            "(a + b)*(a' + c)",
            "(a + b')*(a' + b)*(c + a)",
            "a*b + c",
        ]:
            expr = parse(text)
            lsop = label_expression(expr)
            plain = lsop.plain_cover()
            records = find_static0_hazards(lsop)
            for start, end in sic_transitions(lsop.nvars):
                verdict = classify_transition(lsop, start, end)
                if verdict.kind != TransitionKind.STATIC_0:
                    continue
                if verdict.function_hazard:
                    continue
                var = (start ^ end).bit_length() - 1
                reported = any(
                    h.var == var
                    and (h.condition.evaluate(start) or h.condition.evaluate(end))
                    for h in records
                )
                assert reported == verdict.logic_hazard, (
                    f"{text}: {start:b}->{end:b}"
                )


class TestSicDynamic:
    def test_figure6b_sic_dynamic(self):
        # Figure 6b: with w=0, x=z=1 the labelled expression reduces to
        # y1'·y2 + y1'·y3'; the vacuous-path product pulses while the
        # output makes its single change on y.
        expr = parse("(w + x' + y')*(x*y + y'*z)")
        lsop = label_expression(expr)
        hazards = find_sic_dynamic_hazards(lsop)
        y_index = lsop.index["y"]
        assert any(h.var == y_index for h in hazards)
        # the paper's sensitizing point: w=0, x=1, z=1
        point = (1 << lsop.index["x"]) | (1 << lsop.index["z"])
        hazard = next(h for h in hazards if h.var == y_index)
        assert hazard.condition.evaluate(point) or hazard.condition.evaluate(
            point | (1 << y_index)
        )

    def test_factored_mux_pulse_is_masked(self):
        # (s + b)(s' + a): s reconverges and the vacuous s·s' product
        # exists, but whenever it pulses a product sharing the raising
        # s-path is also on — the pulse is invisible.  The naive
        # algebraic condition would report a hazard here; the exact
        # lattice-confirmed detector must not.
        expr = parse("(s + b)*(s' + a)")
        lsop = label_expression(expr)
        hazards = find_sic_dynamic_hazards(lsop)
        assert not any(h.var == lsop.index["s"] for h in hazards)

    def test_oracle_agreement_on_sic_dynamic(self):
        for text in [
            "(w + x' + y')*(x*y + y'*z)",
            "(w + y')*(x + y)*z",
            "(s + b)*(s' + a)",
            "(a + b)*(a' + c) + a*d",
            "a'*b + a*c",
        ]:
            expr = parse(text)
            lsop = label_expression(expr)
            records = find_sic_dynamic_hazards(lsop)
            for start, end in sic_transitions(lsop.nvars):
                verdict = classify_transition(lsop, start, end)
                if verdict.kind != TransitionKind.DYNAMIC:
                    continue
                var = (start ^ end).bit_length() - 1
                reported = any(
                    h.var == var
                    and (h.condition.evaluate(start) or h.condition.evaluate(end))
                    for h in records
                )
                assert reported == verdict.logic_hazard, (
                    f"{text}: {start:b}->{end:b}"
                )

    def test_exhibits_predicates(self):
        expr = parse("(w + x' + y')*(x*y + y'*z)")
        lsop = label_expression(expr)
        hazards = find_sic_dynamic_hazards(lsop)
        hazard = next(h for h in hazards if h.var == lsop.index["y"])
        assert exhibits_sic_dynamic(lsop, hazard.var, hazard.condition)
        # A plain SOP of the same function has no vacuous products,
        # hence cannot exhibit the cell's s.i.c. dynamic hazard.
        names = lsop.names
        sop = label_cover(lsop.plain_cover(), names)
        assert not exhibits_sic_dynamic(sop, hazard.var, hazard.condition)


class TestStatic0Exhibits:
    def test_exhibits_static0_condition_containment(self):
        expr = parse("(w + x)*(x' + y + z)")
        lsop = label_expression(expr)
        hazard = find_static0_hazards(lsop)[0]
        assert exhibits_static0(lsop, hazard.var, hazard.condition)
