"""Tests for the hazard-removal transformations."""

import pytest
from hypothesis import given, settings

from repro.boolean.cover import Cover
from repro.boolean.expr import parse
from repro.boolean.paths import label_cover
from repro.burstmode.hfmin import HazardFreeError
from repro.hazards.oracle import classify_transition
from repro.hazards.removal import (
    make_hazard_free_for,
    remove_static1,
    remove_vacuous,
    repair_summary,
)
from repro.hazards.sic import find_sic_dynamic_hazards
from repro.hazards.static0 import find_static0_hazards
from repro.hazards.static1 import has_static1_hazard

from ..conftest import cover_strategy

MUXN = ["s", "a", "b"]


class TestRemoveStatic1:
    def test_mux_repair(self):
        cover = Cover.from_strings(["sa", "s'b"], MUXN)
        repaired, report = remove_static1(cover)
        assert report.clean
        assert not has_static1_hazard(repaired)
        assert repaired.equivalent(cover)
        # original gates untouched
        for cube in cover:
            assert cube in repaired.cubes

    @given(cover_strategy(4, max_cubes=4))
    @settings(max_examples=25, deadline=None)
    def test_always_converges_and_cleans(self, cover):
        repaired, report = remove_static1(cover)
        assert report.clean
        assert repaired.equivalent(cover)

    def test_report_accounting(self):
        cover = Cover.from_strings(["sa", "s'b"], MUXN)
        repaired, report = remove_static1(cover)
        assert report.before_static1 == 1
        assert report.after_static1 == 0
        assert len(report.added_cubes) == len(repaired) - len(cover)


class TestRemoveVacuous:
    def test_clears_static0_and_sic(self):
        expr = parse("(w + x' + y')*(x*y + y'*z)")
        names = sorted(expr.support())
        flattened = remove_vacuous(expr, names)
        lsop = label_cover(flattened, names)
        assert not find_static0_hazards(lsop)
        assert not find_sic_dynamic_hazards(lsop)

    def test_function_preserved(self):
        expr = parse("(a + b)*(a' + c)")
        names = sorted(expr.support())
        flattened = remove_vacuous(expr, names)
        for point in range(1 << len(names)):
            env = {n: bool(point >> i & 1) for i, n in enumerate(names)}
            assert flattened.evaluate(point) == expr.evaluate(env)


class TestMakeHazardFreeFor:
    def test_burst_specific_repair(self):
        cover = Cover.from_strings(["sa", "s'b"], MUXN)
        # the classic burst: s changes with a=b=1 (both directions)
        transitions = [(0b111, 0b110), (0b110, 0b111)]
        repaired = make_hazard_free_for(cover, transitions)
        assert repaired.equivalent(cover)
        names = MUXN
        lsop = label_cover(repaired, names)
        for start, end in transitions:
            verdict = classify_transition(lsop, start, end)
            assert not verdict.logic_hazard

    def test_dynamic_burst_repair(self):
        # f = ab + cd, falling burst from 1111 to 0101-ish
        names = ["a", "b", "c", "d"]
        cover = Cover.from_strings(["ab", "cd"], names)
        transitions = [(0b1111, 0b0101)]
        repaired = make_hazard_free_for(cover, transitions)
        lsop = label_cover(repaired, names)
        verdict = classify_transition(lsop, 0b1111, 0b0101)
        assert not verdict.logic_hazard

    def test_unrealizable_raises(self):
        names = ["a", "b", "c"]
        cover = Cover.from_strings(["ab", "bc", "a'c"], names)
        transitions = [
            (0b011, 0b110),  # static 1-1 over b: needs a cube holding b
            (0b111, 0b000),  # dynamic: makes that cube illegal
        ]
        with pytest.raises(HazardFreeError):
            make_hazard_free_for(cover, transitions)

    def test_summary_keys(self):
        cover = Cover.from_strings(["sa", "s'b"], MUXN)
        repaired, __ = remove_static1(cover)
        summary = repair_summary(cover, repaired)
        assert summary["static1_before"] == 1
        assert summary["static1_after"] == 0
