"""Randomized differential testing of the section-4 record algorithms.

Each efficient detection procedure of section 4 is driven against the
exhaustive event-lattice oracle (:mod:`repro.hazards.oracle`) on a
seeded stream of random covers and factored expressions of up to five
variables — 200 cases per hazard class, so every run replays the same
>=800 comparisons.

The agreement contract differs per class (mirroring the scopes the
paper claims):

* **static-1** — the complete census characterizes the oracle verdict
  exactly: a fhf static-1 transition glitches iff its space lies in an
  uncovered prime.  The paper's bit-vector records must additionally be
  real (sound).
* **static-0** — the vacuous-term records characterize the oracle on
  *single-input-change* transitions (the filter consumes only those);
  m.i.c. static-0 verdicts are oracle-only.
* **m.i.c. dynamic** — records are always sound; they characterize the
  oracle (together with static-1 shadows) only on absorption-free
  covers, the procedure's documented scope.
* **s.i.c. dynamic** — records characterize the oracle on
  single-input-change dynamic transitions.
"""

from __future__ import annotations

import random

import pytest

from repro.boolean.cover import Cover
from repro.boolean.cube import Cube
from repro.boolean.expr import parse
from repro.boolean.paths import label_cover, label_expression
from repro.hazards.dynamic import exhibits_mic_dynamic, find_mic_dyn_haz_2level
from repro.hazards.oracle import (
    TransitionKind,
    all_transitions,
    classify_transition,
    sic_transitions,
)
from repro.hazards.sic import find_sic_dynamic_hazards
from repro.hazards.static0 import find_static0_hazards
from repro.hazards.static1 import (
    exhibits_static1,
    find_static1_hazards,
    find_static1_hazards_complete,
)
from repro.hazards.transition import transition_space

CASES_PER_CLASS = 200
NAMES = ["a", "b", "c", "d", "e"]


def random_cover(rng: random.Random, nvars: int, max_cubes: int) -> Cover:
    """A random cover: 1..max_cubes random non-empty cubes."""
    cubes = []
    for _ in range(rng.randint(1, max_cubes)):
        used = rng.randint(1, (1 << nvars) - 1)
        phase = rng.randint(0, (1 << nvars) - 1) & used
        cubes.append(Cube(used, phase, nvars))
    return Cover(cubes, nvars)


def random_factored_text(rng: random.Random, nvars: int) -> str:
    """A random factored expression: a product of literal-sums, with an
    optional SOP tail — reconvergent variables arise naturally, which
    is what excites vacuous terms (static-0 / s.i.c. dynamic)."""
    names = NAMES[:nvars]

    def literal() -> str:
        name = rng.choice(names)
        return name + ("'" if rng.random() < 0.5 else "")

    def sum_term() -> str:
        return "(" + " + ".join(literal() for _ in range(rng.randint(1, 3))) + ")"

    factors = [sum_term() for _ in range(rng.randint(2, 3))]
    text = "*".join(factors)
    if rng.random() < 0.4:
        tail = "*".join(literal() for _ in range(rng.randint(1, 2)))
        text = f"{text} + {tail}"
    return text


class TestStatic1Differential:
    def test_records_vs_oracle(self):
        rng = random.Random(0x51A71C1)
        checked = 0
        for case in range(CASES_PER_CLASS):
            nvars = rng.choice([3, 3, 4, 4, 5])
            cover = random_cover(rng, nvars, max_cubes=4)
            lsop = label_cover(cover, NAMES[:nvars])
            complete = find_static1_hazards_complete(cover)
            fast = find_static1_hazards(cover)
            # Soundness of the paper's bit-vector records.
            for hazard in fast:
                assert cover.contains_cube(hazard.transition)
                assert exhibits_static1(cover, hazard.transition)
            # Exact characterization by the complete census.  Restrict
            # 5-var cases to s.i.c. pairs to bound the lattice cost.
            pairs = (
                sic_transitions(nvars) if nvars >= 5 else all_transitions(nvars)
            )
            for start, end in pairs:
                verdict = classify_transition(lsop, start, end)
                if verdict.kind != TransitionKind.STATIC_1:
                    continue
                if verdict.function_hazard:
                    continue
                space = transition_space(start, end, nvars)
                # The lattice oracle must agree with the combinational
                # criterion: a fhf static-1 transition glitches iff no
                # single cube holds the whole space.
                held = cover.single_cube_contains(space)
                assert (not held) == verdict.logic_hazard, (
                    f"case {case}: {cover.to_string(NAMES[:nvars])} "
                    f"{start:b}->{end:b}"
                )
                if verdict.logic_hazard:
                    # ... and every hazardous space lies in some
                    # uncovered prime of the complete census.
                    assert any(h.transition.contains(space) for h in complete)
                checked += 1
        assert checked > CASES_PER_CLASS  # the stream really exercised pairs


class TestStatic0Differential:
    def test_records_vs_oracle_on_sic(self):
        rng = random.Random(0x57A70)
        hazard_cases = 0
        for case in range(CASES_PER_CLASS):
            nvars = rng.choice([3, 3, 4, 4, 5])
            text = random_factored_text(rng, nvars)
            lsop = label_expression(parse(text))
            records = find_static0_hazards(lsop)
            if records:
                hazard_cases += 1
            for start, end in sic_transitions(lsop.nvars):
                verdict = classify_transition(lsop, start, end)
                if verdict.kind != TransitionKind.STATIC_0:
                    continue
                if verdict.function_hazard:
                    continue
                var = (start ^ end).bit_length() - 1
                reported = any(
                    h.var == var
                    and (h.condition.evaluate(start) or h.condition.evaluate(end))
                    for h in records
                )
                assert reported == verdict.logic_hazard, (
                    f"case {case}: {text}: {start:b}->{end:b}"
                )
        # The generator must actually produce hazardous structures.
        assert hazard_cases >= CASES_PER_CLASS // 10


class TestMicDynamicDifferential:
    def test_records_vs_oracle(self):
        rng = random.Random(0xD7A41C)
        characterized_checked = 0
        for case in range(CASES_PER_CLASS):
            nvars = rng.choice([3, 3, 3, 4])
            cover = random_cover(rng, nvars, max_cubes=4).dedup()
            lsop = label_cover(cover, NAMES[:nvars])
            records = find_mic_dyn_haz_2level(cover)
            # Soundness: every record is a real, function-hazard-free
            # dynamic logic hazard under the lattice semantics.
            for hazard in records:
                verdict = classify_transition(lsop, hazard.start, hazard.end)
                assert verdict.kind == TransitionKind.DYNAMIC
                assert not verdict.function_hazard
                assert verdict.logic_hazard, (
                    f"case {case}: {cover.to_string(NAMES[:nvars])} "
                    f"{hazard.start:b}->{hazard.end:b}"
                )
            # Completeness only on absorption-free covers (the
            # documented scope of the two-level procedure).
            cubes = cover.cubes
            absorbed = any(
                i != j and cubes[j].contains(cubes[i])
                for i in range(len(cubes))
                for j in range(len(cubes))
            )
            if absorbed:
                continue
            static1 = find_static1_hazards_complete(cover)
            for start, end in all_transitions(nvars):
                verdict = classify_transition(lsop, start, end)
                if verdict.kind != TransitionKind.DYNAMIC:
                    continue
                if not verdict.logic_hazard:
                    continue
                space = transition_space(start, end, nvars)
                found = any(space.contains(h.space) for h in records)
                if not found:
                    for h in static1:
                        inter = h.transition.intersection(space)
                        if inter is not None and not cover.single_cube_contains(
                            inter
                        ):
                            found = True
                            break
                assert found, (
                    f"case {case}: {cover.to_string(NAMES[:nvars])} "
                    f"{start:b}->{end:b} uncharacterized"
                )
                characterized_checked += 1
        assert characterized_checked > 0

    def test_exhibits_matches_oracle(self):
        rng = random.Random(0xE41B17)
        for case in range(CASES_PER_CLASS // 4):
            nvars = 3
            cover = random_cover(rng, nvars, max_cubes=4).dedup()
            lsop = label_cover(cover, NAMES[:nvars])
            for start, end in all_transitions(nvars):
                verdict = classify_transition(lsop, start, end)
                if verdict.kind != TransitionKind.DYNAMIC:
                    continue
                if verdict.function_hazard:
                    continue
                assert (
                    exhibits_mic_dynamic(cover, start, end)
                    == verdict.logic_hazard
                ), (
                    f"case {case}: {cover.to_string(NAMES[:nvars])} "
                    f"{start:b}->{end:b}"
                )


class TestSicDynamicDifferential:
    def test_records_vs_oracle_on_sic(self):
        rng = random.Random(0x51CD11)
        hazard_cases = 0
        for case in range(CASES_PER_CLASS):
            nvars = rng.choice([3, 3, 4, 4, 5])
            text = random_factored_text(rng, nvars)
            lsop = label_expression(parse(text))
            records = find_sic_dynamic_hazards(lsop)
            if records:
                hazard_cases += 1
            for start, end in sic_transitions(lsop.nvars):
                verdict = classify_transition(lsop, start, end)
                if verdict.kind != TransitionKind.DYNAMIC:
                    continue
                if verdict.function_hazard:
                    continue
                var = (start ^ end).bit_length() - 1
                reported = any(
                    h.var == var
                    and (h.condition.evaluate(start) or h.condition.evaluate(end))
                    for h in records
                )
                assert reported == verdict.logic_hazard, (
                    f"case {case}: {text}: {start:b}->{end:b}"
                )
        assert hazard_cases >= CASES_PER_CLASS // 20


class TestWitnessReplayDifferential:
    """Every witness a random analysis materializes must really glitch.

    The record algorithms above are checked against the lattice oracle;
    this closes the remaining gap to *hardware* semantics: each record's
    witness burst is replayed on the event simulator and must produce
    extra output changes.  Both generators run — covers (static-1 /
    m.i.c. exemplars) and factored expressions (static-0 / s.i.c.).
    """

    REPLAY_CASES = 60

    def _replay_all(self, analysis) -> int:
        from repro.hazards.witness import analysis_witnesses, replay_witness

        replayed = 0
        for record, witness in analysis_witnesses(analysis):
            replay = replay_witness(analysis.lsop, witness)
            assert replay.glitched, (
                f"{analysis.lsop.to_string()}: witness "
                f"{witness.transition_string()} did not glitch: "
                f"{replay.describe()}"
            )
            assert replay.changes > replay.expected
            replayed += 1
        return replayed

    def test_cover_witnesses_glitch_on_eventsim(self):
        from repro.hazards.analyzer import analyze_cover

        rng = random.Random(0xB17E55)
        replayed = 0
        for _ in range(self.REPLAY_CASES):
            nvars = rng.choice([3, 3, 4])
            cover = random_cover(rng, nvars, max_cubes=4).dedup()
            analysis = analyze_cover(cover, NAMES[:nvars])
            replayed += self._replay_all(analysis)
        # The stream must actually exercise witnesses.
        assert replayed >= self.REPLAY_CASES // 4

    def test_factored_witnesses_glitch_on_eventsim(self):
        from repro.hazards.analyzer import analyze_expression

        rng = random.Random(0xFAC7E5)
        replayed = 0
        for _ in range(self.REPLAY_CASES):
            nvars = rng.choice([3, 3, 4])
            text = random_factored_text(rng, nvars)
            analysis = analyze_expression(parse(text))
            replayed += self._replay_all(analysis)
        assert replayed >= self.REPLAY_CASES // 10


def test_total_differential_volume():
    """The harness replays at least the promised number of cases."""
    assert CASES_PER_CLASS * 4 >= 800
