"""Cache-consistency tests: warm results must equal cold results.

Covers all three warm paths of the performance layer —

* the in-process :class:`repro.hazards.cache.HazardCache` memo,
* the on-disk library-annotation cache
  (:mod:`repro.library.anncache`),
* full mapping runs replayed against both,

plus the failure modes: corrupt and stale cache files must be detected
and silently rebuilt, never trusted.
"""

from __future__ import annotations

import json

import pytest

from repro.boolean.cover import Cover
from repro.boolean.expr import parse
from repro.hazards.analyzer import analyze_cover, analyze_expression, hazards_subset
from repro.hazards.cache import (
    HazardCache,
    analysis_fingerprint,
    clear_global_cache,
    global_cache,
    lsop_fingerprint,
)
from repro.library import anncache
from repro.library.standard import cmos3, minimal_teaching_library
from repro.mapping.mapper import MappingOptions, async_tmap
from repro.network.netlist import Netlist

MUX = {"f": "s*a + s'*b"}
NAMES = ["s", "a", "b"]


def fresh_teaching_library():
    return minimal_teaching_library.__wrapped__()


def summaries_equal(a, b) -> bool:
    return (
        a.summary() == b.summary()
        and a.static1 == b.static1
        and a.static0 == b.static0
        and a.mic_dynamic == b.mic_dynamic
        and a.sic_dynamic == b.sic_dynamic
    )


class TestMemoizedAnalyses:
    def test_expression_analysis_hit_is_same_object(self):
        cache = HazardCache()
        expr = parse("s*a + s'*b")
        first, hit1 = cache.expression_analysis(expr, NAMES)
        second, hit2 = cache.expression_analysis(expr, NAMES)
        assert not hit1 and hit2
        assert second is first
        assert summaries_equal(first, analyze_expression(expr, NAMES))

    def test_cover_analysis_matches_cold(self):
        cache = HazardCache()
        cover = Cover.from_strings(["sa", "s'b"], NAMES)
        warm, hit = cache.cover_analysis(cover, NAMES)
        assert not hit
        assert summaries_equal(warm, analyze_cover(cover, NAMES))
        again, hit = cache.cover_analysis(
            Cover.from_strings(["sa", "s'b"], NAMES), NAMES
        )
        assert hit and again is warm

    def test_distinct_structures_do_not_collide(self):
        # Same function, different implementation: the two-cube mux and
        # the consensus-bearing mux have different hazard behaviour and
        # must occupy different cache slots.
        cache = HazardCache()
        plain, _ = cache.cover_analysis(
            Cover.from_strings(["sa", "s'b"], NAMES), NAMES
        )
        full, hit = cache.cover_analysis(
            Cover.from_strings(["sa", "s'b", "ab"], NAMES), NAMES
        )
        assert not hit
        assert plain.static1 and not full.static1

    def test_fingerprint_distinguishes_structure_not_function(self):
        plain = analyze_cover(Cover.from_strings(["sa", "s'b"], NAMES), NAMES)
        full = analyze_cover(
            Cover.from_strings(["sa", "s'b", "ab"], NAMES), NAMES
        )
        assert lsop_fingerprint(plain.lsop) != lsop_fingerprint(full.lsop)
        # same np-signature bucket (same function), different structure
        assert lsop_fingerprint(plain.lsop)[1] == lsop_fingerprint(full.lsop)[1]
        assert analysis_fingerprint(plain) == lsop_fingerprint(plain.lsop)

    def test_subset_verdicts_match_cold(self):
        cache = HazardCache()
        cell = analyze_cover(Cover.from_strings(["sa", "s'b"], NAMES), NAMES)
        cell.ensure_verdicts()
        target = analyze_expression(parse("s*a + s'*b"), NAMES)
        for mode in ("exact", "paper"):
            cold = hazards_subset(cell, target, mapping=[0, 1, 2], mode=mode)
            warm, hit1 = cache.hazards_subset(
                cell, target, mapping=[0, 1, 2], mode=mode
            )
            again, hit2 = cache.hazards_subset(
                cell, target, mapping=[0, 1, 2], mode=mode
            )
            assert warm == cold == again
            assert not hit1 and hit2

    def test_transition_memo_matches_cold(self):
        from repro.hazards.multilevel import transition_has_hazard

        cache = HazardCache()
        lsop = analyze_cover(
            Cover.from_strings(["sa", "s'b"], NAMES), NAMES
        ).lsop
        for start in range(8):
            for end in range(8):
                if start == end:
                    continue
                assert cache.transition_has_hazard(
                    lsop, start, end
                ) == transition_has_hazard(lsop, start, end)

    def test_clear_resets(self):
        cache = HazardCache()
        cache.expression_analysis(parse("a*b"), ["a", "b"])
        assert len(cache) > 0
        cache.clear()
        assert len(cache) == 0
        assert cache.stats.total_hits == 0 and cache.stats.total_misses == 0

    def test_global_cache_is_shared_and_clearable(self):
        clear_global_cache()
        assert len(global_cache()) == 0
        global_cache().expression_analysis(parse("a+b"), ["a", "b"])
        assert len(global_cache()) == 1
        clear_global_cache()
        assert len(global_cache()) == 0


class TestDiskAnnotationCache:
    def test_cold_then_disk_round_trip(self, tmp_path):
        cold_lib = cmos3.__wrapped__()
        cold = cold_lib.annotate_hazards(exhaustive=True, cache_dir=tmp_path)
        assert cold.source == "cold" and not cold.warm

        warm_lib = cmos3.__wrapped__()
        warm = warm_lib.annotate_hazards(exhaustive=True, cache_dir=tmp_path)
        assert warm.source == "disk" and warm.warm
        assert warm.cells == cold.cells and warm.hazardous == cold.hazardous

        for cold_cell, warm_cell in zip(cold_lib.cells, warm_lib.cells):
            assert cold_cell.name == warm_cell.name
            assert summaries_equal(cold_cell.analysis, warm_cell.analysis)
            assert (cold_cell.analysis.verdicts is None) == (
                warm_cell.analysis.verdicts is None
            )
            if cold_cell.analysis.verdicts is not None:
                assert cold_cell.analysis.verdicts == warm_cell.analysis.verdicts

    def test_memory_short_circuit(self, tmp_path):
        library = cmos3.__wrapped__()
        library.annotate_hazards(exhaustive=True, cache_dir=tmp_path)
        again = library.annotate_hazards(exhaustive=True, cache_dir=tmp_path)
        assert again.source == "memory" and again.elapsed == 0.0

    def test_corrupt_file_is_rebuilt(self, tmp_path):
        library = cmos3.__wrapped__()
        library.annotate_hazards(exhaustive=True, cache_dir=tmp_path)
        path = anncache.annotation_path(library, True, tmp_path)
        assert path.exists()
        path.write_bytes(b"not a json payload {")

        rebuilt = cmos3.__wrapped__()
        report = rebuilt.annotate_hazards(exhaustive=True, cache_dir=tmp_path)
        assert report.source == "cold"  # fell back silently
        # ... and the store was repaired: a third load hits disk again.
        third = cmos3.__wrapped__()
        assert (
            third.annotate_hazards(exhaustive=True, cache_dir=tmp_path).source
            == "disk"
        )

    def test_stale_fingerprint_is_rebuilt(self, tmp_path):
        library = cmos3.__wrapped__()
        library.annotate_hazards(exhaustive=True, cache_dir=tmp_path)
        path = anncache.annotation_path(library, True, tmp_path)
        data = json.loads(path.read_text())
        data["fingerprint"] = "0" * 64
        path.write_text(json.dumps(data))

        rebuilt = cmos3.__wrapped__()
        report = rebuilt.annotate_hazards(exhaustive=True, cache_dir=tmp_path)
        assert report.source == "cold"

    def test_flavour_mismatch_misses(self, tmp_path):
        library = cmos3.__wrapped__()
        library.annotate_hazards(exhaustive=True, cache_dir=tmp_path)
        other = cmos3.__wrapped__()
        report = other.annotate_hazards(exhaustive=False, cache_dir=tmp_path)
        # Different flavour lives at a different path: cold, not disk.
        assert report.source == "cold"

    def test_refresh_forces_cold(self, tmp_path):
        library = cmos3.__wrapped__()
        library.annotate_hazards(exhaustive=True, cache_dir=tmp_path)
        report = library.annotate_hazards(
            exhaustive=True, cache_dir=tmp_path, refresh=True
        )
        assert report.source == "cold"

    def test_env_toggle_off_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_ANNOTATION_CACHE", raising=False)
        assert anncache.resolve_cache_dir(None) is None

    def test_env_toggle_values(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_ANNOTATION_CACHE", "0")
        assert anncache.resolve_cache_dir(None) is None
        monkeypatch.setenv("REPRO_ANNOTATION_CACHE", "1")
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert anncache.resolve_cache_dir(None) == tmp_path
        monkeypatch.setenv("REPRO_ANNOTATION_CACHE", str(tmp_path / "custom"))
        assert anncache.resolve_cache_dir(None) == tmp_path / "custom"

    def test_disabled_sentinel_beats_env_toggle(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_ANNOTATION_CACHE", "1")
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert anncache.resolve_cache_dir(anncache.DISABLED) is None
        # An annotation run with the sentinel must stay hermetic.
        library = cmos3.__wrapped__()
        report = library.annotate_hazards(
            exhaustive=True, cache_dir=anncache.DISABLED
        )
        assert report.source == "cold" and report.cache_path is None
        assert anncache.cache_entries(tmp_path) == []

    def test_payload_is_data_only_json(self, tmp_path):
        library = cmos3.__wrapped__()
        library.annotate_hazards(exhaustive=True, cache_dir=tmp_path)
        path = anncache.annotation_path(library, True, tmp_path)
        data = json.loads(path.read_text())  # parses as plain JSON
        assert data["cache_version"] == anncache.CACHE_VERSION
        assert set(data["analyses"]) == {c.name for c in library.cells}

    def test_entries_and_clear(self, tmp_path):
        library = cmos3.__wrapped__()
        library.annotate_hazards(exhaustive=True, cache_dir=tmp_path)
        assert len(anncache.cache_entries(tmp_path)) == 1
        assert anncache.clear_annotation_cache(tmp_path) == 1
        assert anncache.cache_entries(tmp_path) == []

    def test_clear_sweeps_legacy_pickle_payloads(self, tmp_path):
        legacy = tmp_path / "annotations" / "v1" / "CMOS3-x-0123456789abcdef.pkl"
        legacy.parent.mkdir(parents=True)
        legacy.write_bytes(b"legacy pickled payload")
        assert anncache.cache_entries(tmp_path) == [legacy]
        assert anncache.clear_annotation_cache(tmp_path) == 1
        assert not legacy.exists()


class TestMappingConsistency:
    @pytest.fixture
    def mux_net(self):
        return Netlist.from_equations(MUX)

    def result_key(self, result):
        return (result.area, result.delay, result.cell_usage())

    def test_cold_memo_disk_mappings_agree(self, tmp_path, mux_net):
        clear_global_cache()
        cold_lib = fresh_teaching_library()
        cold = async_tmap(
            mux_net,
            cold_lib,
            MappingOptions(annotation_cache_dir=str(tmp_path)),
        )
        assert cold.annotation_report.source == "cold"

        # Memo-warm: same process, hazard cache primed.
        memo = async_tmap(mux_net, fresh_teaching_library(), MappingOptions())
        assert memo.stats.cache_hits > 0
        assert memo.stats.subset_cache_misses == 0

        # Disk-warm: annotations replayed from the cache directory.
        disk = async_tmap(
            mux_net,
            fresh_teaching_library(),
            MappingOptions(annotation_cache_dir=str(tmp_path)),
        )
        assert disk.annotation_report.source == "disk"

        assert self.result_key(cold) == self.result_key(memo)
        assert self.result_key(cold) == self.result_key(disk)
        clear_global_cache()

    def test_filter_verdicts_survive_cache_round_trips(self, tmp_path, mux_net):
        """The screened-cell decision (MUX21 admitted) is identical on
        every warm path."""
        clear_global_cache()
        for options in (
            MappingOptions(),
            MappingOptions(),  # memo-warm second pass
            MappingOptions(annotation_cache_dir=str(tmp_path)),
            MappingOptions(annotation_cache_dir=str(tmp_path)),
        ):
            result = async_tmap(mux_net, fresh_teaching_library(), options)
            assert result.stats.hazard_accepts >= 1
            assert "MUX21" in result.cell_usage()
        clear_global_cache()
