"""Witness materialization and event-simulator replay, all four classes.

Every §4 hazard record must be able to produce a concrete input burst
(:class:`~repro.hazards.witness.HazardWitness`) that *provably glitches*
when replayed on :mod:`repro.network.eventsim` — the property that turns
the explain layer's rejection reasons into evidence.

Exemplars (each the canonical textbook instance of its class):

* static-1       — ``ab + a'c`` (the uncovered consensus ``bc``);
* static-0       — ``(a+b)*(a'+c)`` (vacuous term ``a·a'`` pulses);
* dynamic m.i.c. — the Figure-8 cover ``w'xz + w'xy + xyz``;
* dynamic s.i.c. — ``s*a + s'*(b + s*c)``, whose distributed labelled
  form keeps a *private* raising path ``s#2`` (path sharing would
  otherwise mask the pulse — see test below).
"""

from __future__ import annotations

import pytest

from repro.boolean.cover import Cover
from repro.boolean.expr import parse
from repro.boolean.paths import label_cover, label_expression
from repro.hazards.analyzer import analyze_cover, analyze_expression
from repro.hazards.multilevel import transition_has_hazard
from repro.hazards.witness import (
    ALL_KINDS,
    KIND_MIC,
    KIND_SIC,
    KIND_STATIC0,
    KIND_STATIC1,
    HazardWitness,
    analysis_witnesses,
    glitch_schedule,
    replay_witness,
    verify_witness,
    witness_for_record,
    witness_netlist,
)


def _witnesses_of_kind(analysis, kind):
    return [
        (record, witness)
        for record, witness in analysis_witnesses(analysis)
        if witness.kind == kind
    ]


class TestStatic1Witness:
    def test_witness_replays_to_glitch(self):
        analysis = analyze_expression(parse("a*b + a'*c"))
        pairs = _witnesses_of_kind(analysis, KIND_STATIC1)
        assert pairs
        for record, witness in pairs:
            assert witness.expected_changes == 0
            replay = replay_witness(analysis.lsop, witness)
            assert replay.glitched, replay.describe()
            assert replay.changes > 0
            assert replay.expected == 0

    def test_record_transition_confirmed_by_lattice(self):
        analysis = analyze_expression(parse("a*b + a'*c"))
        for record, witness in _witnesses_of_kind(analysis, KIND_STATIC1):
            assert transition_has_hazard(
                analysis.lsop, witness.start, witness.end
            )


class TestStatic0Witness:
    def test_witness_replays_to_glitch(self):
        analysis = analyze_expression(parse("(a + b)*(a' + c)"))
        pairs = _witnesses_of_kind(analysis, KIND_STATIC0)
        assert pairs
        for record, witness in pairs:
            assert witness.expected_changes == 0
            replay = replay_witness(analysis.lsop, witness)
            assert replay.glitched, replay.describe()


class TestMicDynamicWitness:
    def test_witness_replays_to_glitch(self):
        cover = Cover.from_strings(
            ["w'xz", "w'xy", "xyz"], ["w", "x", "y", "z"]
        )
        analysis = analyze_cover(cover, ["w", "x", "y", "z"])
        pairs = _witnesses_of_kind(analysis, KIND_MIC)
        assert pairs
        for record, witness in pairs:
            assert witness.expected_changes == 1
            replay = replay_witness(analysis.lsop, witness)
            assert replay.glitched, replay.describe()
            assert replay.changes > 1


class TestSicDynamicWitness:
    def test_witness_replays_to_glitch(self):
        # The private-raising-path exemplar: s#2 appears in exactly one
        # product, so the vacuous pulse is not masked by path sharing.
        analysis = analyze_expression(parse("s*a + s'*(b + s*c)"))
        assert analysis.summary().sic_dynamic >= 1
        pairs = _witnesses_of_kind(analysis, KIND_SIC)
        assert pairs
        for record, witness in pairs:
            assert witness.expected_changes == 1
            replay = replay_witness(analysis.lsop, witness)
            assert replay.glitched, replay.describe()

    def test_shared_path_masking_is_respected(self):
        # (s+b)*(s'+a) distributes with SHARED path ids: the vacuous
        # term's raising path s#0 also raises product s#0·a#0, which
        # masks the pulse.  No s.i.c.-dynamic witness may be invented.
        analysis = analyze_expression(parse("(s + b)*(s' + a)"))
        assert not _witnesses_of_kind(analysis, KIND_SIC)


class TestWitnessInfrastructure:
    def test_all_kinds_covered_by_exemplars(self):
        # The four classes above are exactly the ALL_KINDS contract.
        assert set(ALL_KINDS) == {
            KIND_STATIC1,
            KIND_STATIC0,
            KIND_MIC,
            KIND_SIC,
        }

    def test_round_trip_dict(self):
        analysis = analyze_expression(parse("s'*a + s*b"))
        _, witness = analysis_witnesses(analysis)[0]
        clone = HazardWitness.from_dict(witness.to_dict())
        assert clone == witness
        assert clone.transition_string() == witness.transition_string()

    def test_verify_witness_true_for_real_witnesses(self):
        analysis = analyze_expression(parse("s'*a + s*b"))
        for _, witness in analysis_witnesses(analysis):
            assert verify_witness(analysis.lsop, witness)

    def test_glitch_schedule_none_for_clean_transition(self):
        # a: 0 -> 1 on a plain AND is monotone and hazard-free.
        lsop = label_expression(parse("a*b"))
        assert glitch_schedule(lsop, 0b10, 0b11) is None

    def test_witness_netlist_matches_function(self):
        lsop = label_expression(parse("s*a + s'*(b + s*c)"))
        netlist, wires = witness_netlist(lsop)
        netlist.validate()
        plain = lsop.plain_cover()
        for point in range(1 << lsop.nvars):
            values = {
                name: bool(point >> i & 1)
                for i, name in enumerate(lsop.names)
            }
            assert netlist.evaluate(values)["f"] == plain.evaluate(point)

    def test_witness_for_record_skips_masked_candidates(self):
        # Candidates that do not glitch under the lattice semantics are
        # filtered; whatever comes back must replay to a glitch.
        analysis = analyze_expression(parse("(a + b)*(a' + c)"))
        for record, witness in analysis_witnesses(analysis):
            confirmed = witness_for_record(record, analysis)
            assert confirmed is not None
            assert transition_has_hazard(
                analysis.lsop, confirmed.start, confirmed.end
            )

    def test_per_class_cap(self):
        cover = Cover.from_strings(
            ["w'xz", "w'xy", "xyz"], ["w", "x", "y", "z"]
        )
        analysis = analyze_cover(cover, ["w", "x", "y", "z"])
        capped = analysis_witnesses(analysis, per_class=1)
        kinds = [witness.kind for _, witness in capped]
        assert len(kinds) == len(set(kinds))  # at most one per class
