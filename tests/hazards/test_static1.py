"""Tests for static-1 hazard analysis (paper section 4.1.1)."""

from hypothesis import given, settings

from repro.boolean.cover import Cover
from repro.boolean.cube import Cube
from repro.hazards.static1 import (
    exhibits_static1,
    find_sic_static1_hazards,
    find_static1_hazards,
    find_static1_hazards_complete,
    has_static1_hazard,
    static1_subset,
)

from ..conftest import cover_strategy

NAMES = ["a", "b", "c", "d"]
MUXN = ["s", "a", "b"]


class TestClassicCases:
    def test_mux_missing_consensus(self):
        cover = Cover.from_strings(["sa", "s'b"], MUXN)
        hazards = find_static1_hazards(cover)
        assert len(hazards) == 1
        assert hazards[0].transition.to_string(MUXN) == "ab"

    def test_mux_with_consensus_is_clean(self):
        cover = Cover.from_strings(["sa", "s'b", "ab"], MUXN)
        assert not find_static1_hazards(cover)
        assert not has_static1_hazard(cover)

    def test_figure2a_uncovered_transition(self):
        # Figure 2a: f = wx + yz-ish example where a 1-1 transition is
        # not covered by a single gate.
        names = ["w", "x", "y", "z"]
        cover = Cover.from_strings(["w'x", "xyz", "wz"], names)
        # Transition w'xyz -> wxyz is covered by xyz... remove it:
        cover2 = Cover.from_strings(["w'x", "wz"], names)
        t = Cube.from_string("xyz", names)
        assert cover2.contains_cube(t)
        assert exhibits_static1(cover2, t)
        assert not exhibits_static1(cover, t)

    def test_nonprime_cube_expansion_flags_missing_prime(self):
        # Both cubes are non-prime fragments of f = a; the prime 'a' is
        # absent, so transitions crossing b are hazardous.
        cover = Cover.from_strings(["ab", "ab'"], NAMES)
        hazards = find_static1_hazards(cover)
        assert any(h.transition.to_string(NAMES) == "a" for h in hazards)

    def test_duplicate_cubes_are_harmless(self):
        cover = Cover.from_strings(["ab", "ab"], NAMES)
        assert not find_static1_hazards(cover)


class TestCompleteness:
    @given(cover_strategy(4))
    @settings(max_examples=60, deadline=None)
    def test_paper_algorithm_agrees_with_complete_on_existence(self, cover):
        # The bit-vector algorithm and the uncovered-primes census must
        # agree on whether any static-1 hazard exists.
        fast = bool(find_static1_hazards(cover))
        complete = bool(find_static1_hazards_complete(cover))
        assert fast == complete

    @given(cover_strategy(4))
    @settings(max_examples=60, deadline=None)
    def test_reported_hazards_are_real(self, cover):
        for hazard in find_static1_hazards(cover):
            assert cover.contains_cube(hazard.transition)  # implicant
            assert exhibits_static1(cover, hazard.transition)

    @given(cover_strategy(4))
    @settings(max_examples=60, deadline=None)
    def test_complete_hazards_are_uncovered_primes(self, cover):
        for hazard in find_static1_hazards_complete(cover):
            assert cover.is_prime(hazard.transition)
            assert not cover.single_cube_contains(hazard.transition)


class TestSicVariant:
    def test_sic_subset_of_full(self):
        cover = Cover.from_strings(["sa", "s'b"], MUXN)
        sic = find_sic_static1_hazards(cover)
        assert len(sic) == 1

    @given(cover_strategy(4))
    @settings(max_examples=40, deadline=None)
    def test_sic_hazards_also_found_by_full_analysis(self, cover):
        full = {h.transition for h in find_static1_hazards(cover)}
        for hazard in find_sic_static1_hazards(cover):
            assert hazard.transition in full


class TestSubsetCriterion:
    def test_complete_sum_has_fewest_hazards(self):
        cover = Cover.from_strings(["sa", "s'b"], MUXN)
        full = Cover(cover.all_primes(), 3)
        # hazards(full) ⊆ hazards(cover): every cube of cover is inside
        # a single cube of full.
        assert static1_subset(full, cover)
        assert not static1_subset(cover, full)

    @given(cover_strategy(4))
    @settings(max_examples=40, deadline=None)
    def test_subset_criterion_reflexive(self, cover):
        assert static1_subset(cover, cover)

    @given(cover_strategy(4))
    @settings(max_examples=40, deadline=None)
    def test_prime_cover_is_minimal(self, cover):
        full = Cover(cover.all_primes(), 4)
        assert static1_subset(full, cover)
