"""Tests for hazard record types: remapping, descriptions, summaries."""

from repro.boolean.cover import Cover
from repro.boolean.cube import Cube
from repro.hazards.types import (
    HazardSummary,
    MicDynamicHazard,
    SicDynamicHazard,
    Static0Hazard,
    Static1Hazard,
)

NAMES = ["a", "b", "c", "d"]


class TestStatic1Record:
    def test_remap(self):
        hazard = Static1Hazard(Cube.from_string("ab", NAMES))
        remapped = hazard.remap([2, 3, 0, 1], 4)
        assert remapped.transition.to_string(NAMES) == "cd"

    def test_describe(self):
        hazard = Static1Hazard(Cube.from_string("ab", NAMES))
        assert "static-1" in hazard.describe(NAMES)
        assert "ab" in hazard.describe(NAMES)


class TestStatic0AndSicRecords:
    def test_remap_moves_var_and_condition(self):
        condition = Cover.from_strings(["c"], NAMES)
        hazard = Static0Hazard(0, Cube.from_string("c", NAMES), condition)
        remapped = hazard.remap([1, 0, 3, 2], 4)
        assert remapped.var == 1
        assert remapped.residual.to_string(NAMES) == "d"

    def test_sic_describe_names_variable(self):
        condition = Cover.from_strings(["b"], NAMES)
        hazard = SicDynamicHazard(2, Cube.from_string("b", NAMES), condition)
        text = hazard.describe(NAMES)
        assert "s.i.c." in text and "c" in text


class TestMicDynamicRecord:
    def test_space_is_supercube(self):
        hazard = MicDynamicHazard(0b0001, 0b0111, 4)
        assert hazard.space.to_pattern() == "1--0"

    def test_remap_points(self):
        hazard = MicDynamicHazard(0b0001, 0b0011, 4)
        remapped = hazard.remap([3, 2, 1, 0], 4)
        assert remapped.start == 0b1000
        assert remapped.end == 0b1100

    def test_describe_shows_endpoints(self):
        hazard = MicDynamicHazard(0b0001, 0b0011, 4)
        text = hazard.describe(NAMES)
        assert "->" in text


class TestSummary:
    def test_hazard_free(self):
        summary = HazardSummary(0, 0, 0, 0)
        assert summary.hazard_free
        assert str(summary) == "hazard-free"

    def test_totals_and_str(self):
        summary = HazardSummary(1, 2, 3, 4)
        assert summary.total == 10
        assert "s1=1" in str(summary)
