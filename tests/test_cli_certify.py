"""End-to-end coverage of ``repro certify`` and the ``--certify`` flags.

Includes the acceptance gate for the conformance subsystem: the full
Table-5 catalog mapped onto CMOS3 must re-certify with zero rejections.
"""

from __future__ import annotations

import json

import pytest

from repro.burstmode.benchmarks import TABLE5_ORDER
from repro.cli import main
from repro.obs.export import load_certificate


@pytest.fixture(scope="module")
def ann_cache(tmp_path_factory) -> str:
    return str(tmp_path_factory.mktemp("anncache"))


def certify(*args, ann_cache=None):
    extra = ["--cache-dir", ann_cache] if ann_cache else ["--no-cache"]
    return main(["certify", *args, *extra])


class TestCertifyCommand:
    def test_full_catalog_certifies_with_zero_rejections(
        self, ann_cache, capsys
    ):
        assert certify(ann_cache=ann_cache) == 0
        out = capsys.readouterr().out
        assert f"all {len(TABLE5_ORDER)} design(s) certified" in out
        assert out.count("CERTIFIED") == len(TABLE5_ORDER)
        assert "REJECTED" not in out

    def test_json_certificate_is_loadable(self, tmp_path, ann_cache, capsys):
        path = tmp_path / "cert.json"
        code = certify(
            "chu-ad-opt", "--json", str(path), ann_cache=ann_cache
        )
        assert code == 0
        certificate = load_certificate(path)
        assert certificate["verdict"] == "certified"
        assert certificate["design"] == "chu-ad-opt"

    def test_multi_design_json_envelope(self, tmp_path, ann_cache):
        path = tmp_path / "certs.json"
        code = certify(
            "chu-ad-opt", "vanbek-opt", "--json", str(path),
            ann_cache=ann_cache,
        )
        assert code == 0
        envelope = load_certificate(path)
        assert set(envelope["certificates"]) == {"chu-ad-opt", "vanbek-opt"}

    def test_certify_mapped_blif_file(self, tmp_path, ann_cache, capsys):
        blif = tmp_path / "chu.blif"
        assert main(
            ["map", "chu-ad-opt", "CMOS3", "--depth", "3",
             "--cache-dir", ann_cache, "--output", str(blif)]
        ) == 0
        capsys.readouterr()
        code = certify(
            "chu-ad-opt", "--mapped", str(blif), ann_cache=ann_cache
        )
        assert code == 0
        assert "CERTIFIED" in capsys.readouterr().out

    def test_wrong_mapped_blif_is_rejected(self, tmp_path, ann_cache, capsys):
        blif = tmp_path / "vanbek.blif"
        assert main(
            ["map", "vanbek-opt", "CMOS3", "--depth", "3",
             "--cache-dir", ann_cache, "--output", str(blif)]
        ) == 0
        capsys.readouterr()
        code = certify(
            "chu-ad-opt", "--mapped", str(blif), ann_cache=ann_cache
        )
        assert code == 1
        captured = capsys.readouterr()
        assert "REJECTED" in captured.out + captured.err

    def test_unknown_design_exits_2(self, capsys):
        assert certify("no-such-design") == 2

    def test_mapped_needs_exactly_one_design(self, tmp_path, capsys):
        assert certify(
            "chu-ad-opt", "vanbek-opt", "--mapped", str(tmp_path / "x.blif")
        ) == 2


class TestCertifyFlags:
    def test_map_certify_flag(self, ann_cache, capsys):
        code = main(
            ["map", "chu-ad-opt", "CMOS3", "--depth", "3",
             "--cache-dir", ann_cache, "--certify"]
        )
        assert code == 0
        assert "certify: CERTIFIED" in capsys.readouterr().out

    def test_batch_certify_flag(self, ann_cache, capsys):
        code = main(
            ["batch", "chu-ad-opt", "vanbek-opt",
             "--backend", "serial", "--depth", "3",
             "--cache-dir", ann_cache, "--certify"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "certifying mapped networks:" in out
        assert out.count("CERTIFIED") == 2
