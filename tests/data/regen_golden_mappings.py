#!/usr/bin/env python
"""Regenerate ``tests/data/golden_mappings.json``.

Usage (from the repo root)::

    PYTHONPATH=src python tests/data/regen_golden_mappings.py

Maps every burst-mode catalog benchmark onto CMOS3 with the async
mapper at the default depth and records, per benchmark, the mapped
area, total cell count, per-cell usage, and the ``verify_mapping``
verdict.  ``tests/integration/test_golden_mapping.py`` pins the mapper
against this file, so regenerate it ONLY when a mapper change is meant
to alter results — and say why in the commit that updates it.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

HERE = Path(__file__).resolve().parent
sys.path.insert(0, str(HERE.parent.parent / "src"))

from repro.burstmode.benchmarks import TABLE5_ORDER, synthesize_benchmark
from repro.hazards.cache import clear_global_cache
from repro.library.standard import load_library
from repro.mapping.mapper import MappingOptions, async_tmap
from repro.mapping.verify import verify_mapping

GOLDEN_PATH = HERE / "golden_mappings.json"
LIBRARY = "CMOS3"


def golden_entry(result, report) -> dict:
    return {
        "area": result.area,
        "cells": int(sum(result.cell_usage().values())),
        "cell_usage": {k: int(v) for k, v in sorted(result.cell_usage().items())},
        "verify": {
            "equivalent": bool(report.equivalent),
            "hazard_safe": bool(report.hazard_safe),
            "ok": bool(report.ok),
        },
    }


def main() -> int:
    library = load_library(LIBRARY)
    library.annotate_hazards()
    clear_global_cache()
    golden: dict[str, dict] = {}
    for name in TABLE5_ORDER:
        network = synthesize_benchmark(name).netlist(name)
        result = async_tmap(network, library, MappingOptions())
        report = verify_mapping(network, result.mapped)
        golden[name] = golden_entry(result, report)
        print(
            f"{name}: area={result.area:.0f} cells={golden[name]['cells']} "
            f"verify_ok={report.ok}"
        )
    payload = {"library": LIBRARY, "benchmarks": golden}
    GOLDEN_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"wrote {GOLDEN_PATH}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
