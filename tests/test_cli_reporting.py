"""Tests for the CLI and the table renderer."""

import pytest

from repro.cli import main
from repro.reporting import render_table


class TestRenderTable:
    def test_basic_shape(self):
        text = render_table(["A", "Bee"], [(1, 2.5), ("xy", 123.0)], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert lines[1].startswith("+")
        assert "| A " in lines[2]
        widths = {len(line) for line in lines[1:]}
        assert len(widths) == 1  # perfectly aligned

    def test_float_formatting(self):
        text = render_table(["x"], [(1234.5,), (12.34,), (1.234,)])
        assert "1234" in text and "12.3" in text and "1.23" in text


class TestCli:
    def test_bench_lists_catalog(self, capsys):
        assert main(["bench"]) == 0
        out = capsys.readouterr().out
        assert "dean-ctrl" in out and "scsi" in out

    def test_map_benchmark_with_verify(self, capsys):
        assert main(["map", "dme", "CMOS3", "--verify"]) == 0
        out = capsys.readouterr().out
        assert "hazard_safe=True" in out

    def test_map_sync_flag(self, capsys):
        assert main(["map", "chu-ad-opt", "CMOS3", "--sync"]) == 0
        assert "sync mapping" in capsys.readouterr().out

    def test_map_dont_cares(self, capsys):
        assert main(["map", "dme-fast", "ACTEL", "--dont-cares"]) == 0
        out = capsys.readouterr().out
        assert "waived" in out

    def test_map_equation_file(self, tmp_path, capsys):
        path = tmp_path / "design.eqn"
        path.write_text(".inputs s a b\nf = s*a + s'*b + a*b;\n")
        assert main(["map", str(path), "CMOS3", "--verify"]) == 0
        assert "hazard_safe=True" in capsys.readouterr().out

    def test_map_writes_blif(self, tmp_path, capsys):
        out_path = tmp_path / "mapped.blif"
        assert main(["map", "dme", "CMOS3", "--output", str(out_path)]) == 0
        text = out_path.read_text()
        assert ".model" in text and ".names" in text

    def test_audit_mini_path(self, capsys):
        assert main(["audit", "CMOS3"]) == 0
        out = capsys.readouterr().out
        assert "MUX21" in out

    def test_audit_prints_confirmed_witnesses(self, capsys):
        assert main(["audit", "CMOS3"]) == 0
        out = capsys.readouterr().out
        # Each hazardous cell carries a replayed, oracle-cross-checked
        # witness transition.
        assert "witness [static-1]" in out
        assert "eventsim glitched, oracle hazard (confirmed)" in out
        assert "MISMATCH" not in out

    def test_map_explain_writes_valid_payload(self, tmp_path, capsys):
        from repro.obs.explain import validate_explain_payload
        from repro.obs.export import load_explain

        path = tmp_path / "design.eqn"
        path.write_text(".inputs s a b\nf = s*a + s'*b + a*b;\n")
        out_path = tmp_path / "explain.json"
        assert (
            main(["map", str(path), "CMOS3", "--explain", str(out_path)]) == 0
        )
        out = capsys.readouterr().out
        assert "explain:" in out and str(out_path) in out
        payload = load_explain(out_path)
        summary = validate_explain_payload(payload)
        assert summary["rejected_hazard"] >= 1

    def test_map_explain_default_path(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main(["map", "dme", "CMOS3", "--explain", "--no-cache"]) == 0
        out = capsys.readouterr().out
        assert "dme_explain.json" in out
        assert (tmp_path / "dme_explain.json").exists()

    def test_explain_subcommand_renders_log(self, tmp_path, capsys):
        path = tmp_path / "design.eqn"
        path.write_text(".inputs s a b\nf = s*a + s'*b + a*b;\n")
        out_path = tmp_path / "explain.json"
        assert (
            main(["map", str(path), "CMOS3", "--explain", str(out_path)]) == 0
        )
        capsys.readouterr()
        assert main(["explain", str(out_path), "--rejected-only"]) == 0
        out = capsys.readouterr().out
        assert "MUX21" in out
        assert "rejected-hazard" in out
        assert "cell witness:" in out

    def test_explain_subcommand_on_the_fly(self, capsys):
        assert main(["explain", "dme", "--library", "CMOS3"]) == 0
        out = capsys.readouterr().out
        assert "dme onto CMOS3" in out
        assert "candidates over" in out

    def test_explain_subcommand_bad_source(self, capsys):
        assert main(["explain", "no-such-thing"]) == 2
        assert "not an explain JSON" in capsys.readouterr().err

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_map_workers_flag(self, capsys):
        assert main(["map", "dme", "CMOS3", "--workers", "4", "--no-cache"]) == 0
        out = capsys.readouterr().out
        assert "4 workers" in out
        assert "cones" in out

    def test_map_cache_dir_cold_then_warm(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "ann")
        # Fresh (uncached) library instances so annotation really runs.
        from repro.library.standard import cmos3

        cmos3.cache_clear()
        assert main(["map", "dme", "CMOS3", "--cache-dir", cache_dir]) == 0
        cold_out = capsys.readouterr().out
        assert "annotation: cold" in cold_out

        cmos3.cache_clear()
        assert main(["map", "dme", "CMOS3", "--cache-dir", cache_dir]) == 0
        warm_out = capsys.readouterr().out
        assert "annotation: disk" in warm_out
        assert "cold pass was" in warm_out
        cmos3.cache_clear()

    def test_no_cache_overrides_env_toggle(self, tmp_path, monkeypatch, capsys):
        # --no-cache must stay hermetic even with the env toggle set.
        from repro.library.standard import cmos3

        monkeypatch.setenv("REPRO_ANNOTATION_CACHE", "1")
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        cmos3.cache_clear()
        assert main(["map", "dme", "CMOS3", "--no-cache"]) == 0
        assert "annotation: cold" in capsys.readouterr().out
        assert not (tmp_path / "annotations").exists()
        cmos3.cache_clear()

    def test_cache_subcommand_lists_and_clears(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "ann")
        from repro.library.standard import cmos3

        cmos3.cache_clear()
        assert main(["map", "dme", "CMOS3", "--cache-dir", cache_dir]) == 0
        capsys.readouterr()
        assert main(["cache", "--cache-dir", cache_dir]) == 0
        assert "1 entrie(s)" in capsys.readouterr().out
        assert main(["cache", "--cache-dir", cache_dir, "--clear"]) == 0
        assert "cleared 1" in capsys.readouterr().out
        assert main(["cache", "--cache-dir", cache_dir]) == 0
        assert "0 entrie(s)" in capsys.readouterr().out
        cmos3.cache_clear()
