"""Tests for cells, libraries, and the hazard-annotation pass."""

import pytest

from repro.boolean import truthtable as tt
from repro.library.cell import LibraryCell
from repro.library.library import Library


class TestLibraryCell:
    def test_from_text_defaults(self):
        cell = LibraryCell.from_text("AOI21", "(a*b + c)'", delay=1.2)
        assert cell.pins == ["a", "b", "c"]
        assert cell.area == 3.0  # pulldown transistor count

    def test_explicit_pin_order(self):
        cell = LibraryCell.from_text(
            "MUX", "s'*a + s*b", delay=1.0, pins=["s", "a", "b"]
        )
        assert cell.pins == ["s", "a", "b"]

    def test_undeclared_pin_rejected(self):
        with pytest.raises(ValueError):
            LibraryCell.from_text("BAD", "a*b", delay=1.0, pins=["a"])

    def test_truth_table_matches_expression(self):
        cell = LibraryCell.from_text("OAI21", "((a + b)*c)'", delay=1.0)
        table = cell.truth_table()
        for point in range(8):
            env = {p: bool(point >> i & 1) for i, p in enumerate(cell.pins)}
            assert tt.evaluate(table, point) == cell.expression.evaluate(env)

    def test_is_hazardous_requires_annotation(self):
        cell = LibraryCell.from_text("AND2", "a*b", delay=1.0)
        with pytest.raises(RuntimeError):
            __ = cell.is_hazardous
        cell.annotate()
        assert not cell.is_hazardous

    def test_mux_cell_is_hazardous(self):
        cell = LibraryCell.from_text("MUX21", "s'*a + s*b", delay=1.0)
        cell.annotate()
        assert cell.is_hazardous


class TestLibrary:
    def make_library(self):
        return Library.from_spec(
            "T",
            [
                ("INV", "a'", None, 0.5),
                ("AND2", "a*b", None, 1.0),
                ("OR2", "a + b", None, 1.0),
                ("MUX21", "s'*a + s*b", None, 1.5, "mux"),
            ],
        )

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            Library.from_spec(
                "D", [("X", "a", None, 1.0), ("X", "a'", None, 1.0)]
            )

    def test_by_pin_count(self):
        lib = self.make_library()
        assert {c.name for c in lib.by_pin_count(2)} == {"AND2", "OR2"}
        assert {c.name for c in lib.by_pin_count(3)} == {"MUX21"}

    def test_candidates_signature_filter(self):
        lib = self.make_library()
        and_table = tt.from_callable(lambda p: p == 3, 2)
        names = {c.name for c in lib.candidates(and_table, 2)}
        assert "AND2" in names
        assert "OR2" not in names

    def test_annotation_report(self):
        lib = self.make_library()
        report = lib.annotate_hazards()
        assert report.cells == 4
        assert report.hazardous == 1
        assert report.hazardous_fraction == pytest.approx(0.25)
        assert lib.annotated

    def test_census(self):
        lib = self.make_library()
        census = lib.census()
        assert census["hazardous"] == 1
        assert census["total"] == 4
        assert census["hazardous_families"] == ["mux"]

    def test_cell_lookup(self):
        lib = self.make_library()
        assert lib.cell("INV").name == "INV"
        with pytest.raises(KeyError):
            lib.cell("MISSING")

    def test_duplicate_error_names_the_cell(self):
        with pytest.raises(ValueError, match="AND2"):
            Library.from_spec(
                "D", [("AND2", "a*b", None, 1.0), ("AND2", "a+b", None, 1.0)]
            )

    def test_name_index_covers_every_cell(self):
        lib = self.make_library()
        for cell in lib:
            assert lib.cell(cell.name) is cell

    def test_build_matching_indexes_is_eager_and_idempotent(self):
        lib = self.make_library()
        lib.build_matching_indexes()
        pins = lib._by_pins
        sigs = lib._signatures
        assert pins is not None and sigs is not None
        lib.build_matching_indexes()  # idempotent: no rebuild
        assert lib._by_pins is pins and lib._signatures is sigs
        assert {c.name for c in lib.by_pin_count(2)} == {"AND2", "OR2"}

    def test_index_lookups_are_consistent_across_threads(self):
        # Regression for a race: the first lazy index build must never
        # expose a partially populated dict to concurrent readers.
        from concurrent.futures import ThreadPoolExecutor

        and_table = tt.from_callable(lambda p: p == 3, 2)

        def probe(lib):
            return (
                {c.name for c in lib.candidates(and_table, 2)},
                {c.name for c in lib.by_pin_count(2)},
            )

        for _ in range(20):
            lib = self.make_library()  # fresh: indexes unbuilt
            with ThreadPoolExecutor(max_workers=8) as pool:
                outcomes = list(pool.map(probe, [lib] * 8))
            for names, by_pins in outcomes:
                assert "AND2" in names and "OR2" not in names
                assert by_pins == {"AND2", "OR2"}
