"""Multi-process safety of the annotation cache.

Regression test for the batch engine's hot spot: several worker
processes annotating the same library into the same cache directory.
Before the temp-then-rename + advisory-lock fix a concurrent reader
could observe a half-written payload (and "repair" the cache by
deleting it); now readers must only ever see a complete JSON document —
either the old payload or the new one, never a torn mix.
"""

from __future__ import annotations

import json
import multiprocessing
import time

from repro.library import anncache
from repro.library.standard import load_library

WRITER_ITERATIONS = 4


def _writer(cache_dir: str, iterations: int) -> None:
    library = load_library("CMOS3")
    for _ in range(iterations):
        # refresh forces a cold re-analysis and a fresh store each lap.
        library.annotate_hazards(cache_dir=cache_dir, refresh=True)


def test_concurrent_writers_never_tear_the_payload(tmp_path):
    context = multiprocessing.get_context("fork")
    writers = [
        context.Process(target=_writer, args=(str(tmp_path), WRITER_ITERATIONS))
        for _ in range(2)
    ]
    for proc in writers:
        proc.start()

    library = load_library("CMOS3")
    path = anncache.annotation_path(library, True, tmp_path)
    observed = 0
    try:
        # The parent is the concurrent reader: poll the payload as fast
        # as it can while both writers hammer it.  ``os.replace``
        # publication means a non-empty file must always parse.
        while any(proc.is_alive() for proc in writers):
            if path.exists():
                text = path.read_text()
                if text:
                    json.loads(text)  # raises on a torn write
                    observed += 1
    finally:
        for proc in writers:
            proc.join(timeout=60)
    assert all(proc.exitcode == 0 for proc in writers)
    # Fork-inherited warm hazard caches can make the writers finish
    # before the loop's first lap; the published payload must still be
    # whole afterwards.
    json.loads(path.read_text())
    observed += 1
    assert observed > 0

    # The surviving payload replays cleanly into a fresh library
    # instance (load_library memoizes, so bypass the lru cache to get
    # an unannotated object) ...
    from repro.library.standard import cmos3

    fresh = cmos3.__wrapped__()
    report = fresh.annotate_hazards(cache_dir=str(tmp_path))
    assert report.source == "disk"
    assert fresh.annotated
    # ... the writers serialized on the advisory lock file ...
    assert path.with_name(path.name + ".lock").exists()
    # ... and no per-PID temp file leaked past its os.replace.
    leftovers = [p for p in path.parent.iterdir() if ".tmp-" in p.name]
    assert leftovers == []


def test_store_is_atomic_under_reload_loop(tmp_path):
    """Single-process sanity: repeated refresh stores keep one valid file."""
    library = load_library("CMOS3")
    for _ in range(3):
        library.annotate_hazards(cache_dir=str(tmp_path), refresh=True)
    path = anncache.annotation_path(library, True, tmp_path)
    payload = json.loads(path.read_text())
    assert payload["library"] == "CMOS3"
    assert anncache.cache_entries(str(tmp_path)) == [path]
