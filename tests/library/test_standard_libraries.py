"""The Table-1 census, on the synthetic standard libraries.

These tests ARE the paper's Table 1: exact element counts, exact
hazardous counts, and the hazardous families (muxes everywhere; AOI/OAI
macros additionally on Actel; nothing on GDT).
"""

import pytest

from repro.hazards.oracle import is_logic_hazard_free
from repro.library.standard import (
    actel_act1,
    cmos3,
    gdt,
    load_library,
    lsi9k,
    minimal_teaching_library,
)

#: Table 1 of the paper.
EXPECTED = {
    "LSI": (86, 12, {"mux"}),
    "CMOS3": (30, 1, {"mux"}),
    "GDT": (72, 0, set()),
    "ACTEL": (84, 24, {"mux", "aoi", "oai"}),
}


@pytest.fixture(scope="module", params=["LSI", "CMOS3", "ACTEL"])
def annotated_library(request):
    library = load_library(request.param)
    if not library.annotated:
        library.annotate_hazards()
    return library


class TestTable1Census:
    def test_element_counts(self):
        for name, (total, __, ___) in EXPECTED.items():
            assert len(load_library(name)) == total, name

    def test_hazardous_counts(self, annotated_library):
        total, hazardous, families = EXPECTED[annotated_library.name]
        census = annotated_library.census()
        assert census["total"] == total
        assert census["hazardous"] == hazardous
        assert set(census["hazardous_families"]) == families

    def test_hazardous_fractions_match_paper(self, annotated_library):
        # LSI 14 %, CMOS3 3 %, Actel 29 % (paper rounds the same way).
        expected_percent = {"LSI": 14, "CMOS3": 3, "ACTEL": 29}
        census = annotated_library.census()
        assert census["percent"] == expected_percent[annotated_library.name]


class TestAnnotationSoundness:
    def test_hazard_free_small_cells_confirmed_by_oracle(self, annotated_library):
        """Every cell the annotation calls hazard-free really is (checked
        exhaustively for enumerable cells)."""
        for cell in annotated_library.cells:
            if cell.num_pins > 5 or cell.is_hazardous:
                continue
            assert is_logic_hazard_free(cell.analysis.lsop), cell.name

    def test_hazardous_cells_confirmed_by_oracle(self, annotated_library):
        for cell in annotated_library.hazardous_cells():
            if cell.num_pins > 5:
                continue
            assert not is_logic_hazard_free(cell.analysis.lsop), cell.name

    def test_mux_hazard_is_the_classic_consensus_gap(self):
        library = load_library("CMOS3")
        if not library.annotated:
            library.annotate_hazards()
        mux = library.cell("MUX21")
        assert mux.analysis is not None
        names = mux.analysis.names
        static1 = {h.transition.to_string(names) for h in mux.analysis.static1}
        assert static1 == {"ab"}


class TestDistinctStructuresSameFunction:
    def test_actel_ao1_vs_cmos_ao21(self):
        """Figure 4's lesson at library level: a·b + c is hazard-free as
        a complementary-CMOS gate, hazardous as an Actel mux macro."""
        actel = load_library("ACTEL")
        lsi = load_library("LSI")
        for library in (actel, lsi):
            if not library.annotated:
                library.annotate_hazards()
        ao1 = actel.cell("AO1")
        ao21 = lsi.cell("AO21")
        # same function...
        import repro.boolean.truthtable as tt

        assert list(
            tt.match_permutations(ao21.truth_table(), ao1.truth_table(), 3)
        )
        # ...different hazard behaviour.
        assert ao1.is_hazardous
        assert not ao21.is_hazardous


class TestMiniLibrary:
    def test_mini_library_annotates(self):
        library = minimal_teaching_library()
        if not library.annotated:
            library.annotate_hazards()
        assert {c.name for c in library.hazardous_cells()} == {"MUX21"}

    def test_load_library_unknown(self):
        with pytest.raises(KeyError):
            load_library("NOPE")
