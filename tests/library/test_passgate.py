"""Tests for the pass-transistor hazard model (section 6 future work)."""

import pytest

from repro.boolean import Cover
from repro.hazards import analyze_cover
from repro.library.passgate import (
    PassGateAnalyzer,
    PassMux,
    PassVerdict,
    act1_style_mux,
    act2_c_module,
)


@pytest.fixture
def mux():
    return PassMux("s", "b", "a")  # s=1 -> b, s=0 -> a


class TestStructure:
    def test_support_partition(self, mux):
        assert mux.selects() == {"s"}
        assert mux.leaves() == {"a", "b"}

    def test_evaluate_is_mux(self, mux):
        assert mux.evaluate({"s": False, "a": True, "b": False})
        assert not mux.evaluate({"s": True, "a": True, "b": False})

    def test_nested_tree(self):
        tree = act2_c_module("s0", "s1", "d0", "d1", "d2", "d3")
        assert tree.selects() == {"s0", "s1"}
        assert tree.leaves() == {"d0", "d1", "d2", "d3"}
        env = {"s0": True, "s1": False, "d0": 0, "d1": 1, "d2": 0, "d3": 0}
        assert tree.evaluate(env)  # selects d1

    def test_missing_name_rejected(self, mux):
        with pytest.raises(ValueError):
            PassGateAnalyzer(mux, names=["s", "a"])


class TestHazardSemantics:
    def test_select_change_equal_data_is_clean(self, mux):
        """The paper's headline difference: charge storage holds the
        output through the float window, so the CMOS mux's classic
        static-1 glitch does not occur in the pass network."""
        analyzer = PassGateAnalyzer(mux)
        idx = analyzer.index
        start = (1 << idx["a"]) | (1 << idx["b"]) | (1 << idx["s"])
        end = start & ~(1 << idx["s"])
        assert analyzer.classify(start, end).verdict is PassVerdict.CLEAN
        # ...whereas the AND-OR structure of the same function is
        # statically hazardous.
        cover = Cover.from_strings(["sb", "s'a"], ["a", "b", "s"])
        assert analyze_cover(cover, ["a", "b", "s"]).static1

    def test_select_change_with_different_data_contends(self, mux):
        analyzer = PassGateAnalyzer(mux)
        idx = analyzer.index
        start = (1 << idx["a"]) | (1 << idx["s"])  # a=1, b=0, s=1
        end = start & ~(1 << idx["s"])
        assert analyzer.classify(start, end).verdict is PassVerdict.CONTENTION

    def test_data_only_changes_are_clean(self, mux):
        analyzer = PassGateAnalyzer(mux)
        idx = analyzer.index
        start = 1 << idx["s"]  # selecting b=0
        end = start | (1 << idx["b"])
        assert analyzer.classify(start, end).verdict is PassVerdict.CLEAN

    def test_unselected_data_change_is_invisible(self, mux):
        analyzer = PassGateAnalyzer(mux)
        idx = analyzer.index
        start = 1 << idx["s"]  # selecting b
        end = start | (1 << idx["a"])  # a changes, not selected
        assert analyzer.classify(start, end).verdict is PassVerdict.CLEAN

    def test_hazard_census_differs_from_cmos(self, mux):
        """Pass networks trade the CMOS static-1 hazards for contention:
        the hazard *classes* differ, which is why the paper says they
        "do not exhibit the same hazard behavior"."""
        analyzer = PassGateAnalyzer(mux)
        verdicts = {t.verdict for t in analyzer.hazardous_transitions()}
        assert verdicts == {PassVerdict.CONTENTION}

    def test_act2_module_contends_only(self):
        analyzer = PassGateAnalyzer(act2_c_module("s0", "s1", "a", "b", "c", "d"))
        # sample a handful of transitions rather than all 4^6
        idx = analyzer.index
        start = (1 << idx["a"]) | (1 << idx["s0"])
        end = start ^ (1 << idx["s0"]) ^ (1 << idx["b"])
        verdict = analyzer.classify(start, end)
        assert verdict.verdict in (PassVerdict.CLEAN, PassVerdict.CONTENTION)

    def test_act1_style_helper(self):
        tree = act1_style_mux("s", "low", "high")
        assert tree.evaluate({"s": True, "low": False, "high": True})
        assert not tree.evaluate({"s": False, "low": False, "high": True})

    def test_function_agrees_with_boolean_mux(self, mux):
        analyzer = PassGateAnalyzer(mux)
        cover = Cover.from_strings(["sb", "s'a"], ["a", "b", "s"])
        for point in range(8):
            env = {n: bool(point >> i & 1) for i, n in enumerate(analyzer.names)}
            assert mux.evaluate(env) == cover.evaluate(point)

    def test_too_wide_transition_rejected(self):
        deep = act2_c_module("s0", "s1", "a", "b", "c", "d")
        wide = PassMux("t", deep, act2_c_module("u0", "u1", "e", "f", "g", "h"))
        analyzer = PassGateAnalyzer(wide)
        with pytest.raises(ValueError):
            analyzer.classify(0, (1 << analyzer.nvars) - 1)
