"""CoverStats aggregation under parallel covering.

Closes the accounting gap noted in the ``cone_seconds`` docstring: all
*work* counters — and hence the metrics registry that absorbs them —
must be identical for ``workers=1`` and ``workers=4``.  Timings are
excluded (wall time is machine state), and hit/miss *splits* within one
cache category are compared as sums: on a cold key two worker threads
can both record a miss (the store is first-writer-wins), so the split
is racy but each lookup still increments exactly one of the pair.
"""

from __future__ import annotations

import pytest

from repro.hazards.cache import clear_global_cache
from repro.mapping.cover import CoverStats
from repro.mapping.mapper import MappingOptions, async_tmap
from repro.network.netlist import Netlist
from repro.obs.metrics import MetricsRegistry

# Two mux cones (hazardous MUX21 matches → filter + caches exercised)
# plus two plain cones, so the pool genuinely interleaves work.
EQUATIONS = {
    "f": "s*a + s'*b",
    "g": "t*c + t'*d",
    "h": "a*b + c",
    "k": "(a + b)*c'",
}

#: Deterministic regardless of worker count: pure work, no cache splits.
WORK_FIELDS = (
    "clusters",
    "matches",
    "hazardous_matches",
    "hazard_rejections",
    "hazard_accepts",
    "dc_waivers",
    "filter_invocations",
    "cones",
)


def run(mini_library, workers: int) -> tuple[CoverStats, MetricsRegistry]:
    clear_global_cache()
    net = Netlist.from_equations(EQUATIONS)
    result = async_tmap(net, mini_library, MappingOptions(workers=workers))
    return result.stats, result.metrics


class TestParallelStatsAggregation:
    def test_work_counters_match_serial(self, mini_library):
        serial, _ = run(mini_library, workers=1)
        threaded, _ = run(mini_library, workers=4)
        for name in WORK_FIELDS:
            assert getattr(threaded, name) == getattr(serial, name), name
        assert serial.hazardous_matches > 0  # the filter actually ran

    def test_cache_lookup_totals_match_serial(self, mini_library):
        serial, _ = run(mini_library, workers=1)
        threaded, _ = run(mini_library, workers=4)
        # Each lookup increments exactly one of (hits, misses); the
        # split may differ under thread races, the sum may not.
        assert (
            threaded.analysis_cache_hits + threaded.analysis_cache_misses
            == serial.analysis_cache_hits + serial.analysis_cache_misses
        )
        assert (
            threaded.subset_cache_hits + threaded.subset_cache_misses
            == serial.subset_cache_hits + serial.subset_cache_misses
        )
        assert serial.subset_cache_hits + serial.subset_cache_misses > 0

    def test_registry_mirrors_merged_stats(self, mini_library):
        for workers in (1, 4):
            stats, registry = run(mini_library, workers)
            back = CoverStats.from_registry(registry)
            for name in CoverStats.COUNTER_FIELDS:
                assert getattr(back, name) == getattr(stats, name), name
            assert back.cone_seconds == pytest.approx(stats.cone_seconds)
            assert registry.gauge("map.workers").value == workers

    def test_cone_seconds_sums_per_cone_time(self, mini_library):
        stats, _ = run(mini_library, workers=4)
        # Four cones, each timed on its own thread; the merged value is
        # the sum (CPU-style accounting), so it is at least positive and
        # bounded by cones * the slowest cone — sanity, not wall time.
        assert stats.cones == len(EQUATIONS)
        assert stats.cone_seconds > 0.0
