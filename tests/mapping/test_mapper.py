"""End-to-end tests of the synchronous and asynchronous mappers."""

import pytest

from repro.library import Library, minimal_teaching_library
from repro.mapping.cover import MappingError
from repro.mapping.mapper import MappingOptions, async_tmap, tmap
from repro.mapping.verify import verify_mapping
from repro.network.netlist import Netlist

HAZARD_FREE_MUX = {"f": "s*a + s'*b + a*b"}


class TestSyncMapper:
    def test_maps_and_preserves_function(self, mini_library):
        net = Netlist.from_equations(HAZARD_FREE_MUX)
        result = tmap(net, mini_library)
        assert result.mapped.equivalent(net)
        assert result.area > 0
        assert result.mode == "sync"

    def test_sync_introduces_hazards_on_redundant_cover(self, mini_library):
        # Figure 3: the cheaper mux cover drops the consensus gate.
        net = Netlist.from_equations(HAZARD_FREE_MUX)
        result = tmap(net, mini_library)
        report = verify_mapping(net, result.mapped)
        assert report.equivalent
        assert not report.hazard_safe

    def test_every_gate_is_a_library_cell(self, mini_library):
        net = Netlist.from_equations({"f": "a*b + c*d'"})
        result = tmap(net, mini_library)
        for gate in result.mapped.gates():
            assert gate.cell is not None
            assert gate.cell in mini_library.cells


class TestAsyncMapper:
    def test_maps_and_verifies_hazard_safe(self, mini_library):
        net = Netlist.from_equations(HAZARD_FREE_MUX)
        result = async_tmap(net, mini_library)
        report = verify_mapping(net, result.mapped)
        assert report.ok, report.violations

    def test_async_keeps_consensus_gate(self, mini_library):
        net = Netlist.from_equations(HAZARD_FREE_MUX)
        sync_result = tmap(net, mini_library)
        async_result = async_tmap(net, mini_library)
        # the async cover cannot be cheaper: it must keep the redundancy
        assert async_result.area >= sync_result.area

    def test_hazardous_cell_used_when_hazards_match(self, mini_library):
        # Source *is* the plain 2-cube mux (it carries the hazard), so
        # the MUX21 cell's hazards are a subset and it may be used.
        net = Netlist.from_equations({"f": "s*a + s'*b"})
        result = async_tmap(net, mini_library)
        report = verify_mapping(net, result.mapped)
        assert report.ok, report.violations
        assert result.stats.hazard_accepts >= 1
        assert "MUX21" in result.cell_usage()

    def test_multiple_outputs(self, mini_library):
        net = Netlist.from_equations(
            {"f": "a*b + c", "g": "a'*c + b*c", "h": "(a + b)*c'"}
        )
        result = async_tmap(net, mini_library)
        assert result.mapped.equivalent(net)
        report = verify_mapping(net, result.mapped)
        assert report.ok, report.violations

    def test_shared_logic_across_outputs(self, mini_library):
        net = Netlist.from_equations({"f": "x + d", "g": "x + e", "x": "a*b"})
        result = async_tmap(net, mini_library)
        assert result.mapped.equivalent(net)

    def test_stats_populated(self, mini_library):
        net = Netlist.from_equations(HAZARD_FREE_MUX)
        result = async_tmap(net, mini_library)
        assert result.stats.clusters > 0
        assert result.stats.matches > 0

    def test_annotation_happens_once(self):
        library = minimal_teaching_library()
        net = Netlist.from_equations({"f": "a*b"})
        first = async_tmap(net, library)
        second = async_tmap(net, library)
        assert second.annotate_elapsed == 0.0 or library.annotated


class TestOptions:
    def test_depth_bound_changes_search(self, mini_library):
        net = Netlist.from_equations({"f": "(a*b + c)'"})
        shallow = async_tmap(net, mini_library, MappingOptions(max_depth=1))
        deep = async_tmap(net, mini_library, MappingOptions(max_depth=5))
        assert deep.area <= shallow.area

    def test_delay_objective(self, mini_library):
        net = Netlist.from_equations({"f": "a*b*c*d + a'*b'"})
        area_result = async_tmap(net, mini_library, MappingOptions(objective="area"))
        delay_result = async_tmap(
            net, mini_library, MappingOptions(objective="delay")
        )
        assert delay_result.delay <= area_result.delay + 1e-9

    def test_unmappable_library_raises(self):
        poor = Library.from_spec("POOR", [("INV", "a'", None, 0.5)])
        net = Netlist.from_equations({"f": "a*b"})
        with pytest.raises(MappingError):
            tmap(net, poor)


class TestMappedNetlistShape:
    def test_cell_usage_counts(self, mini_library):
        net = Netlist.from_equations({"f": "a*b + c*d"})
        result = tmap(net, mini_library)
        usage = result.cell_usage()
        assert sum(usage.values()) == result.mapped.gate_count()

    def test_summary_keys(self, mini_library):
        net = Netlist.from_equations({"f": "a*b"})
        result = tmap(net, mini_library)
        assert set(result.summary()) == {"area", "delay", "cells", "cpu"}
