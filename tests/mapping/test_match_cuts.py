"""Tests for cluster enumeration and Boolean matching."""

from repro.boolean.expr import parse
from repro.library import minimal_teaching_library
from repro.mapping.cuts import cluster_expression, enumerate_clusters
from repro.mapping.match import expression_truth_table, match_cluster
from repro.network.decompose import async_tech_decomp
from repro.network.netlist import Netlist
from repro.network.partition import partition


def decomposed_single_cone(equations):
    net = Netlist.from_equations(equations)
    decomposed = async_tech_decomp(net)
    cones = partition(decomposed)
    return decomposed, cones


class TestClusterEnumeration:
    def test_trivial_cluster_always_present(self):
        decomposed, cones = decomposed_single_cone({"f": "a*b + c"})
        clusters = enumerate_clusters(decomposed, cones[0])
        for node, group in clusters.items():
            fanins = tuple(decomposed.nodes[node].fanins)
            assert any(set(c.leaves) == set(fanins) for c in group)

    def test_depth_limit_respected(self):
        decomposed, cones = decomposed_single_cone(
            {"f": "a*b*c*d + a'*b'*c'*d'"}
        )
        for cone in cones:
            clusters = enumerate_clusters(decomposed, cone, max_depth=2)
            for group in clusters.values():
                for cluster in group:
                    assert cluster.depth <= 2

    def test_input_limit_respected(self):
        decomposed, cones = decomposed_single_cone(
            {"f": "a*b*c*d + a'*b'*c'*d'"}
        )
        for cone in cones:
            clusters = enumerate_clusters(decomposed, cone, max_inputs=3)
            for group in clusters.values():
                for cluster in group:
                    assert cluster.num_inputs <= 3

    def test_cluster_expression_matches_network(self):
        decomposed, cones = decomposed_single_cone({"f": "a*b + c'"})
        cone = cones[0]
        clusters = enumerate_clusters(decomposed, cone)
        for cluster in clusters[cone.root]:
            expr = cluster_expression(decomposed, cluster)
            # evaluate both on a few points
            for point in range(8):
                env = {"a": bool(point & 1), "b": bool(point >> 1 & 1),
                       "c": bool(point >> 2 & 1)}
                full = decomposed.evaluate(env)
                cluster_env = {leaf: full[leaf] for leaf in cluster.leaves}
                assert expr.evaluate(cluster_env) == full[cluster.root]


class TestMatching:
    def test_and2_matches(self, mini_library):
        matches = match_cluster(mini_library, parse("x*y"), ["x", "y"])
        assert any(m.cell.name == "AND2" for m in matches)

    def test_nand_matches_inverted_and(self, mini_library):
        matches = match_cluster(mini_library, parse("(x*y)'"), ["x", "y"])
        assert any(m.cell.name == "NAND2" for m in matches)

    def test_aoi_matches_three_gate_cluster(self, mini_library):
        matches = match_cluster(
            mini_library, parse("(x*y + z)'"), ["x", "y", "z"]
        )
        assert any(m.cell.name == "AOI21" for m in matches)

    def test_binding_transports_pins(self, mini_library):
        # OAI21 is ((a+b)*c)': cluster ((y+z)*x)' must bind c -> x.
        matches = match_cluster(
            mini_library, parse("((y + z)*x)'"), ["x", "y", "z"]
        )
        oai = next(m for m in matches if m.cell.name == "OAI21")
        fanins = oai.fanin_names(["x", "y", "z"])
        assert fanins[oai.cell.pins.index("c")] == "x"

    def test_degenerate_cluster_skipped(self, mini_library):
        # function ignores one leaf: no match.
        assert not match_cluster(mini_library, parse("x*y + x"), ["x", "y", "z"])

    def test_constant_cluster_skipped(self, mini_library):
        assert not match_cluster(mini_library, parse("x + x'"), ["x"])

    def test_truth_table_helper(self):
        table = expression_truth_table(parse("x*y"), ["x", "y"])
        assert table == 0b1000
