"""Parallel cone covering: determinism, and the paper-mode regression pin.

``MappingOptions.workers`` threads the covering loop through a
``ThreadPoolExecutor``; the mapped netlist must be bit-identical to the
serial result on every circuit, because cones are independent and
results are merged in cone order.
"""

from __future__ import annotations

import pytest

from repro.boolean.cover import Cover
from repro.burstmode.benchmarks import synthesize_benchmark
from repro.hazards.analyzer import analyze_cover, hazards_subset
from repro.hazards.cache import HazardCache, clear_global_cache
from repro.hazards.multilevel import transition_has_hazard
from repro.library.standard import load_library, minimal_teaching_library
from repro.mapping.mapper import MappingOptions, async_tmap, tmap
from repro.network.netlist import Netlist

BENCHES = ["dme", "chu-ad-opt", "vanbek-opt"]


def netlist_signature(netlist: Netlist):
    """A structural fingerprint: every gate's name, cell, and fanins."""
    return sorted(
        (
            node.name,
            node.cell.name if node.cell else None,
            tuple(node.fanins),
        )
        for node in netlist.gates()
    )


class TestParallelDeterminism:
    @pytest.mark.parametrize("bench", BENCHES)
    def test_workers_do_not_change_async_mapping(self, bench):
        library = load_library("CMOS3")
        if not library.annotated:
            library.annotate_hazards()
        net = synthesize_benchmark(bench).netlist(bench)
        serial = async_tmap(net, library, MappingOptions(workers=1))
        threaded = async_tmap(net, library, MappingOptions(workers=4))
        assert serial.area == threaded.area
        assert serial.delay == threaded.delay
        assert serial.cell_usage() == threaded.cell_usage()
        assert netlist_signature(serial.mapped) == netlist_signature(
            threaded.mapped
        )
        assert threaded.workers == 4 and serial.workers == 1

    def test_workers_do_not_change_sync_mapping(self, mini_library):
        net = Netlist.from_equations(
            {"f": "a*b + c", "g": "a'*c + b*c", "h": "(a + b)*c'"}
        )
        serial = tmap(net, mini_library, MappingOptions(workers=1))
        threaded = tmap(net, mini_library, MappingOptions(workers=3))
        assert netlist_signature(serial.mapped) == netlist_signature(
            threaded.mapped
        )

    def test_workers_zero_auto_sizes(self, mini_library):
        net = Netlist.from_equations({"f": "s*a + s'*b"})
        options = MappingOptions(workers=0)
        assert options.resolved_workers() >= 1
        result = async_tmap(net, mini_library, options)
        assert result.workers == options.resolved_workers()

    def test_filter_decision_identical_under_threads(self):
        # The hazard screen (MUX21 accepted against its own structure)
        # must be taken identically whether or not a shared warm cache
        # and thread pool are in play.
        clear_global_cache()
        net = Netlist.from_equations({"f": "s*a + s'*b"})
        results = [
            async_tmap(
                net, minimal_teaching_library.__wrapped__(), MappingOptions(workers=w)
            )
            for w in (1, 4, 4)
        ]
        for result in results:
            assert result.stats.hazard_accepts >= 1
            assert "MUX21" in result.cell_usage()
        assert len({str(netlist_signature(r.mapped)) for r in results}) == 1
        clear_global_cache()

    def test_per_cone_stats_populated(self, mini_library):
        net = Netlist.from_equations({"f": "a*b + c", "g": "a + b'*c"})
        result = async_tmap(net, mini_library, MappingOptions(workers=2))
        assert result.stats.cones == 2
        assert result.stats.cone_seconds > 0.0


class TestPaperModeRegression:
    """Pin the documented gap of the ``"paper"`` filter mode.

    The record-list procedure misses pulse hazards of *absorbed* cubes:
    ``f = a'b' + a'b'cd' + d'`` carries a dynamic hazard on
    0000 -> 1101 (the absorbed middle cube turns on and off while a, c,
    d rise) that the irredundant two-cube cover of the same function
    lacks — so the exact filter must reject the pair while the paper
    filter, blind to the absorbed cube's pulse, accepts it.  If the
    paper-mode filter ever learns this case, this test will flag the
    (welcome) behaviour change.
    """

    NAMES = ["a", "b", "c", "d"]
    START, END = 0b0000, 0b1101  # a, c, d rise; b stays 0

    def analyses(self):
        cell = analyze_cover(
            Cover.from_strings(["a'b'", "a'b'cd'", "d'"], self.NAMES),
            self.NAMES,
            exhaustive=True,
        )
        target = analyze_cover(
            Cover.from_strings(["a'b'", "d'"], self.NAMES),
            self.NAMES,
            exhaustive=True,
        )
        return cell, target

    def test_absorbed_cube_pulse_exists_only_in_cell(self):
        cell, target = self.analyses()
        assert transition_has_hazard(cell.lsop, self.START, self.END)
        assert not transition_has_hazard(target.lsop, self.START, self.END)

    def test_exact_filter_rejects(self):
        cell, target = self.analyses()
        assert not hazards_subset(cell, target, mode="exact")

    def test_paper_filter_misses_the_pulse(self):
        cell, target = self.analyses()
        assert hazards_subset(cell, target, mode="paper")

    def test_cached_filter_preserves_both_verdicts(self):
        cell, target = self.analyses()
        cache = HazardCache()
        exact, _ = cache.hazards_subset(cell, target, mode="exact")
        paper, _ = cache.hazards_subset(cell, target, mode="paper")
        assert not exact and paper
        # Warm replays agree.
        assert cache.hazards_subset(cell, target, mode="exact") == (False, True)
        assert cache.hazards_subset(cell, target, mode="paper") == (True, True)
