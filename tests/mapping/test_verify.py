"""Tests for post-mapping verification."""

from repro.library import minimal_teaching_library
from repro.mapping.mapper import async_tmap
from repro.mapping.verify import VerificationReport, verify_mapping
from repro.network.netlist import Netlist


class TestVerifyMapping:
    def test_identical_network_passes(self):
        net = Netlist.from_equations({"f": "a*b + c"})
        report = verify_mapping(net, net.copy())
        assert report.ok
        assert report.transitions_checked > 0

    def test_functional_mismatch_detected(self):
        net = Netlist.from_equations({"f": "a*b"})
        wrong = Netlist.from_equations({"f": "a + b"})
        report = verify_mapping(net, wrong)
        assert not report.equivalent
        assert "functional mismatch" in report.violations

    def test_new_hazard_detected_exhaustively(self):
        safe = Netlist.from_equations({"f": "s*a + s'*b + a*b"})
        risky = Netlist.from_equations({"f": "s*a + s'*b"})
        report = verify_mapping(safe, risky)
        assert report.equivalent
        assert not report.hazard_safe
        assert any("static-1" in v for v in report.violations)

    def test_hazard_trade_is_not_a_subset(self):
        # Subtle but correct: adding the consensus cube removes the
        # static-1 hazard yet *introduces* m.i.c. dynamic hazards (the
        # new cube intersections can pulse).  Replacement legality is
        # subset-of-hazards, not fewer-hazards — Theorem 3.2 verbatim.
        risky = Netlist.from_equations({"f": "s*a + s'*b"})
        safe = Netlist.from_equations({"f": "s*a + s'*b + a*b"})
        report = verify_mapping(risky, safe)
        assert report.equivalent
        assert not report.hazard_safe
        assert any("dynamic" in v for v in report.violations)

    def test_true_hazard_reduction_passes(self):
        # A single complex gate has no logic hazards at all — replacing
        # the two-gate structure with it is always legal.
        risky = Netlist.from_equations({"f": "(w*y + x*y)"})
        single = Netlist.from_equations({"f": "(w + x)*y"})
        report = verify_mapping(risky, single)
        assert report.ok

    def test_sampled_path_for_wide_networks(self):
        # 10 inputs forces the sampled ternary path.
        equations = {
            f"f{i}": f"x{i}*y{i} + x{i}'*z{i}" for i in range(4)
        }
        net = Netlist.from_equations(equations)
        assert len(net.inputs) > 8
        report = verify_mapping(net, net.copy(), exhaustive_limit=8, samples=50)
        assert report.ok
        assert report.transitions_checked == 50

    def test_sampled_catches_gross_hazard(self, mini_library):
        equations = {
            "f": "s*a + s'*b + a*b",
            "g0": "p0*q0", "g1": "p1*q1", "g2": "p2*q2",
            "g3": "p3*q3", "g4": "p4*q4",
        }
        net = Netlist.from_equations(equations)
        risky = dict(equations)
        risky["f"] = "s*a + s'*b"
        broken = Netlist.from_equations(risky)
        report = verify_mapping(net, broken, exhaustive_limit=4, samples=400)
        assert report.equivalent
        assert not report.hazard_safe

    def test_report_ok_property(self):
        report = VerificationReport(equivalent=True, hazard_safe=False)
        assert not report.ok
        report = VerificationReport(equivalent=True, hazard_safe=True)
        assert report.ok

    def test_async_mapping_always_passes(self, mini_library):
        for text in ("a*b + c'*d", "s*a + s'*b + a*b", "(a + b)*(c + d)"):
            net = Netlist.from_equations({"f": text})
            result = async_tmap(net, mini_library)
            assert verify_mapping(net, result.mapped).ok, text
