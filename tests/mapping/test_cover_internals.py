"""Tests for covering internals: stats, caps, and cone covers."""

import pytest

from repro.library import Library, minimal_teaching_library
from repro.mapping.cover import ConeCover, CoverStats, cover_cone
from repro.mapping.cuts import enumerate_clusters
from repro.network.decompose import async_tech_decomp
from repro.network.netlist import Netlist
from repro.network.partition import partition


def decompose(equations):
    net = Netlist.from_equations(equations)
    decomposed = async_tech_decomp(net)
    return decomposed, partition(decomposed)


class TestCoverStats:
    def test_merge_accumulates(self):
        a = CoverStats(clusters=1, matches=2, hazardous_matches=3,
                       hazard_rejections=4, hazard_accepts=5, dc_waivers=6)
        b = CoverStats(clusters=10, matches=20, hazardous_matches=30,
                       hazard_rejections=40, hazard_accepts=50, dc_waivers=60)
        a.merge(b)
        assert (a.clusters, a.matches, a.dc_waivers) == (11, 22, 66)


class TestConeCover:
    def test_area_sums_selected_cells(self, mini_library):
        decomposed, cones = decompose({"f": "a*b + c"})
        cover = cover_cone(decomposed, cones[0], mini_library)
        assert cover.area == sum(
            s.match.cell.area for s in cover.selections
        )
        assert cover.area > 0

    def test_selections_cover_whole_cone(self, mini_library):
        decomposed, cones = decompose({"f": "a*b*c + d'"})
        cover = cover_cone(decomposed, cones[0], mini_library)
        replaced = set()
        for selection in cover.selections:
            replaced |= set(selection.cluster.members)
        assert replaced == set(cones[0].members)

    def test_objective_area_at_least_as_small(self, mini_library):
        decomposed, cones = decompose({"f": "a*b*c*d + a'*b'"})
        area_first = cover_cone(
            decomposed, cones[0], mini_library, objective="area"
        )
        delay_first = cover_cone(
            decomposed, cones[0], mini_library, objective="delay"
        )
        assert area_first.area <= delay_first.area + 1e-9


class TestClusterCaps:
    def test_per_node_cluster_cap(self):
        decomposed, cones = decompose(
            {"f": "a*b*c*d + a'*b'*c'*d' + a*b'*c*d'"}
        )
        capped = enumerate_clusters(
            decomposed, cones[0], max_clusters_per_node=2
        )
        for group in capped.values():
            assert len(group) <= 2

    def test_uncapped_superset_of_capped(self):
        decomposed, cones = decompose({"f": "a*b + c*d"})
        capped = enumerate_clusters(
            decomposed, cones[0], max_clusters_per_node=1
        )
        full = enumerate_clusters(
            decomposed, cones[0], max_clusters_per_node=None
        )
        for node, group in capped.items():
            assert len(group) <= len(full[node])


class TestLibraryRequirements:
    def test_inverter_only_library_cannot_cover(self):
        from repro.mapping.cover import MappingError

        poor = Library.from_spec("POOR", [("INV", "a'", None, 0.5)])
        decomposed, cones = decompose({"f": "a*b"})
        with pytest.raises(MappingError):
            cover_cone(decomposed, cones[0], poor)

    def test_base_gate_library_suffices(self):
        base = Library.from_spec(
            "BASE",
            [
                ("INV", "a'", None, 0.5),
                ("AND2", "a*b", None, 1.0),
                ("OR2", "a + b", None, 1.0),
            ],
        )
        decomposed, cones = decompose({"f": "a*b' + c*d + a'*c'"})
        for cone in cones:
            cover = cover_cone(decomposed, cone, base)
            assert cover.selections
