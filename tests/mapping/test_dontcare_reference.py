"""Tests for the hazard-don't-care extension and the hand-style reference."""

from repro.boolean.paths import label_expression
from repro.burstmode.benchmarks import synthesize_benchmark
from repro.hazards.oracle import classify_transition
from repro.library import actel_act1, minimal_teaching_library
from repro.mapping.dontcare import HazardDontCares, InputBurst, synthesis_bursts
from repro.mapping.mapper import MappingOptions, async_tmap
from repro.mapping.reference import hand_style_reference
from repro.network.decompose import async_tech_decomp
from repro.network.netlist import Netlist


class TestHazardDontCares:
    def test_leaf_spaces_fix_stable_signals(self):
        net = Netlist.from_equations({"f": "a*b + c"})
        decomposed = async_tech_decomp(net)
        bursts = [
            InputBurst({"a": False, "b": True, "c": False},
                       {"a": True, "b": True, "c": False})
        ]
        dc = HazardDontCares(decomposed, bursts)
        spaces = dc.leaf_spaces(["a", "b", "c"])
        assert len(spaces) == 1
        # b and c are stable, a changes.
        assert spaces[0].to_string(["a", "b", "c"]) == "bc'"

    def test_relevant_transition_inside_burst(self):
        net = Netlist.from_equations({"f": "a*b + c"})
        decomposed = async_tech_decomp(net)
        bursts = [
            InputBurst({"a": False, "b": True, "c": False},
                       {"a": True, "b": True, "c": False})
        ]
        dc = HazardDontCares(decomposed, bursts)
        # a changes with b=1, c=0: relevant
        assert dc.relevant(["a", "b", "c"], 0b010, 0b011)
        # c changing is never specified: irrelevant
        assert not dc.relevant(["a", "b", "c"], 0b010, 0b110)

    def test_synthesis_bursts_deduplicated(self):
        synthesis = synthesize_benchmark("dme")
        bursts = synthesis_bursts(synthesis)
        keys = {(tuple(sorted(b.start.items())), tuple(sorted(b.end.items())))
                for b in bursts}
        assert len(keys) == len(bursts)

    def test_dc_mapping_waives_and_stays_clean(self):
        library = actel_act1()
        if not library.annotated:
            library.annotate_hazards()
        synthesis = synthesize_benchmark("dme-fast")
        net = synthesis.netlist("dme-fast")
        plain = async_tmap(net, library)
        relaxed = async_tmap(
            net, library, MappingOptions(input_bursts=synthesis_bursts(synthesis))
        )
        assert relaxed.mapped.equivalent(net)
        assert relaxed.stats.dc_waivers > 0
        assert relaxed.area <= plain.area
        # The exact guarantee: every specified burst replays clean on
        # the mapped structure.
        for target in synthesis.equations:
            lsop = label_expression(
                relaxed.mapped.collapse(target), synthesis.variables
            )
            for spec_t in synthesis.transitions[target]:
                verdict = classify_transition(lsop, spec_t.start, spec_t.end)
                assert not verdict.logic_hazard, (target, spec_t)

    def test_no_bursts_means_no_waivers(self):
        library = actel_act1()
        if not library.annotated:
            library.annotate_hazards()
        net = synthesize_benchmark("dme-fast").netlist("dme-fast")
        result = async_tmap(net, library)
        assert result.stats.dc_waivers == 0


class TestHandStyleReference:
    def test_reference_is_depth_one(self, mini_library):
        net = Netlist.from_equations({"f": "a*b*c + d'"})
        reference = hand_style_reference(net, mini_library)
        assert reference.mode == "hand-style"
        # every selection replaces exactly one base gate
        for cover in reference.covers:
            for selection in cover.selections:
                assert selection.cluster.depth <= 1

    def test_auto_never_worse_than_reference(self, mini_library):
        for name in ("chu-ad-opt", "dme", "vanbek-opt"):
            net = synthesize_benchmark(name).netlist(name)
            reference = hand_style_reference(net, mini_library)
            auto = async_tmap(net, mini_library)
            assert auto.area <= reference.area, name

    def test_reference_is_hazard_safe(self, mini_library):
        from repro.mapping.verify import verify_mapping

        net = Netlist.from_equations({"f": "s*a + s'*b + a*b"})
        reference = hand_style_reference(net, mini_library)
        assert verify_mapping(net, reference.mapped).ok
