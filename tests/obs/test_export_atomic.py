"""Atomicity of the obs JSON exports (temp file + ``os.replace``).

A reader polling one of these artifacts — the regression gate on
``BENCH_mapping.json``, ``repro explain`` on a decision log, the smoke
harness on a trace — must never observe a torn document, even if the
writer dies mid-write or several processes write the same target.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.obs.export import (
    BENCH_SCHEMA,
    _atomic_write_text,
    load_bench_snapshot,
    write_bench_snapshot,
    write_metrics,
    write_trace,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import Tracer


def _registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.counter("requests").inc()
    return registry


class TestAtomicWrite:
    def test_no_staging_files_survive_success(self, tmp_path):
        target = tmp_path / "out.json"
        _atomic_write_text(target, "{}\n")
        assert target.read_text() == "{}\n"
        assert [p.name for p in tmp_path.iterdir()] == ["out.json"]

    def test_replaces_existing_content(self, tmp_path):
        target = tmp_path / "out.json"
        target.write_text("old")
        _atomic_write_text(target, "new")
        assert target.read_text() == "new"

    def test_failed_replace_leaves_target_and_no_tmp(self, tmp_path,
                                                     monkeypatch):
        target = tmp_path / "out.json"
        target.write_text("previous")

        def _boom(src, dst):
            raise OSError("disk full")

        monkeypatch.setattr(os, "replace", _boom)
        with pytest.raises(OSError, match="disk full"):
            _atomic_write_text(target, "half-writ")
        monkeypatch.undo()
        # The reader's view is intact and no staging litter remains.
        assert target.read_text() == "previous"
        assert [p.name for p in tmp_path.iterdir()] == ["out.json"]


class TestExportersUseAtomicWrites:
    def test_trace_export_over_existing_file(self, tmp_path):
        target = tmp_path / "trace.json"
        target.write_text("not json at all")
        tracer = Tracer()
        with tracer.span("s"):
            pass
        write_trace(target, tracer, metrics=_registry())
        payload = json.loads(target.read_text())
        assert payload["spans"]
        assert payload["metrics"]["requests"]["value"] == 1

    def test_metrics_export_round_trips(self, tmp_path):
        target = tmp_path / "metrics.json"
        write_metrics(target, _registry())
        payload = json.loads(target.read_text())
        assert payload["schema"] == "repro-metrics/v1"

    def test_bench_snapshot_schema_check_precedes_write(self, tmp_path):
        target = tmp_path / "bench.json"
        target.write_text("untouched")
        with pytest.raises(ValueError):
            write_bench_snapshot(target, {"schema": "wrong"})
        assert target.read_text() == "untouched"
        snapshot = {"schema": BENCH_SCHEMA, "benchmarks": {}}
        write_bench_snapshot(target, snapshot)
        assert load_bench_snapshot(target)["schema"] == BENCH_SCHEMA
