"""Trace inspection (``repro.obs.inspect``) and the ``repro obs`` CLI."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.obs.inspect import (
    critical_path,
    diff_traces,
    iter_spans,
    load_trace,
    render_critical,
    render_diff,
    render_tree,
    self_time,
    top_spans,
)


def _span(name, start, end, attrs=None, children=(), span_id=1, parent=None):
    return {
        "name": name,
        "span_id": span_id,
        "parent_id": parent,
        "start": start,
        "end": end,
        "duration": end - start,
        "attrs": attrs or {},
        "children": list(children),
    }


def _trace(*roots, trace_id="t1"):
    return {"schema": "repro-trace/v1", "trace_id": trace_id,
            "spans": list(roots)}


@pytest.fixture
def payload():
    cone_a = _span("cone", 0.1, 0.5, {"key": "x", "worker": "w0"}, span_id=3,
                   parent=2)
    cone_b = _span("cone", 0.5, 2.0, {"key": "y", "worker": "w1"}, span_id=4,
                   parent=2)
    cover = _span("cover", 0.0, 2.5, children=[cone_a, cone_b], span_id=2,
                  parent=1)
    return _trace(_span("tmap", 0.0, 3.0, {"design": "d"}, [cover]))


def test_iter_spans_walks_preorder_with_paths(payload):
    walked = list(iter_spans(payload))
    assert [s["name"] for s, _, _ in walked] == ["tmap", "cover", "cone",
                                                 "cone"]
    assert [d for _, d, _ in walked] == [0, 1, 2, 2]
    _, _, path = walked[2]
    assert path == (("tmap", None), ("cover", None), ("cone", "x"))


def test_self_time_subtracts_children(payload):
    cover = payload["spans"][0]["children"][0]
    assert self_time(cover) == pytest.approx(2.5 - (0.4 + 1.5))
    # Overlapping/oversubscribed children floor at zero, never negative.
    tight = _span("p", 0.0, 1.0, children=[_span("c", 0.0, 0.8),
                                           _span("c", 0.1, 0.9)])
    assert self_time(tight) == 0.0


def test_render_tree_shows_trace_id_attrs_and_depth_clip(payload):
    lines = render_tree(payload)
    assert lines[0] == "trace t1"
    assert "tmap" in lines[1] and "design=d" in lines[1]
    assert any("key=x" in line and "worker=w0" in line for line in lines)
    clipped = render_tree(payload, max_depth=1)
    assert sum("cone" in line for line in clipped) == 0


def test_top_spans_orders_by_self_time_and_splits_by_worker(payload):
    rows = top_spans(payload)
    assert rows[0]["name"] == "cone"  # 1.9s self across both cones
    assert rows[0]["count"] == 2
    assert rows[0]["max_seconds"] == pytest.approx(1.5)
    by_worker = {(r["name"], r["worker"]): r
                 for r in top_spans(payload, by_worker=True)}
    assert by_worker[("cone", "w1")]["self_seconds"] == pytest.approx(1.5)
    assert by_worker[("cone", "w0")]["self_seconds"] == pytest.approx(0.4)


def test_critical_path_descends_along_longest_child(payload):
    chain = critical_path(payload)
    assert [s["name"] for s in chain] == ["tmap", "cover", "cone"]
    assert chain[-1]["attrs"]["key"] == "y"
    rendered = render_critical(chain)
    assert len(rendered) == 3
    assert "100.0%" in rendered[0]


def test_diff_traces_reports_changed_added_removed():
    before = _trace(_span("tmap", 0.0, 2.0,
                          children=[_span("cover", 0.0, 1.0)]))
    after = _trace(_span("tmap", 0.0, 4.0,
                         children=[_span("verify", 0.0, 0.5)]),
                   trace_id="t2")
    diff = diff_traces(before, after)
    changed = {tuple(row["path"]): row for row in diff["changed"]}
    assert changed[(("tmap", None),)]["delta_seconds"] == pytest.approx(2.0)
    assert diff["added"] == [(("tmap", None), ("verify", None))]
    assert diff["removed"] == [(("tmap", None), ("cover", None))]
    assert render_diff(diff)  # renders without blowing up


def test_load_trace_rejects_wrong_schema(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text(json.dumps({"schema": "repro-metrics/v1"}))
    with pytest.raises(ValueError, match="repro-trace/v1"):
        load_trace(path)


# ----------------------------------------------------------------------
# CLI: repro obs <view>
# ----------------------------------------------------------------------


@pytest.fixture
def trace_file(tmp_path, payload):
    path = tmp_path / "trace.json"
    path.write_text(json.dumps(payload))
    return str(path)


def test_cli_obs_tree(trace_file, capsys):
    assert main(["obs", "tree", trace_file]) == 0
    out = capsys.readouterr().out
    assert "trace t1" in out and "tmap" in out and "cone" in out


def test_cli_obs_top_by_worker(trace_file, capsys):
    assert main(["obs", "top", trace_file, "--by-worker", "--limit", "3"]) == 0
    out = capsys.readouterr().out
    assert "@w1" in out


def test_cli_obs_critical(trace_file, capsys):
    assert main(["obs", "critical", trace_file]) == 0
    assert "tmap" in capsys.readouterr().out


def test_cli_obs_diff(trace_file, tmp_path, capsys):
    other = tmp_path / "other.json"
    other.write_text(json.dumps(_trace(_span("tmap", 0.0, 5.0))))
    assert main(["obs", "diff", trace_file, str(other)]) == 0
    assert "tmap" in capsys.readouterr().out


def test_cli_obs_rejects_bad_file(tmp_path, capsys):
    path = tmp_path / "bad.json"
    path.write_text("{}")
    assert main(["obs", "tree", str(path)]) == 1
    assert "cannot inspect trace" in capsys.readouterr().err
