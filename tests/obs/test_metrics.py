"""MetricsRegistry semantics and the CoverStats bridge."""

from __future__ import annotations

import threading

import pytest

from repro.mapping.cover import CoverStats
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry


class TestInstruments:
    def test_counter_accumulates_and_rejects_negatives(self):
        counter = Counter()
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        with pytest.raises(ValueError):
            counter.inc(-1)
        assert counter.value == 5

    def test_gauge_last_write_wins(self):
        gauge = Gauge()
        assert gauge.value is None
        gauge.set(3)
        gauge.set("cold")
        assert gauge.value == "cold"

    def test_histogram_summarizes(self):
        histogram = Histogram()
        assert histogram.mean is None
        for value in (2.0, 4.0, 6.0):
            histogram.observe(value)
        snap = histogram.to_dict()
        assert snap["count"] == 3
        assert snap["sum"] == pytest.approx(12.0)
        assert snap["min"] == 2.0 and snap["max"] == 6.0
        assert snap["mean"] == pytest.approx(4.0)

    def test_counter_is_thread_safe(self):
        counter = Counter()

        def hammer():
            for _ in range(1000):
                counter.inc()

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter.value == 8000


class TestRegistry:
    def test_get_or_create_is_stable(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")
        assert "x" in registry and len(registry) == 1

    def test_kind_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(TypeError, match="is a counter"):
            registry.gauge("x")

    def test_snapshot_is_json_shaped(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(2)
        registry.gauge("g").set("async")
        registry.histogram("h").observe(1.5)
        snap = registry.snapshot()
        assert snap["c"] == {"type": "counter", "value": 2}
        assert snap["g"] == {"type": "gauge", "value": "async"}
        assert snap["h"]["type"] == "histogram" and snap["h"]["count"] == 1

    def test_merge_combines_by_kind(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("c").inc(1)
        b.counter("c").inc(2)
        a.gauge("g").set("old")
        b.gauge("g").set("new")
        a.histogram("h").observe(1.0)
        b.histogram("h").observe(3.0)
        b.gauge("empty")  # value None: must not clobber a's value
        a.gauge("empty").set(7)
        a.merge(b)
        assert a.counter("c").value == 3
        assert a.gauge("g").value == "new"
        assert a.gauge("empty").value == 7
        h = a.histogram("h").to_dict()
        assert h["count"] == 2 and h["min"] == 1.0 and h["max"] == 3.0


class TestCoverStatsBridge:
    def _stats(self) -> CoverStats:
        return CoverStats(
            clusters=3,
            matches=11,
            hazardous_matches=2,
            hazard_rejections=1,
            hazard_accepts=1,
            filter_invocations=2,
            analysis_cache_hits=5,
            analysis_cache_misses=4,
            subset_cache_hits=1,
            subset_cache_misses=1,
            cones=2,
            cone_seconds=0.25,
        )

    def test_absorb_cover_stats_mirrors_every_counter(self):
        registry = MetricsRegistry()
        stats = self._stats()
        registry.absorb_cover_stats(stats)
        for name in CoverStats.COUNTER_FIELDS:
            assert registry.counter("cover." + name).value == getattr(stats, name)
        assert registry.counter("cover.cone_seconds").value == pytest.approx(0.25)

    def test_round_trip_through_registry(self):
        registry = MetricsRegistry()
        stats = self._stats()
        stats.to_registry(registry)
        back = CoverStats.from_registry(registry)
        for name in CoverStats.COUNTER_FIELDS:
            assert getattr(back, name) == getattr(stats, name)
        assert back.cone_seconds == pytest.approx(stats.cone_seconds)

    def test_repeated_absorb_accumulates_like_merge(self):
        registry = MetricsRegistry()
        stats = self._stats()
        registry.absorb_cover_stats(stats)
        registry.absorb_cover_stats(stats)
        merged = CoverStats()
        merged.merge(stats)
        merged.merge(stats)
        back = CoverStats.from_registry(registry)
        for name in CoverStats.COUNTER_FIELDS:
            assert getattr(back, name) == getattr(merged, name)
