"""Prometheus text exposition of a ``MetricsRegistry``."""

from __future__ import annotations

import pytest

from repro.obs.export import parse_prometheus_text, prometheus_text
from repro.obs.metrics import DEFAULT_BUCKETS, Histogram, MetricsRegistry


def _registry() -> MetricsRegistry:
    metrics = MetricsRegistry()
    metrics.counter("service.requests").inc(3)
    metrics.gauge("map.area").set(42.0)
    metrics.gauge("batch.backend").set("processes")
    metrics.gauge("map.fallback").set(True)
    hist = metrics.histogram("service.request_seconds")
    for value in (0.0005, 0.003, 0.003, 7.0, 120.0):
        hist.observe(value)
    return metrics


def test_histogram_tracks_per_bucket_counts():
    hist = Histogram()
    hist.observe(0.0005)   # <= 0.001
    hist.observe(0.003)    # <= 0.005
    hist.observe(120.0)    # overflow (+Inf slot)
    buckets = hist.to_dict()["buckets"]
    assert len(buckets) == len(DEFAULT_BUCKETS) + 1
    assert buckets[-1] == [None, 1]  # implicit +Inf bound
    counts = {bound: count for bound, count in buckets}
    assert counts[0.001] == 1
    assert counts[0.005] == 1
    assert sum(count for _, count in buckets) == hist.count


def test_histogram_boundary_value_lands_in_its_le_bucket():
    hist = Histogram()
    hist.observe(0.001)  # exactly on a bound: le semantics, not lt
    counts = {bound: count for bound, count in hist.to_dict()["buckets"]}
    assert counts[0.001] == 1


def test_merge_combines_bucket_counts():
    a, b = MetricsRegistry(), MetricsRegistry()
    a.histogram("h").observe(0.0005)
    b.histogram("h").observe(120.0)
    a.merge(b)
    buckets = a.histogram("h").to_dict()["buckets"]
    assert buckets[0][1] == 1 and buckets[-1][1] == 1


def test_exposition_covers_every_instrument_kind():
    text = prometheus_text(_registry())
    assert text.endswith("\n")
    parsed = parse_prometheus_text(text)
    assert parsed["types"]["service_requests_total"] == "counter"
    assert parsed["samples"]["service_requests_total"] == 3.0
    assert parsed["samples"]["map_area"] == 42.0
    assert parsed["samples"]['batch_backend_info{value="processes"}'] == 1.0
    assert parsed["samples"]["map_fallback"] == 1.0  # bool gauge -> 0/1


def test_histogram_exposition_is_cumulative():
    parsed = parse_prometheus_text(prometheus_text(_registry()))
    samples = parsed["samples"]
    assert parsed["types"]["service_request_seconds"] == "histogram"
    # 0.0005 <= 0.001; the two 0.003s land by 0.005; 7.0 by 10.0;
    # 120.0 only in +Inf.  Buckets are cumulative.
    assert samples['service_request_seconds_bucket{le="0.001"}'] == 1.0
    assert samples['service_request_seconds_bucket{le="0.005"}'] == 3.0
    assert samples['service_request_seconds_bucket{le="10"}'] == 4.0
    assert samples['service_request_seconds_bucket{le="+Inf"}'] == 5.0
    assert samples["service_request_seconds_count"] == 5.0
    assert samples["service_request_seconds_sum"] == pytest.approx(127.0065)


def test_unset_gauges_are_omitted():
    metrics = MetricsRegistry()
    metrics.gauge("never.set")
    assert prometheus_text(metrics).strip() in ("",)


def test_names_are_sanitized():
    metrics = MetricsRegistry()
    metrics.counter("service.request.latency.map").inc()
    parsed = parse_prometheus_text(prometheus_text(metrics))
    assert "service_request_latency_map_total" in parsed["samples"]


def test_parse_rejects_malformed_exposition():
    with pytest.raises(ValueError, match="not exposition format"):
        parse_prometheus_text("this is { not valid\n")
