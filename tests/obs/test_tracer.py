"""Trace well-formedness: closure, nesting, determinism, isolation.

The contract under test (``repro.obs.tracer``):

* every span a mapping run opens is closed, and child intervals nest
  inside their parents (``validate`` returns no problems);
* the span-tree *shape* — names, identifying attrs, parent/child
  structure, ignoring timings and completion order — is identical for
  ``workers=1`` and ``workers=4``;
* concurrent mapping runs with distinct tracers never leak spans into
  each other's trees.
"""

from __future__ import annotations

import threading

import pytest

from repro.hazards.cache import clear_global_cache
from repro.mapping.mapper import MappingOptions, async_tmap, tmap
from repro.network.netlist import Netlist
from repro.obs.tracer import (
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    span_shape,
    trace_shape,
)

EQUATIONS = {"f": "a*b + c", "g": "a'*c + b*c", "h": "(a + b)*c'"}
OTHER_EQUATIONS = {"p": "x*y + x'*z", "q": "y'*z' + x"}


class TestSpanLifecycle:
    def test_nested_spans_close_and_validate(self):
        tracer = Tracer()
        with tracer.span("outer", key="o") as outer:
            with tracer.span("inner") as inner:
                inner.set_attr(items=3)
        assert tracer.validate() == []
        assert outer.closed and inner.closed
        assert inner.parent_id == outer.span_id
        assert outer.children == [inner]
        assert tracer.roots() == [outer]
        assert inner.attrs == {"items": 3}
        assert inner.duration is not None and inner.duration >= 0

    def test_current_tracks_innermost_open_span(self):
        tracer = Tracer()
        assert tracer.current() is None
        with tracer.span("a") as a:
            assert tracer.current() is a
            with tracer.span("b") as b:
                assert tracer.current() is b
            assert tracer.current() is a
        assert tracer.current() is None

    def test_unclosed_span_is_reported(self):
        tracer = Tracer()
        tracer.start_span("left-open")
        problems = tracer.validate()
        assert len(problems) == 1 and "never closed" in problems[0]
        with pytest.raises(ValueError, match="malformed trace"):
            tracer.assert_well_formed()

    def test_child_escaping_parent_interval_is_reported(self):
        tracer = Tracer()
        with tracer.span("parent") as parent:
            with tracer.span("child") as child:
                pass
        child.end = parent.end + 1.0  # forged: child outlives its parent
        assert any("ends after" in p for p in tracer.validate())

    def test_walk_is_preorder(self):
        tracer = Tracer()
        with tracer.span("root"):
            with tracer.span("a"):
                with tracer.span("a1"):
                    pass
            with tracer.span("b"):
                pass
        names = [s.name for s in tracer.roots()[0].walk()]
        assert names == ["root", "a", "a1", "b"]

    def test_to_dict_is_schema_stamped_and_recursive(self):
        tracer = Tracer()
        with tracer.span("root", design="x"):
            with tracer.span("leaf"):
                pass
        payload = tracer.to_dict()
        assert payload["schema"] == "repro-trace/v1"
        (root,) = payload["spans"]
        assert root["name"] == "root" and root["attrs"] == {"design": "x"}
        assert root["children"][0]["name"] == "leaf"
        assert root["children"][0]["parent_id"] == root["span_id"]


class TestCrossThreadParenting:
    def test_explicit_parent_adopts_worker_spans(self):
        tracer = Tracer()
        with tracer.span("cover") as cover:
            threads = [
                threading.Thread(
                    target=lambda i=i: tracer.finish_span(
                        tracer.start_span("cone", parent=cover, key=f"c{i}")
                    )
                )
                for i in range(4)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        assert tracer.validate() == []
        assert sorted(c.attrs["key"] for c in cover.children) == [
            "c0",
            "c1",
            "c2",
            "c3",
        ]

    def test_thread_local_stacks_do_not_interleave(self):
        tracer = Tracer()
        barrier = threading.Barrier(2)

        def run(name: str) -> None:
            with tracer.span(name):
                barrier.wait()  # both spans are open concurrently
                with tracer.span(name + ".child"):
                    pass

        threads = [threading.Thread(target=run, args=(n,)) for n in ("t1", "t2")]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert tracer.validate() == []
        roots = {r.name: r for r in tracer.roots()}
        # Each thread's child nests under its own root, never the peer's.
        assert set(roots) == {"t1", "t2"}
        for name, root in roots.items():
            assert [c.name for c in root.children] == [name + ".child"]


class TestShape:
    def test_shape_ignores_order_and_timing(self):
        first, second = Tracer(), Tracer()
        with first.span("run"):
            with first.span("cone", key="a"):
                pass
            with first.span("cone", key="b"):
                pass
        with second.span("run"):
            with second.span("cone", key="b"):
                pass
            with second.span("cone", key="a"):
                pass
        assert trace_shape(first) == trace_shape(second)

    def test_shape_distinguishes_different_work(self):
        first, second = Tracer(), Tracer()
        with first.span("run"):
            with first.span("cone", key="a"):
                pass
        with second.span("run"):
            with second.span("cone", key="z"):
                pass
        assert trace_shape(first) != trace_shape(second)


class TestMappingTraces:
    def _map(self, library, workers: int, equations=EQUATIONS) -> Tracer:
        clear_global_cache()
        tracer = Tracer()
        net = Netlist.from_equations(equations)
        async_tmap(net, library, MappingOptions(tracer=tracer, workers=workers))
        return tracer

    def test_async_run_covers_every_phase(self, mini_library):
        tracer = self._map(mini_library, workers=1)
        tracer.assert_well_formed()
        (root,) = tracer.roots()
        assert root.name == "async_tmap"
        phases = [c.name for c in root.children]
        assert phases == ["decompose", "partition", "cover", "build_netlist"]
        cover = root.children[phases.index("cover")]
        assert len(cover.children) == cover.attrs["cones"] > 0
        for cone in cover.children:
            assert cone.name == "cone"
            assert [g.name for g in cone.children] == [
                "enumerate_clusters",
                "match_cover",
            ]

    def test_sync_run_traces_too(self, mini_library):
        tracer = Tracer()
        net = Netlist.from_equations(EQUATIONS)
        tmap(net, mini_library, MappingOptions(tracer=tracer))
        tracer.assert_well_formed()
        (root,) = tracer.roots()
        assert root.name == "tmap"
        assert "cover" in [c.name for c in root.children]

    def test_same_shape_serial_vs_parallel(self, mini_library):
        serial = self._map(mini_library, workers=1)
        threaded = self._map(mini_library, workers=4)
        serial.assert_well_formed()
        threaded.assert_well_formed()
        assert trace_shape(serial) == trace_shape(threaded)

    def test_concurrent_runs_do_not_leak_spans(self, mini_library):
        clear_global_cache()
        tracers = {"one": Tracer(), "two": Tracer()}
        nets = {
            "one": Netlist.from_equations(EQUATIONS),
            "two": Netlist.from_equations(OTHER_EQUATIONS),
        }
        barrier = threading.Barrier(2)
        failures: list[Exception] = []
        results: dict[str, object] = {}

        def run(tag: str) -> None:
            try:
                barrier.wait()
                results[tag] = async_tmap(
                    nets[tag],
                    mini_library,
                    MappingOptions(tracer=tracers[tag], workers=2),
                )
            except Exception as exc:  # pragma: no cover - surfaced below
                failures.append(exc)

        threads = [threading.Thread(target=run, args=(t,)) for t in tracers]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not failures
        for tag, tracer in tracers.items():
            tracer.assert_well_formed()
            (root,) = tracer.roots()  # exactly one run recorded
            assert root.attrs["design"] == nets[tag].name
            (cover,) = [c for c in root.children if c.name == "cover"]
            # Exactly this run's cones — a leaked span from the peer run
            # (both were covering concurrently) would inflate the count.
            assert len(cover.children) == results[tag].stats.cones
            assert all(c.name == "cone" for c in cover.children)


class TestNullTracer:
    def test_null_tracer_is_inert(self):
        with NULL_TRACER.span("anything", key=1) as span:
            span.set_attr(ignored=True)
        assert span.attrs == {}
        assert NULL_TRACER.roots() == []
        assert NULL_TRACER.validate() == []
        assert NULL_TRACER.to_dict() == {"schema": "repro-trace/v1", "spans": []}
        assert NULL_TRACER.current() is None

    def test_null_span_context_is_shared(self):
        # One no-op context object is reused — the disabled-tracing path
        # allocates nothing per phase.
        assert NullTracer().span("a") is NullTracer().span("b")

    def test_mapping_without_tracer_records_nothing(self, mini_library):
        net = Netlist.from_equations(EQUATIONS)
        result = async_tmap(net, mini_library, MappingOptions())
        assert result.area > 0  # instrumentation stayed out of the way


def test_span_shape_key_defaults_to_none():
    span = Span("x", {}, span_id=1, parent_id=None, start=0.0)
    span.end = 1.0
    assert span_shape(span) == ("x", None, ())
