"""``repro-log/v1`` — emission, context binding, and tamper rejection."""

from __future__ import annotations

import json
import logging

import pytest

from repro.obs import log as obs_log
from repro.obs.log import (
    LINE_KEYS,
    LOG_SCHEMA,
    event,
    event_log,
    log_context,
    read_log,
    use_tracer,
    validate_log_line,
)
from repro.obs.tracer import Tracer


def test_event_is_noop_when_no_handler_is_configured():
    assert not obs_log.enabled()
    assert event("repro.test", "ignored", answer=42) is None


def test_round_trip_through_a_file(tmp_path):
    path = tmp_path / "events.jsonl"
    with event_log(path):
        assert obs_log.enabled()
        event("repro.test", "alpha", level="info", count=1)
        event("repro.test", "beta", level="warning", reason="because")
    assert not obs_log.enabled()

    lines = read_log(path)
    assert [line["event"] for line in lines] == ["alpha", "beta"]
    for line in lines:
        assert line["schema"] == LOG_SCHEMA
        assert tuple(line) == LINE_KEYS  # emission preserves key order
    assert lines[0]["fields"] == {"count": 1}
    assert lines[1]["level"] == "warning"
    assert lines[1]["fields"] == {"reason": "because"}


def test_log_context_binds_ids_and_fields(tmp_path):
    with event_log(tmp_path / "events.jsonl"):
        with log_context(job_id="a@b", attempt=1):
            outer = event("repro.test", "outer")
            with log_context(attempt=2, extra=True):
                inner = event("repro.test", "inner")
    assert outer["job_id"] == "a@b"
    assert outer["fields"] == {"attempt": 1}
    # Innermost binding wins; ids stay at the top level, the rest in fields.
    assert inner["job_id"] == "a@b"
    assert inner["fields"] == {"attempt": 2, "extra": True}


def test_explicit_keywords_override_bound_context(tmp_path):
    with event_log(tmp_path / "events.jsonl"):
        with log_context(job_id="bound", trace_id="bound-trace"):
            line = event(
                "repro.test", "e", job_id="explicit", trace_id="t1"
            )
    assert line["job_id"] == "explicit"
    assert line["trace_id"] == "t1"


def test_use_tracer_supplies_trace_and_current_span_ids(tmp_path):
    tracer = Tracer()
    with event_log(tmp_path / "events.jsonl"):
        with use_tracer(tracer):
            outside = event("repro.test", "outside")
            with tracer.span("work") as span:
                inside = event("repro.test", "inside")
    assert outside["trace_id"] == tracer.trace_id
    assert outside["span_id"] is None  # no span open on this thread
    assert inside["trace_id"] == tracer.trace_id
    assert inside["span_id"] == span.span_id


def test_stray_plain_logging_call_still_renders_valid_lines(tmp_path):
    path = tmp_path / "events.jsonl"
    with event_log(path):
        logging.getLogger("repro.stray").info("free-form message")
    (line,) = read_log(path)
    assert line["event"] == "free-form message"
    assert line["logger"] == "repro.stray"


def test_event_rejects_unknown_level(tmp_path):
    with event_log(tmp_path / "events.jsonl"):
        with pytest.raises(ValueError, match="unknown level"):
            event("repro.test", "e", level="loud")


def _valid_line() -> dict:
    return {
        "schema": LOG_SCHEMA,
        "ts": 123.0,
        "level": "info",
        "logger": "repro.test",
        "event": "e",
        "trace_id": None,
        "span_id": None,
        "job_id": None,
        "fields": {},
    }


@pytest.mark.parametrize(
    "mutate, message",
    [
        (lambda l: l.update(schema="repro-log/v2"), "schema"),
        (lambda l: l.pop("ts"), "missing key"),
        (lambda l: l.update(surprise=1), "unknown log line key"),
        (lambda l: l.update(ts="yesterday"), "ts must be a number"),
        (lambda l: l.update(level="loud"), "level"),
        (lambda l: l.update(event=""), "non-empty string"),
        (lambda l: l.update(trace_id=7), "trace_id"),
        (lambda l: l.update(span_id="seven"), "span_id"),
        (lambda l: l.update(job_id=["a"]), "job_id"),
        (lambda l: l.update(fields=[1, 2]), "fields"),
    ],
)
def test_validate_rejects_tampered_lines(mutate, message):
    line = _valid_line()
    mutate(line)
    with pytest.raises(ValueError, match=message):
        validate_log_line(line)


def test_validate_accepts_a_valid_line():
    assert validate_log_line(_valid_line()) == _valid_line()


def test_read_log_reports_the_offending_line(tmp_path):
    path = tmp_path / "events.jsonl"
    good = _valid_line()
    bad = _valid_line()
    bad["level"] = "loud"
    path.write_text(json.dumps(good) + "\n" + json.dumps(bad) + "\n")
    with pytest.raises(ValueError, match=r":2: .*level"):
        read_log(path)


def test_read_log_rejects_non_json_lines(tmp_path):
    path = tmp_path / "events.jsonl"
    path.write_text("not json at all\n")
    with pytest.raises(ValueError, match=":1: not JSON"):
        read_log(path)
