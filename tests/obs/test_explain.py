"""The explain layer: decision records, schema, determinism, witnesses.

The contracts under test:

* every hazard-filter invocation produces exactly one screened record
  (``summary.filter_invocations == CoverStats.filter_invocations``);
* every ``rejected-hazard`` record carries a reason naming the hazard
  class plus a witness that replays to a real glitch on the event
  simulator;
* the log is byte-identical for any worker count (mirroring
  ``tests/mapping/test_stats_merge.py``);
* ``validate_explain_payload`` rejects tampered payloads;
* ``publish_metrics`` lands the rejection-reason counts in the
  registry.
"""

from __future__ import annotations

import json

import pytest

from repro.hazards.cache import clear_global_cache
from repro.hazards.witness import HazardWitness, replay_witness
from repro.mapping.mapper import MappingOptions, async_tmap
from repro.network.netlist import Netlist
from repro.obs.explain import (
    ACCEPTED,
    EXPLAIN_SCHEMA,
    OUTCOMES,
    REJECTED_COST,
    REJECTED_HAZARD,
    ExplainLog,
    render_explain,
    validate_explain_payload,
    verify_explain_witnesses,
)
from repro.obs.export import load_explain, write_explain
from repro.obs.metrics import MetricsRegistry

# The Figure-3 situation: consensus makes f hazard-free, so the
# hazardous MUX21 candidate must be rejected — with provenance.
MUX_CONSENSUS = {"f": "s*a + s'*b + a*b"}

# The stats-merge workload: two mux cones (filter exercised) plus two
# plain cones, so a thread pool genuinely interleaves.
EQUATIONS = {
    "f": "s*a + s'*b",
    "g": "t*c + t'*d",
    "h": "a*b + c",
    "k": "(a + b)*c'",
}


def run_explained(mini_library, equations, workers=1, name="net"):
    clear_global_cache()
    net = Netlist.from_equations(equations, name=name)
    return async_tmap(
        net, mini_library, MappingOptions(explain=True, workers=workers)
    )


class TestExplainRecording:
    def test_disabled_by_default(self, mini_library):
        clear_global_cache()
        net = Netlist.from_equations(MUX_CONSENSUS)
        result = async_tmap(net, mini_library, MappingOptions())
        assert result.explain is None

    def test_filter_invocations_fully_covered(self, mini_library):
        result = run_explained(mini_library, MUX_CONSENSUS)
        summary = result.explain.summary()
        assert result.stats.filter_invocations > 0
        assert summary["filter_invocations"] == result.stats.filter_invocations

    def test_mux_rejection_has_witnessed_reason(self, mini_library):
        result = run_explained(mini_library, MUX_CONSENSUS)
        rejected = [
            r
            for r in result.explain.iter_records()
            if r.outcome == REJECTED_HAZARD
        ]
        assert rejected
        record = rejected[0]
        assert record.cell == "MUX21"
        assert record.screened and record.hazardous
        reason = record.reason
        assert reason is not None
        assert reason["kind"] == "static-1"
        witness = HazardWitness.from_dict(reason["witness"])
        cell = mini_library.cell("MUX21")
        replay = replay_witness(cell.analysis.lsop, witness)
        assert replay.glitched

    def test_selected_records_marked(self, mini_library):
        result = run_explained(mini_library, MUX_CONSENSUS)
        selected = [
            r for r in result.explain.iter_records() if r.selected
        ]
        # One selection per chosen cluster root, all champions.
        assert selected
        assert {r.node for r in selected} == {
            sel.cluster.root
            for cover in result.covers
            for sel in cover.selections
        }
        assert all(r.outcome == ACCEPTED for r in selected)

    def test_losing_champions_flip_to_cost(self, mini_library):
        result = run_explained(mini_library, EQUATIONS)
        outcomes = [r.outcome for r in result.explain.iter_records()]
        assert outcomes.count(REJECTED_COST) > 0
        # Exactly one accepted champion per (node) among the accepted set
        accepted_nodes = [
            r.node
            for r in result.explain.iter_records()
            if r.outcome == ACCEPTED
        ]
        assert len(accepted_nodes) == len(set(accepted_nodes))


class TestDeterminism:
    def test_log_identical_across_worker_counts(self, mini_library):
        payloads = []
        for workers in (1, 2, 4):
            result = run_explained(
                mini_library, EQUATIONS, workers=workers, name="multi"
            )
            payload = result.explain.to_dict()
            assert payload["workers"] == max(1, workers)
            payload["workers"] = 0  # the only field allowed to differ
            payloads.append(json.dumps(payload, sort_keys=True))
        assert payloads[0] == payloads[1] == payloads[2]


class TestSchema:
    def test_payload_validates_and_round_trips(self, mini_library, tmp_path):
        result = run_explained(mini_library, MUX_CONSENSUS)
        payload = result.explain.to_dict()
        assert payload["schema"] == EXPLAIN_SCHEMA
        summary = validate_explain_payload(payload)
        assert summary["rejected_hazard"] >= 1
        path = tmp_path / "explain.json"
        write_explain(path, result.explain)
        assert load_explain(path) == payload

    def test_unknown_outcome_rejected(self, mini_library):
        result = run_explained(mini_library, MUX_CONSENSUS)
        payload = result.explain.to_dict()
        payload["cones"][0]["candidates"][0]["outcome"] = "banana"
        with pytest.raises(ValueError, match="unknown outcome"):
            validate_explain_payload(payload)

    def test_stripped_witness_rejected(self, mini_library):
        result = run_explained(mini_library, MUX_CONSENSUS)
        payload = result.explain.to_dict()
        for cone in payload["cones"]:
            for record in cone["candidates"]:
                if record["outcome"] == REJECTED_HAZARD:
                    del record["reason"]["witness"]
        with pytest.raises(ValueError, match="no witness"):
            validate_explain_payload(payload)

    def test_inconsistent_summary_rejected(self, mini_library):
        result = run_explained(mini_library, MUX_CONSENSUS)
        payload = result.explain.to_dict()
        payload["summary"]["filter_invocations"] += 1
        with pytest.raises(ValueError, match="filter_invocations"):
            validate_explain_payload(payload)

    def test_wrong_schema_rejected(self):
        with pytest.raises(ValueError, match="schema"):
            validate_explain_payload({"schema": "repro-explain/v0"})

    def test_verify_explain_witnesses(self, mini_library):
        result = run_explained(mini_library, MUX_CONSENSUS)
        payload = result.explain.to_dict()
        replayed = verify_explain_witnesses(payload, mini_library)
        assert replayed >= 1

    def test_verify_catches_fabricated_witness(self, mini_library):
        result = run_explained(mini_library, MUX_CONSENSUS)
        payload = result.explain.to_dict()
        for cone in payload["cones"]:
            for record in cone["candidates"]:
                if record["outcome"] == REJECTED_HAZARD:
                    # A hazard-free burst: nothing changes.
                    record["reason"]["witness"]["end"] = record["reason"][
                        "witness"
                    ]["start"]
        with pytest.raises(ValueError, match="did not glitch"):
            verify_explain_witnesses(payload, mini_library)


class TestMetricsAndRendering:
    def test_publish_metrics(self, mini_library):
        result = run_explained(mini_library, MUX_CONSENSUS)
        snap = result.metrics.snapshot()
        summary = result.explain.summary()
        assert snap["explain.candidates"]["value"] == summary["candidates"]
        assert (
            snap["explain.filter_invocations"]["value"]
            == summary["filter_invocations"]
        )
        assert snap["explain.rejected_hazard"]["value"] == summary[
            "rejected_hazard"
        ]
        assert snap["explain.rejected_hazard.static_1"]["value"] >= 1

    def test_render_report(self, mini_library):
        result = run_explained(mini_library, MUX_CONSENSUS)
        lines = render_explain(result.explain.to_dict())
        text = "\n".join(lines)
        assert "MUX21" in text
        assert "rejected-hazard" in text
        assert "static-1" in text
        assert "cell witness:" in text

    def test_render_filters(self, mini_library):
        result = run_explained(mini_library, EQUATIONS, name="multi")
        payload = result.explain.to_dict()
        roots = [cone["root"] for cone in payload["cones"]]
        only = render_explain(payload, cone=roots[0])
        assert f"cone {roots[0]}" in "\n".join(only)
        assert f"cone {roots[1]}" not in "\n".join(only)
        limited = render_explain(payload, limit=1)
        assert any("more" in line for line in limited)

    def test_empty_log_summary(self):
        log = ExplainLog(design="empty")
        summary = log.summary()
        assert summary["candidates"] == 0
        assert summary["reason_kinds"] == {}
        for outcome in OUTCOMES:
            assert summary[outcome.replace("-", "_")] == 0
