"""Snapshot export contracts and the regression-gate policy."""

from __future__ import annotations

import copy
import json

import pytest

from repro.obs.export import (
    BENCH_SCHEMA,
    load_bench_snapshot,
    write_bench_snapshot,
    write_trace,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.regression import compare_snapshots
from repro.obs.tracer import Tracer


def snapshot(**overrides) -> dict:
    base = {
        "schema": BENCH_SCHEMA,
        "library": "CMOS3",
        "workers": 1,
        "max_depth": 5,
        "annotate_seconds": 0.10,
        "annotate_source": "cold",
        "benchmarks": {
            "chu-ad-opt": {
                "map_seconds": 0.10,
                "area": 13.0,
                "delay": 0.45,
                "cells": 6,
                "cell_usage": {"AND3": 1, "AO21": 2},
                "cones": 4,
                "matches": 14,
                "filter_invocations": 0,
                "cache": {"hits": 0, "misses": 0, "hit_rate": 0.0},
                "verify": {"equivalent": True, "hazard_safe": True, "ok": True},
            },
            "vanbek-opt": {
                "map_seconds": 0.05,
                "area": 14.0,
                "delay": 0.50,
                "cells": 6,
                "cell_usage": {"OR2": 3},
                "cones": 6,
                "matches": 16,
                "filter_invocations": 0,
                "cache": {"hits": 0, "misses": 0, "hit_rate": 0.0},
                "verify": {"equivalent": True, "hazard_safe": True, "ok": True},
            },
        },
    }
    base.update(overrides)
    return base


class TestExport:
    def test_bench_snapshot_round_trip(self, tmp_path):
        path = tmp_path / "BENCH_mapping.json"
        write_bench_snapshot(path, snapshot())
        assert load_bench_snapshot(path) == snapshot()

    def test_write_rejects_wrong_schema(self, tmp_path):
        with pytest.raises(ValueError, match="schema"):
            write_bench_snapshot(tmp_path / "x.json", {"schema": "bogus/v9"})

    def test_load_rejects_wrong_schema(self, tmp_path):
        path = tmp_path / "x.json"
        path.write_text(json.dumps({"schema": "bogus/v9"}))
        with pytest.raises(ValueError, match="bogus/v9"):
            load_bench_snapshot(path)

    def test_write_trace_embeds_metrics(self, tmp_path):
        tracer = Tracer()
        with tracer.span("run"):
            pass
        registry = MetricsRegistry()
        registry.counter("n").inc(3)
        path = write_trace(tmp_path / "trace.json", tracer, metrics=registry)
        payload = json.loads(path.read_text())
        assert payload["schema"] == "repro-trace/v1"
        assert payload["spans"][0]["name"] == "run"
        assert payload["metrics"]["n"]["value"] == 3


class TestComparePolicy:
    def test_identical_snapshots_pass(self):
        assert compare_snapshots(snapshot(), snapshot()) == []

    def test_double_slowdown_fails(self):
        fresh = snapshot()
        fresh["benchmarks"]["chu-ad-opt"]["map_seconds"] = 0.10 * 2 + 1.0
        problems = compare_snapshots(snapshot(), fresh)
        assert len(problems) == 1
        assert "chu-ad-opt.map_seconds" in problems[0]

    def test_small_absolute_drift_is_ignored(self):
        fresh = snapshot()
        # +100% relative but only +40ms absolute: under the floor.
        fresh["benchmarks"]["vanbek-opt"]["map_seconds"] = 0.09
        assert compare_snapshots(snapshot(), fresh, min_seconds=0.05) == []

    def test_speedup_never_fails(self):
        fresh = snapshot()
        for row in fresh["benchmarks"].values():
            row["map_seconds"] = 0.0
        assert compare_snapshots(snapshot(), fresh) == []

    @pytest.mark.parametrize(
        "field,value",
        [
            ("area", 99.0),
            ("cells", 7),
            ("cell_usage", {"NAND2": 9}),
            ("cones", 5),
            ("matches", 1),
            ("verify", {"equivalent": True, "hazard_safe": False, "ok": False}),
        ],
    )
    def test_any_quality_change_fails(self, field, value):
        fresh = snapshot()
        fresh["benchmarks"]["chu-ad-opt"][field] = value
        problems = compare_snapshots(snapshot(), fresh)
        assert any(f"chu-ad-opt.{field}" in p for p in problems)

    def test_missing_benchmark_fails_unless_subset(self):
        fresh = snapshot()
        del fresh["benchmarks"]["vanbek-opt"]
        assert any(
            "missing" in p for p in compare_snapshots(snapshot(), fresh)
        )
        assert compare_snapshots(snapshot(), fresh, subset=True) == []

    def test_extra_benchmark_fails_even_as_subset(self):
        fresh = snapshot()
        fresh["benchmarks"]["new-bench"] = copy.deepcopy(
            fresh["benchmarks"]["chu-ad-opt"]
        )
        problems = compare_snapshots(snapshot(), fresh, subset=True)
        assert any("absent from baseline" in p for p in problems)

    def test_config_mismatch_is_not_comparable(self):
        fresh = snapshot(workers=4)
        problems = compare_snapshots(snapshot(), fresh)
        assert any("not comparable" in p for p in problems)

    def test_annotate_slowdown_fails(self):
        fresh = snapshot(annotate_seconds=5.0)
        problems = compare_snapshots(snapshot(), fresh)
        assert any("annotate_seconds" in p for p in problems)

    def test_loose_ci_tolerance_absorbs_machine_jitter(self):
        fresh = snapshot()
        fresh["benchmarks"]["chu-ad-opt"]["map_seconds"] = 0.25  # +150%
        assert (
            compare_snapshots(
                snapshot(), fresh, tolerance=2.0, min_seconds=1.0
            )
            == []
        )
