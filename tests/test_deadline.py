"""Edge cases of the cooperative deadline machinery.

Covers budget validation, nested (inner/outer) deadlines, hang
truncation, and expiry landing exactly on the mapper's
``netlist.build`` checkpoint — both as a raw ``DeadlineExceeded`` and
as the facade's graceful trivial-cover degradation.
"""

from __future__ import annotations

import time

import pytest

from repro.api import MapRequest, run_map
from repro.burstmode.benchmarks import synthesize_benchmark
from repro.deadline import Deadline, DeadlineExceeded, checked_sleep
from repro.library import anncache
from repro.library.standard import load_library
from repro.mapping.mapper import MappingOptions, map_network
from repro.testing import faults
from repro.testing.faults import FaultPlan


class TestBudgetValidation:
    @pytest.mark.parametrize("seconds", [0, -1, -0.001])
    def test_non_positive_budget_is_rejected(self, seconds):
        with pytest.raises(ValueError, match="positive"):
            Deadline(seconds)

    def test_tiny_budget_is_accepted_and_expires(self):
        deadline = Deadline(1e-9)
        time.sleep(0.001)
        assert deadline.expired()
        assert deadline.remaining() < 0

    def test_generous_budget_does_not_expire(self):
        deadline = Deadline(60)
        assert not deadline.expired()
        deadline.check("anywhere")  # must not raise


class TestNestedDeadlines:
    def test_inner_deadline_fires_before_outer(self):
        outer = Deadline(30)
        inner = Deadline(0.01)
        time.sleep(0.02)
        with pytest.raises(DeadlineExceeded) as excinfo:
            inner.check("inner.site")
        assert excinfo.value.site == "inner.site"
        outer.check("outer.site")  # outer budget is untouched

    def test_deadlines_are_independent_objects(self):
        first = Deadline(0.01)
        second = Deadline(0.01)
        time.sleep(0.02)
        assert first.expired() and second.expired()
        assert first.remaining() != pytest.approx(30.0)


class TestSleep:
    def test_sleep_is_cut_short_at_the_deadline(self):
        deadline = Deadline(0.05)
        started = time.monotonic()
        with pytest.raises(DeadlineExceeded) as excinfo:
            deadline.sleep(30.0, site="test.hang")
        elapsed = time.monotonic() - started
        assert elapsed < 5.0, "a 30s hang must wake at the 0.05s deadline"
        assert excinfo.value.site == "test.hang"
        assert excinfo.value.seconds == pytest.approx(0.05)

    def test_sleep_within_budget_completes(self):
        deadline = Deadline(10)
        deadline.sleep(0.01)  # must not raise

    def test_checked_sleep_without_deadline_is_plain_sleep(self):
        started = time.monotonic()
        checked_sleep(0.01, None)
        assert time.monotonic() - started >= 0.009


class TestNetlistBuildCheckpoint:
    """Expiry at the last checkpoint before the mapped netlist exists."""

    @pytest.fixture()
    def source(self):
        return synthesize_benchmark("chu-ad-opt").netlist("chu-ad-opt")

    @pytest.fixture()
    def library(self):
        library = load_library("CMOS3")
        if not library.annotated:
            library.annotate_hazards()
        return library

    def test_hang_at_netlist_build_raises_with_site(self, source, library):
        faults.install_plan(
            FaultPlan.parse(["hang@netlist.build"]), job="t@L", attempt=1
        )
        try:
            options = MappingOptions(
                max_depth=3,
                annotation_cache_dir=anncache.DISABLED,
                deadline=Deadline(0.05),
            )
            with pytest.raises(DeadlineExceeded) as excinfo:
                map_network(source, library, options)
        finally:
            faults.clear_plan()
        assert excinfo.value.site == "netlist.build"

    def test_facade_degrades_to_trivial_cover(self, source, library):
        faults.install_plan(
            FaultPlan.parse(["hang@netlist.build"]), job="t@L", attempt=1
        )
        try:
            response, result = run_map(
                MapRequest(
                    design="chu-ad-opt",
                    library="CMOS3",
                    max_depth=3,
                    deadline_seconds=0.05,
                ),
                library=library,
                network=source,
                cache_dir=anncache.DISABLED,
            )
        finally:
            faults.clear_plan()
        assert response.fallback == "trivial-cover"
        assert response.deadline_site == "netlist.build"
        assert result.mapped is not None
