"""Shared fixtures and hypothesis strategies for the test-suite."""

from __future__ import annotations

import pytest
from hypothesis import strategies as st

from repro.boolean.cover import Cover
from repro.boolean.cube import Cube


def cube_strategy(nvars: int) -> st.SearchStrategy[Cube]:
    """Random non-empty cubes over ``nvars`` variables."""
    return st.builds(
        lambda used, phase: Cube(used, phase, nvars),
        st.integers(min_value=1, max_value=(1 << nvars) - 1),
        st.integers(min_value=0, max_value=(1 << nvars) - 1),
    )


def cover_strategy(nvars: int, max_cubes: int = 5) -> st.SearchStrategy[Cover]:
    """Random covers (possibly with duplicate/contained cubes)."""
    return st.lists(cube_strategy(nvars), min_size=1, max_size=max_cubes).map(
        lambda cubes: Cover(cubes, nvars)
    )


@pytest.fixture
def names4() -> list[str]:
    return ["a", "b", "c", "d"]


@pytest.fixture
def mini_library():
    from repro.library import minimal_teaching_library

    library = minimal_teaching_library()
    if not library.annotated:
        library.annotate_hazards()
    return library
