"""Unit coverage of the content-addressed result cache.

Key derivation (two spellings of identical options share one key),
both storage tiers (LRU bounds, disk bounds, oldest-first eviction),
and the verification discipline: corrupt, truncated, version-stamped
or mis-keyed entries are evicted and recomputed — never served.
"""

from __future__ import annotations

import json

import pytest

from repro.api.schema import MapRequest
from repro.cache import resultcache
from repro.cache.resultcache import (
    MemoryTier,
    RESULT_CACHE_VERSION,
    RESULT_SCHEMA,
    ResultCache,
    normalized_options,
    request_cache_key,
    result_cache_key,
    result_path,
)
from repro.library.standard import load_library
from repro.obs.metrics import MetricsRegistry

BLIF = ".model t\n.inputs a b\n.outputs f\n.names a b f\n11 1\n.end\n"


@pytest.fixture(scope="module")
def library():
    return load_library("CMOS3")


def _response_payload(blif: str = BLIF) -> dict:
    from repro.api.facade import text_digest

    return {
        "schema": "repro-api/v1",
        "kind": "map_response",
        "status": "ok",
        "digest": text_digest(blif),
        "blif": blif,
    }


class TestKeyDerivation:
    def test_two_spellings_of_identical_options_share_a_key(self, library):
        # Spelling 1: defaults left implicit.  Spelling 2: every default
        # written out, plus result-neutral knobs at non-default values.
        implicit = {}
        explicit = {
            "mode": "async",
            "max_depth": 5,
            "max_inputs": 8,
            "objective": "area",
            "filter_mode": "exact",
            "dont_cares": False,
            "verify": False,
            "explain": False,
            "workers": 7,  # result-neutral: must not affect the key
            "deadline_seconds": 2.0,  # result-neutral
            "result_cache": True,  # the toggle itself is result-neutral
        }
        assert normalized_options(implicit) == normalized_options(explicit)
        assert result_cache_key(BLIF, library, implicit) == result_cache_key(
            BLIF, library, explicit
        )

    def test_result_affecting_options_change_the_key(self, library):
        base = result_cache_key(BLIF, library, {})
        assert result_cache_key(BLIF, library, {"max_depth": 3}) != base
        assert result_cache_key(BLIF, library, {"objective": "delay"}) != base
        assert result_cache_key(BLIF, library, {"verify": True}) != base

    def test_network_and_library_change_the_key(self, library):
        base = result_cache_key(BLIF, library, {})
        assert result_cache_key(BLIF + "\n", library, {}) != base
        actel = load_library("ACTEL")
        assert result_cache_key(BLIF, actel, {}) != base

    def test_request_key_matches_option_dict_key(self, library):
        request = MapRequest(
            library="CMOS3", design="chu-ad-opt", max_depth=3, workers=4
        )
        assert request_cache_key(request, BLIF, library) == result_cache_key(
            BLIF, library, {"max_depth": 3}
        )


class TestMemoryTier:
    def test_lru_bound_evicts_least_recently_used(self):
        tier = MemoryTier(max_entries=2)
        tier.put("a", {"v": 1})
        tier.put("b", {"v": 2})
        assert tier.get("a") == {"v": 1}  # refresh a; b is now LRU
        tier.put("c", {"v": 3})
        assert tier.get("b") is None
        assert tier.get("a") is not None and tier.get("c") is not None
        assert tier.evictions == 1
        assert len(tier) == 2

    def test_zero_bound_stores_nothing(self):
        tier = MemoryTier(max_entries=0)
        tier.put("a", {"v": 1})
        assert tier.get("a") is None and len(tier) == 0

    def test_clear_reports_dropped_count(self):
        tier = MemoryTier()
        tier.put("a", {}), tier.put("b", {})
        assert tier.clear() == 2 and len(tier) == 0


class TestDiskTier:
    def test_store_then_lookup_round_trips(self, tmp_path, library):
        cache = ResultCache(tmp_path)
        metrics = MetricsRegistry()
        key = result_cache_key(BLIF, library, {})
        assert cache.lookup(key, metrics=metrics) is None
        cache.store(
            key,
            _response_payload(),
            library=library,
            design="t",
            metrics=metrics,
        )
        tier, payload = cache.lookup(key, metrics=metrics)
        assert tier == "memory"  # store primes the LRU
        assert payload["blif"] == BLIF
        # A cold process (empty LRU) reads the disk entry.
        resultcache.MEMORY.clear()
        tier, payload = cache.lookup(key, metrics=metrics)
        assert tier == "disk"
        assert payload["blif"] == BLIF
        snap = metrics.snapshot()
        assert snap["cache.result.hits"]["value"] == 2
        assert snap["cache.result.misses"]["value"] == 1
        assert snap["cache.result.stores"]["value"] == 1
        assert snap["cache.result.lookup_seconds"]["count"] == 3

    def test_entry_is_self_describing(self, tmp_path, library):
        cache = ResultCache(tmp_path)
        key = result_cache_key(BLIF, library, {})
        path = cache.store(key, _response_payload(), library=library, design="t")
        entry = json.loads(path.read_text())
        assert entry["schema"] == RESULT_SCHEMA
        assert entry["cache_version"] == RESULT_CACHE_VERSION
        assert entry["key"] == key
        assert entry["library"] == "CMOS3"
        assert entry["library_fingerprint"]

    def test_truncated_entry_is_evicted_not_served(self, tmp_path, library):
        cache = ResultCache(tmp_path)
        metrics = MetricsRegistry()
        key = result_cache_key(BLIF, library, {})
        path = cache.store(key, _response_payload())
        resultcache.MEMORY.clear()
        path.write_text(path.read_text()[: len(path.read_text()) // 2])
        assert cache.lookup(key, metrics=metrics) is None
        assert not path.exists()  # evicted, so the recompute stores clean
        snap = metrics.snapshot()
        assert snap["cache.result.verify_failures"]["value"] == 1
        assert snap["cache.result.evictions"]["value"] == 1

    def test_tampered_blif_fails_digest_verification(self, tmp_path, library):
        cache = ResultCache(tmp_path)
        key = result_cache_key(BLIF, library, {})
        path = cache.store(key, _response_payload())
        resultcache.MEMORY.clear()
        entry = json.loads(path.read_text())
        entry["response"]["blif"] = BLIF.replace("11 1", "10 1")
        path.write_text(json.dumps(entry))
        assert cache.lookup(key) is None
        assert not path.exists()

    def test_version_stamp_mismatch_is_rejected(self, tmp_path, library):
        cache = ResultCache(tmp_path)
        key = result_cache_key(BLIF, library, {})
        path = cache.store(key, _response_payload())
        resultcache.MEMORY.clear()
        entry = json.loads(path.read_text())
        entry["cache_version"] = RESULT_CACHE_VERSION + 1
        path.write_text(json.dumps(entry))
        assert cache.lookup(key) is None
        assert not path.exists()

    def test_foreign_key_entry_is_rejected(self, tmp_path, library):
        cache = ResultCache(tmp_path)
        key = result_cache_key(BLIF, library, {})
        other = result_cache_key(BLIF, library, {"max_depth": 3})
        path = cache.store(key, _response_payload())
        resultcache.MEMORY.clear()
        # Simulate a mis-filed entry: key A's payload under key B's path.
        result_path(tmp_path, other).write_text(path.read_text())
        assert cache.lookup(other) is None

    def test_entry_count_bound_evicts_oldest(self, tmp_path, library):
        import os

        cache = ResultCache(tmp_path, max_entries=2, max_bytes=10**9)
        keys = [
            result_cache_key(BLIF, library, {"max_depth": depth})
            for depth in (2, 3, 4)
        ]
        for index, key in enumerate(keys):
            path = cache.store(key, _response_payload())
            # Deterministic mtime order regardless of filesystem clock
            # granularity: older entries get strictly older stamps.
            stamp = 1_000_000 + index
            os.utime(path, (stamp, stamp))
        # Bounds run after each store; the third store evicted the oldest.
        remaining = {path.stem for path in resultcache.result_entries(tmp_path)}
        assert len(remaining) == 2
        assert keys[0] not in remaining

    def test_byte_size_bound_evicts_down(self, tmp_path, library):
        key_a = result_cache_key(BLIF, library, {})
        key_b = result_cache_key(BLIF, library, {"max_depth": 3})
        cache = ResultCache(tmp_path, max_entries=100, max_bytes=1)
        cache.store(key_a, _response_payload())
        cache.store(key_b, _response_payload())
        # Both entries exceed one byte, so at most one (the newest,
        # stored after the prune of the first) survives each pass.
        assert len(resultcache.result_entries(tmp_path)) <= 1

    def test_disabled_disk_tier_still_serves_memory(self, library):
        from repro.library.anncache import DISABLED

        cache = ResultCache(DISABLED)
        assert cache.disk_dir is None
        key = result_cache_key(BLIF, library, {})
        assert cache.store(key, _response_payload()) is None
        tier, payload = cache.lookup(key)
        assert tier == "memory" and payload["blif"] == BLIF
        assert resultcache.result_entries(DISABLED) == []

    def test_clear_result_cache_empties_both_tiers(self, tmp_path, library):
        cache = ResultCache(tmp_path)
        key = result_cache_key(BLIF, library, {})
        cache.store(key, _response_payload())
        assert resultcache.clear_result_cache(tmp_path) == 1
        assert resultcache.result_entries(tmp_path) == []
        assert len(resultcache.MEMORY) == 0


class TestEnvironmentResolution:
    def test_unset_toggle_keeps_disk_tier_off(self, monkeypatch):
        monkeypatch.delenv("REPRO_RESULT_CACHE", raising=False)
        assert resultcache.resolve_result_cache_dir(None) is None

    def test_toggle_path_and_auto(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_RESULT_CACHE", str(tmp_path))
        assert resultcache.resolve_result_cache_dir(None) == tmp_path
        monkeypatch.setenv("REPRO_RESULT_CACHE", "off")
        assert resultcache.resolve_result_cache_dir(None) is None
        monkeypatch.setenv("REPRO_RESULT_CACHE", "auto")
        assert resultcache.resolve_result_cache_dir(None) is not None

    def test_explicit_dir_beats_environment(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_RESULT_CACHE", "off")
        assert resultcache.resolve_result_cache_dir(tmp_path) == tmp_path
