"""Fixtures for the result-cache suite."""

from __future__ import annotations

import pytest

from repro.cache import resultcache


@pytest.fixture(autouse=True)
def fresh_memory_tier():
    """Each test starts (and leaves) the process-wide LRU empty."""
    resultcache.MEMORY.clear()
    yield
    resultcache.MEMORY.clear()


@pytest.fixture(scope="session")
def ann_cache(tmp_path_factory) -> str:
    """A shared on-disk annotation cache (mirrors the batch suite)."""
    return str(tmp_path_factory.mktemp("anncache"))
