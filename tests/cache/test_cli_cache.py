"""CLI surface of the result cache.

``repro map --result-cache`` twice against one cache dir (the second
run must replay and stay byte-identical), the derived ``--no-result-
cache`` spelling, and the extended ``repro cache`` report/clear.
"""

from __future__ import annotations

from repro.cli import main


def _map(tmp_path, out_name, *extra):
    out = tmp_path / out_name
    code = main(
        [
            "map", "chu-ad-opt", "CMOS3",
            "--depth", "3",
            "--cache-dir", str(tmp_path / "cache"),
            "--output", str(out),
            *extra,
        ]
    )
    assert code == 0
    return out.read_text()


class TestMapResultCacheFlag:
    def test_second_run_replays_byte_identical(self, tmp_path, capsys):
        cold = _map(tmp_path, "a.blif", "--result-cache")
        assert "result cache" not in capsys.readouterr().out
        warm = _map(tmp_path, "b.blif", "--result-cache")
        assert "(result cache: memory hit)" in capsys.readouterr().out
        assert warm == cold

    def test_no_result_cache_spelling_recomputes(self, tmp_path, capsys):
        _map(tmp_path, "a.blif", "--result-cache")
        capsys.readouterr()
        _map(tmp_path, "b.blif", "--no-result-cache")
        assert "result cache" not in capsys.readouterr().out

    def test_verify_runs_on_the_replayed_netlist(self, tmp_path, capsys):
        _map(tmp_path, "a.blif", "--result-cache")
        capsys.readouterr()
        _map(tmp_path, "b.blif", "--result-cache", "--verify")
        out = capsys.readouterr().out
        # verify=False and verify=True map to different keys; the second
        # run recomputes, the third replays and still verifies.
        _map(tmp_path, "c.blif", "--result-cache", "--verify")
        out = capsys.readouterr().out
        assert "(result cache: memory hit)" in out
        assert "verification: equivalent=True hazard_safe=True" in out


class TestCacheSubcommand:
    def test_reports_and_clears_both_caches(self, tmp_path, capsys):
        _map(tmp_path, "a.blif", "--result-cache")
        capsys.readouterr()
        root = str(tmp_path / "cache")
        assert main(["cache", "--cache-dir", root]) == 0
        out = capsys.readouterr().out
        assert "annotation cache at" in out
        assert "result cache at" in out and "1 entrie(s)" in out
        assert main(["cache", "--cache-dir", root, "--clear"]) == 0
        out = capsys.readouterr().out
        # The annotation count depends on whether an earlier test left
        # the library warm in-process; the result entry is always ours.
        assert "cached annotation payload(s)" in out
        assert "cleared 1 cached map result(s)" in out
        assert main(["cache", "--cache-dir", root]) == 0
        out = capsys.readouterr().out
        assert "result cache at" in out and "0 entrie(s), 0 bytes" in out
