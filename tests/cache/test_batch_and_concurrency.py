"""Result cache under the batch engine and under process concurrency.

Cross-backend byte-identity with the cache on (warm results must equal
cold and cache-disabled results bit for bit), warm runs actually served
from the cache, and two processes storing the same key concurrently
without tearing the payload.
"""

from __future__ import annotations

import json
import multiprocessing

import pytest

from repro.batch import BatchConfig, BatchJob, run_batch
from repro.cache import resultcache
from repro.cache.resultcache import ResultCache, result_cache_key, result_path
from repro.library.standard import load_library
from repro.obs.metrics import MetricsRegistry

SMALL = ("chu-ad-opt", "vanbek-opt")
DEPTH = 3

BLIF = ".model t\n.inputs a b\n.outputs f\n.names a b f\n11 1\n.end\n"


def _jobs():
    return [
        BatchJob(design=design, library="CMOS3", max_depth=DEPTH)
        for design in SMALL
    ]


def _digests(report) -> dict:
    return {r["job_id"]: r["digest"] for r in report.results}


class TestBatchByteIdentity:
    @pytest.mark.parametrize("backend", ["serial", "threads", "processes"])
    def test_cached_batch_matches_uncached_across_backends(
        self, backend, tmp_path, ann_cache
    ):
        resultcache.MEMORY.clear()
        cache_dir = str(tmp_path / "cache")
        baseline = run_batch(
            _jobs(),
            BatchConfig(
                backend=backend, workers=2, cache_dir=ann_cache,
            ),
        )
        cold = run_batch(
            _jobs(),
            BatchConfig(
                backend=backend, workers=2, cache_dir=cache_dir,
                result_cache=True,
            ),
        )
        warm = run_batch(
            _jobs(),
            BatchConfig(
                backend=backend, workers=2, cache_dir=cache_dir,
                result_cache=True,
            ),
        )
        assert baseline.ok and cold.ok and warm.ok
        assert _digests(cold) == _digests(baseline)
        assert _digests(warm) == _digests(baseline)
        # The warm run was actually served from the cache...
        assert all(
            record.get("cached") in ("memory", "disk")
            for record in warm.results
        )
        # ...and the cold run stored one entry per job.
        assert len(resultcache.result_entries(cache_dir)) == len(SMALL)

    def test_warm_run_counts_hits_on_inprocess_backend(
        self, tmp_path, ann_cache
    ):
        resultcache.MEMORY.clear()
        cache_dir = str(tmp_path / "cache")
        metrics = MetricsRegistry()
        config = BatchConfig(
            backend="threads", workers=2, cache_dir=cache_dir,
            result_cache=True, metrics=metrics,
        )
        run_batch(_jobs(), config)
        run_batch(_jobs(), config)
        snap = metrics.snapshot()
        assert snap["cache.result.hits"]["value"] == len(SMALL)
        assert snap["cache.result.misses"]["value"] == len(SMALL)


def _store_worker(cache_dir: str, key: str, iterations: int) -> None:
    from repro.api.facade import text_digest

    cache = ResultCache(cache_dir)
    payload = {
        "schema": "repro-api/v1",
        "kind": "map_response",
        "status": "ok",
        "digest": text_digest(BLIF),
        "blif": BLIF,
    }
    for _ in range(iterations):
        cache.store(key, payload)


class TestConcurrentStores:
    def test_two_processes_storing_one_key_never_tear(self, tmp_path):
        library = load_library("CMOS3")
        key = result_cache_key(BLIF, library, {})
        context = multiprocessing.get_context("fork")
        writers = [
            context.Process(
                target=_store_worker, args=(str(tmp_path), key, 20)
            )
            for _ in range(2)
        ]
        for proc in writers:
            proc.start()
        path = result_path(tmp_path, key)
        observed = 0
        try:
            # The parent polls as the concurrent reader: a published
            # payload must always be complete JSON (os.replace) and must
            # always verify (both writers store the same content).
            while any(proc.is_alive() for proc in writers):
                if path.exists():
                    text = path.read_text()
                    if text:
                        entry = json.loads(text)
                        assert entry["key"] == key
                        observed += 1
        finally:
            for proc in writers:
                proc.join(timeout=60)
        assert all(proc.exitcode == 0 for proc in writers)
        entry = json.loads(path.read_text())
        assert entry["response"]["blif"] == BLIF
        observed += 1
        assert observed > 0
        # The cache still serves the entry, and no temp file leaked.
        resultcache.MEMORY.clear()
        tier, payload = ResultCache(tmp_path).lookup(key)
        assert tier == "disk" and payload["blif"] == BLIF
        leftovers = [p for p in path.parent.iterdir() if ".tmp-" in p.name]
        assert leftovers == []
