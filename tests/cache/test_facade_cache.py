"""The result cache through the one execution path (`run_map`).

A hit replays the stored response verbatim (raw result ``None``,
``cached`` tier set); a deadline-fallback response is never stored;
and the cached BLIF is byte-identical to a cache-disabled run.
"""

from __future__ import annotations

import pytest

from repro.api.facade import run_map
from repro.api.schema import MapRequest
from repro.cache import resultcache
from repro.library import anncache
from repro.library.standard import load_library
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import Tracer
from repro.testing import faults
from repro.testing.faults import FaultPlan

DEPTH = 3


@pytest.fixture(scope="module")
def library():
    return load_library("CMOS3")


def _request(**overrides) -> MapRequest:
    values = dict(
        library="CMOS3",
        design="chu-ad-opt",
        max_depth=DEPTH,
        result_cache=True,
    )
    values.update(overrides)
    return MapRequest(**values)


class TestRunMapCaching:
    def test_miss_then_hit_replays_identical_response(self, tmp_path, library):
        metrics = MetricsRegistry()
        cold, result = run_map(
            _request(), library=library, cache_dir=str(tmp_path),
            metrics=metrics,
        )
        assert result is not None and cold.cached is None
        warm, warm_result = run_map(
            _request(), library=library, cache_dir=str(tmp_path),
            metrics=metrics,
        )
        assert warm_result is None
        assert warm.cached == "memory"
        assert warm.blif == cold.blif and warm.digest == cold.digest
        assert warm.area == cold.area and warm.cells == cold.cells
        snap = metrics.snapshot()
        assert snap["cache.result.hits"]["value"] == 1
        assert snap["cache.result.misses"]["value"] == 1
        assert snap["cache.result.stores"]["value"] == 1

    def test_disk_hit_after_memory_clear(self, tmp_path, library):
        cold, _ = run_map(_request(), library=library, cache_dir=str(tmp_path))
        resultcache.MEMORY.clear()
        warm, _ = run_map(_request(), library=library, cache_dir=str(tmp_path))
        assert warm.cached == "disk"
        assert warm.blif == cold.blif

    def test_cached_blif_matches_cache_disabled_run(self, tmp_path, library):
        run_map(_request(), library=library, cache_dir=str(tmp_path))
        warm, _ = run_map(_request(), library=library, cache_dir=str(tmp_path))
        plain, _ = run_map(
            _request(result_cache=False),
            library=library,
            cache_dir=anncache.DISABLED,
        )
        assert warm.blif == plain.blif
        assert warm.digest == plain.digest

    def test_option_change_is_a_miss(self, tmp_path, library):
        run_map(_request(), library=library, cache_dir=str(tmp_path))
        other, other_result = run_map(
            _request(max_depth=2), library=library, cache_dir=str(tmp_path)
        )
        assert other_result is not None and other.cached is None

    def test_result_cache_off_never_touches_the_cache(self, tmp_path, library):
        metrics = MetricsRegistry()
        run_map(
            _request(result_cache=False),
            library=library,
            cache_dir=str(tmp_path),
            metrics=metrics,
        )
        assert "cache.result.misses" not in metrics.snapshot()
        assert resultcache.result_entries(str(tmp_path)) == []

    def test_fallback_response_is_never_stored(self, tmp_path, library):
        faults.install_plan(
            FaultPlan.parse(["hang@netlist.build"]), job="t@L", attempt=1
        )
        try:
            response, _ = run_map(
                _request(deadline_seconds=0.05),
                library=library,
                cache_dir=str(tmp_path),
            )
        finally:
            faults.clear_plan()
        assert response.fallback == "trivial-cover"
        assert resultcache.result_entries(str(tmp_path)) == []
        assert len(resultcache.MEMORY) == 0
        # The next (undeadlined) run is a miss, maps fully, and stores.
        clean, clean_result = run_map(
            _request(), library=library, cache_dir=str(tmp_path)
        )
        assert clean_result is not None and clean.fallback is None
        assert len(resultcache.result_entries(str(tmp_path))) == 1

    def test_lookup_and_store_appear_as_spans(self, tmp_path, library):
        tracer = Tracer()
        run_map(
            _request(), library=library, cache_dir=str(tmp_path),
            tracer=tracer,
        )
        warm_tracer = Tracer()
        run_map(
            _request(), library=library, cache_dir=str(tmp_path),
            tracer=warm_tracer,
        )
        def names(tracer):
            spans = []
            def walk(span):
                spans.append((span.name, dict(span.attrs)))
                for child in span.children:
                    walk(child)
            for root in tracer.roots():
                walk(root)
            return spans
        cold_ops = [
            attrs["op"] for name, attrs in names(tracer)
            if name == "result_cache"
        ]
        assert cold_ops == ["lookup", "store"]
        warm_spans = [
            attrs for name, attrs in names(warm_tracer)
            if name == "result_cache"
        ]
        assert [attrs["op"] for attrs in warm_spans] == ["lookup"]
        assert warm_spans[0]["tier"] == "memory"

    def test_verify_rides_the_cache_key(self, tmp_path, library):
        """verify=True responses carry verdicts, so they get their own key."""
        plain, _ = run_map(_request(), library=library, cache_dir=str(tmp_path))
        verified, verified_result = run_map(
            _request(verify=True), library=library, cache_dir=str(tmp_path)
        )
        assert verified_result is not None  # different key -> miss
        assert verified.verify == {
            "equivalent": True, "hazard_safe": True, "ok": True,
        }
        warm, warm_result = run_map(
            _request(verify=True), library=library, cache_dir=str(tmp_path)
        )
        assert warm_result is None
        assert warm.verify == verified.verify
