"""Tests for decomposition (§3.1.1) and cone partitioning (§3.1.2)."""

from hypothesis import given, settings

from repro.boolean.cover import Cover
from repro.boolean.paths import label_expression
from repro.hazards.oracle import hazard_subset
from repro.hazards.static1 import has_static1_hazard
from repro.network.decompose import (
    async_tech_decomp,
    base_gate_kind,
    is_base_network,
    tech_decomp,
)
from repro.network.netlist import Netlist, cover_to_expr
from repro.network.partition import Cone, cone_depths, partition

from ..conftest import cover_strategy


def net_from_cover(cover, names):
    net = Netlist("f")
    for name in names:
        net.add_input(name)
    gate = net.add_gate("g", cover_to_expr(cover, names), names)
    net.add_output("f", gate)
    return net


class TestAsyncDecomp:
    def test_produces_base_network(self):
        net = Netlist.from_equations({"f": "a*b*c + d'*(a + c)"})
        decomposed = async_tech_decomp(net)
        assert is_base_network(decomposed)

    @given(cover_strategy(4, max_cubes=4))
    @settings(max_examples=25, deadline=None)
    def test_function_preserved(self, cover):
        names = ["a", "b", "c", "d"]
        net = net_from_cover(cover, names)
        decomposed = async_tech_decomp(net)
        assert decomposed.equivalent(net)

    @given(cover_strategy(4, max_cubes=3))
    @settings(max_examples=15, deadline=None)
    def test_hazard_behaviour_identical(self, cover):
        """The associative+DeMorgan decomposition preserves *all* logic
        hazards in both directions (Unger / section 3.1.1)."""
        names = ["a", "b", "c", "d"]
        net = net_from_cover(cover, names)
        decomposed = async_tech_decomp(net)
        src = label_expression(net.collapse("f"), names)
        dec = label_expression(decomposed.collapse("f"), names)
        assert hazard_subset(src, dec)
        assert hazard_subset(dec, src)

    def test_right_leaning_chain_variant(self):
        net = Netlist.from_equations({"f": "a*b*c*d"})
        chain = async_tech_decomp(net, balanced=False)
        assert is_base_network(chain)
        assert chain.equivalent(net)

    def test_inverters_shared(self):
        net = Netlist.from_equations({"f": "a'*b + a'*c"})
        decomposed = async_tech_decomp(net)
        inverters = [
            n for n in decomposed.gates() if base_gate_kind(n.func) == "inv"
        ]
        assert len(inverters) == 1


class TestSyncDecomp:
    def test_simplification_drops_redundant_cube(self):
        # Figure 3's effect, at network level.
        net = Netlist.from_equations({"f": "s*a + s'*b + a*b"})
        sync = tech_decomp(net)
        assert sync.equivalent(net)
        names = sorted(net.inputs)
        flattened = sync.collapse("f").to_cover(names)
        assert has_static1_hazard(flattened)

    def test_async_keeps_redundant_cube(self):
        net = Netlist.from_equations({"f": "s*a + s'*b + a*b"})
        asyn = async_tech_decomp(net)
        names = sorted(net.inputs)
        flattened = asyn.collapse("f").to_cover(names)
        assert not has_static1_hazard(flattened)


class TestPartition:
    def test_single_cone_for_tree(self):
        net = Netlist.from_equations({"f": "a*b + c"})
        decomposed = async_tech_decomp(net)
        cones = partition(decomposed)
        assert len(cones) == 1
        assert set(cones[0].leaves) <= set(decomposed.inputs)

    def test_fanout_point_becomes_root(self):
        net = Netlist()
        for name in ("a", "b", "c", "d"):
            net.add_input(name)
        from repro.boolean.expr import parse

        shared = net.add_gate("s", parse("a*b"), ["a", "b"])
        g1 = net.add_gate("g1", parse("s + c"), ["s", "c"])
        g2 = net.add_gate("g2", parse("s + d"), ["s", "d"])
        net.add_output("f1", g1)
        net.add_output("f2", g2)
        cones = partition(net)
        roots = {c.root for c in cones}
        assert roots == {"s", "g1", "g2"}
        # the shared node is a leaf of both consumer cones
        for cone in cones:
            if cone.root in ("g1", "g2"):
                assert "s" in cone.leaves

    def test_cones_partition_all_gates(self):
        net = Netlist.from_equations(
            {"f": "a*b + c*d", "g": "a*b + c'"},
        )
        decomposed = async_tech_decomp(net)
        cones = partition(decomposed)
        covered = set()
        for cone in cones:
            assert not (covered & set(cone.members))
            covered |= set(cone.members)
        assert covered == {n.name for n in decomposed.gates()}

    def test_topological_root_order(self):
        net = Netlist.from_equations({"g": "f + d", "f": "a*b"})
        decomposed = async_tech_decomp(net)
        cones = partition(decomposed)
        order = decomposed.topological_order()
        indices = [order.index(c.root) for c in cones]
        assert indices == sorted(indices)

    def test_cone_depths(self):
        net = Netlist.from_equations({"f": "a*b*c*d"})
        decomposed = async_tech_decomp(net)
        cones = partition(decomposed)
        depths = cone_depths(decomposed, cones[0])
        assert depths[cones[0].root] >= 2
