"""Tests for constant (tie) nodes through the whole network stack."""

import pytest

from repro.boolean.expr import Const, parse
from repro.library import minimal_teaching_library
from repro.mapping.mapper import async_tmap, tmap
from repro.mapping.verify import verify_mapping
from repro.network.decompose import async_tech_decomp, tech_decomp
from repro.network.netlist import Netlist, NetlistError
from repro.network.partition import partition


def const_net():
    net = Netlist("c")
    net.add_input("a")
    net.add_input("b")
    tie = net.add_constant("lo", False)
    gate = net.add_gate("g", parse("a*b"))
    net.add_output("z", tie)
    net.add_output("f", gate)
    return net


class TestConstantNodes:
    def test_add_and_evaluate(self):
        net = const_net()
        values = net.evaluate({"a": 1, "b": 1})
        assert values["z"] is False
        assert values["f"] is True

    def test_duplicate_name_rejected(self):
        net = const_net()
        with pytest.raises(NetlistError):
            net.add_constant("lo", True)

    def test_collapse_yields_const(self):
        net = const_net()
        expr = net.collapse("z")
        assert isinstance(expr, Const)
        assert expr.value is False

    def test_decompose_keeps_constants(self):
        decomposed = async_tech_decomp(const_net())
        assert decomposed.equivalent(const_net())
        consts = [n for n in decomposed.nodes.values() if n.is_constant()]
        assert len(consts) == 1

    def test_constant_folding_gate(self):
        # a gate whose function is constant after construction
        net = Netlist("cf")
        net.add_input("a")
        gate = net.add_gate("g", Const(True))
        net.add_output("f", gate)
        decomposed = tech_decomp(net)
        assert decomposed.evaluate({"a": 0})["f"] is True

    def test_partition_skips_constants(self):
        decomposed = async_tech_decomp(const_net())
        cones = partition(decomposed)
        for cone in cones:
            for member in cone.members:
                assert not decomposed.nodes[member].is_constant()

    def test_mapping_with_constant_output(self, mini_library):
        net = const_net()
        for mapper in (tmap, async_tmap):
            result = mapper(net, mini_library)
            assert result.mapped.equivalent(net)
            report = verify_mapping(net, result.mapped)
            assert report.equivalent

    def test_ternary_simulation_with_constants(self):
        from repro.network.simulate import ONE, X, ZERO, simulate_ternary

        net = const_net()
        values = simulate_ternary(net, {"a": X, "b": ONE})
        assert values["z"] == ZERO
        assert values["f"] == X
