"""Tests for the event-driven timing simulator.

The key cross-validation: any glitch *observed* under a concrete delay
assignment must be *predicted* by the hazard algebra, and the classic
hazard witnesses must be reproducible as actual waveforms.
"""

import random

from repro.boolean.cover import Cover
from repro.boolean.cube import Cube
from repro.boolean.paths import label_cover
from repro.hazards.oracle import classify_transition
from repro.network.decompose import async_tech_decomp
from repro.network.eventsim import (
    EventSimulator,
    Waveform,
    burst_response,
    output_glitches,
)
from repro.network.netlist import Netlist, cover_to_expr


def mux_net(with_consensus: bool) -> Netlist:
    terms = "s*a + s'*b" + (" + a*b" if with_consensus else "")
    return Netlist.from_equations({"f": terms})


class TestWaveform:
    def test_change_count_merges_duplicates(self):
        from repro.network.eventsim import Edge

        wave = Waveform(False, [Edge(1, "f", True), Edge(2, "f", True),
                                Edge(3, "f", False)])
        assert wave.change_count == 2
        assert wave.final is False

    def test_value_at(self):
        from repro.network.eventsim import Edge

        wave = Waveform(False, [Edge(1.0, "f", True)])
        assert not wave.value_at(0.5)
        assert wave.value_at(1.0)


class TestEventSimulator:
    def test_stable_input_produces_no_edges(self):
        net = mux_net(False)
        sim = EventSimulator(net)
        waves = sim.run({"s": 1, "a": 1, "b": 1}, [])
        assert all(not w.edges for w in waves.values())

    def test_single_and_gate_monotone(self):
        net = Netlist.from_equations({"f": "a*b"})
        sim = EventSimulator(net)
        waves = sim.run({"a": 0, "b": 1}, [(0.0, "a", True)])
        assert waves["f"].change_count == 1
        assert waves["f"].final is True

    def test_final_values_match_static_evaluation(self):
        net = mux_net(True)
        sim = EventSimulator.with_random_delays(net, seed=4)
        start = {"s": 1, "a": 0, "b": 1}
        end = {"s": 0, "a": 1, "b": 1}
        waves = burst_response(sim, start, end, seed=4)
        settled = net.evaluate(end)
        for name in net.outputs:
            assert waves[name].final == settled[name]

    def test_non_input_edge_rejected(self):
        net = mux_net(False)
        sim = EventSimulator(net)
        try:
            sim.run({"s": 0, "a": 0, "b": 0}, [(0.0, "f", True)])
        except ValueError:
            return
        raise AssertionError("expected ValueError")


class TestHazardWitnesses:
    def test_two_cube_mux_glitches_somewhere(self):
        # a monolithic gate cannot glitch in a pure-delay model; the
        # hazard lives in the decomposed gate-level structure.
        net = async_tech_decomp(mux_net(False))
        verdicts = output_glitches(
            net, {"s": 1, "a": 1, "b": 1}, {"s": 0, "a": 1, "b": 1}, trials=30
        )
        assert verdicts["f"], "the classic mux glitch must be witnessable"

    def test_consensus_mux_never_glitches_on_select(self):
        net = async_tech_decomp(mux_net(True))
        verdicts = output_glitches(
            net, {"s": 1, "a": 1, "b": 1}, {"s": 0, "a": 1, "b": 1}, trials=40
        )
        assert not verdicts["f"]

    def test_decomposed_network_keeps_the_witness(self):
        net = async_tech_decomp(mux_net(False))
        verdicts = output_glitches(
            net, {"s": 1, "a": 1, "b": 1}, {"s": 0, "a": 1, "b": 1}, trials=40
        )
        assert verdicts["f"]

    def test_observed_glitches_are_always_predicted(self):
        """Soundness: a sampled waveform glitch implies the hazard
        algebra flags the transition (function or logic hazard)."""
        rng = random.Random(9)
        names = ["a", "b", "c"]
        for __ in range(25):
            cubes = []
            for ___ in range(rng.randint(1, 4)):
                used = rng.randint(1, 7)
                phase = rng.randint(0, 7)
                cubes.append(Cube(used, phase, 3))
            cover = Cover(cubes, 3).dedup()
            net = Netlist("f")
            for name in names:
                net.add_input(name)
            gate = net.add_gate("g", cover_to_expr(cover, names), names)
            net.add_output("f", gate)
            net = async_tech_decomp(net)  # gate-level structure can glitch
            lsop = label_cover(cover, names)
            start_point = rng.randrange(8)
            end_point = rng.randrange(8)
            if start_point == end_point:
                continue
            start = {n: bool(start_point >> i & 1) for i, n in enumerate(names)}
            end = {n: bool(end_point >> i & 1) for i, n in enumerate(names)}
            verdicts = output_glitches(net, start, end, trials=8, seed=rng.randrange(999))
            if verdicts["f"]:
                verdict = classify_transition(lsop, start_point, end_point)
                assert verdict.function_hazard or verdict.logic_hazard, (
                    cover.to_string(names),
                    f"{start_point:03b}->{end_point:03b}",
                )
