"""Tests for binary and Eichelberger ternary simulation."""

import pytest

from repro.boolean.expr import parse
from repro.network.netlist import Netlist
from repro.network.simulate import (
    ONE,
    X,
    ZERO,
    eichelberger,
    eval_ternary,
    simulate_ternary,
    static_hazard_ternary,
    ternary_and,
    ternary_not,
    ternary_or,
)


class TestTernaryAlgebra:
    def test_not(self):
        assert ternary_not(ZERO) == ONE
        assert ternary_not(ONE) == ZERO
        assert ternary_not(X) == X

    def test_and_dominance(self):
        assert ternary_and([ZERO, X]) == ZERO
        assert ternary_and([ONE, X]) == X
        assert ternary_and([ONE, ONE]) == ONE

    def test_or_dominance(self):
        assert ternary_or([ONE, X]) == ONE
        assert ternary_or([ZERO, X]) == X
        assert ternary_or([ZERO, ZERO]) == ZERO

    def test_eval_ternary_expression(self):
        expr = parse("a*b + c'")
        assert eval_ternary(expr, {"a": X, "b": ONE, "c": ZERO}) == ONE
        assert eval_ternary(expr, {"a": X, "b": ONE, "c": ONE}) == X


class TestEichelberger:
    def test_mux_select_glitch_detected(self):
        net = Netlist.from_equations({"f": "s*a + s'*b"})
        assert static_hazard_ternary(
            net, "f", {"s": 1, "a": 1, "b": 1}, {"s": 0, "a": 1, "b": 1}
        )

    def test_consensus_removes_glitch(self):
        net = Netlist.from_equations({"f": "s*a + s'*b + a*b"})
        assert not static_hazard_ternary(
            net, "f", {"s": 1, "a": 1, "b": 1}, {"s": 0, "a": 1, "b": 1}
        )

    def test_dynamic_transition_rejected_by_static_checker(self):
        net = Netlist.from_equations({"f": "a"})
        with pytest.raises(ValueError):
            static_hazard_ternary(net, "f", {"a": 0}, {"a": 1})

    def test_procedure_b_resolves_final_value(self):
        net = Netlist.from_equations({"f": "s*a + s'*b"})
        result = eichelberger(
            net, {"s": 1, "a": 1, "b": 0}, {"s": 0, "a": 1, "b": 0}
        )
        assert result.final["f"] == ZERO

    def test_unchanged_inputs_stay_binary(self):
        net = Netlist.from_equations({"f": "a*b"})
        values = simulate_ternary(net, {"a": ONE, "b": X})
        assert values["f"] == X
        values = simulate_ternary(net, {"a": ZERO, "b": X})
        assert values["f"] == ZERO
