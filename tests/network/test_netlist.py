"""Tests for the logic-network substrate."""

import pytest

from repro.boolean.cover import Cover
from repro.boolean.expr import Var, parse
from repro.network.netlist import Netlist, NetlistError, cover_to_expr


class TestConstruction:
    def test_from_equations_basic(self):
        net = Netlist.from_equations({"f": "a*b + c"})
        assert sorted(net.inputs) == ["a", "b", "c"]
        assert net.outputs == ["f"]
        assert net.gate_count() == 1

    def test_from_equations_nested(self):
        net = Netlist.from_equations({"g": "f + d", "f": "a*b"})
        order = net.topological_order()
        assert order.index("f__logic") < order.index("g__logic")
        assert net.evaluate({"a": 1, "b": 1, "d": 0})["g"]

    def test_cyclic_equations_rejected(self):
        with pytest.raises(NetlistError):
            Netlist.from_equations({"f": "g", "g": "f"})

    def test_duplicate_node_rejected(self):
        net = Netlist()
        net.add_input("a")
        with pytest.raises(NetlistError):
            net.add_input("a")

    def test_unknown_fanin_rejected(self):
        net = Netlist()
        with pytest.raises(NetlistError):
            net.add_gate("g", parse("x*y"))

    def test_undeclared_input_rejected(self):
        with pytest.raises(NetlistError):
            Netlist.from_equations({"f": "a*b"}, inputs=["a"])

    def test_fresh_name_unique(self):
        net = Netlist()
        net.add_input("n1")
        assert net.fresh_name("n") != "n1"


class TestSemantics:
    def test_evaluate(self):
        net = Netlist.from_equations({"f": "a*b + c'"})
        assert net.evaluate({"a": 0, "b": 0, "c": 0})["f"]
        assert not net.evaluate({"a": 0, "b": 1, "c": 1})["f"]

    def test_collapse_duplicates_fanout_paths(self):
        net = Netlist()
        net.add_input("a")
        net.add_input("b")
        shared = net.add_gate("s", parse("a*b"), ["a", "b"])
        g = net.add_gate("g", parse("s + a"), ["s", "a"])
        net.add_output("f", g)
        expr = net.collapse("f")
        assert expr.support() == {"a", "b"}
        assert expr.evaluate({"a": True, "b": False})

    def test_collapse_stop_at(self):
        net = Netlist.from_equations({"g": "f*d", "f": "a + b"})
        expr = net.collapse("g", stop_at={"f__logic"})
        assert "f__logic" in expr.support()

    def test_output_covers(self):
        net = Netlist.from_equations({"f": "a*b"})
        covers = net.output_covers(["a", "b"])
        assert covers["f"].to_string(["a", "b"]) == "ab"

    def test_equivalent_positive(self):
        n1 = Netlist.from_equations({"f": "a*b + a*c"})
        n2 = Netlist.from_equations({"f": "a*(b + c)"})
        assert n1.equivalent(n2)

    def test_equivalent_negative(self):
        n1 = Netlist.from_equations({"f": "a*b"})
        n2 = Netlist.from_equations({"f": "a + b"})
        assert not n1.equivalent(n2)

    def test_equivalent_requires_same_interface(self):
        n1 = Netlist.from_equations({"f": "a*b"})
        n2 = Netlist.from_equations({"g": "a*b"})
        assert not n1.equivalent(n2)


class TestMetrics:
    def test_literal_count(self):
        net = Netlist.from_equations({"f": "a*b + c"})
        assert net.literal_count() == 3

    def test_unmapped_delay_counts_levels(self):
        net = Netlist.from_equations({"g": "f*c", "f": "a + b"})
        assert net.critical_path_delay() == pytest.approx(2.0)

    def test_stats_keys(self):
        stats = Netlist.from_equations({"f": "a"}).stats()
        assert set(stats) >= {"inputs", "outputs", "gates", "area", "delay"}

    def test_copy_is_independent(self):
        net = Netlist.from_equations({"f": "a*b"})
        clone = net.copy()
        clone.add_input("zzz")
        assert "zzz" not in net.nodes


class TestCoverToExpr:
    def test_structure_preserved(self):
        cover = Cover.from_strings(["ab", "ab"], ["a", "b"])
        expr = cover_to_expr(cover, ["a", "b"])
        # duplicate cubes stay — they are distinct gates.
        assert expr.num_literals() == 4

    def test_empty_cover_is_false(self):
        expr = cover_to_expr(Cover.empty(2), ["a", "b"])
        assert not expr.evaluate({"a": True, "b": True})

    def test_universal_cube(self):
        expr = cover_to_expr(Cover.one(2), ["a", "b"])
        assert expr.evaluate({"a": False, "b": False})
