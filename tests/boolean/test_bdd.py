"""Tests for the ROBDD engine."""

import pytest
from hypothesis import given

from repro.boolean.bdd import BddManager
from repro.boolean.cover import Cover
from repro.boolean.expr import parse

from ..conftest import cover_strategy


class TestBasics:
    def test_terminals(self):
        m = BddManager(3)
        assert m.zero != m.one
        assert m.is_tautology(m.one)
        assert not m.is_satisfiable(m.zero)

    def test_var_evaluation(self):
        m = BddManager(3)
        v1 = m.var(1)
        assert m.evaluate(v1, 0b010)
        assert not m.evaluate(v1, 0b101)

    def test_literal_negative(self):
        m = BddManager(3)
        lit = m.literal(0, False)
        assert m.evaluate(lit, 0b110)
        assert not m.evaluate(lit, 0b001)

    def test_canonicity_same_function_same_node(self):
        m = BddManager(3)
        f1 = m.apply_or(m.apply_and(m.var(0), m.var(1)), m.var(2))
        f2 = m.apply_or(m.var(2), m.apply_and(m.var(1), m.var(0)))
        assert f1 == f2

    def test_negate_involution(self):
        m = BddManager(3)
        f = m.apply_and(m.var(0), m.var(2))
        assert m.negate(m.negate(f)) == f

    def test_xor(self):
        m = BddManager(2)
        f = m.apply_xor(m.var(0), m.var(1))
        assert m.evaluate(f, 0b01)
        assert m.evaluate(f, 0b10)
        assert not m.evaluate(f, 0b11)
        assert not m.evaluate(f, 0b00)


class TestIte:
    def test_ite_mux_semantics(self):
        m = BddManager(3)
        f = m.ite(m.var(0), m.var(1), m.var(2))
        for point in range(8):
            s, a, b = point & 1, point >> 1 & 1, point >> 2 & 1
            assert m.evaluate(f, point) == bool(a if s else b)

    @given(cover_strategy(4), cover_strategy(4))
    def test_boolean_ops_match_cover_semantics(self, c1, c2):
        m = BddManager(4)
        f1, f2 = m.from_cover(c1), m.from_cover(c2)
        land = m.apply_and(f1, f2)
        lor = m.apply_or(f1, f2)
        for p in range(16):
            assert m.evaluate(land, p) == (c1.evaluate(p) and c2.evaluate(p))
            assert m.evaluate(lor, p) == (c1.evaluate(p) or c2.evaluate(p))


class TestQueries:
    @given(cover_strategy(4))
    def test_sat_count(self, cover):
        m = BddManager(4)
        node = m.from_cover(cover)
        assert m.sat_count(node) == len(cover.minterms())

    @given(cover_strategy(4))
    def test_any_sat_is_satisfying(self, cover):
        m = BddManager(4)
        node = m.from_cover(cover)
        point = m.any_sat(node)
        if point is None:
            assert not cover.minterms()
        else:
            assert cover.evaluate(point)

    @given(cover_strategy(4))
    def test_restrict(self, cover):
        m = BddManager(4)
        node = m.from_cover(cover)
        for var in range(4):
            for value in (False, True):
                restricted = m.restrict(node, var, value)
                for p in range(16):
                    fixed = (p | 1 << var) if value else (p & ~(1 << var))
                    assert m.evaluate(restricted, fixed) == cover.evaluate(fixed)

    def test_support(self):
        m = BddManager(4)
        node = m.from_expr(parse("a*c'"), ["a", "b", "c", "d"])
        assert m.support(node) == {0, 2}

    def test_size_counts_internal_nodes(self):
        m = BddManager(2)
        assert m.size(m.one) == 0
        assert m.size(m.var(0)) == 1


class TestBuilders:
    @given(cover_strategy(4))
    def test_from_cover_semantics(self, cover):
        m = BddManager(4)
        node = m.from_cover(cover)
        for p in range(16):
            assert m.evaluate(node, p) == cover.evaluate(p)

    def test_from_expr_matches_expr(self):
        m = BddManager(3)
        expr = parse("(a + b')*c")
        node = m.from_expr(expr, ["a", "b", "c"])
        for p in range(8):
            env = {"a": bool(p & 1), "b": bool(p >> 1 & 1), "c": bool(p >> 2 & 1)}
            assert m.evaluate(node, p) == expr.evaluate(env)

    def test_equivalence_checking_use_case(self):
        m = BddManager(3)
        sop = m.from_expr(parse("s'*a + s*b + a*b"), ["a", "b", "s"])
        factored = m.from_expr(parse("s'*a + s*b"), ["a", "b", "s"])
        assert sop == factored  # same function, canonical node
