"""Unit and property tests for the USED/PHASE cube representation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.boolean.cube import Cube, bit_indices, popcount

from ..conftest import cube_strategy

NAMES = ["a", "b", "c", "d"]


class TestConstruction:
    def test_universe_has_no_literals(self):
        cube = Cube.universe(4)
        assert cube.num_literals == 0
        assert cube.size() == 16
        assert cube.is_universe()

    def test_phase_normalized_to_used(self):
        cube = Cube(0b0011, 0b1111, 4)
        assert cube.phase == 0b0011

    def test_used_outside_universe_rejected(self):
        with pytest.raises(ValueError):
            Cube(0b10000, 0, 4)

    def test_from_string_round_trip(self):
        cube = Cube.from_string("ab'd", NAMES)
        assert cube.to_string(NAMES) == "ab'd"
        assert cube.num_literals == 3

    def test_from_string_conflicting_polarity_rejected(self):
        with pytest.raises(ValueError):
            Cube.from_string("aa'", NAMES)

    def test_from_pattern(self):
        cube = Cube.from_pattern("1-0")
        assert cube.to_pattern() == "1-0"
        assert cube.contains_point(0b001)
        assert not cube.contains_point(0b101)

    def test_minterm(self):
        cube = Cube.minterm(0b0110, 4)
        assert cube.is_minterm()
        assert list(cube.minterms()) == [0b0110]


class TestContainmentAndIntersection:
    def test_universe_contains_everything(self):
        universe = Cube.universe(4)
        assert universe.contains(Cube.from_string("ab'c", NAMES))

    def test_containment_is_minterm_subset(self):
        big = Cube.from_string("a", NAMES)
        small = Cube.from_string("ab'", NAMES)
        assert big.contains(small)
        assert not small.contains(big)

    def test_disjoint_cubes_do_not_intersect(self):
        assert not Cube.from_string("a", NAMES).intersects(
            Cube.from_string("a'", NAMES)
        )

    def test_intersection_binds_both(self):
        inter = Cube.from_string("ab", NAMES).intersection(
            Cube.from_string("cd'", NAMES)
        )
        assert inter is not None
        assert inter.to_string(NAMES) == "abcd'"

    def test_mismatched_universes_rejected(self):
        with pytest.raises(ValueError):
            Cube.universe(3).contains(Cube.universe(4))

    @given(cube_strategy(4), cube_strategy(4))
    def test_intersection_matches_point_semantics(self, c1, c2):
        inter = c1.intersection(c2)
        points = set(c1.minterms()) & set(c2.minterms())
        if inter is None:
            assert not points
        else:
            assert set(inter.minterms()) == points

    @given(cube_strategy(4), cube_strategy(4))
    def test_containment_matches_point_semantics(self, c1, c2):
        expected = set(c2.minterms()) <= set(c1.minterms())
        assert c1.contains(c2) == expected


class TestSupercubeAndConsensus:
    def test_supercube_of_minterms_is_transition_space(self):
        # Definition 4.2: T[alpha, beta] is the smallest cube with both.
        a = Cube.minterm(0b0001, 4)
        b = Cube.minterm(0b0111, 4)
        space = a.supercube(b)
        assert space.to_pattern() == "1--0"

    @given(cube_strategy(4), cube_strategy(4))
    def test_supercube_contains_both(self, c1, c2):
        sup = c1.supercube(c2)
        assert sup.contains(c1)
        assert sup.contains(c2)

    def test_conflicts_bitvector_matches_paper_definition(self):
        # CONFLICTS = (u1 & u2) & (p1 ^ p2) — section 4.1.1.
        c1 = Cube.from_string("ab", NAMES)
        c2 = Cube.from_string("a'c", NAMES)
        assert c1.conflicts(c2) == 0b0001
        assert c1.is_adjacent(c2)

    def test_consensus_masks_conflict_literal(self):
        c1 = Cube.from_string("sa", ["s", "a", "b"])
        c2 = Cube.from_string("s'b", ["s", "a", "b"])
        consensus = c1.consensus(c2)
        assert consensus is not None
        assert consensus.to_string(["s", "a", "b"]) == "ab"

    def test_no_consensus_for_distance_two(self):
        c1 = Cube.from_string("ab", NAMES)
        c2 = Cube.from_string("a'b'", NAMES)
        assert c1.consensus(c2) is None

    def test_no_consensus_for_disjoint_support_cubes(self):
        assert Cube.from_string("ab", NAMES).consensus(
            Cube.from_string("cd", NAMES)
        ) is None

    @given(cube_strategy(4), cube_strategy(4))
    def test_consensus_is_implicant_of_union(self, c1, c2):
        consensus = c1.consensus(c2)
        if consensus is None:
            return
        union = set(c1.minterms()) | set(c2.minterms())
        assert set(consensus.minterms()) <= union


class TestCofactorsAndTransforms:
    def test_cofactor_var_frees_variable(self):
        cube = Cube.from_string("ab'", NAMES)
        cofactor = cube.cofactor_var(0, True)
        assert cofactor is not None
        assert cofactor.to_string(NAMES) == "b'"

    def test_cofactor_var_conflict_is_empty(self):
        assert Cube.from_string("a", NAMES).cofactor_var(0, False) is None

    def test_flip_var(self):
        flipped = Cube.from_string("abc", NAMES).flip_var(1)
        assert flipped.to_string(NAMES) == "ab'c"

    def test_flip_free_var_rejected(self):
        with pytest.raises(ValueError):
            Cube.from_string("a", NAMES).flip_var(2)

    def test_expand_var_raises_cube(self):
        cube = Cube.from_string("ab", NAMES)
        assert cube.expand_var(0).to_string(NAMES) == "b"

    def test_remap_permutes_variables(self):
        cube = Cube.from_string("ab'", NAMES)
        remapped = cube.remap([3, 2, 1, 0], 4)
        assert remapped.to_string(NAMES) == "c'd"

    def test_remap_rejects_non_injective(self):
        with pytest.raises(ValueError):
            Cube.from_string("ab", NAMES).remap([0, 0, 2, 3], 4)

    def test_remap_with_polarity(self):
        cube = Cube.from_string("ab'", NAMES)
        remapped = cube.remap_with_polarity(
            [(0, True), (1, True), (2, False), (3, False)], 4
        )
        assert remapped.to_string(NAMES) == "a'b"

    @given(cube_strategy(4))
    def test_remap_identity(self, cube):
        assert cube.remap([0, 1, 2, 3], 4) == cube


class TestEnumeration:
    @given(cube_strategy(4))
    def test_size_matches_minterm_count(self, cube):
        assert cube.size() == len(list(cube.minterms()))

    @given(cube_strategy(4))
    def test_minterms_all_contained(self, cube):
        for point in cube.minterms():
            assert cube.contains_point(point)

    def test_distance_counts_conflicts(self):
        c1 = Cube.from_string("ab c", NAMES.copy())
        c2 = Cube.from_string("a'b'c", NAMES)
        assert c1.distance(c2) == 2


class TestBitHelpers:
    @given(st.integers(min_value=0, max_value=2**40))
    def test_popcount(self, value):
        assert popcount(value) == bin(value).count("1")

    @given(st.integers(min_value=0, max_value=2**40))
    def test_bit_indices_reconstruct(self, value):
        assert sum(1 << i for i in bit_indices(value)) == value


class TestHashingAndEquality:
    @given(cube_strategy(4))
    def test_equal_cubes_hash_equal(self, cube):
        clone = Cube(cube.used, cube.phase, cube.nvars)
        assert clone == cube
        assert hash(clone) == hash(cube)

    def test_distinct_universes_not_equal(self):
        assert Cube(0, 0, 3) != Cube(0, 0, 4)
