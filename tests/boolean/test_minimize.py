"""Tests for two-level minimization and the covering solver."""

import pytest
from hypothesis import given, settings

from repro.boolean.cover import Cover
from repro.boolean.cube import Cube
from repro.boolean.minimize import (
    CoveringProblem,
    complete_sum,
    essential_primes,
    make_hazard_free_static,
    minimize_exact,
    simplify_for_sync,
)
from repro.hazards.static1 import has_static1_hazard

from ..conftest import cover_strategy

NAMES = ["a", "b", "c", "d"]


class TestCoveringProblem:
    def test_single_row(self):
        problem = CoveringProblem([{0, 1}], [3.0, 1.0])
        assert problem.solve() == [1]

    def test_essential_column(self):
        problem = CoveringProblem([{0}, {0, 1}], [1.0, 1.0])
        assert problem.solve() == [0]

    def test_classic_cyclic_core(self):
        rows = [{0, 1}, {1, 2}, {2, 3}, {3, 0}]
        solution = CoveringProblem(rows, [1.0] * 4).solve()
        assert len(solution) == 2
        for row in rows:
            assert row & set(solution)

    def test_weighted_prefers_cheap(self):
        problem = CoveringProblem([{0, 1}, {0, 1}], [10.0, 1.0])
        assert problem.solve() == [1]

    def test_uncoverable_row_rejected(self):
        with pytest.raises(ValueError):
            CoveringProblem([set()], [])

    def test_exactness_small_instances(self):
        import itertools
        import random

        rng = random.Random(5)
        for _ in range(30):
            ncols = rng.randint(2, 6)
            rows = [
                set(rng.sample(range(ncols), rng.randint(1, ncols)))
                for _ in range(rng.randint(1, 6))
            ]
            costs = [float(rng.randint(1, 5)) for _ in range(ncols)]
            got = CoveringProblem(rows, costs).solve()
            got_cost = sum(costs[c] for c in got)
            best = min(
                (
                    sum(costs[c] for c in subset)
                    for size in range(ncols + 1)
                    for subset in itertools.combinations(range(ncols), size)
                    if all(row & set(subset) for row in rows)
                ),
            )
            assert got_cost == pytest.approx(best)


class TestMinimizeExact:
    def test_classic_consensus_drop(self):
        cover = Cover.from_strings(["ab", "a'c", "bc"], NAMES)
        minimized = minimize_exact(cover)
        assert len(minimized) == 2
        assert minimized.equivalent(cover)

    @given(cover_strategy(4, max_cubes=4))
    @settings(max_examples=30, deadline=None)
    def test_preserves_function(self, cover):
        assert minimize_exact(cover).equivalent(cover)

    @given(cover_strategy(4, max_cubes=4))
    @settings(max_examples=30, deadline=None)
    def test_never_larger_than_input(self, cover):
        assert len(minimize_exact(cover)) <= len(cover.dedup())

    def test_empty(self):
        assert len(minimize_exact(Cover.empty(3))) == 0


class TestHazardRelatedTransforms:
    def test_complete_sum_is_static1_free(self):
        cover = Cover.from_strings(["ab", "a'c"], NAMES)
        assert has_static1_hazard(cover)
        assert not has_static1_hazard(complete_sum(cover))

    def test_simplify_for_sync_can_introduce_hazards(self):
        # The Figure-3 effect: simplification drops the consensus cube.
        cover = Cover.from_strings(["ab", "a'c", "bc"], NAMES)
        assert not has_static1_hazard(cover)
        simplified = simplify_for_sync(cover)
        assert simplified.equivalent(cover)
        assert has_static1_hazard(simplified)

    def test_make_hazard_free_static_adds_consensus(self):
        cover = Cover.from_strings(["ab", "a'c"], NAMES)
        repaired = make_hazard_free_static(cover)
        assert repaired.equivalent(cover)
        assert not has_static1_hazard(repaired)
        # The original gates are all still present.
        for cube in cover:
            assert cube in repaired.cubes

    @given(cover_strategy(4, max_cubes=4))
    @settings(max_examples=25, deadline=None)
    def test_make_hazard_free_static_property(self, cover):
        repaired = make_hazard_free_static(cover)
        assert repaired.equivalent(cover)
        assert not has_static1_hazard(repaired)


class TestEssentialPrimes:
    def test_essentials_of_xor_like(self):
        cover = Cover.from_strings(["ab'", "a'b"], NAMES)
        primes = cover.all_primes()
        essentials = essential_primes(cover, primes)
        assert {p.to_string(NAMES) for p in essentials} == {"ab'", "a'b"}


class TestEspressoLite:
    def test_consensus_drop(self):
        from repro.boolean.minimize import espresso_lite

        cover = Cover.from_strings(["ab", "a'c", "bc"], NAMES)
        result = espresso_lite(cover)
        assert result.equivalent(cover)
        assert len(result) == 2

    def test_with_dont_cares(self):
        from repro.boolean.minimize import espresso_lite

        onset = Cover.from_strings(["ab'c'd'"], NAMES)
        dcset = Cover.from_strings(["a'"], NAMES)
        result = espresso_lite(onset, dcset)
        assert result.equivalent(onset) or all(
            result.evaluate(p) or not onset.evaluate(p) for p in range(16)
        )
        # every care ON point still covered, no care OFF point added
        for p in range(16):
            if onset.evaluate(p):
                assert result.evaluate(p)
            if not onset.evaluate(p) and not dcset.evaluate(p):
                assert not result.evaluate(p)

    @given(cover_strategy(4, max_cubes=5))
    @settings(max_examples=30, deadline=None)
    def test_function_preserved(self, cover):
        from repro.boolean.minimize import espresso_lite

        assert espresso_lite(cover).equivalent(cover)

    @given(cover_strategy(4, max_cubes=5))
    @settings(max_examples=20, deadline=None)
    def test_never_bigger_than_dedup(self, cover):
        from repro.boolean.minimize import espresso_lite

        assert len(espresso_lite(cover)) <= len(cover.dedup())
