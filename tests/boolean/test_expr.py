"""Tests for Boolean-factored-form expressions and the parser."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.boolean.expr import (
    And,
    Const,
    Expr,
    Lit,
    Not,
    Or,
    Var,
    parse,
    sorted_support,
)


def expr_strategy(depth: int = 3) -> st.SearchStrategy[Expr]:
    names = st.sampled_from(["a", "b", "c", "d"])
    base = st.one_of(names.map(Var), st.booleans().map(Const))
    return st.recursive(
        base,
        lambda children: st.one_of(
            children.map(Not),
            st.lists(children, min_size=2, max_size=3).map(lambda t: And(tuple(t))),
            st.lists(children, min_size=2, max_size=3).map(lambda t: Or(tuple(t))),
        ),
        max_leaves=8,
    )


def eval_all(expr: Expr) -> dict[tuple, bool]:
    names = sorted(expr.support()) or ["a"]
    table = {}
    for point in range(1 << len(names)):
        env = {n: bool(point >> i & 1) for i, n in enumerate(names)}
        table[tuple(sorted(env.items()))] = expr.evaluate(env)
    return table


class TestParser:
    def test_simple_sop(self):
        expr = parse("s'*a + s*b")
        assert sorted(expr.support()) == ["a", "b", "s"]
        assert expr.evaluate({"s": False, "a": True, "b": False})
        assert not expr.evaluate({"s": True, "a": True, "b": False})

    def test_juxtaposition_is_and(self):
        assert parse("a b").evaluate({"a": True, "b": True})
        assert not parse("a b").evaluate({"a": True, "b": False})

    def test_postfix_complement(self):
        expr = parse("(a + b)'")
        assert expr.evaluate({"a": False, "b": False})
        assert not expr.evaluate({"a": True, "b": False})

    def test_prefix_complement(self):
        assert parse("!a").evaluate({"a": False})

    def test_double_complement(self):
        assert parse("a''").evaluate({"a": True})

    def test_constants(self):
        assert parse("1").evaluate({})
        assert not parse("0").evaluate({})

    def test_multichar_identifiers(self):
        expr = parse("req*ack' + grant")
        assert sorted(expr.support()) == ["ack", "grant", "req"]

    def test_unbalanced_parens_rejected(self):
        with pytest.raises(ValueError):
            parse("(a + b")

    def test_trailing_junk_rejected(self):
        with pytest.raises(ValueError):
            parse("a + b )")

    def test_precedence_and_over_or(self):
        expr = parse("a + b*c")
        assert expr.evaluate({"a": True, "b": False, "c": False})
        assert not expr.evaluate({"a": False, "b": True, "c": False})

    @given(expr_strategy())
    def test_print_parse_round_trip(self, expr):
        reparsed = parse(expr.to_string())
        assert eval_all(reparsed) == eval_all(expr)


class TestNnf:
    @given(expr_strategy())
    def test_nnf_preserves_function(self, expr):
        assert eval_all(expr.to_nnf()) == eval_all(expr)

    @given(expr_strategy())
    def test_nnf_negate_is_complement(self, expr):
        negated = expr.to_nnf(negate=True)
        names = sorted(expr.support())
        for point in range(1 << len(names)):
            env = {n: bool(point >> i & 1) for i, n in enumerate(names)}
            assert negated.evaluate(env) == (not expr.evaluate(env))

    def test_nnf_has_no_not_nodes(self):
        def check(node):
            assert not isinstance(node, Not)
            for child in node.children():
                check(child)

        check(parse("((a*b)' + c)'").to_nnf())


class TestFlattening:
    @given(expr_strategy())
    def test_to_cover_preserves_function(self, expr):
        names = sorted(expr.support())
        if not names:
            return
        cover = expr.to_cover(names)
        for point in range(1 << len(names)):
            env = {n: bool(point >> i & 1) for i, n in enumerate(names)}
            assert cover.evaluate(point) == expr.evaluate(env)

    def test_distribution_keeps_structure_cubes(self):
        # (a + b)(a + c) flattens to a, ac, ab, bc — including the
        # absorbed cubes that matter for hazard analysis.
        expr = parse("(a + b)*(a + c)")
        cover = expr.to_cover(["a", "b", "c"])
        patterns = {c.to_string(["a", "b", "c"]) for c in cover}
        assert patterns == {"a", "ac", "ab", "bc"}

    def test_vacuous_products_dropped_by_default(self):
        expr = parse("(a + b)*(a' + c)")
        cover = expr.to_cover(["a", "b", "c"])
        patterns = {c.to_string(["a", "b", "c"]) for c in cover}
        assert "aa'" not in str(patterns)
        assert patterns == {"ac", "a'b", "bc"}

    def test_missing_variable_in_ordering_rejected(self):
        with pytest.raises(ValueError):
            parse("a*b").to_cover(["a"])


class TestStructureMetrics:
    def test_num_literals_counts_occurrences(self):
        assert parse("a*b + a*c").num_literals() == 4
        assert parse("a*(b + c)").num_literals() == 3

    def test_depth(self):
        assert Var("a").depth() == 0
        assert parse("a*b").depth() == 1
        assert parse("(a + b)*c").depth() == 2

    def test_inverter_depth(self):
        assert parse("a'").depth() == 0  # literal, not a gate level
        assert Not(parse("a*b")).depth() == 2


class TestSubstitution:
    def test_rename(self):
        expr = parse("x*y'").rename({"x": "a", "y": "b"})
        assert sorted(expr.support()) == ["a", "b"]

    def test_substitute_expression(self):
        expr = parse("x + y").substitute({"x": parse("a*b")})
        assert expr.evaluate({"a": True, "b": True, "y": False})
        assert not expr.evaluate({"a": True, "b": False, "y": False})

    def test_substitute_into_negative_literal(self):
        expr = parse("x'").to_nnf().substitute({"x": parse("a*b")})
        assert expr.evaluate({"a": False, "b": True})
        assert not expr.evaluate({"a": True, "b": True})


class TestOperators:
    def test_dunder_combinators(self):
        a, b = Var("a"), Var("b")
        expr = (a & b) | ~a
        assert expr.evaluate({"a": False, "b": False})
        assert expr.evaluate({"a": True, "b": True})
        assert not expr.evaluate({"a": True, "b": False})

    def test_sorted_support(self):
        assert sorted_support(parse("z + a*m")) == ["a", "m", "z"]
