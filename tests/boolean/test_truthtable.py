"""Tests for truth-table utilities used by Boolean matching."""

from hypothesis import given
from hypothesis import strategies as st

import repro.boolean.truthtable as tt
from repro.boolean.cover import Cover

from ..conftest import cover_strategy


class TestBasics:
    def test_var_table(self):
        table = tt.var_table(1, 3)
        for p in range(8):
            assert tt.evaluate(table, p) == bool(p >> 1 & 1)

    def test_from_callable(self):
        table = tt.from_callable(lambda p: p == 5, 3)
        assert table == 1 << 5

    @given(cover_strategy(4))
    def test_cofactor_semantics(self, cover):
        table = cover.truth_table()
        for var in range(4):
            for value in (False, True):
                cof = tt.cofactor(table, var, value, 4)
                for p in range(16):
                    fixed = (p | 1 << var) if value else (p & ~(1 << var))
                    assert tt.evaluate(cof, p) == cover.evaluate(fixed)

    @given(cover_strategy(4))
    def test_support_matches_dependence(self, cover):
        table = cover.truth_table()
        support = tt.support(table, 4)
        for var in range(4):
            flips = any(
                cover.evaluate(p) != cover.evaluate(p ^ (1 << var))
                for p in range(16)
            )
            assert (var in support) == flips


class TestPermutation:
    def test_permute_swap(self):
        # f = x0 & !x1; swapping 0,1 gives !x0 & x1.
        table = tt.from_callable(lambda p: (p & 1) and not (p >> 1 & 1), 2)
        swapped = tt.permute(table, [1, 0], 2)
        assert tt.evaluate(swapped, 0b10)
        assert not tt.evaluate(swapped, 0b01)

    @given(cover_strategy(4), st.permutations(range(4)))
    def test_permute_is_bijection(self, cover, perm):
        table = cover.truth_table()
        inverse = [0] * 4
        for i, p in enumerate(perm):
            inverse[p] = i
        assert tt.permute(tt.permute(table, list(perm), 4), inverse, 4) == table

    @given(cover_strategy(4))
    def test_negate_input_involution(self, cover):
        table = cover.truth_table()
        assert tt.negate_input(tt.negate_input(table, 2, 4), 2, 4) == table


class TestSignatures:
    @given(cover_strategy(4), st.permutations(range(4)))
    def test_signature_is_permutation_invariant(self, cover, perm):
        table = cover.truth_table()
        assert tt.signature(table, 4) == tt.signature(
            tt.permute(table, list(perm), 4), 4
        )

    def test_symmetric_vars(self):
        table = tt.from_callable(lambda p: (p & 1) and (p >> 1 & 1), 3)  # x0&x1
        assert tt.symmetric_vars(table, 0, 1, 3)
        assert not tt.symmetric_vars(table, 0, 2, 3)

    def test_symmetry_classes_of_and3(self):
        table = tt.from_callable(lambda p: p == 7, 3)
        assert tt.symmetry_classes(table, 3) == [[0, 1, 2]]

    def test_symmetry_classes_of_mux(self):
        # mux(s=x0, a=x1, b=x2) — no two inputs interchangeable.
        table = tt.from_callable(
            lambda p: bool(p >> 1 & 1) if not (p & 1) else bool(p >> 2 & 1), 3
        )
        assert len(tt.symmetry_classes(table, 3)) == 3


class TestMatching:
    def test_self_match_includes_identity(self):
        table = tt.from_callable(lambda p: (p & 1) and not (p >> 2 & 1), 3)
        perms = list(tt.match_permutations(table, table, 3))
        assert (0, 1, 2) in perms

    def test_and_matches_under_any_permutation(self):
        and3 = tt.from_callable(lambda p: p == 7, 3)
        perms = list(tt.match_permutations(and3, and3, 3))
        assert len(perms) == 6  # fully symmetric

    def test_mismatched_ones_count_rejected_fast(self):
        f = tt.from_callable(lambda p: p == 7, 3)
        g = tt.from_callable(lambda p: p >= 6, 3)
        assert list(tt.match_permutations(f, g, 3)) == []

    @given(cover_strategy(4), st.permutations(range(4)))
    def test_match_recovers_permutation(self, cover, perm):
        target = tt.permute(cover.truth_table(), list(perm), 4)
        candidate = cover.truth_table()
        found = list(tt.match_permutations(target, candidate, 4))
        assert found, "a permuted table must match its source"
        for p in found:
            assert tt.permute(candidate, list(p), 4) == target

    def test_limit_respected(self):
        and3 = tt.from_callable(lambda p: p == 7, 3)
        assert len(list(tt.match_permutations(and3, and3, 3, limit=2))) == 2
