"""Tests for path-labelled flattening."""

from repro.boolean.cover import Cover
from repro.boolean.expr import parse
from repro.boolean.paths import label_cover, label_expression


class TestLabelExpression:
    def test_every_occurrence_gets_unique_path(self):
        lsop = label_expression(parse("a*b + a*c"))
        a_paths = {
            (lit.name, lit.path)
            for product in lsop.products
            for lit in product.literals
            if lit.name == "a"
        }
        assert len(a_paths) == 2

    def test_shared_leaf_keeps_label_across_products(self):
        # a*(b + c) distributes to ab + ac with the SAME a path in both
        # (one physical wire) — the correlation hazard analysis needs.
        lsop = label_expression(parse("a*(b + c)"))
        a_labels = set()
        for product in lsop.products:
            for lit in product.literals:
                if lit.name == "a":
                    a_labels.add(lit.path)
        assert len(a_labels) == 1

    def test_vacuous_product_kept(self):
        lsop = label_expression(parse("(a + b)*(a' + c)"))
        vacuous = lsop.vacuous_products()
        assert len(vacuous) == 1
        assert vacuous[0].vacuous_variables() == {"a"}

    def test_plain_cover_drops_vacuous(self):
        lsop = label_expression(parse("(a + b)*(a' + c)"))
        plain = lsop.plain_cover()
        names = lsop.names
        patterns = {c.to_string(names) for c in plain}
        assert patterns == {"ac", "a'b", "bc"}

    def test_plain_cover_function_matches_expression(self):
        expr = parse("(a + b')*(c + a')*(b + c')")
        lsop = label_expression(expr)
        plain = lsop.plain_cover()
        names = lsop.names
        for point in range(1 << len(names)):
            env = {n: bool(point >> i & 1) for i, n in enumerate(names)}
            assert plain.evaluate(point) == expr.evaluate(env)

    def test_plain_cover_cached(self):
        lsop = label_expression(parse("a*b + c"))
        assert lsop.plain_cover() is lsop.plain_cover()


class TestLabelCover:
    def test_two_level_labels_one_per_literal(self):
        cover = Cover.from_strings(["ab", "a'c"], ["a", "b", "c"])
        lsop = label_cover(cover, ["a", "b", "c"])
        assert len(lsop.products) == 2
        labels = [
            (lit.name, lit.path) for p in lsop.products for lit in p.literals
        ]
        assert len(labels) == len(set(labels))

    def test_no_vacuous_products_in_plain_sop(self):
        cover = Cover.from_strings(["ab", "a'c"], ["a", "b", "c"])
        lsop = label_cover(cover, ["a", "b", "c"])
        assert not lsop.vacuous_products()


class TestLabeledProduct:
    def test_residual_cube_unifies_labels(self):
        lsop = label_expression(parse("(a + b)*(a' + c)"))
        vacuous = lsop.vacuous_products()[0]
        residual = vacuous.residual_cube(("a",), lsop.index, lsop.nvars)
        assert residual is not None
        assert residual.to_string(lsop.names) == "1"  # the aa' product

    def test_phase_of(self):
        lsop = label_expression(parse("a*b'"))
        product = lsop.products[0]
        assert product.phase_of("a") is True
        assert product.phase_of("b") is False
        assert product.phase_of("z") is None

    def test_str_shows_paths(self):
        lsop = label_expression(parse("a*a"))
        assert "#0" in str(lsop) and "#1" in str(lsop)
