"""Additional cover/cube behaviours: formatting, hashes, edge cases."""

from hypothesis import given, settings

from repro.boolean.cover import Cover
from repro.boolean.cube import Cube

from ..conftest import cover_strategy, cube_strategy

NAMES = ["a", "b", "c", "d"]


class TestFormatting:
    def test_cover_to_string_empty(self):
        assert Cover.empty(3).to_string() == "0"

    def test_cover_to_string_universe(self):
        assert Cover.one(3).to_string() == "1"

    def test_repr_round_readable(self):
        cover = Cover.from_strings(["ab"], NAMES)
        assert "11--" in repr(cover)
        assert "Cube" in repr(cover.cubes[0])

    def test_default_names(self):
        cube = Cube.from_pattern("1-0")
        assert cube.to_string() == "x0x2'"


class TestStructuralEquality:
    def test_cover_equality_is_structural(self):
        c1 = Cover.from_strings(["ab", "cd"], NAMES)
        c2 = Cover.from_strings(["cd", "ab"], NAMES)
        assert c1 != c2  # different gate lists
        assert c1.equivalent(c2)  # same function

    @given(cover_strategy(4))
    def test_cover_hashable(self, cover):
        assert hash(cover) == hash(Cover(list(cover.cubes), 4))


class TestEdgeCases:
    def test_zero_variable_universe(self):
        cube = Cube.universe(0)
        assert cube.size() == 1
        assert list(cube.minterms()) == [0]

    def test_empty_cover_complement_is_one(self):
        complement = Cover.empty(2).complement()
        assert complement.is_tautology()

    @given(cube_strategy(4))
    @settings(max_examples=30)
    def test_cofactor_of_self_is_universe(self, cube):
        cofactor = cube.cofactor(cube)
        assert cofactor is not None
        assert cofactor.is_universe()

    @given(cover_strategy(4))
    @settings(max_examples=30, deadline=None)
    def test_double_complement_is_identity_function(self, cover):
        assert cover.complement().complement().equivalent(cover)

    @given(cube_strategy(4), cube_strategy(4))
    @settings(max_examples=40)
    def test_supercube_is_minimal(self, c1, c2):
        sup = c1.supercube(c2)
        # removing any bound literal of the supercube keeps containment,
        # but every bound literal must be bound in both inputs
        for var in range(4):
            bit = 1 << var
            if sup.used & bit:
                assert c1.used & bit and c2.used & bit
                assert (c1.phase & bit) == (c2.phase & bit) == (sup.phase & bit)

    def test_with_universe_embeds(self):
        cube = Cube.from_pattern("10")
        wider = cube.with_universe(4)
        assert wider.nvars == 4
        assert wider.to_pattern() == "10--"

    def test_with_universe_cannot_shrink(self):
        cube = Cube.from_pattern("10--")
        try:
            cube.with_universe(2)
        except ValueError:
            return
        raise AssertionError("expected ValueError")
