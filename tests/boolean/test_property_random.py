"""Seeded property tests for cube/cover algebra against the
truth-table oracle.

Same discipline as ``tests/hazards/test_differential_random.py``: a
seeded ``random.Random`` stream of covers over up to five variables, so
every run replays the identical case list — no flaky fuzzing, no
hypothesis dependency.  Each algebraic operation on the compact
cube/cover representation is checked point-by-point against the
exhaustive semantics: a cube is its minterm set, a cover is the union,
and the truth table (``Cover.truth_table`` /
``repro.boolean.truthtable``) is ground truth.
"""

from __future__ import annotations

import random

from repro.boolean import truthtable as tt
from repro.boolean.cover import Cover
from repro.boolean.cube import Cube

CASES = 200
NVARS_CHOICES = (2, 3, 4, 5)
SEED = 0xDAC93


def random_cube(rng: random.Random, nvars: int) -> Cube:
    used = rng.randint(0, (1 << nvars) - 1)
    phase = rng.randint(0, (1 << nvars) - 1) & used
    return Cube(used, phase, nvars)


def random_cover(rng: random.Random, nvars: int, max_cubes: int = 4) -> Cover:
    cubes = [random_cube(rng, nvars) for _ in range(rng.randint(1, max_cubes))]
    return Cover(cubes, nvars)


def cases(seed_tag: str):
    """A reproducible stream of (rng, nvars) pairs, one per case."""
    rng = random.Random(f"{SEED}-{seed_tag}")
    for _ in range(CASES):
        yield rng, rng.choice(NVARS_CHOICES)


def points(nvars: int) -> range:
    return range(1 << nvars)


class TestCubeAlgebra:
    def test_intersection_is_pointwise_and(self):
        for rng, nvars in cases("cube-intersection"):
            a, b = random_cube(rng, nvars), random_cube(rng, nvars)
            met = a.intersection(b)
            for p in points(nvars):
                expected = a.contains_point(p) and b.contains_point(p)
                got = met is not None and met.contains_point(p)
                assert got == expected
            assert (met is not None) == a.intersects(b)

    def test_containment_is_minterm_subset(self):
        for rng, nvars in cases("cube-contains"):
            a, b = random_cube(rng, nvars), random_cube(rng, nvars)
            expected = all(
                a.contains_point(p) for p in points(nvars) if b.contains_point(p)
            )
            assert a.contains(b) == expected

    def test_consensus_bridges_the_two_cubes(self):
        for rng, nvars in cases("cube-consensus"):
            a, b = random_cube(rng, nvars), random_cube(rng, nvars)
            cons = a.consensus(b)
            if cons is None:
                continue
            union = Cover([a, b], nvars)
            # Consensus is an implicant of a + b …
            for p in points(nvars):
                if cons.contains_point(p):
                    assert union.evaluate(p)
            # … and, at distance one, covers points of both sides.
            assert any(a.contains_point(p) for p in cons.minterms())
            assert any(b.contains_point(p) for p in cons.minterms())

    def test_supercube_is_smallest_common_superset(self):
        for rng, nvars in cases("cube-supercube"):
            a, b = random_cube(rng, nvars), random_cube(rng, nvars)
            over = a.supercube(b)
            assert over.contains(a) and over.contains(b)
            # Minimality: every free variable of the supercube was
            # either free in an operand or disagrees between them.
            for var in range(nvars):
                bit = 1 << var
                if over.used & bit:
                    continue
                both_use = (a.used & bit) and (b.used & bit)
                assert not both_use or (a.phase ^ b.phase) & bit

    def test_cofactor_var_agrees_with_table_cofactor(self):
        for rng, nvars in cases("cube-cofactor"):
            cube = random_cube(rng, nvars)
            var = rng.randrange(nvars)
            value = rng.random() < 0.5
            table = Cover([cube], nvars).truth_table()
            expected = tt.cofactor(table, var, value, nvars)
            cofactored = cube.cofactor_var(var, value)
            got = (
                Cover([cofactored], nvars).truth_table()
                if cofactored is not None
                else 0
            )
            # The cube cofactor drops var, so its table must not depend
            # on it — compare on the var-independent tables.
            assert got == expected


class TestCoverAlgebra:
    def test_complement_is_pointwise_negation(self):
        for rng, nvars in cases("cover-complement"):
            cover = random_cover(rng, nvars)
            complement = cover.complement()
            mask = tt.table_mask(nvars)
            assert complement.truth_table() == (~cover.truth_table() & mask)

    def test_intersect_union_xor_match_tables(self):
        for rng, nvars in cases("cover-connectives"):
            a = random_cover(rng, nvars)
            b = random_cover(rng, nvars)
            ta, tb = a.truth_table(), b.truth_table()
            assert a.intersect(b).truth_table() == ta & tb
            assert a.union(b).truth_table() == ta | tb
            assert a.xor(b).truth_table() == ta ^ tb

    def test_containment_and_tautology_match_tables(self):
        for rng, nvars in cases("cover-containment"):
            a = random_cover(rng, nvars)
            b = random_cover(rng, nvars)
            ta, tb = a.truth_table(), b.truth_table()
            assert a.contains_cover(b) == (tb & ~ta == 0)
            assert a.is_tautology() == (ta == tt.table_mask(nvars))
            cube = random_cube(rng, nvars)
            cube_table = Cover([cube], nvars).truth_table()
            assert a.contains_cube(cube) == (cube_table & ~ta == 0)

    def test_rewrites_preserve_the_function(self):
        for rng, nvars in cases("cover-rewrites"):
            cover = random_cover(rng, nvars)
            table = cover.truth_table()
            assert cover.dedup().truth_table() == table
            assert cover.drop_contained().truth_table() == table
            assert cover.irredundant().truth_table() == table

    def test_expand_to_prime_yields_a_prime_implicant(self):
        for rng, nvars in cases("cover-expand"):
            cover = random_cover(rng, nvars)
            cube = rng.choice(list(cover))
            prime = cover.expand_to_prime(cube)
            assert prime.contains(cube)
            assert cover.is_implicant(prime)
            assert cover.is_prime(prime)

    def test_all_primes_is_the_complete_prime_set(self):
        for rng, nvars in cases("cover-primes"):
            if nvars > 4:
                nvars = 4  # keep the exhaustive check cheap
            cover = random_cover(rng, nvars)
            primes = cover.all_primes()
            # Soundness: each listed cube is a prime implicant.
            for prime in primes:
                assert cover.is_implicant(prime)
                assert cover.is_prime(prime)
            # Completeness: the primes cover the function exactly, and
            # every implicant lies under some prime.
            assert Cover(primes, nvars).truth_table() == cover.truth_table()
            for _ in range(10):
                cand = random_cube(rng, nvars)
                if cover.is_implicant(cand):
                    assert any(p.contains(cand) for p in primes)
