"""Unit and property tests for SOP covers."""

import pytest
from hypothesis import given, settings

from repro.boolean.cover import Cover
from repro.boolean.cube import Cube

from ..conftest import cover_strategy, cube_strategy

NAMES = ["a", "b", "c", "d"]


class TestConstruction:
    def test_empty_is_constant_zero(self):
        cover = Cover.empty(4)
        assert not any(cover.evaluate(p) for p in range(16))

    def test_one_is_constant_one(self):
        cover = Cover.one(4)
        assert all(cover.evaluate(p) for p in range(16))

    def test_from_strings(self):
        cover = Cover.from_strings(["ab", "c'd"], NAMES)
        assert len(cover) == 2
        assert cover.to_string(NAMES) == "ab + c'd"

    def test_from_minterms(self):
        cover = Cover.from_minterms([0, 3, 5], 3)
        assert cover.minterms() == {0, 3, 5}

    def test_from_function(self):
        cover = Cover.from_function(lambda p: p % 2 == 1, 3)
        assert cover.minterms() == {1, 3, 5, 7}

    def test_universe_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Cover([Cube.universe(3)], 4)


class TestEvaluation:
    @given(cover_strategy(4))
    def test_evaluate_matches_minterm_union(self, cover):
        points = cover.minterms()
        for p in range(16):
            assert cover.evaluate(p) == (p in points)

    @given(cover_strategy(4))
    def test_truth_table_matches_evaluate(self, cover):
        table = cover.truth_table()
        for p in range(16):
            assert bool(table >> p & 1) == cover.evaluate(p)

    def test_num_literals_is_area_proxy(self):
        cover = Cover.from_strings(["ab", "c'd", "a"], NAMES)
        assert cover.num_literals() == 5


class TestTautologyAndContainment:
    def test_complementary_literals_are_tautology(self):
        assert Cover.from_strings(["a", "a'"], NAMES).is_tautology()

    def test_partial_cover_is_not_tautology(self):
        assert not Cover.from_strings(["ab", "a'c"], NAMES).is_tautology()

    def test_shannon_tautology(self):
        cover = Cover.from_strings(["ab", "ab'", "a'c", "a'c'"], NAMES)
        assert cover.is_tautology()

    @given(cover_strategy(4))
    def test_tautology_matches_brute_force(self, cover):
        assert cover.is_tautology() == all(cover.evaluate(p) for p in range(16))

    @given(cover_strategy(4), cube_strategy(4))
    def test_contains_cube_matches_brute_force(self, cover, cube):
        expected = all(cover.evaluate(p) for p in cube.minterms())
        assert cover.contains_cube(cube) == expected

    def test_single_cube_containment_differs_from_functional(self):
        # The consensus cube bc is an implicant but no single gate holds
        # it — the hazard-relevant distinction (section 2.3).
        cover = Cover.from_strings(["ab", "a'c"], NAMES)
        consensus = Cube.from_string("bc", NAMES)
        assert cover.contains_cube(consensus)
        assert not cover.single_cube_contains(consensus)

    @given(cover_strategy(3), cover_strategy(3))
    def test_equivalent_matches_truth_tables(self, c1, c2):
        assert c1.equivalent(c2) == (c1.truth_table() == c2.truth_table())


class TestCofactor:
    @given(cover_strategy(4), cube_strategy(4))
    def test_cofactor_semantics(self, cover, cube):
        cofactor = cover.cofactor(cube)
        # For points inside the cube, cofactor(free part) == f(point).
        for point in cube.minterms():
            assert cofactor.evaluate(point) == cover.evaluate(point)

    @given(cover_strategy(4))
    def test_cofactor_var_semantics(self, cover):
        for var in range(4):
            for value in (False, True):
                cofactor = cover.cofactor_var(var, value)
                for p in range(16):
                    fixed = (p | (1 << var)) if value else (p & ~(1 << var))
                    assert cofactor.evaluate(fixed) == cover.evaluate(fixed)


class TestComplement:
    @given(cover_strategy(4))
    def test_complement_is_negation(self, cover):
        complement = cover.complement()
        for p in range(16):
            assert complement.evaluate(p) == (not cover.evaluate(p))

    def test_complement_of_empty_is_one(self):
        assert Cover.empty(3).complement().is_tautology()

    def test_complement_of_one_is_empty(self):
        assert not Cover.one(3).complement().cubes


class TestPrimes:
    def test_expand_to_prime(self):
        cover = Cover.from_strings(["ab", "ab'"], NAMES)  # f = a
        prime = cover.expand_to_prime(Cube.from_string("ab", NAMES))
        assert prime.to_string(NAMES) == "a"

    def test_expand_non_implicant_rejected(self):
        cover = Cover.from_strings(["ab"], NAMES)
        with pytest.raises(ValueError):
            cover.expand_to_prime(Cube.from_string("a", NAMES))

    def test_is_prime(self):
        cover = Cover.from_strings(["ab", "a'c"], NAMES)
        assert cover.is_prime(Cube.from_string("ab", NAMES))
        assert cover.is_prime(Cube.from_string("bc", NAMES))
        assert not cover.is_prime(Cube.from_string("abc", NAMES))

    def test_all_primes_classic_consensus(self):
        # f = ab + a'c has exactly three primes: ab, a'c, bc.
        cover = Cover.from_strings(["ab", "a'c"], NAMES)
        primes = {p.to_string(NAMES) for p in cover.all_primes()}
        assert primes == {"ab", "a'c", "bc"}

    @given(cover_strategy(4, max_cubes=4))
    @settings(max_examples=40, deadline=None)
    def test_all_primes_are_prime_and_cover_function(self, cover):
        primes = cover.all_primes()
        union = Cover(primes, 4)
        assert union.equivalent(cover)
        for prime in primes:
            assert cover.is_prime(prime)


class TestSimplifications:
    def test_dedup_keeps_first(self):
        cube = Cube.from_string("ab", NAMES)
        cover = Cover([cube, cube], 4)
        assert len(cover.dedup()) == 1

    def test_drop_contained(self):
        cover = Cover.from_strings(["a", "ab"], NAMES)
        dropped = cover.drop_contained()
        assert [c.to_string(NAMES) for c in dropped] == ["a"]

    def test_irredundant_removes_consensus(self):
        cover = Cover.from_strings(["ab", "a'c", "bc"], NAMES)
        irred = cover.irredundant()
        assert len(irred) == 2
        assert irred.equivalent(cover)

    @given(cover_strategy(4))
    def test_irredundant_preserves_function(self, cover):
        assert cover.irredundant().equivalent(cover)


class TestSetOperations:
    @given(cover_strategy(4), cover_strategy(4))
    def test_intersect_semantics(self, c1, c2):
        product = c1.intersect(c2)
        for p in range(16):
            assert product.evaluate(p) == (c1.evaluate(p) and c2.evaluate(p))

    @given(cover_strategy(4), cover_strategy(4))
    def test_xor_semantics(self, c1, c2):
        xor = c1.xor(c2)
        for p in range(16):
            assert xor.evaluate(p) == (c1.evaluate(p) != c2.evaluate(p))

    @given(cover_strategy(4), cover_strategy(4))
    def test_union_semantics(self, c1, c2):
        union = c1.union(c2)
        for p in range(16):
            assert union.evaluate(p) == (c1.evaluate(p) or c2.evaluate(p))

    def test_remap(self):
        cover = Cover.from_strings(["ab'"], NAMES)
        remapped = cover.remap([1, 0, 2, 3], 4)
        assert remapped.to_string(NAMES) == "a'b"
