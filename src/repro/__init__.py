"""repro — hazard-aware technology mapping for asynchronous designs.

A from-scratch reproduction of Siegel, De Micheli & Dill, *Automatic
Technology Mapping for Generalized Fundamental-Mode Asynchronous
Designs* (Stanford CSL-TR-93-580 / DAC 1993), including every substrate
the paper relies on:

* :mod:`repro.boolean` — cubes, covers, factored forms, BDDs;
* :mod:`repro.hazards` — the section-4 hazard-analysis algorithms plus
  an exhaustive oracle;
* :mod:`repro.network` — logic networks, hazard-preserving
  decomposition, cone partitioning, ternary simulation;
* :mod:`repro.library` — annotated cell libraries, with synthetic
  recreations of the paper's LSI / CMOS3 / GDT / Actel libraries;
* :mod:`repro.mapping` — the CERES-style Boolean-matching mapper and
  its asynchronous variant (``tmap`` / ``async_tmap``);
* :mod:`repro.burstmode` — burst-mode specifications, exact hazard-free
  two-level minimization (Nowick–Dill), synthesis, and the Table-5
  benchmark controllers.

Production surfaces on top of the core:

* :mod:`repro.api` — the frozen ``repro-api/v1`` request/response
  contract and the one execution facade every entry point routes
  through;
* :mod:`repro.batch` — the fault-tolerant batch engine;
* :mod:`repro.service` — the persistent mapping daemon (``repro
  serve``) and its HTTP client;
* :mod:`repro.obs` — tracing, metrics, benchmark snapshots, and the
  regression gate.

Quickstart::

    from repro import Netlist, async_tmap, load_library, verify_mapping

    net = Netlist.from_equations({"f": "s*a + s'*b + a*b"})
    result = async_tmap(net, load_library("CMOS3"))
    assert verify_mapping(net, result.mapped).ok

Or through the versioned facade (what the CLI and service speak)::

    from repro import MapRequest, execute_map

    response = execute_map(MapRequest(design="dme", library="CMOS3",
                                      verify=True))
    assert response.verify["ok"]
"""

from .api import ApiError, MapRequest, MapResponse, execute_map
from .boolean import BddManager, Cover, Cube, Expr, parse
from .burstmode import (
    BurstModeSpec,
    benchmark_names,
    benchmark_netlist,
    minimize_hazard_free,
    synthesize,
)
from .hazards import (
    HazardAnalysis,
    analyze_cover,
    analyze_expression,
    hazards_subset,
)
from .library import Library, LibraryCell, load_library, minimal_teaching_library
from .mapping import (
    MappingOptions,
    MappingResult,
    async_tmap,
    tmap,
    verify_mapping,
)
from .network import Netlist, async_tech_decomp, partition, tech_decomp

__version__ = "1.0.0"

__all__ = [
    "ApiError",
    "BddManager",
    "BurstModeSpec",
    "Cover",
    "Cube",
    "Expr",
    "HazardAnalysis",
    "Library",
    "LibraryCell",
    "MapRequest",
    "MapResponse",
    "MappingOptions",
    "MappingResult",
    "Netlist",
    "__version__",
    "execute_map",
    "analyze_cover",
    "analyze_expression",
    "async_tech_decomp",
    "async_tmap",
    "benchmark_names",
    "benchmark_netlist",
    "hazards_subset",
    "load_library",
    "minimal_teaching_library",
    "minimize_hazard_free",
    "parse",
    "partition",
    "synthesize",
    "tech_decomp",
    "tmap",
    "verify_mapping",
]
