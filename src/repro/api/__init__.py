"""``repro.api`` — the versioned facade over the mapping pipeline.

The request/response contract (``repro-api/v1``) lives in
:mod:`repro.api.schema`; the one execution path behind it in
:mod:`repro.api.facade`.  Quickstart::

    from repro.api import MapRequest, execute_map

    response = execute_map(MapRequest(design="dme", library="CMOS3",
                                      verify=True))
    assert response.verify["ok"]
    open("dme.blif", "w").write(response.blif)

The CLI (``repro map``/``batch``/``explain``), the batch engine's
workers, and the HTTP service (``repro serve``) all route through this
module, so the response for a given request is byte-identical no matter
which entry point issued it.  See ``docs/api.md`` for the payload
schema and the deprecation policy.
"""

from .facade import (  # noqa: F401
    FALLBACK_DEPTH,
    clear_library_cache,
    execute_batch,
    execute_certify,
    execute_explain,
    execute_map,
    execute_verify,
    netlist_blif,
    read_blif_text,
    request_netlist,
    run_map,
    shared_library,
    text_digest,
)
from .schema import (  # noqa: F401
    API_SCHEMA,
    ApiError,
    BATCH_OPTION_NAMES,
    BatchRequest,
    BatchResponse,
    CertifyRequest,
    CertifyResponse,
    ExplainRequest,
    ExplainResponse,
    FILTER_MODES,
    MODES,
    MapRequest,
    MapResponse,
    OBJECTIVES,
    OPTION_FIELDS,
    OPTION_NAMES,
    OptionField,
    VerifyRequest,
    VerifyResponse,
    add_option_arguments,
    option_values_from_args,
    parse_request,
)

__all__ = [
    "API_SCHEMA",
    "ApiError",
    "BATCH_OPTION_NAMES",
    "BatchRequest",
    "BatchResponse",
    "CertifyRequest",
    "CertifyResponse",
    "ExplainRequest",
    "ExplainResponse",
    "FALLBACK_DEPTH",
    "FILTER_MODES",
    "MODES",
    "MapRequest",
    "MapResponse",
    "OBJECTIVES",
    "OPTION_FIELDS",
    "OPTION_NAMES",
    "OptionField",
    "VerifyRequest",
    "VerifyResponse",
    "add_option_arguments",
    "clear_library_cache",
    "execute_batch",
    "execute_certify",
    "execute_explain",
    "execute_map",
    "execute_verify",
    "netlist_blif",
    "read_blif_text",
    "option_values_from_args",
    "parse_request",
    "request_netlist",
    "run_map",
    "shared_library",
    "text_digest",
]
