"""The ``repro-api/v1`` contract: frozen, versioned request/response types.

Every way of asking the mapper for work — the Python facade
(:mod:`repro.api.facade`), the CLI's ``map``/``batch``/``explain``
subcommands, the batch engine's worker processes, and the HTTP service
(:mod:`repro.service`) — speaks the same small set of immutable
dataclasses defined here.  Each type round-trips losslessly through a
plain-JSON payload stamped ``schema: repro-api/v1``:

* :class:`MapRequest` / :class:`MapResponse` — one (design, library)
  mapping job and its result;
* :class:`BatchRequest` / :class:`BatchResponse` — a designs × libraries
  product through the fault-tolerant batch engine;
* :class:`ExplainRequest` / :class:`ExplainResponse` — a mapping run
  with the witness-backed decision log rendered per cone;
* :class:`VerifyRequest` / :class:`VerifyResponse` — equivalence and
  hazard-safety verification of a mapped BLIF against its source.

``from_payload`` is strict: a wrong or missing ``schema`` stamp, an
unknown field, or a mistyped value raises :class:`ApiError` instead of
being silently dropped — tampered payloads fail loudly at the boundary,
the same machine-checkable-interface discipline Verbeek & Schmaltz
argue asynchronous building blocks need to compose.

The mapping *option* fields (depth, objective, filter mode, …) are
declared exactly once, in :data:`OPTION_FIELDS`.  Everything else —
:class:`~repro.mapping.mapper.MappingOptions` construction,
:class:`~repro.batch.jobs.BatchJob` specs, and the CLI's argparse flags
— derives from that table, so adding an option is a one-line change
(see :func:`add_option_arguments` / :func:`option_values_from_args`).

Deprecation policy: ``repro-api/v1`` payloads only ever *gain* optional
fields with defaults; removing or retyping a field bumps the schema to
``/v2`` and v1 payloads keep parsing for at least one minor release.
Legacy keyword arguments on ``tmap``/``async_tmap``/``map_network``
emit :class:`DeprecationWarning` and are translated through this
schema (see ``docs/api.md``).
"""

from __future__ import annotations

import argparse
import dataclasses
from dataclasses import dataclass, fields
from typing import Any, Mapping, Optional

#: The version stamp every payload carries.
API_SCHEMA = "repro-api/v1"

MODES = ("async", "sync")
OBJECTIVES = ("area", "delay")
FILTER_MODES = ("exact", "paper")


class ApiError(ValueError):
    """A payload or request violates the ``repro-api/v1`` contract."""


# ----------------------------------------------------------------------
# The single declaration of the mapping options
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class OptionField:
    """One mapping option: name, type, default, choices, and CLI flag.

    ``flag=None`` keeps the option out of the CLI; ``batch=False``
    keeps it out of :class:`~repro.batch.jobs.BatchJob` specs (for
    knobs that cannot change results, like ``workers``).
    """

    name: str
    kind: type
    default: Any
    help: str
    flag: Optional[str] = None
    choices: Optional[tuple] = None
    batch: bool = True
    minimum: Optional[int] = None


#: The one place a mapping option is declared.  ``MappingOptions``
#: construction, ``BatchJob`` fields, ``MapRequest`` fields, and the
#: CLI's argparse flags are all derived from this table.
OPTION_FIELDS: tuple[OptionField, ...] = (
    OptionField(
        "mode",
        str,
        "async",
        "mapping flow: the paper's hazard-safe mapper or the sync baseline",
        flag=None,  # the CLI exposes this as --sync, see add_option_arguments
        choices=MODES,
    ),
    OptionField(
        "max_depth",
        int,
        5,
        "cluster-enumeration depth (the paper runs at 5)",
        flag="--depth",
        minimum=1,
    ),
    OptionField(
        "max_inputs",
        int,
        8,
        "cluster input cap during matching",
        flag="--max-inputs",
        minimum=1,
    ),
    OptionField(
        "objective",
        str,
        "area",
        "covering objective",
        flag="--objective",
        choices=OBJECTIVES,
    ),
    OptionField(
        "filter_mode",
        str,
        "exact",
        "hazardous-match filter: exact verdicts or the paper's record lists",
        flag="--filter-mode",
        choices=FILTER_MODES,
    ),
    OptionField(
        "workers",
        int,
        1,
        "parallel cone-covering threads (0 = one per CPU)",
        flag="--workers",
        batch=False,
        minimum=0,
    ),
    OptionField(
        "result_cache",
        bool,
        False,
        "reuse whole map results from the content-addressed result cache",
        flag="--result-cache",
        batch=False,  # a deployment knob: BatchConfig carries it, job
        # specs don't (it cannot change results, so it must not change
        # spec digests or resume identity)
    ),
)

OPTION_NAMES = tuple(field.name for field in OPTION_FIELDS)
#: Option fields carried by picklable ``BatchJob`` specs.
BATCH_OPTION_NAMES = tuple(f.name for f in OPTION_FIELDS if f.batch)


def add_option_arguments(parser, exclude: tuple = ()) -> None:
    """Register the :data:`OPTION_FIELDS` flags on an argparse parser.

    The ``mode`` option is exposed as the historical ``--sync`` toggle;
    every other field becomes a typed, choice-checked flag.  Subcommands
    that pre-empt a flag for their own purposes (``batch --workers`` is
    the *pool* width) list it in ``exclude``.
    """
    for field in OPTION_FIELDS:
        if field.name in exclude:
            continue
        if field.name == "mode":
            parser.add_argument(
                "--sync",
                action="store_true",
                help="use the sync baseline (default: the async mapper)",
            )
            continue
        if field.flag is None:
            continue
        if field.kind is bool:
            # Booleans get the paired --flag/--no-flag form for free.
            parser.add_argument(
                field.flag,
                dest=field.name,
                action=argparse.BooleanOptionalAction,
                default=field.default,
                help=field.help,
            )
            continue
        parser.add_argument(
            field.flag,
            dest=field.name,
            type=field.kind,
            default=field.default,
            choices=field.choices,
            help=field.help,
        )


def option_values_from_args(args, exclude: tuple = ()) -> dict:
    """Extract the :data:`OPTION_FIELDS` values an argparse run produced."""
    values: dict[str, Any] = {}
    for field in OPTION_FIELDS:
        if field.name in exclude:
            continue
        if field.name == "mode":
            values["mode"] = "sync" if getattr(args, "sync", False) else "async"
        elif hasattr(args, field.name):
            values[field.name] = getattr(args, field.name)
    return values


def _check_option(name: str, value: Any) -> None:
    spec = next((f for f in OPTION_FIELDS if f.name == name), None)
    if spec is None:
        return
    if spec.choices is not None and value not in spec.choices:
        raise ApiError(
            f"{name} must be one of {spec.choices}, got {value!r}"
        )
    if spec.minimum is not None and value < spec.minimum:
        raise ApiError(f"{name} must be >= {spec.minimum}, got {value!r}")


# ----------------------------------------------------------------------
# Payload plumbing shared by every request/response type
# ----------------------------------------------------------------------

#: Accepted runtime types per annotated field type.  Payloads are plain
#: JSON, so the only containers are dicts, lists (tuples on the Python
#: side), strings, numbers, bools, and null.
_TYPE_MAP = {
    "str": (str,),
    "int": (int,),
    "float": (int, float),
    "bool": (bool,),
    "dict": (dict,),
    "tuple": (list, tuple),
    "Optional[str]": (str, type(None)),
    "Optional[int]": (int, type(None)),
    "Optional[float]": (int, float, type(None)),
    "Optional[dict]": (dict, type(None)),
    "Optional[tuple]": (list, tuple, type(None)),
}


def _normalize(annotation: str) -> str:
    annotation = annotation.replace("typing.", "")
    for container in ("tuple", "dict"):
        prefix = f"{container}["
        if annotation.startswith(prefix):
            return container
        if annotation.startswith(f"Optional[{prefix}"):
            return f"Optional[{container}]"
    return annotation


class _Payload:
    """Strict ``to_payload``/``from_payload`` over the dataclass fields."""

    #: Discriminator stored in the payload's ``kind`` field.
    kind = "abstract"

    def to_payload(self) -> dict:
        payload: dict[str, Any] = {"schema": API_SCHEMA, "kind": self.kind}
        for field in fields(self):
            value = getattr(self, field.name)
            if isinstance(value, tuple):
                value = list(value)
            payload[field.name] = value
        return payload

    @classmethod
    def from_payload(cls, payload: Mapping) -> "_Payload":
        if not isinstance(payload, Mapping):
            raise ApiError(
                f"{cls.kind} payload must be a JSON object, "
                f"got {type(payload).__name__}"
            )
        schema = payload.get("schema")
        if schema != API_SCHEMA:
            raise ApiError(
                f"payload schema {schema!r} is not {API_SCHEMA!r}"
            )
        kind = payload.get("kind")
        if kind != cls.kind:
            raise ApiError(f"payload kind {kind!r} is not {cls.kind!r}")
        spec = {field.name: field for field in fields(cls)}
        unknown = sorted(set(payload) - set(spec) - {"schema", "kind"})
        if unknown:
            raise ApiError(
                f"unknown {cls.kind} field(s): {', '.join(unknown)}"
            )
        values: dict[str, Any] = {}
        for name, field in spec.items():
            if name not in payload:
                if (
                    field.default is dataclasses.MISSING
                    and field.default_factory is dataclasses.MISSING
                ):
                    raise ApiError(f"missing required field {name!r}")
                continue
            value = payload[name]
            expected = _TYPE_MAP.get(_normalize(str(field.type)))
            if expected is not None:
                if not isinstance(value, expected):
                    raise ApiError(
                        f"field {name!r} must be {field.type}, "
                        f"got {type(value).__name__}"
                    )
                if isinstance(value, bool) and bool not in expected:
                    raise ApiError(
                        f"field {name!r} must be {field.type}, got bool"
                    )
            if isinstance(value, list):
                value = tuple(value)
            values[name] = value
        try:
            return cls(**values)
        except (TypeError, ValueError) as exc:
            if isinstance(exc, ApiError):
                raise
            raise ApiError(str(exc)) from exc


def parse_request(payload: Mapping) -> "_Payload":
    """Parse any ``repro-api/v1`` request payload by its ``kind``."""
    kinds = {
        cls.kind: cls
        for cls in (
            MapRequest,
            BatchRequest,
            ExplainRequest,
            VerifyRequest,
            CertifyRequest,
        )
    }
    if not isinstance(payload, Mapping):
        raise ApiError("request payload must be a JSON object")
    cls = kinds.get(payload.get("kind"))
    if cls is None:
        raise ApiError(
            f"unknown request kind {payload.get('kind')!r}; "
            f"one of {sorted(kinds)}"
        )
    return cls.from_payload(payload)


def _validate_network(network: Optional[dict]) -> None:
    if network is None:
        return
    keys = set(network)
    if "blif" in keys:
        if not isinstance(network["blif"], str):
            raise ApiError("network.blif must be BLIF text")
        extra = keys - {"blif", "name"}
    elif "equations" in keys:
        if not isinstance(network["equations"], dict):
            raise ApiError("network.equations must map outputs to expressions")
        extra = keys - {"equations", "inputs", "name"}
    else:
        raise ApiError("network needs a 'blif' or 'equations' entry")
    if extra:
        raise ApiError(f"unknown network entr{'y' if len(extra) == 1 else 'ies'}: "
                       f"{', '.join(sorted(extra))}")


# ----------------------------------------------------------------------
# Requests
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class MapRequest(_Payload):
    """One mapping job: a design, a library, and the option fields.

    Exactly one of ``design`` (a benchmark-catalog name) or ``network``
    (an inline design: ``{"blif": text}`` or ``{"equations": {...},
    "inputs": [...]}``) must be given.  ``deadline_seconds`` bounds the
    run cooperatively; an overrun degrades to the trivial depth-1 cover
    (reported as ``fallback="trivial-cover"`` in the response) instead
    of failing.
    """

    kind = "map"

    library: str
    design: Optional[str] = None
    network: Optional[dict] = None
    mode: str = "async"
    max_depth: int = 5
    max_inputs: int = 8
    objective: str = "area"
    filter_mode: str = "exact"
    workers: int = 1
    result_cache: bool = False
    dont_cares: bool = False
    explain: bool = False
    verify: bool = False
    deadline_seconds: Optional[float] = None

    def __post_init__(self) -> None:
        if not self.library:
            raise ApiError("library is required")
        if (self.design is None) == (self.network is None):
            raise ApiError("exactly one of design or network is required")
        for name in OPTION_NAMES:
            _check_option(name, getattr(self, name))
        _validate_network(self.network)
        if self.dont_cares and self.design is None:
            raise ApiError(
                "dont_cares needs a catalog design (bursts come from its "
                "burst-mode specification)"
            )
        if self.deadline_seconds is not None and self.deadline_seconds <= 0:
            raise ApiError("deadline_seconds must be positive")

    @property
    def design_name(self) -> str:
        if self.design is not None:
            return self.design
        assert self.network is not None
        return str(self.network.get("name") or "inline")

    def option_values(self) -> dict:
        """The :data:`OPTION_FIELDS` values this request carries."""
        return {name: getattr(self, name) for name in OPTION_NAMES}


@dataclass(frozen=True)
class BatchRequest(_Payload):
    """A designs × libraries product for the batch engine.

    The option fields are shared by every job; ``include_blif`` keeps
    full netlist texts out of the (potentially large) response unless a
    consumer asks for them.
    """

    kind = "batch"

    designs: tuple
    libraries: tuple = ("CMOS3",)
    mode: str = "async"
    max_depth: int = 5
    max_inputs: int = 8
    objective: str = "area"
    filter_mode: str = "exact"
    verify: bool = False
    explain: bool = False
    deadline_seconds: Optional[float] = None
    include_blif: bool = False
    #: Deployment knob, not a result knob: turns the content-addressed
    #: result cache on for every job (additive optional field per the
    #: deprecation policy; job spec digests never see it).
    result_cache: bool = False

    def __post_init__(self) -> None:
        object.__setattr__(self, "designs", tuple(self.designs))
        object.__setattr__(self, "libraries", tuple(self.libraries))
        if not self.designs:
            raise ApiError("designs must name at least one catalog benchmark")
        if not self.libraries:
            raise ApiError("libraries must name at least one library")
        for name in BATCH_OPTION_NAMES:
            _check_option(name, getattr(self, name))
        if self.deadline_seconds is not None and self.deadline_seconds <= 0:
            raise ApiError("deadline_seconds must be positive")

    def to_jobs(self) -> list:
        """The :class:`~repro.batch.jobs.BatchJob` specs of this request."""
        from ..batch.jobs import BatchJob

        return [
            BatchJob.from_request(self.job_request(design, library))
            for library in self.libraries
            for design in self.designs
        ]

    def job_request(self, design: str, library: str) -> MapRequest:
        """The :class:`MapRequest` of one (design, library) job."""
        return MapRequest(
            library=library,
            design=design,
            mode=self.mode,
            max_depth=self.max_depth,
            max_inputs=self.max_inputs,
            objective=self.objective,
            filter_mode=self.filter_mode,
            verify=self.verify,
            explain=self.explain,
            deadline_seconds=self.deadline_seconds,
        )


@dataclass(frozen=True)
class ExplainRequest(_Payload):
    """Map a design and render its witness-backed decision log."""

    kind = "explain"

    library: str
    design: Optional[str] = None
    network: Optional[dict] = None
    mode: str = "async"
    max_depth: int = 5
    max_inputs: int = 8
    objective: str = "area"
    filter_mode: str = "exact"
    cone: Optional[str] = None
    limit: Optional[int] = None
    rejected_only: bool = False
    deadline_seconds: Optional[float] = None

    def __post_init__(self) -> None:
        if (self.design is None) == (self.network is None):
            raise ApiError("exactly one of design or network is required")
        for name in ("mode", "max_depth", "max_inputs", "objective",
                     "filter_mode"):
            _check_option(name, getattr(self, name))
        _validate_network(self.network)

    def map_request(self) -> MapRequest:
        """The underlying mapping job, with the explain layer on."""
        return MapRequest(
            library=self.library,
            design=self.design,
            network=self.network,
            mode=self.mode,
            max_depth=self.max_depth,
            max_inputs=self.max_inputs,
            objective=self.objective,
            filter_mode=self.filter_mode,
            explain=True,
            deadline_seconds=self.deadline_seconds,
        )


@dataclass(frozen=True)
class VerifyRequest(_Payload):
    """Verify a mapped BLIF against its source design.

    ``design`` names a catalog benchmark (or ``network`` carries the
    source inline); ``mapped_blif`` is the netlist to check for
    functional equivalence and hazard safety (Theorem 3.2).
    """

    kind = "verify"

    mapped_blif: str
    design: Optional[str] = None
    network: Optional[dict] = None

    def __post_init__(self) -> None:
        if not self.mapped_blif:
            raise ApiError("mapped_blif is required")
        if (self.design is None) == (self.network is None):
            raise ApiError("exactly one of design or network is required")
        _validate_network(self.network)


@dataclass(frozen=True)
class CertifyRequest(_Payload):
    """Independently certify a mapped BLIF against its source design.

    Same resolution shape as :class:`VerifyRequest` — ``design`` names a
    catalog benchmark or ``network`` carries the source inline — but the
    check runs in :mod:`repro.conformance`, which shares no code with
    the mapper's match/cover/cache machinery.  ``library`` additionally
    enables the cell-binding check for netlists whose gates carry cell
    references (BLIF round-trips drop them, so it is optional).
    """

    kind = "certify"

    mapped_blif: str
    design: Optional[str] = None
    network: Optional[dict] = None
    library: Optional[str] = None
    exhaustive_limit: int = 6
    samples: int = 150
    seed: int = 0

    def __post_init__(self) -> None:
        if not self.mapped_blif:
            raise ApiError("mapped_blif is required")
        if (self.design is None) == (self.network is None):
            raise ApiError("exactly one of design or network is required")
        _validate_network(self.network)
        if self.exhaustive_limit < 1:
            raise ApiError("exhaustive_limit must be >= 1")
        if self.samples < 1:
            raise ApiError("samples must be >= 1")


# ----------------------------------------------------------------------
# Responses
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class MapResponse(_Payload):
    """A mapped network plus its quality/runtime accounting.

    ``digest`` is the SHA-256 of ``blif`` — the byte-identity handle the
    batch journal, the service tests, and resumable runs all compare.
    ``fallback`` is ``"trivial-cover"`` when a deadline overran and the
    run degraded to the depth-1 cover (``deadline_site`` says where the
    budget ran out).  ``verify`` is the three-verdict dict
    (``equivalent`` / ``hazard_safe`` / ``ok``) when verification was
    requested; ``explain`` the ``repro-explain/v1`` payload.
    """

    kind = "map_response"

    status: str
    design: str
    library: str
    mode: str
    area: float
    delay: float
    cells: int
    cell_usage: dict
    cones: int
    matches: int
    filter_invocations: int
    map_seconds: float
    annotate_seconds: float
    annotate_source: Optional[str]
    workers: int
    digest: str
    blif: str
    fallback: Optional[str] = None
    deadline_site: Optional[str] = None
    verify: Optional[dict] = None
    explain: Optional[dict] = None
    #: ``repro-trace/v1`` span tree of the serving side, present only
    #: when the caller sent an ``X-Repro-Trace`` header (additive
    #: optional field per the deprecation policy).
    trace: Optional[dict] = None
    #: ``"memory"`` or ``"disk"`` when this response was replayed from
    #: the content-addressed result cache instead of being recomputed
    #: (additive optional field per the deprecation policy).
    cached: Optional[str] = None

    def summary(self) -> dict:
        return {
            "area": self.area,
            "delay": self.delay,
            "cells": self.cells,
            "cpu": self.map_seconds,
        }


@dataclass(frozen=True)
class BatchResponse(_Payload):
    """Per-job records (in job-spec order) plus run-level accounting."""

    kind = "batch_response"

    results: tuple
    counts: dict
    elapsed: float
    backend: str
    workers: int
    #: Serving-side ``repro-trace/v1`` tree (traced requests only).
    trace: Optional[dict] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "results", tuple(self.results))

    @property
    def ok(self) -> bool:
        return all(r.get("status") == "ok" for r in self.results)


@dataclass(frozen=True)
class ExplainResponse(_Payload):
    """The decision log, its summary, and the rendered report lines."""

    kind = "explain_response"

    design: str
    library: str
    summary: dict
    rendered: tuple
    payload: dict

    def __post_init__(self) -> None:
        object.__setattr__(self, "rendered", tuple(self.rendered))


@dataclass(frozen=True)
class VerifyResponse(_Payload):
    """Equivalence + hazard-safety verdicts with violation detail."""

    kind = "verify_response"

    equivalent: bool
    hazard_safe: bool
    ok: bool
    outputs_checked: int
    transitions_checked: int
    violations: tuple = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "violations", tuple(self.violations))


@dataclass(frozen=True)
class CertifyResponse(_Payload):
    """The ``repro-cert/v1`` verdict plus its headline fields.

    ``certificate`` is the full certificate document (schema owned by
    :mod:`repro.conformance.certifier`); the flat fields mirror its
    headline entries so clients can gate without digging into it.
    """

    kind = "certify_response"

    verdict: str
    certified: bool
    equivalent: bool
    hazard_safe: bool
    outputs_checked: int
    transitions_checked: int
    replays: int
    evidence_digest: str
    violations: tuple
    counterexamples: tuple
    certificate: dict

    def __post_init__(self) -> None:
        object.__setattr__(self, "violations", tuple(self.violations))
        object.__setattr__(
            self, "counterexamples", tuple(self.counterexamples)
        )


__all__ = [
    "API_SCHEMA",
    "ApiError",
    "BatchRequest",
    "BatchResponse",
    "CertifyRequest",
    "CertifyResponse",
    "ExplainRequest",
    "ExplainResponse",
    "FILTER_MODES",
    "MODES",
    "MapRequest",
    "MapResponse",
    "OBJECTIVES",
    "OPTION_FIELDS",
    "OPTION_NAMES",
    "BATCH_OPTION_NAMES",
    "OptionField",
    "VerifyRequest",
    "VerifyResponse",
    "add_option_arguments",
    "option_values_from_args",
    "parse_request",
]
