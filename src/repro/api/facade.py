"""The one execution path behind every ``repro-api/v1`` request.

``execute_map`` is the single implementation the CLI ``map`` command,
the batch engine's workers, and the HTTP service all call: resolve the
design and library, build :class:`~repro.mapping.mapper.MappingOptions`
from the request's option fields, run the mapper under the request's
cooperative deadline (degrading to the trivial depth-1 cover on
overrun), and package the result as a :class:`~repro.api.schema.
MapResponse` whose BLIF text — and hence SHA-256 digest — is
byte-identical for a given request no matter which entry point issued
it.

Annotated libraries are cached per process in :func:`shared_library`
keyed on (name, cache location), so a long-lived caller — the service
daemon, a batch worker mapping many designs — pays the Table-2
annotation cost once per library, not once per request.
"""

from __future__ import annotations

import hashlib
import io
import threading
import time
from dataclasses import replace
from typing import Optional, Union

from ..deadline import Deadline, DeadlineExceeded
from ..library import anncache
from ..library.library import Library
from ..network.netlist import Netlist
from .schema import (
    ApiError,
    BatchRequest,
    BatchResponse,
    CertifyRequest,
    CertifyResponse,
    ExplainRequest,
    ExplainResponse,
    MapRequest,
    MapResponse,
    VerifyRequest,
    VerifyResponse,
)

#: Depth the trivial-cover fallback maps at when a deadline fires:
#: single-node clusters only, which turns the covering DP into a
#: per-gate cheapest-cell lookup — orders of magnitude faster and
#: always feasible (decomposition emits only base gates every standard
#: library covers).
FALLBACK_DEPTH = 1


def netlist_blif(netlist: Netlist) -> str:
    """The canonical BLIF text of a netlist (the byte-identity form)."""
    from ..io import write_blif

    buffer = io.StringIO()
    write_blif(netlist, buffer)
    return buffer.getvalue()


def text_digest(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


# Process-local cache of loaded (and, after first use, annotated)
# libraries: a long-lived process pays library construction and hazard
# annotation at most once per (library, cache location), not once per
# request.  The lock only guards the dict — annotation itself happens
# inside the mapper under the library's own idempotent flow.
_LIBRARY_CACHE: dict[tuple[str, str], Library] = {}
_LIBRARY_LOCK = threading.Lock()


def shared_library(name: str, cache_dir: anncache.CacheDir = None) -> Library:
    """The process-wide warm instance of a standard library."""
    from ..library.standard import load_library

    key = (name, str(cache_dir))
    with _LIBRARY_LOCK:
        library = _LIBRARY_CACHE.get(key)
        if library is None:
            library = load_library(name)
            _LIBRARY_CACHE[key] = library
    return library


def clear_library_cache() -> None:
    """Drop the warm libraries (tests and cache-dir changes)."""
    with _LIBRARY_LOCK:
        _LIBRARY_CACHE.clear()


def loaded_libraries() -> list[str]:
    """Names of the process-wide warm libraries (``/healthz`` reports
    these so load balancers can tell a preloaded daemon from a cold one)."""
    with _LIBRARY_LOCK:
        return sorted({name for name, _ in _LIBRARY_CACHE})


def request_netlist(
    request: Union[MapRequest, ExplainRequest, VerifyRequest, CertifyRequest],
) -> Netlist:
    """Resolve a request's design — catalog name or inline network."""
    if request.design is not None:
        from ..burstmode.benchmarks import CATALOG, synthesize_benchmark

        if request.design not in CATALOG:
            raise ApiError(f"unknown catalog benchmark {request.design!r}")
        return synthesize_benchmark(request.design).netlist(request.design)
    network = request.network
    assert network is not None
    try:
        if "blif" in network:
            from ..io import read_blif

            netlist = read_blif(io.StringIO(network["blif"]))
        else:
            netlist = Netlist.from_equations(
                dict(network["equations"]),
                name=str(network.get("name") or "inline"),
                inputs=list(network["inputs"])
                if network.get("inputs")
                else None,
            )
    except ApiError:
        raise
    except Exception as exc:
        raise ApiError(f"bad inline network: {exc}") from exc
    if network.get("name"):
        netlist.name = str(network["name"])
    return netlist


def _resolve_library(
    request, library: Optional[Library], cache_dir: anncache.CacheDir
) -> Library:
    if library is not None:
        return library
    from ..library.standard import ALL_LIBRARIES

    if request.library not in ALL_LIBRARIES:
        raise ApiError(f"unknown library {request.library!r}")
    return shared_library(request.library, cache_dir)


def _mapping_options(
    request: MapRequest,
    *,
    cache_dir: anncache.CacheDir,
    tracer,
    metrics,
    deadline: Optional[Deadline],
    max_depth: Optional[int] = None,
):
    from ..mapping.mapper import MappingOptions

    input_bursts = None
    if request.dont_cares:
        from ..burstmode.benchmarks import synthesize_benchmark
        from ..mapping.dontcare import synthesis_bursts

        assert request.design is not None  # enforced by MapRequest
        input_bursts = synthesis_bursts(synthesize_benchmark(request.design))
    return MappingOptions(
        max_depth=request.max_depth if max_depth is None else max_depth,
        max_inputs=request.max_inputs,
        objective=request.objective,
        filter_mode=request.filter_mode,
        workers=request.workers,
        input_bursts=input_bursts,
        annotation_cache_dir=cache_dir,
        tracer=tracer,
        metrics=metrics,
        explain=request.explain,
        deadline=deadline,
    )


def run_map(
    request: MapRequest,
    *,
    library: Optional[Library] = None,
    network: Optional[Netlist] = None,
    cache_dir: anncache.CacheDir = None,
    metrics=None,
    tracer=None,
) -> tuple[MapResponse, Optional["MappingResult"]]:
    """Execute one map request; returns the response AND the raw result.

    The raw :class:`~repro.mapping.mapper.MappingResult` carries the
    in-memory objects (netlists, cover stats, annotation report) the
    CLI prints from; remote callers only ever see the
    :class:`MapResponse`.  ``library``/``network`` short-circuit
    resolution when the caller already holds the objects.

    With ``request.result_cache`` on, the content-addressed result
    cache (:mod:`repro.cache.resultcache`) is consulted first; a hit
    replays the stored response verbatim (tagged ``cached="memory"`` or
    ``"disk"``) and the raw result is ``None`` — callers that print
    from the in-memory objects must fall back to the response fields.
    """
    from ..mapping.mapper import map_network
    from ..obs.tracer import NULL_TRACER

    net = network if network is not None else request_netlist(request)
    lib = _resolve_library(request, library, cache_dir)
    result_cache = cache_key = None
    trc = tracer if tracer is not None else NULL_TRACER
    if request.result_cache:
        from ..cache.resultcache import ResultCache, request_cache_key

        result_cache = ResultCache(cache_dir)
        cache_key = request_cache_key(request, netlist_blif(net), lib)
        with trc.span(
            "result_cache",
            op="lookup",
            design=request.design_name,
            library=lib.name,
            key=cache_key[:12],
        ) as span:
            hit = result_cache.lookup(cache_key, metrics=metrics)
            if hit is not None:
                tier, payload = hit
                span.set_attr(tier=tier)
                response = MapResponse.from_payload(payload)
                return replace(response, cached=tier), None
            span.set_attr(tier="miss")
    deadline = (
        Deadline(request.deadline_seconds)
        if request.deadline_seconds is not None
        else None
    )
    options = _mapping_options(
        request,
        cache_dir=cache_dir,
        tracer=tracer,
        metrics=metrics,
        deadline=deadline,
    )
    fallback = None
    deadline_site = None
    try:
        result = map_network(net, lib, options, mode=request.mode)
    except DeadlineExceeded as exc:
        # Graceful degradation: re-map with the trivial depth-1 cover,
        # which needs no meaningful budget.  Any injected hang already
        # fired this attempt, so the fallback pass runs clean.
        fallback = "trivial-cover"
        deadline_site = exc.site
        from ..obs import log as obs_log

        if obs_log.enabled():
            obs_log.event(
                "repro.api",
                "map.fallback",
                level="warning",
                trace_id=getattr(tracer, "trace_id", None),
                design=request.design_name,
                library=request.library,
                deadline_seconds=request.deadline_seconds,
                deadline_site=deadline_site,
            )
        fallback_options = _mapping_options(
            request,
            cache_dir=cache_dir,
            tracer=tracer,
            metrics=metrics,
            deadline=None,
            max_depth=FALLBACK_DEPTH,
        )
        result = map_network(net, lib, fallback_options, mode=request.mode)
    response = _response_from_result(
        request, result, fallback=fallback, deadline_site=deadline_site
    )
    if result_cache is not None and fallback is None:
        # Fallback responses are deadline artifacts, not the mapping of
        # this key — caching one would replay a degraded netlist on a
        # later run with a comfortable budget.
        with trc.span(
            "result_cache",
            op="store",
            design=request.design_name,
            library=lib.name,
            key=cache_key[:12],
        ):
            result_cache.store(
                cache_key,
                response.to_payload(),
                library=lib,
                design=request.design_name,
                metrics=metrics,
            )
    return response, result


def execute_map(
    request: MapRequest,
    *,
    library: Optional[Library] = None,
    network: Optional[Netlist] = None,
    cache_dir: anncache.CacheDir = None,
    metrics=None,
    tracer=None,
) -> MapResponse:
    """Execute one ``repro-api/v1`` map request to its response."""
    response, _ = run_map(
        request,
        library=library,
        network=network,
        cache_dir=cache_dir,
        metrics=metrics,
        tracer=tracer,
    )
    return response


def _response_from_result(
    request: MapRequest,
    result,
    *,
    fallback: Optional[str],
    deadline_site: Optional[str],
) -> MapResponse:
    blif = netlist_blif(result.mapped)
    verify_verdicts = None
    if request.verify:
        from ..mapping.verify import verify_mapping

        report = verify_mapping(result.source, result.mapped)
        verify_verdicts = {
            "equivalent": bool(report.equivalent),
            "hazard_safe": bool(report.hazard_safe),
            "ok": bool(report.ok),
        }
    explain_payload = None
    if request.explain and result.explain is not None:
        explain_payload = result.explain.to_dict()
    stats = result.stats
    annotation = result.annotation_report
    return MapResponse(
        status="ok",
        design=request.design_name,
        library=result.library.name,
        mode=result.mode,
        area=result.area,
        delay=round(result.delay, 4),
        cells=int(sum(result.cell_usage().values())),
        cell_usage={k: int(v) for k, v in sorted(result.cell_usage().items())},
        cones=stats.cones,
        matches=stats.matches,
        filter_invocations=stats.filter_invocations,
        map_seconds=round(result.elapsed, 4),
        annotate_seconds=round(result.annotate_elapsed, 4),
        annotate_source=annotation.source if annotation is not None else None,
        workers=result.workers,
        digest=text_digest(blif),
        blif=blif,
        fallback=fallback,
        deadline_site=deadline_site,
        verify=verify_verdicts,
        explain=explain_payload,
    )


def execute_explain(
    request: ExplainRequest,
    *,
    library: Optional[Library] = None,
    cache_dir: anncache.CacheDir = None,
    metrics=None,
    tracer=None,
) -> ExplainResponse:
    """Map with the explain layer on and render the decision report."""
    from ..obs.explain import render_explain, validate_explain_payload

    response = execute_map(
        request.map_request(),
        library=library,
        cache_dir=cache_dir,
        metrics=metrics,
        tracer=tracer,
    )
    payload = response.explain
    assert payload is not None  # explain=True on the map request
    summary = validate_explain_payload(payload)
    rendered = tuple(
        render_explain(
            payload,
            cone=request.cone,
            limit=request.limit,
            rejected_only=request.rejected_only,
        )
    )
    return ExplainResponse(
        design=response.design,
        library=response.library,
        summary=summary,
        rendered=rendered,
        payload=payload,
    )


def execute_verify(request: VerifyRequest) -> VerifyResponse:
    """Verify a mapped BLIF against its source design."""
    from ..io import read_blif
    from ..mapping.verify import verify_mapping

    source = request_netlist(request)
    try:
        mapped = read_blif(io.StringIO(request.mapped_blif))
    except Exception as exc:
        raise ApiError(f"bad mapped_blif: {exc}") from exc
    report = verify_mapping(source, mapped)
    return VerifyResponse(
        equivalent=bool(report.equivalent),
        hazard_safe=bool(report.hazard_safe),
        ok=bool(report.ok),
        outputs_checked=report.outputs_checked,
        transitions_checked=report.transitions_checked,
        violations=tuple(report.violations),
    )


def execute_certify(
    request: CertifyRequest,
    *,
    cache_dir: anncache.CacheDir = None,
    metrics=None,
    tracer=None,
) -> CertifyResponse:
    """Independently certify a mapped BLIF against its source design.

    Resolution follows :func:`execute_verify` exactly (same catalog /
    inline-network / BLIF path); the check itself runs in
    :mod:`repro.conformance.certifier`, which shares no code with the
    mapper's matching/covering machinery.
    """
    from ..conformance.certifier import certify_mapping

    source = request_netlist(request)
    try:
        mapped = read_blif_text(request.mapped_blif)
    except Exception as exc:
        raise ApiError(f"bad mapped_blif: {exc}") from exc
    library = None
    if request.library is not None:
        from ..library.standard import ALL_LIBRARIES

        if request.library not in ALL_LIBRARIES:
            raise ApiError(f"unknown library {request.library!r}")
        library = shared_library(request.library, cache_dir)
    certificate = certify_mapping(
        source,
        mapped,
        library,
        exhaustive_limit=request.exhaustive_limit,
        samples=request.samples,
        seed=request.seed,
        metrics=metrics,
        tracer=tracer,
    )
    return CertifyResponse(
        verdict=certificate.verdict,
        certified=certificate.certified,
        equivalent=certificate.equivalent,
        hazard_safe=certificate.hazard_safe,
        outputs_checked=certificate.outputs_checked,
        transitions_checked=certificate.transitions_checked,
        replays=certificate.replays,
        evidence_digest=certificate.evidence_digest,
        violations=tuple(certificate.violations),
        counterexamples=tuple(
            c.to_dict() for c in certificate.counterexamples
        ),
        certificate=certificate.to_dict(),
    )


def read_blif_text(text: str) -> Netlist:
    """Parse BLIF text into a netlist (the inverse of ``netlist_blif``)."""
    from ..io import read_blif

    return read_blif(io.StringIO(text))


def execute_batch(
    request: BatchRequest,
    *,
    config=None,
    cache_dir: anncache.CacheDir = None,
    metrics=None,
    tracer=None,
) -> BatchResponse:
    """Run a batch request through the fault-tolerant engine.

    ``config`` (a :class:`~repro.batch.engine.BatchConfig`) carries the
    deployment knobs — backend, pool width, retries, journal — that are
    not part of the request contract; when omitted a serial,
    journal-less run is used.
    """
    from ..batch.engine import BatchConfig, run_batch

    from ..burstmode.benchmarks import CATALOG
    from ..library.standard import ALL_LIBRARIES

    unknown = sorted(set(request.designs) - set(CATALOG))
    if unknown:
        raise ApiError(f"unknown catalog benchmark(s): {', '.join(unknown)}")
    bad_libs = sorted(set(request.libraries) - set(ALL_LIBRARIES))
    if bad_libs:
        raise ApiError(f"unknown librar{'y' if len(bad_libs) == 1 else 'ies'}: "
                       f"{', '.join(bad_libs)}")
    if config is None:
        config = BatchConfig(cache_dir=cache_dir, metrics=metrics,
                             tracer=tracer)
    if request.deadline_seconds is not None and config.deadline is None:
        config = replace(config, deadline=request.deadline_seconds)
    if request.result_cache and not config.result_cache:
        config = replace(config, result_cache=True)
    report = run_batch(request.to_jobs(), config)
    results = []
    for record in report.results:
        slim = {
            key: value
            for key, value in record.items()
            if key not in ("blif", "explain") or request.include_blif
        }
        results.append(slim)
    return BatchResponse(
        results=tuple(results),
        counts=report.counts(),
        elapsed=round(report.elapsed, 4),
        backend=report.backend,
        workers=report.workers,
    )


__all__ = [
    "FALLBACK_DEPTH",
    "clear_library_cache",
    "loaded_libraries",
    "execute_batch",
    "execute_certify",
    "execute_explain",
    "execute_map",
    "execute_verify",
    "netlist_blif",
    "read_blif_text",
    "request_netlist",
    "run_map",
    "shared_library",
    "text_digest",
]
