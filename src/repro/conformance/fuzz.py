"""Seeded fuzzing of the map→certify pipeline, with a deterministic shrinker.

The harness generates small random equation networks, maps them through
the real pipeline, and runs the independent certifier on the result:

* in the default mode every case must certify — a rejection is a mapper
  (or certifier) bug and the case is shrunk to a minimal reproducer;
* in ``hazardize`` mode the mapped netlist is deliberately broken with
  :func:`repro.testing.faults.seed_hazard` first and every case must be
  *rejected* — an acceptance is a certifier blind spot.

Determinism is the contract everywhere: the same ``seed`` produces the
same case, the same mapped netlist, the same certificate digests, and —
because the shrinker explores candidates in a fixed order and accepts
only strictly smaller still-failing ones — the same minimal reproducer.
Reproducers are written to the committed corpus
(``tests/data/corpus/*.json``, schema ``repro-corpus/v1``) and replayed
as parametrized tier-1 tests (``pytest -m corpus``).

This module drives the mapper, so unlike
:mod:`repro.conformance.certifier` it may import the mapping layer;
the certifier itself stays independent.
"""

from __future__ import annotations

import json
import random
import time
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Callable, Iterable, Optional, Union

from ..boolean.expr import And, Expr, Lit, Not, Or, parse
from ..library import anncache
from ..network.netlist import Netlist
from ..testing.faults import HazardSeed, seed_hazard
from .certifier import Certificate, certify_mapping

CORPUS_SCHEMA = "repro-corpus/v1"

#: Variable pool for generated networks (supports stay small enough for
#: the certifier's exhaustive path).
_VARS = ("a", "b", "c", "d")


@dataclass(frozen=True)
class FuzzCase:
    """One reproducible fuzz input: a spec network plus run knobs."""

    name: str
    seed: int
    equations: dict
    library: str = "CMOS3"
    max_depth: int = 3
    hazardize: bool = False
    expect: str = "certified"
    description: str = ""
    mapped_blif: Optional[str] = None

    def source(self) -> Netlist:
        return Netlist.from_equations(dict(self.equations), name=self.name)

    def size(self) -> int:
        """Shrinker metric: strictly decreasing ⇒ guaranteed fixpoint."""
        total = 8 * len(self.equations)
        for text in self.equations.values():
            expr = parse(text)
            total += expr.num_literals() + expr.depth()
        return total

    def to_dict(self) -> dict:
        payload = {
            "schema": CORPUS_SCHEMA,
            "name": self.name,
            "seed": self.seed,
            "equations": dict(self.equations),
            "library": self.library,
            "max_depth": self.max_depth,
            "hazardize": self.hazardize,
            "expect": self.expect,
            "description": self.description,
        }
        if self.mapped_blif is not None:
            payload["mapped_blif"] = self.mapped_blif
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "FuzzCase":
        if payload.get("schema") != CORPUS_SCHEMA:
            raise ValueError(
                f"corpus entry schema {payload.get('schema')!r} is not "
                f"{CORPUS_SCHEMA!r}"
            )
        return cls(
            name=str(payload["name"]),
            seed=int(payload["seed"]),
            equations=dict(payload["equations"]),
            library=str(payload.get("library", "CMOS3")),
            max_depth=int(payload.get("max_depth", 3)),
            hazardize=bool(payload.get("hazardize", False)),
            expect=str(payload.get("expect", "certified")),
            description=str(payload.get("description", "")),
            mapped_blif=payload.get("mapped_blif"),
        )


@dataclass
class CaseOutcome:
    """What one fuzz case produced end to end."""

    case: FuzzCase
    certificate: Certificate
    mapped: Netlist
    seeded: Optional[HazardSeed] = None

    @property
    def expected_verdict(self) -> str:
        if self.case.hazardize and self.seeded is None:
            # Nothing was seedable: the clean mapping must certify.
            return "certified"
        return self.case.expect

    @property
    def ok(self) -> bool:
        return self.certificate.verdict == self.expected_verdict


@dataclass
class FuzzReport:
    """Aggregate of one :func:`fuzz` run."""

    iterations: int
    seed: int
    hazardize: bool
    failures: list = field(default_factory=list)
    seeded: int = 0
    certified: int = 0
    rejected: int = 0
    elapsed: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.failures


# ----------------------------------------------------------------------
# Case generation
# ----------------------------------------------------------------------


def _random_expr(rng: random.Random, names: list, depth: int) -> Expr:
    if depth <= 0 or rng.random() < 0.3:
        return Lit(rng.choice(names), rng.random() < 0.7)
    choice = rng.random()
    if choice < 0.45:
        terms = tuple(
            _random_expr(rng, names, depth - 1)
            for _ in range(rng.randint(2, 3))
        )
        return Or(terms)
    if choice < 0.9:
        terms = tuple(
            _random_expr(rng, names, depth - 1)
            for _ in range(rng.randint(2, 3))
        )
        return And(terms)
    return Not(_random_expr(rng, names, depth - 1))


def random_case(
    seed: int,
    *,
    library: str = "CMOS3",
    max_depth: int = 3,
    hazardize: bool = False,
) -> FuzzCase:
    """The deterministic fuzz case of one seed."""
    rng = random.Random(f"repro-fuzz:{seed}")
    names = list(_VARS[: rng.randint(2, len(_VARS))])
    n_outputs = rng.randint(1, 3)
    equations = {}
    for index in range(n_outputs):
        expr = _random_expr(rng, names, rng.randint(1, 3))
        equations[f"f{index}"] = expr.to_string()
    return FuzzCase(
        name=f"fuzz-{seed}",
        seed=seed,
        equations=equations,
        library=library,
        max_depth=max_depth,
        hazardize=hazardize,
        expect="rejected" if hazardize else "certified",
    )


# ----------------------------------------------------------------------
# Execution
# ----------------------------------------------------------------------


def run_case(
    case: FuzzCase,
    *,
    cache_dir: anncache.CacheDir = anncache.DISABLED,
    metrics=None,
    tracer=None,
) -> CaseOutcome:
    """Map (or load) the case's netlist and certify it.

    Hermetic by default: the annotation disk cache is disabled, while
    the process-wide warm library cache keeps repeated iterations fast.
    """
    import io as _io

    from ..api.facade import shared_library
    from ..mapping.mapper import MappingOptions, map_network

    source = case.source()
    library = shared_library(case.library, cache_dir)
    if case.mapped_blif is not None:
        from ..io import read_blif

        mapped = read_blif(_io.StringIO(case.mapped_blif))
    else:
        options = MappingOptions(
            max_depth=case.max_depth, annotation_cache_dir=cache_dir
        )
        mapped = map_network(source, library, options).mapped
    seeded = None
    if case.hazardize:
        seeded = seed_hazard(mapped, reference=source, seed=case.seed)
        if seeded is not None:
            mapped = seeded.netlist
    certificate = certify_mapping(
        source,
        mapped,
        library,
        seed=case.seed,
        metrics=metrics,
        tracer=tracer,
    )
    return CaseOutcome(
        case=case, certificate=certificate, mapped=mapped, seeded=seeded
    )


def fuzz(
    iterations: int,
    *,
    seed: int = 0,
    library: str = "CMOS3",
    max_depth: int = 3,
    hazardize: bool = False,
    cache_dir: anncache.CacheDir = anncache.DISABLED,
    metrics=None,
    log: Optional[Callable[[str], None]] = None,
) -> FuzzReport:
    """Run ``iterations`` seeded cases; failures come back shrunk."""
    report = FuzzReport(
        iterations=iterations, seed=seed, hazardize=hazardize
    )
    started = time.perf_counter()
    for index in range(iterations):
        case = random_case(
            seed + index,
            library=library,
            max_depth=max_depth,
            hazardize=hazardize,
        )
        outcome = run_case(case, cache_dir=cache_dir, metrics=metrics)
        if outcome.seeded is not None:
            report.seeded += 1
        if outcome.certificate.certified:
            report.certified += 1
        else:
            report.rejected += 1
        if not outcome.ok:
            if log is not None:
                log(
                    f"case {case.name}: expected {outcome.expected_verdict}, "
                    f"got {outcome.certificate.verdict} — shrinking"
                )
            minimal = shrink(
                case, _expectation_failure(cache_dir), cache_dir=cache_dir
            )
            report.failures.append((minimal, outcome.certificate))
    report.elapsed = time.perf_counter() - started
    return report


def _expectation_failure(
    cache_dir: anncache.CacheDir,
) -> Callable[[FuzzCase], bool]:
    def failing(case: FuzzCase) -> bool:
        try:
            return not run_case(case, cache_dir=cache_dir).ok
        except Exception:
            # A case the pipeline cannot even process is not a smaller
            # reproducer of the observed verdict mismatch.
            return False

    return failing


# ----------------------------------------------------------------------
# Shrinking
# ----------------------------------------------------------------------


def _hoist_candidates(expr: Expr) -> Iterable[Expr]:
    """Strictly smaller rewrites of the root, in deterministic order."""
    if isinstance(expr, Not):
        yield expr.child
        for child in _hoist_candidates(expr.child):
            yield Not(child)
        return
    if isinstance(expr, (And, Or)):
        for term in expr.terms:
            yield term
        if len(expr.terms) > 2:
            for drop in range(len(expr.terms)):
                kept = tuple(
                    t for i, t in enumerate(expr.terms) if i != drop
                )
                yield type(expr)(kept)
        for index, term in enumerate(expr.terms):
            for candidate in _hoist_candidates(term):
                terms = list(expr.terms)
                terms[index] = candidate
                yield type(expr)(tuple(terms))


def shrink(
    case: FuzzCase,
    failing: Callable[[FuzzCase], bool],
    *,
    cache_dir: anncache.CacheDir = anncache.DISABLED,
    max_rounds: int = 40,
) -> FuzzCase:
    """Minimize a failing case while ``failing`` stays true.

    Deterministic greedy descent: drop whole outputs first, then hoist
    subexpressions (replace an operator by one of its operands, or drop
    one operand of a wide operator).  Only strictly smaller candidates
    are accepted, so the loop terminates; candidate order is fixed, so
    the same seed always shrinks to the same minimal reproducer.
    """
    if not failing(case):
        return case
    current = case
    for _ in range(max_rounds):
        improved = False
        # Pass 1: drop outputs.
        if len(current.equations) > 1:
            for name in sorted(current.equations):
                equations = {
                    k: v for k, v in current.equations.items() if k != name
                }
                candidate = replace(current, equations=equations)
                if failing(candidate):
                    current = candidate
                    improved = True
                    break
            if improved:
                continue
        # Pass 2: hoist subexpressions, first improvement wins.
        for name in sorted(current.equations):
            expr = parse(current.equations[name])
            for rewrite in _hoist_candidates(expr):
                equations = dict(current.equations)
                equations[name] = rewrite.to_string()
                candidate = replace(current, equations=equations)
                if candidate.size() >= current.size():
                    continue
                if failing(candidate):
                    current = candidate
                    improved = True
                    break
            if improved:
                break
        if not improved:
            break
    return current


# ----------------------------------------------------------------------
# The committed corpus
# ----------------------------------------------------------------------


def write_corpus_entry(path: Union[str, Path], case: FuzzCase) -> Path:
    from ..obs.export import _atomic_write_text

    return _atomic_write_text(
        Path(path), json.dumps(case.to_dict(), indent=2, sort_keys=True) + "\n"
    )


def load_corpus_entry(path: Union[str, Path]) -> FuzzCase:
    with open(path) as handle:
        return FuzzCase.from_dict(json.load(handle))


def corpus_entries(directory: Union[str, Path]) -> list[Path]:
    """The committed corpus files, in stable (sorted) order."""
    return sorted(Path(directory).glob("*.json"))


def replay_corpus_entry(
    entry: Union[str, Path, FuzzCase],
    *,
    cache_dir: anncache.CacheDir = anncache.DISABLED,
) -> CaseOutcome:
    """Re-run one corpus reproducer; ``outcome.ok`` is the regression gate."""
    case = (
        entry
        if isinstance(entry, FuzzCase)
        else load_corpus_entry(entry)
    )
    return run_case(case, cache_dir=cache_dir)


__all__ = [
    "CORPUS_SCHEMA",
    "CaseOutcome",
    "FuzzCase",
    "FuzzReport",
    "corpus_entries",
    "fuzz",
    "load_corpus_entry",
    "random_case",
    "replay_corpus_entry",
    "run_case",
    "shrink",
    "write_corpus_entry",
]
