"""Independent conformance checking for mapped networks.

``repro.conformance`` is the eval gate of the mapping stack: a checker
that shares *no code* with the mapper's matching/covering/hazard-cache
machinery (see docs/conformance.md for the trust model) and proves, for
any mapped netlist, the paper's two contracts — functional equivalence
and Theorem 3.2 hazard containment — emitting a version-stamped
``repro-cert/v1`` certificate with per-transition evidence digests.

* :mod:`repro.conformance.certifier` — the independent checker;
* :mod:`repro.conformance.fuzz` — the seeded fuzz harness + shrinker
  feeding the committed regression corpus (``tests/data/corpus/``).
"""

from .certifier import (
    CERT_SCHEMA,
    Certificate,
    Counterexample,
    OutputEvidence,
    certify_mapping,
)
from .fuzz import (
    CORPUS_SCHEMA,
    FuzzCase,
    FuzzReport,
    corpus_entries,
    fuzz,
    load_corpus_entry,
    random_case,
    replay_corpus_entry,
    run_case,
    shrink,
    write_corpus_entry,
)

__all__ = [
    "CERT_SCHEMA",
    "CORPUS_SCHEMA",
    "Certificate",
    "Counterexample",
    "FuzzCase",
    "FuzzReport",
    "OutputEvidence",
    "certify_mapping",
    "corpus_entries",
    "fuzz",
    "load_corpus_entry",
    "random_case",
    "replay_corpus_entry",
    "run_case",
    "shrink",
    "write_corpus_entry",
]
