"""The independent mapping certifier (``repro-cert/v1``).

Given a source network, a mapped netlist, and (optionally) the cell
library, :func:`certify_mapping` re-proves the two contracts the mapper
claims — functional equivalence and Theorem 3.2 hazard containment —
using only ground-truth machinery:

* **equivalence** is established twice, by independent methods: ROBDD
  comparison (:mod:`repro.boolean.bdd`) and, when the output's support
  fits, a dense truth table (:mod:`repro.boolean.truthtable`).  The two
  verdicts must agree; a disagreement is itself a rejection.
* **hazard containment** is checked per output over the output's
  *support* (transitions on non-support inputs cannot glitch it): the
  collapsed path-labelled structures of both networks are classified
  with the exhaustive event-lattice oracle
  (:func:`repro.hazards.oracle.classify_transition`) — every ordered
  transition pair when the support is small, a deterministic seeded
  sample otherwise.  Any transition where the mapped output has a logic
  hazard the source lacks is a violation.
* **evidence** — every violation ships as a
  :class:`~repro.hazards.witness.HazardWitness` replayed on the
  event-driven simulator (:func:`repro.hazards.witness.replay_witness`),
  so a rejection is a concrete, re-runnable glitch, not an assertion.
  Certified runs replay a bounded number of shared (allowed) hazards the
  same way, one per section-4 record kind where possible.

Trust model (enforced by ``tests/conformance/test_certifier.py``): this
module imports nothing from ``mapping/cover.py``, ``mapping/match.py``,
``mapping/verify.py``, or ``hazards/cache.py`` — the code that decides
what the mapper emits never decides whether the emission is accepted.

Every run emits a :class:`Certificate` whose ``to_dict`` payload is
stamped ``schema: repro-cert/v1`` and carries per-output SHA-256
evidence digests over the canonical per-transition verdict lines, so
two certifications of the same artifact are byte-comparable.
"""

from __future__ import annotations

import hashlib
import random
import time
from dataclasses import dataclass, field
from typing import Optional

from ..boolean import truthtable as tt
from ..boolean.bdd import BddManager
from ..boolean.cube import popcount
from ..boolean.paths import LabeledSop, label_expression
from ..hazards.multilevel import MAX_EVENTS
from ..hazards.oracle import (
    TransitionKind,
    TransitionVerdict,
    all_transitions,
    classify_transition,
)
from ..hazards.witness import (
    ALL_KINDS,
    KIND_MIC,
    KIND_SIC,
    KIND_STATIC0,
    KIND_STATIC1,
    HazardWitness,
    replay_witness,
)
from ..network.netlist import Netlist
from ..obs.export import CERT_SCHEMA
from ..obs.tracer import NULL_TRACER

#: Exhaustive-enumeration ceiling: outputs whose support has at most
#: this many variables get every ordered transition pair classified
#: (``4^n`` pairs; at 6 that is 4032 oracle calls per implementation).
#: Larger supports fall back to the deterministic seeded sample.
DEFAULT_EXHAUSTIVE_LIMIT = 6

#: Seeded sample size per large-support output.
DEFAULT_SAMPLES = 150

#: Shared (allowed) hazards replayed on the simulator per output as
#: positive evidence that the oracle's verdicts are physical.
DEFAULT_REPLAY_BUDGET = 4


@dataclass(frozen=True)
class Counterexample:
    """One replayed refutation (or piece of shared-hazard evidence).

    ``witness`` is an input burst over ``support`` (the output's
    variable ordering); ``replay`` summarizes the event-simulator run
    that confirmed the glitch.  ``source_hazard`` distinguishes a
    violation (the source transition was clean — Theorem 3.2 broken)
    from allowed-hazard evidence attached to certified outputs.
    """

    output: str
    support: tuple[str, ...]
    witness: dict
    replay: dict
    source_hazard: bool

    def describe(self) -> str:
        w = HazardWitness.from_dict(self.witness)
        role = "shared hazard" if self.source_hazard else "NEW hazard"
        glitch = "glitches" if self.replay.get("glitched") else "no glitch"
        return (
            f"output {self.output}: {role} {w.kind} on "
            f"{w.transition_string()} — replay {glitch} "
            f"({self.replay.get('changes')} changes, "
            f"expected {self.replay.get('expected')})"
        )

    def to_dict(self) -> dict:
        return {
            "output": self.output,
            "support": list(self.support),
            "witness": dict(self.witness),
            "replay": dict(self.replay),
            "source_hazard": self.source_hazard,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "Counterexample":
        return cls(
            output=str(payload["output"]),
            support=tuple(payload["support"]),
            witness=dict(payload["witness"]),
            replay=dict(payload["replay"]),
            source_hazard=bool(payload["source_hazard"]),
        )


@dataclass
class OutputEvidence:
    """Per-output record: what was checked, how, and its digest."""

    output: str
    support: tuple[str, ...]
    method: str  # "exhaustive" | "sampled"
    equivalent_bdd: bool = True
    equivalent_table: Optional[bool] = None
    transitions: int = 0
    mapped_hazards: int = 0
    shared_hazards: int = 0
    new_hazards: int = 0
    kind_counts: dict = field(default_factory=dict)
    replays: int = 0
    digest: str = ""

    def to_dict(self) -> dict:
        return {
            "output": self.output,
            "support": list(self.support),
            "method": self.method,
            "equivalent_bdd": self.equivalent_bdd,
            "equivalent_table": self.equivalent_table,
            "transitions": self.transitions,
            "mapped_hazards": self.mapped_hazards,
            "shared_hazards": self.shared_hazards,
            "new_hazards": self.new_hazards,
            "kind_counts": dict(self.kind_counts),
            "replays": self.replays,
            "digest": self.digest,
        }


@dataclass
class Certificate:
    """The independently-checked verdict on one mapped artifact."""

    design: str
    library: Optional[str]
    verdict: str  # "certified" | "rejected"
    equivalent: bool
    hazard_safe: bool
    interface_ok: bool
    cells_ok: bool
    outputs: list[OutputEvidence] = field(default_factory=list)
    counterexamples: list[Counterexample] = field(default_factory=list)
    violations: list[str] = field(default_factory=list)
    outputs_checked: int = 0
    transitions_checked: int = 0
    replays: int = 0
    cells_checked: int = 0
    evidence_digest: str = ""
    exhaustive_limit: int = DEFAULT_EXHAUSTIVE_LIMIT
    samples: int = DEFAULT_SAMPLES
    seed: int = 0
    elapsed: float = 0.0

    @property
    def certified(self) -> bool:
        return self.verdict == "certified"

    def kind_counts(self) -> dict:
        """Mapped logic hazards per section-4 kind, over all outputs."""
        totals = {kind: 0 for kind in ALL_KINDS}
        for evidence in self.outputs:
            for kind, count in evidence.kind_counts.items():
                totals[kind] = totals.get(kind, 0) + count
        return totals

    def to_dict(self) -> dict:
        return {
            "schema": CERT_SCHEMA,
            "design": self.design,
            "library": self.library,
            "verdict": self.verdict,
            "equivalent": self.equivalent,
            "hazard_safe": self.hazard_safe,
            "interface_ok": self.interface_ok,
            "cells_ok": self.cells_ok,
            "outputs": [evidence.to_dict() for evidence in self.outputs],
            "counterexamples": [c.to_dict() for c in self.counterexamples],
            "violations": list(self.violations),
            "outputs_checked": self.outputs_checked,
            "transitions_checked": self.transitions_checked,
            "replays": self.replays,
            "cells_checked": self.cells_checked,
            "kind_counts": self.kind_counts(),
            "evidence_digest": self.evidence_digest,
            "exhaustive_limit": self.exhaustive_limit,
            "samples": self.samples,
            "seed": self.seed,
            "elapsed": round(self.elapsed, 4),
        }


# ----------------------------------------------------------------------
# Witness construction and replay
# ----------------------------------------------------------------------


def _classify_safe(
    lsop: LabeledSop, start: int, end: int
) -> Optional[TransitionVerdict]:
    """Oracle classification, or ``None`` past the event-lattice limit."""
    try:
        return classify_transition(lsop, start, end)
    except ValueError:
        return None


def _verdict_kind(verdict: TransitionVerdict) -> str:
    if verdict.kind is TransitionKind.STATIC_1:
        return KIND_STATIC1
    if verdict.kind is TransitionKind.STATIC_0:
        return KIND_STATIC0
    if popcount(verdict.start ^ verdict.end) == 1:
        return KIND_SIC
    return KIND_MIC


def _verdict_witness(
    verdict: TransitionVerdict, names: tuple[str, ...], detail: str
) -> HazardWitness:
    return HazardWitness(
        kind=_verdict_kind(verdict),
        start=verdict.start,
        end=verdict.end,
        nvars=len(names),
        names=names,
        detail=detail,
    )


def _replay(lsop: LabeledSop, witness: HazardWitness, output: str) -> dict:
    """Replay a witness on the event simulator; summarize the run."""
    try:
        result = replay_witness(lsop, witness, output=output)
    except ValueError as exc:  # event lattice too large to schedule
        return {"glitched": None, "skipped": str(exc)}
    return {
        "glitched": bool(result.glitched),
        "changes": int(result.changes),
        "expected": int(result.expected),
        "schedule": [f"{name}:{path}" for name, path in result.schedule],
    }


# ----------------------------------------------------------------------
# Transition selection for large supports
# ----------------------------------------------------------------------


def _path_counts(lsop: LabeledSop) -> dict[int, int]:
    """Distinct physical paths per variable index of a labelled SOP."""
    paths: dict[int, set] = {}
    for product in lsop.products:
        for lit in product.literals:
            paths.setdefault(lsop.index[lit.name], set()).add(
                (lit.name, lit.path)
            )
    return {var: len(keys) for var, keys in paths.items()}


def _sampled_transitions(
    nvars: int,
    samples: int,
    rng: random.Random,
    counts: dict[int, int],
):
    """Deterministic transition sample that fits the event lattice.

    Yields ``(start, end)`` pairs: roughly half single-input-change
    (where section 4's s.i.c. records live), the rest multi-input
    bursts whose changing variables are trimmed until the total number
    of changing path literals in *both* implementations stays within
    :data:`~repro.hazards.multilevel.MAX_EVENTS`.
    """
    for index in range(samples):
        start = rng.getrandbits(nvars)
        if index % 2 == 0:
            var = rng.randrange(nvars)
            yield start, start ^ (1 << var)
            continue
        width = rng.randint(2, max(2, nvars // 2))
        burst = rng.sample(range(nvars), min(width, nvars))
        kept: list[int] = []
        events = 0
        for var in burst:
            cost = counts.get(var, 0)
            if kept and events + cost > MAX_EVENTS:
                continue
            kept.append(var)
            events += cost
        end = start
        for var in kept:
            end ^= 1 << var
        if end != start:
            yield start, end


# ----------------------------------------------------------------------
# The certifier
# ----------------------------------------------------------------------


def _check_interface(
    source: Netlist, mapped: Netlist, certificate: Certificate
) -> bool:
    ok = True
    if set(source.inputs) != set(mapped.inputs):
        certificate.violations.append(
            "interface: input sets differ "
            f"(source {sorted(source.inputs)}, mapped {sorted(mapped.inputs)})"
        )
        ok = False
    if set(source.outputs) != set(mapped.outputs):
        certificate.violations.append(
            "interface: output sets differ "
            f"(source {sorted(source.outputs)}, mapped {sorted(mapped.outputs)})"
        )
        ok = False
    certificate.interface_ok = ok
    return ok


def _check_cells(mapped: Netlist, library, certificate: Certificate) -> None:
    """Check every cell-bound gate realizes its library cell's function.

    Gates without a cell binding (BLIF round-trips drop bindings, and
    the source network has none) are skipped: the certifier checks the
    *claimed* bindings, equivalence and hazards cover the rest.
    """
    for node in mapped.gates():
        if node.cell is None:
            continue
        certificate.cells_checked += 1
        try:
            cell = library.cell(node.cell.name)
        except KeyError:
            certificate.cells_ok = False
            certificate.violations.append(
                f"cell: gate {node.name} claims unknown cell "
                f"{node.cell.name!r}"
            )
            continue
        if len(node.fanins) != cell.num_pins:
            certificate.cells_ok = False
            certificate.violations.append(
                f"cell: gate {node.name} binds {len(node.fanins)} nets to "
                f"{cell.num_pins}-pin cell {cell.name}"
            )
            continue
        fanins = list(node.fanins)
        func = node.func

        def gate_table(point: int) -> bool:
            env = {name: bool(point >> i & 1) for i, name in enumerate(fanins)}
            return func.evaluate(env)

        if tt.from_callable(gate_table, len(fanins)) != cell.truth_table():
            certificate.cells_ok = False
            certificate.violations.append(
                f"cell: gate {node.name} does not realize cell {cell.name}"
            )


def certify_mapping(
    source: Netlist,
    mapped: Netlist,
    library=None,
    *,
    exhaustive_limit: int = DEFAULT_EXHAUSTIVE_LIMIT,
    samples: int = DEFAULT_SAMPLES,
    seed: int = 0,
    replay_budget: int = DEFAULT_REPLAY_BUDGET,
    metrics=None,
    tracer=None,
) -> Certificate:
    """Independently certify a mapped netlist against its source.

    Returns a :class:`Certificate`; ``certificate.certified`` is True
    iff every check passed.  ``library`` (a
    :class:`~repro.library.library.Library` or ``None``) enables the
    cell-binding check; equivalence and hazard containment never need
    it.  Determinism: the same inputs and ``seed`` produce the same
    certificate, including the evidence digests.
    """
    tracer = tracer or NULL_TRACER
    started = time.perf_counter()
    certificate = Certificate(
        design=source.name,
        library=library.name if library is not None else None,
        verdict="certified",
        equivalent=True,
        hazard_safe=True,
        interface_ok=True,
        cells_ok=True,
        exhaustive_limit=exhaustive_limit,
        samples=samples,
        seed=seed,
    )
    overall = hashlib.sha256()
    with tracer.span(
        "certify", design=source.name, library=certificate.library
    ):
        if _check_interface(source, mapped, certificate):
            if library is not None:
                _check_cells(mapped, library, certificate)
            for output in source.outputs:
                with tracer.span("certify.output", output=output):
                    evidence = _certify_output(
                        source,
                        mapped,
                        output,
                        certificate,
                        exhaustive_limit=exhaustive_limit,
                        samples=samples,
                        seed=seed,
                        replay_budget=replay_budget,
                    )
                certificate.outputs.append(evidence)
                certificate.outputs_checked += 1
                certificate.transitions_checked += evidence.transitions
                certificate.replays += evidence.replays
                overall.update(
                    f"{evidence.output} {evidence.digest}\n".encode()
                )
    if certificate.violations:
        certificate.verdict = "rejected"
    certificate.evidence_digest = overall.hexdigest()
    certificate.elapsed = time.perf_counter() - started
    from ..obs import log as obs_log

    if obs_log.enabled():
        obs_log.event(
            "repro.conformance",
            "certify.verdict",
            level="info" if certificate.certified else "warning",
            trace_id=getattr(tracer, "trace_id", None),
            design=certificate.design,
            library=certificate.library,
            verdict=certificate.verdict,
            violations=len(certificate.violations),
            outputs_checked=certificate.outputs_checked,
            transitions_checked=certificate.transitions_checked,
            elapsed_seconds=round(certificate.elapsed, 4),
        )
    if metrics is not None:
        metrics.counter("conformance.certificates").inc()
        if not certificate.certified:
            metrics.counter("conformance.rejections").inc()
        metrics.counter("conformance.outputs_checked").inc(
            certificate.outputs_checked
        )
        metrics.counter("conformance.transitions_checked").inc(
            certificate.transitions_checked
        )
        metrics.counter("conformance.replays").inc(certificate.replays)
        metrics.histogram("conformance.certify_seconds").observe(
            certificate.elapsed
        )
    return certificate


def _certify_output(
    source: Netlist,
    mapped: Netlist,
    output: str,
    certificate: Certificate,
    *,
    exhaustive_limit: int,
    samples: int,
    seed: int,
    replay_budget: int,
) -> OutputEvidence:
    src_expr = source.collapse(output)
    map_expr = mapped.collapse(output)
    support = tuple(sorted(src_expr.support() | map_expr.support()))
    nvars = len(support)
    digest = hashlib.sha256()
    method = "exhaustive" if nvars <= exhaustive_limit else "sampled"
    evidence = OutputEvidence(output=output, support=support, method=method)
    evidence.kind_counts = {kind: 0 for kind in ALL_KINDS}

    # -- equivalence, twice -----------------------------------------
    if nvars == 0:
        equal_bdd = src_expr.evaluate({}) == map_expr.evaluate({})
        equal_table: Optional[bool] = equal_bdd
    else:
        manager = BddManager(nvars)
        equal_bdd = manager.from_expr(src_expr, support) == manager.from_expr(
            map_expr, support
        )
        equal_table = None
        if nvars <= tt.TT_MAX_VARS:
            src_table = tt.from_callable(
                lambda p: src_expr.evaluate(
                    {name: bool(p >> i & 1) for i, name in enumerate(support)}
                ),
                nvars,
            )
            map_table = tt.from_callable(
                lambda p: map_expr.evaluate(
                    {name: bool(p >> i & 1) for i, name in enumerate(support)}
                ),
                nvars,
            )
            equal_table = src_table == map_table
    evidence.equivalent_bdd = bool(equal_bdd)
    evidence.equivalent_table = equal_table
    digest.update(f"equiv bdd={int(equal_bdd)} tt={equal_table}\n".encode())
    if equal_table is not None and equal_table != equal_bdd:
        certificate.violations.append(
            f"output {output}: BDD and truth-table equivalence verdicts "
            "disagree (checker fault)"
        )
    if not equal_bdd or equal_table is False:
        certificate.equivalent = False
        point = _distinguishing_point(src_expr, map_expr, support)
        rendered = " ".join(
            f"{name}={point >> i & 1}" for i, name in enumerate(support)
        )
        certificate.violations.append(
            f"output {output}: functional mismatch at {rendered or 'const'}"
        )
        return evidence

    # -- hazard containment -----------------------------------------
    src_ls = label_expression(src_expr, support)
    map_ls = label_expression(map_expr, support)
    if method == "exhaustive":
        pairs = all_transitions(nvars)
    else:
        rng = random.Random(f"repro-cert:{seed}:{output}")
        counts = _path_counts(src_ls)
        for var, count in _path_counts(map_ls).items():
            counts[var] = counts.get(var, 0) + count
        pairs = _sampled_transitions(nvars, samples, rng, counts)

    shared: list[TransitionVerdict] = []
    for start, end in pairs:
        mapped_verdict = _classify_safe(map_ls, start, end)
        evidence.transitions += 1
        if mapped_verdict is None:
            # Changing path literals exceed the event lattice: record
            # the skip in the evidence stream instead of guessing.
            digest.update(
                f"{start:0{nvars}b}->{end:0{nvars}b} skipped\n".encode()
            )
            continue
        line = (
            f"{start:0{nvars}b}->{end:0{nvars}b} "
            f"{mapped_verdict.kind.value} "
            f"fh={int(mapped_verdict.function_hazard)} "
            f"lh={int(mapped_verdict.logic_hazard)}"
        )
        if mapped_verdict.logic_hazard:
            evidence.mapped_hazards += 1
            evidence.kind_counts[_verdict_kind(mapped_verdict)] += 1
            source_verdict = _classify_safe(src_ls, start, end)
            if source_verdict is None:
                # The source side is too wide for the lattice: the
                # violation cannot be proven, so the transition counts
                # as shared rather than as a rejection.
                line += " src=?"
                digest.update(line.encode())
                digest.update(b"\n")
                evidence.shared_hazards += 1
                continue
            line += f" src={int(source_verdict.logic_hazard)}"
            if source_verdict.logic_hazard:
                evidence.shared_hazards += 1
                shared.append(mapped_verdict)
            else:
                evidence.new_hazards += 1
                _record_new_hazard(
                    certificate, evidence, map_ls, mapped_verdict, output
                )
        digest.update(line.encode())
        digest.update(b"\n")

    # -- positive replay evidence for certified outputs -------------
    if evidence.new_hazards == 0:
        replayed_kinds: set[str] = set()
        for verdict in shared:
            if evidence.replays >= replay_budget:
                break
            kind = _verdict_kind(verdict)
            if kind in replayed_kinds:
                continue
            witness = _verdict_witness(verdict, support, "shared hazard")
            replay = _replay(map_ls, witness, output)
            if replay.get("glitched") is None:
                continue
            replayed_kinds.add(kind)
            evidence.replays += 1
            digest.update(
                f"replay {witness.kind} {witness.start}->{witness.end} "
                f"glitched={int(bool(replay['glitched']))}\n".encode()
            )
            if not replay["glitched"]:
                certificate.violations.append(
                    f"output {output}: oracle claims a {witness.kind} hazard "
                    f"on {witness.transition_string()} but the replay does "
                    "not glitch (checker fault)"
                )
            certificate.counterexamples.append(
                Counterexample(
                    output=output,
                    support=support,
                    witness=witness.to_dict(),
                    replay=replay,
                    source_hazard=True,
                )
            )
    evidence.digest = digest.hexdigest()
    return evidence


def _record_new_hazard(
    certificate: Certificate,
    evidence: OutputEvidence,
    map_ls: LabeledSop,
    verdict: TransitionVerdict,
    output: str,
) -> None:
    """A Theorem 3.2 violation: witness it, replay it, reject."""
    certificate.hazard_safe = False
    witness = _verdict_witness(
        verdict, evidence.support, "hazard absent from source"
    )
    replay = _replay(map_ls, witness, output)
    evidence.replays += 1 if replay.get("glitched") is not None else 0
    certificate.counterexamples.append(
        Counterexample(
            output=output,
            support=evidence.support,
            witness=witness.to_dict(),
            replay=replay,
            source_hazard=False,
        )
    )
    certificate.violations.append(
        f"output {output}: new {witness.kind} hazard on "
        f"{witness.transition_string()} (not in source)"
    )


def _distinguishing_point(src_expr, map_expr, support: tuple[str, ...]) -> int:
    """A minterm on which the two collapsed outputs disagree."""
    for point in range(1 << min(len(support), tt.TT_MAX_VARS)):
        env = {name: bool(point >> i & 1) for i, name in enumerate(support)}
        if src_expr.evaluate(env) != map_expr.evaluate(env):
            return point
    rng = random.Random(0)
    for _ in range(10000):  # pragma: no cover - >14-var mismatch search
        point = rng.getrandbits(len(support))
        env = {name: bool(point >> i & 1) for i, name in enumerate(support)}
        if src_expr.evaluate(env) != map_expr.evaluate(env):
            return point
    return 0  # pragma: no cover - BDDs disagreed, no point found


__all__ = [
    "CERT_SCHEMA",
    "Certificate",
    "Counterexample",
    "DEFAULT_EXHAUSTIVE_LIMIT",
    "DEFAULT_REPLAY_BUDGET",
    "DEFAULT_SAMPLES",
    "OutputEvidence",
    "certify_mapping",
]
