"""Seeded, deterministic fault injection at named pipeline sites.

The batch engine promises retry-with-backoff, deadline fallback, and
crash isolation; this module is how the test harness *proves* those
behaviours instead of asserting them.  A :class:`FaultPlan` names the
sites at which faults fire, what kind of fault each is, and on which
job/attempt it triggers — everything is keyed on the (job id, attempt
number) pair the engine passes to its workers, so a plan replays
identically across the ``serial``, ``threads``, and ``processes``
backends and across engine restarts.

Sites instrumented in the mapper (one ``fire()`` call each, a no-op
``is None`` check when no plan is installed):

* ``annotate.library`` — before library hazard annotation;
* ``cover.cone``       — before each cone's covering DP;
* ``netlist.build``    — before assembling the mapped netlist (for
  ``corrupt`` faults the batch worker additionally mutates the BLIF
  text *after* its digest was computed, modelling a torn result).

Fault kinds:

* ``raise``   — raise :class:`FaultInjected` (a *transient* error the
  engine retries with exponential backoff);
* ``hang``    — block for ``hang_seconds``; under a cooperative
  :class:`~repro.deadline.Deadline` the hang is cut short by
  :class:`~repro.deadline.DeadlineExceeded`, which is how deadline
  tests stay fast;
* ``corrupt`` — no-op at ``fire()``; :func:`corrupt` mutates a result
  payload so the engine's digest verification catches it;
* ``crash``   — ``os._exit`` the worker process (only meaningful on the
  process backend: the pool breaks and the engine must isolate the
  poison job without losing the others).

Plans are plain picklable dataclasses: the engine ships the plan to
process-pool workers inside each job payload, and the worker installs
it (scoped to that job and attempt) before mapping.
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass, field
from typing import Optional

from ..deadline import Deadline, checked_sleep

KINDS = ("raise", "hang", "corrupt", "crash")


class FaultInjected(RuntimeError):
    """The transient failure raised by ``raise``-kind faults.

    ``args`` holds exactly the constructor arguments so the exception
    survives the pickle round-trip out of a process-pool worker (a
    mismatched ``args``/``__init__`` pair would fail to unpickle and
    break the whole pool).
    """

    def __init__(self, site: str, message: str = "injected fault") -> None:
        super().__init__(site, message)
        self.site = site

    def __str__(self) -> str:
        return f"{self.args[1]} (site {self.args[0]!r})"


@dataclass(frozen=True)
class FaultSpec:
    """One fault: fire ``kind`` at ``site`` for matching (job, attempt).

    ``job`` is a substring match against the active job id (``None``
    matches every job).  The fault triggers on attempts ``after + 1``
    through ``after + times`` — so the default ``times=1`` models a
    transient fault that a single retry clears, while a large ``times``
    models a persistent failure that exhausts the retry budget.  Within
    one attempt a spec fires at most once even if the site is visited
    repeatedly (e.g. ``cover.cone`` fires per cone).
    """

    site: str
    kind: str = "raise"
    job: Optional[str] = None
    times: int = 1
    after: int = 0
    hang_seconds: float = 30.0
    message: str = "injected fault"

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; one of {KINDS}")
        if self.times < 1 or self.after < 0:
            raise ValueError("times must be >= 1 and after >= 0")

    def matches(self, site: str, job: str, attempt: int) -> bool:
        if site != self.site:
            return False
        if self.job is not None and self.job not in job:
            return False
        return self.after < attempt <= self.after + self.times


@dataclass(frozen=True)
class FaultPlan:
    """A reproducible set of faults (picklable, shippable to workers)."""

    faults: tuple[FaultSpec, ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        # Accept any iterable of specs but store a hashable tuple.
        object.__setattr__(self, "faults", tuple(self.faults))

    def for_site(self, site: str) -> tuple[FaultSpec, ...]:
        return tuple(f for f in self.faults if f.site == site)

    @staticmethod
    def parse(specs: list[str], **defaults) -> "FaultPlan":
        """Build a plan from ``KIND@SITE[#JOB][*TIMES]`` strings.

        The CLI's ``--inject`` option uses this compact form, e.g.
        ``raise@cover.cone#chu-ad-opt`` (one transient covering fault on
        any job whose id contains ``chu-ad-opt``).
        """
        faults = []
        for text in specs:
            head, _, times = text.partition("*")
            head, _, job = head.partition("#")
            kind, sep, site = head.partition("@")
            if not sep or not kind or not site:
                raise ValueError(
                    f"bad fault spec {text!r}; expected KIND@SITE[#JOB][*TIMES]"
                )
            faults.append(
                FaultSpec(
                    site=site,
                    kind=kind,
                    job=job or None,
                    times=int(times) if times else 1,
                    **defaults,
                )
            )
        return FaultPlan(faults=tuple(faults))


@dataclass
class _Runtime:
    """Installed plan, scoped to one (job, attempt)."""

    plan: FaultPlan
    job: str = ""
    attempt: int = 1
    fired: set = field(default_factory=set)


# Thread-local, not process-global: on the threads backend several jobs
# execute concurrently in one process and each worker thread installs
# its own (job, attempt)-scoped runtime — a shared global would let one
# job's install clobber another's mid-flight.  Serial and process
# workers run one job per thread, so they see the same semantics.
_STATE = threading.local()


def _active() -> Optional[_Runtime]:
    return getattr(_STATE, "runtime", None)


def install_plan(
    plan: Optional[FaultPlan], job: str = "", attempt: int = 1
) -> None:
    """Install ``plan`` for the given job/attempt (``None`` clears)."""
    _STATE.runtime = None if plan is None else _Runtime(plan, job, attempt)


def clear_plan() -> None:
    install_plan(None)


def active_plan() -> Optional[FaultPlan]:
    runtime = _active()
    return runtime.plan if runtime is not None else None


def fire(site: str, deadline: Optional[Deadline] = None) -> None:
    """Trigger any installed fault matching ``site`` for the active job.

    Near-zero cost when no plan is installed (one thread-local read);
    called from the mapper's instrumented sites.
    """
    runtime = _active()
    if runtime is None:
        return
    for index, spec in enumerate(runtime.plan.faults):
        if index in runtime.fired or spec.kind == "corrupt":
            continue
        if not spec.matches(site, runtime.job, runtime.attempt):
            continue
        runtime.fired.add(index)
        if spec.kind == "raise":
            raise FaultInjected(site, spec.message)
        if spec.kind == "hang":
            checked_sleep(spec.hang_seconds, deadline, site)
        elif spec.kind == "crash":  # pragma: no cover - kills the process
            os._exit(17)


@dataclass(frozen=True)
class HazardSeed:
    """Outcome of :func:`seed_hazard`: the hazardized netlist + target.

    ``start``/``end`` are minterms over ``support`` (bit ``i`` is
    ``support[i]``) of the static-1 transition the transform provably
    introduced at ``output``; conformance tests hand them straight to
    the certifier's witness replay.
    """

    netlist: object
    output: str
    var: str
    support: tuple[str, ...]
    start: int
    end: int
    kind: str = "static-1"

    def describe(self) -> str:
        return (
            f"seeded {self.kind} hazard at output {self.output} on "
            f"{self.var} toggle (minterms {self.start:#x}->{self.end:#x} "
            f"over {', '.join(self.support)})"
        )


def seed_hazard(netlist, reference=None, seed: int = 0):
    """Deterministically introduce a static-1 logic hazard in a copy.

    Rewrites one output cone as its Shannon expansion
    ``v*f(v=1) + v'*f(v=0)`` in two-level form: every product then
    carries a ``v`` literal, so a ``v`` toggle at a point where both
    cofactors hold momentarily uncovers the output — the classical
    static-1 logic hazard — while the function is untouched.  The
    target transition is chosen so it is function- and logic-hazard
    free in ``reference`` (the source network the artifact will be
    certified against; defaults to ``netlist`` itself), making the
    seeded hazard a guaranteed Theorem 3.2 violation.

    ``seed`` rotates the candidate search order, so different seeds
    hazardize different outputs/variables when several qualify.
    Returns a :class:`HazardSeed`, or ``None`` when no output admits a
    seedable hazard (e.g. purely AND-like cones with disjoint
    cofactors).  The input netlist is never mutated.
    """
    from ..boolean.cube import bit_indices
    from ..boolean.expr import And, Lit, Or
    from ..boolean.paths import label_expression
    from ..hazards.oracle import classify_transition

    outputs = list(netlist.outputs)
    if not outputs:
        return None
    rotation = seed % len(outputs)
    for output in outputs[rotation:] + outputs[:rotation]:
        expr = netlist.collapse(output)
        ref_expr = (
            reference.collapse(output) if reference is not None else expr
        )
        support = sorted(expr.support() | ref_expr.support())
        nvars = len(support)
        if not 2 <= nvars <= 10:
            continue
        ref_ls = label_expression(ref_expr, support)
        own_support = expr.support()
        cover = expr.to_cover(support)
        # The seeded v-toggle changes one path literal per Shannon
        # product; keep that within the event-lattice limit so the
        # certifier can classify (and replay) the planted transition.
        if 2 * len(cover.cubes) > 18:
            continue
        for iv, var in enumerate(support):
            if var not in own_support:
                continue
            bit = 1 << iv
            for point in range(1 << nvars):
                if point & bit:
                    continue
                env0 = {
                    name: bool(point >> i & 1)
                    for i, name in enumerate(support)
                }
                env1 = dict(env0, **{var: True})
                if not (expr.evaluate(env0) and expr.evaluate(env1)):
                    continue
                verdict = classify_transition(ref_ls, point | bit, point)
                if verdict.function_hazard or verdict.logic_hazard:
                    continue
                hazardized = _shannon_rewrite(
                    netlist, output, expr, support, iv, bit_indices,
                    And, Lit, Or,
                )
                return HazardSeed(
                    netlist=hazardized,
                    output=output,
                    var=var,
                    support=tuple(support),
                    start=point | bit,
                    end=point,
                )
    return None


def _shannon_rewrite(
    netlist, output, expr, support, iv, bit_indices, And, Lit, Or
):
    """Replace ``output``'s cone by the two-level Shannon expansion."""
    var = support[iv]
    cover = expr.to_cover(support)
    products = []
    for positive in (True, False):
        for cube in cover:
            if cube.used >> iv & 1 and bool(cube.phase >> iv & 1) != positive:
                continue
            literals = [Lit(var, positive)]
            for j in bit_indices(cube.used):
                if j == iv:
                    continue
                literals.append(Lit(support[j], bool(cube.phase >> j & 1)))
            products.append(
                literals[0] if len(literals) == 1 else And(tuple(literals))
            )
    func = products[0] if len(products) == 1 else Or(tuple(products))
    fanins = sorted(func.support())
    hazardized = netlist.copy(f"{netlist.name}.hazarded")
    gate = hazardized.fresh_name(f"{output}__hazarded")
    hazardized.add_gate(gate, func, fanins)
    hazardized.nodes[output].fanins = [gate]
    return hazardized


def corrupt(site: str, text: str) -> str:
    """Apply any matching ``corrupt`` fault to a result payload.

    Returns ``text`` unchanged when no corrupt fault matches; otherwise
    a deterministically mangled copy whose digest no longer matches the
    one computed from the clean payload.
    """
    runtime = _active()
    if runtime is None:
        return text
    for index, spec in enumerate(runtime.plan.faults):
        if spec.kind != "corrupt" or index in runtime.fired:
            continue
        if not spec.matches(site, runtime.job, runtime.attempt):
            continue
        runtime.fired.add(index)
        return text + f"\n# torn-by-fault seed={runtime.plan.seed}\n"
    return text
