"""Test-support machinery shipped with the package.

:mod:`repro.testing.faults` is the seeded fault-injection layer the
batch engine's robustness features are validated against; it lives in
the installed package (not the test tree) because worker *processes*
must be able to import and install a fault plan.
"""

from .faults import (  # noqa: F401
    FaultInjected,
    FaultPlan,
    FaultSpec,
    clear_plan,
    corrupt,
    fire,
    install_plan,
)

__all__ = [
    "FaultInjected",
    "FaultPlan",
    "FaultSpec",
    "clear_plan",
    "corrupt",
    "fire",
    "install_plan",
]
