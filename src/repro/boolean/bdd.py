"""A small reduced ordered BDD engine.

CERES — the synchronous mapper the paper modifies — matches library
cells with Boolean techniques built on binary decision diagrams
(Mailhot & De Micheli).  This module provides the ROBDD substrate used
for functional verification of mapped networks and for satisfiability
queries inside the hazard analyses.

Nodes are integers (indices into the manager's node table); terminals
are ``BddManager.zero`` and ``BddManager.one``.  The classic unique
table + ``ite`` memoization structure keeps everything canonical.
"""

from __future__ import annotations

from typing import Iterator, Optional, Sequence


class BddManager:
    """Shared-node ROBDD manager over variables ``0..nvars-1``."""

    def __init__(self, nvars: int) -> None:
        self.nvars = nvars
        # Node table: parallel arrays (var, low, high).  Terminals use a
        # sentinel variable index beyond every real variable.
        self._var: list[int] = [nvars, nvars]
        self._low: list[int] = [0, 1]
        self._high: list[int] = [0, 1]
        self.zero = 0
        self.one = 1
        self._unique: dict[tuple[int, int, int], int] = {}
        self._ite_cache: dict[tuple[int, int, int], int] = {}
        self._vars = [self._mk(i, self.zero, self.one) for i in range(nvars)]

    # ------------------------------------------------------------------
    # Node construction
    # ------------------------------------------------------------------
    def _mk(self, var: int, low: int, high: int) -> int:
        if low == high:
            return low
        key = (var, low, high)
        node = self._unique.get(key)
        if node is None:
            node = len(self._var)
            self._var.append(var)
            self._low.append(low)
            self._high.append(high)
            self._unique[key] = node
        return node

    def var(self, index: int) -> int:
        """BDD of the single variable ``index``."""
        return self._vars[index]

    def literal(self, index: int, positive: bool) -> int:
        node = self._vars[index]
        return node if positive else self.negate(node)

    def top_var(self, node: int) -> int:
        return self._var[node]

    def cofactors(self, node: int, var: int) -> tuple[int, int]:
        """(low, high) cofactors of ``node`` with respect to ``var``."""
        if self._var[node] == var:
            return self._low[node], self._high[node]
        return node, node

    # ------------------------------------------------------------------
    # Core operator
    # ------------------------------------------------------------------
    def ite(self, f: int, g: int, h: int) -> int:
        """If-then-else: ``f·g + f'·h`` — the universal BDD operator."""
        if f == self.one:
            return g
        if f == self.zero:
            return h
        if g == h:
            return g
        if g == self.one and h == self.zero:
            return f
        key = (f, g, h)
        cached = self._ite_cache.get(key)
        if cached is not None:
            return cached
        var = min(self._var[f], self._var[g], self._var[h])
        f0, f1 = self.cofactors(f, var)
        g0, g1 = self.cofactors(g, var)
        h0, h1 = self.cofactors(h, var)
        low = self.ite(f0, g0, h0)
        high = self.ite(f1, g1, h1)
        result = self._mk(var, low, high)
        self._ite_cache[key] = result
        return result

    # ------------------------------------------------------------------
    # Boolean connectives
    # ------------------------------------------------------------------
    def apply_and(self, f: int, g: int) -> int:
        return self.ite(f, g, self.zero)

    def apply_or(self, f: int, g: int) -> int:
        return self.ite(f, self.one, g)

    def apply_xor(self, f: int, g: int) -> int:
        return self.ite(f, self.negate(g), g)

    def negate(self, f: int) -> int:
        return self.ite(f, self.zero, self.one)

    def conjoin(self, nodes: Sequence[int]) -> int:
        result = self.one
        for node in nodes:
            result = self.apply_and(result, node)
        return result

    def disjoin(self, nodes: Sequence[int]) -> int:
        result = self.zero
        for node in nodes:
            result = self.apply_or(result, node)
        return result

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def restrict(self, f: int, var: int, value: bool) -> int:
        """Cofactor ``f`` by an assignment to one variable."""
        if self._var[f] > var:
            return f
        if self._var[f] == var:
            return self._high[f] if value else self._low[f]
        low = self.restrict(self._low[f], var, value)
        high = self.restrict(self._high[f], var, value)
        return self._mk(self._var[f], low, high)

    def evaluate(self, f: int, point: int) -> bool:
        node = f
        while node > 1:
            var = self._var[node]
            node = self._high[node] if point >> var & 1 else self._low[node]
        return node == self.one

    def is_tautology(self, f: int) -> bool:
        return f == self.one

    def is_satisfiable(self, f: int) -> bool:
        return f != self.zero

    def any_sat(self, f: int) -> Optional[int]:
        """One satisfying point (free variables set to 0), or ``None``."""
        if f == self.zero:
            return None
        point = 0
        node = f
        while node > 1:
            if self._low[node] != self.zero:
                node = self._low[node]
            else:
                point |= 1 << self._var[node]
                node = self._high[node]
        return point

    def sat_count(self, f: int) -> int:
        """Number of satisfying assignments over all ``nvars`` variables."""
        memo2: dict[tuple[int, int], int] = {}

        def walk(node: int, var: int) -> int:
            if var == self.nvars:
                return 1 if node == self.one else 0
            key = (node, var)
            cached = memo2.get(key)
            if cached is not None:
                return cached
            if self._var[node] == var:
                result = walk(self._low[node], var + 1) + walk(
                    self._high[node], var + 1
                )
            else:
                result = 2 * walk(node, var + 1)
            memo2[key] = result
            return result

        return walk(f, 0)

    def support(self, f: int) -> set[int]:
        result: set[int] = set()
        seen: set[int] = set()
        stack = [f]
        while stack:
            node = stack.pop()
            if node <= 1 or node in seen:
                continue
            seen.add(node)
            result.add(self._var[node])
            stack.append(self._low[node])
            stack.append(self._high[node])
        return result

    def minterms(self, f: int) -> Iterator[int]:
        """Yield all satisfying points (use for small nvars only)."""
        for point in range(1 << self.nvars):
            if self.evaluate(f, point):
                yield point

    def size(self, f: int) -> int:
        """Number of internal nodes reachable from ``f``."""
        seen: set[int] = set()
        stack = [f]
        while stack:
            node = stack.pop()
            if node <= 1 or node in seen:
                continue
            seen.add(node)
            stack.append(self._low[node])
            stack.append(self._high[node])
        return len(seen)

    # ------------------------------------------------------------------
    # Builders
    # ------------------------------------------------------------------
    def from_cover(self, cover: "object") -> int:
        """Build a BDD from a :class:`repro.boolean.cover.Cover`."""
        from .cube import bit_indices  # local import avoids a cycle at module load

        result = self.zero
        for cube in cover:  # type: ignore[attr-defined]
            term = self.one
            for var in bit_indices(cube.used):
                term = self.apply_and(
                    term, self.literal(var, bool(cube.phase & (1 << var)))
                )
            result = self.apply_or(result, term)
        return result

    def from_expr(self, expr: "object", order: Sequence[str]) -> int:
        """Build a BDD from a :class:`repro.boolean.expr.Expr`."""
        from .expr import And, Const, Lit, Not, Or, Var

        index = {name: i for i, name in enumerate(order)}

        def walk(node) -> int:  # type: ignore[no-untyped-def]
            if isinstance(node, Var):
                return self.var(index[node.name])
            if isinstance(node, Lit):
                return self.literal(index[node.name], node.positive)
            if isinstance(node, Const):
                return self.one if node.value else self.zero
            if isinstance(node, Not):
                return self.negate(walk(node.child))
            if isinstance(node, And):
                return self.conjoin([walk(t) for t in node.terms])
            if isinstance(node, Or):
                return self.disjoin([walk(t) for t in node.terms])
            raise TypeError(f"unexpected expression node {node!r}")

        return walk(expr)
