"""Dense truth tables for Boolean matching.

A function of ``n ≤ TT_MAX_VARS`` variables is stored as a single
integer whose bit ``p`` is ``f(p)``.  The technology mapper's Boolean
matching (CERES-style) compares a cluster function against a library
cell function under input permutation; truth tables plus symmetry /
signature pruning make that comparison cheap at cell sizes.
"""

from __future__ import annotations

from itertools import permutations
from typing import Callable, Iterator, Optional, Sequence

TT_MAX_VARS = 14


def table_mask(nvars: int) -> int:
    """All-ones truth table for ``nvars`` variables."""
    return (1 << (1 << nvars)) - 1


def var_table(index: int, nvars: int) -> int:
    """Truth table of the projection function ``x_index``."""
    if not 0 <= index < nvars:
        raise ValueError("variable index out of range")
    table = 0
    for point in range(1 << nvars):
        if point >> index & 1:
            table |= 1 << point
    return table


def from_callable(func: Callable[[int], bool], nvars: int) -> int:
    table = 0
    for point in range(1 << nvars):
        if func(point):
            table |= 1 << point
    return table


def evaluate(table: int, point: int) -> bool:
    return bool(table >> point & 1)


def cofactor(table: int, var: int, value: bool, nvars: int) -> int:
    """Truth table of the cofactor, still over ``nvars`` variables.

    The cofactored variable becomes a don't-care dimension (both halves
    equal), which keeps all tables in one universe.
    """
    block = 1 << var
    period = block << 1
    result = 0
    for base in range(0, 1 << nvars, period):
        lo = (table >> base) & ((1 << block) - 1)
        hi = (table >> (base + block)) & ((1 << block) - 1)
        keep = hi if value else lo
        result |= keep << base
        result |= keep << (base + block)
    return result


def depends_on(table: int, var: int, nvars: int) -> bool:
    """True iff the function actually depends on variable ``var``."""
    return cofactor(table, var, False, nvars) != cofactor(table, var, True, nvars)


def support(table: int, nvars: int) -> list[int]:
    return [v for v in range(nvars) if depends_on(table, v, nvars)]


def permute(table: int, perm: Sequence[int], nvars: int) -> int:
    """Apply an input permutation: new variable ``perm[i]`` = old ``i``.

    ``perm`` maps old indices to new indices and must be a permutation
    of ``range(nvars)``.
    """
    result = 0
    for point in range(1 << nvars):
        if table >> point & 1:
            new_point = 0
            for i in range(nvars):
                if point >> i & 1:
                    new_point |= 1 << perm[i]
            result |= 1 << new_point
    return result


def negate_input(table: int, var: int, nvars: int) -> int:
    """Truth table of f with input ``var`` complemented."""
    result = 0
    bit = 1 << var
    for point in range(1 << nvars):
        if table >> point & 1:
            result |= 1 << (point ^ bit)
    return result


def ones_count(table: int, nvars: int) -> int:
    return (table & table_mask(nvars)).bit_count()


def cofactor_signature(table: int, var: int, nvars: int) -> tuple[int, int]:
    """(|f_{var=0}|, |f_{var=1}|) minterm counts — a permutation-covariant
    per-variable signature used to prune the matching search."""
    zeros = 0
    ones = 0
    bit = 1 << var
    for point in range(1 << nvars):
        if table >> point & 1:
            if point & bit:
                ones += 1
            else:
                zeros += 1
    return zeros, ones


def signature(table: int, nvars: int) -> tuple[int, tuple[tuple[int, int], ...]]:
    """Permutation-invariant signature: total ones + sorted cofactor pairs."""
    pairs = sorted(cofactor_signature(table, v, nvars) for v in range(nvars))
    return ones_count(table, nvars), tuple(pairs)


def np_signature(table: int, nvars: int) -> tuple:
    """Output-polarity-folded permutation-invariant signature.

    Equal for any two tables related by an input permutation and/or an
    output complementation — the NPN-style bucket key the hazard cache
    uses to group structurally distinct implementations of related
    functions before comparing exact structural fingerprints.
    """
    return min(
        signature(table, nvars),
        signature(table_mask(nvars) & ~table, nvars),
    )


def symmetric_vars(table: int, a: int, b: int, nvars: int) -> bool:
    """True iff the function is invariant under swapping inputs a and b."""
    perm = list(range(nvars))
    perm[a], perm[b] = perm[b], perm[a]
    return permute(table, perm, nvars) == table


def symmetry_classes(table: int, nvars: int) -> list[list[int]]:
    """Partition the inputs into classes of mutually swappable variables."""
    classes: list[list[int]] = []
    for var in range(nvars):
        placed = False
        for cls in classes:
            if symmetric_vars(table, cls[0], var, nvars):
                cls.append(var)
                placed = True
                break
        if not placed:
            classes.append([var])
    return classes


def match_permutations(
    target: int,
    candidate: int,
    nvars: int,
    limit: Optional[int] = None,
) -> Iterator[tuple[int, ...]]:
    """Yield permutations ``perm`` with ``permute(candidate, perm) == target``.

    ``perm[i]`` gives the target variable driven by candidate input
    ``i``.  Signature pruning: candidate input ``i`` can only map to a
    target variable with the same cofactor signature.
    """
    if ones_count(target, nvars) != ones_count(candidate, nvars):
        return
    target_sig = [cofactor_signature(target, v, nvars) for v in range(nvars)]
    cand_sig = [cofactor_signature(candidate, v, nvars) for v in range(nvars)]
    buckets: dict[tuple[int, int], list[int]] = {}
    for v in range(nvars):
        buckets.setdefault(target_sig[v], []).append(v)
    # Quick multiset check.
    cand_counts: dict[tuple[int, int], int] = {}
    for sig in cand_sig:
        cand_counts[sig] = cand_counts.get(sig, 0) + 1
    for sig, members in buckets.items():
        if cand_counts.get(sig, 0) != len(members):
            return
    count = 0
    for perm in _assignments(cand_sig, buckets, nvars):
        if permute(candidate, perm, nvars) == target:
            yield tuple(perm)
            count += 1
            if limit is not None and count >= limit:
                return


def _assignments(
    cand_sig: list[tuple[int, int]],
    buckets: dict[tuple[int, int], list[int]],
    nvars: int,
) -> Iterator[list[int]]:
    """Enumerate signature-respecting injective assignments."""
    groups: dict[tuple[int, int], list[int]] = {}
    for i, sig in enumerate(cand_sig):
        groups.setdefault(sig, []).append(i)
    sigs = list(groups)
    per_sig_perms = []
    for sig in sigs:
        per_sig_perms.append(list(permutations(buckets[sig])))
    indices = [0] * len(sigs)
    while True:
        perm = [0] * nvars
        for gi, sig in enumerate(sigs):
            chosen = per_sig_perms[gi][indices[gi]]
            for src, dst in zip(groups[sig], chosen):
                perm[src] = dst
        yield perm
        # Odometer increment.
        pos = len(sigs) - 1
        while pos >= 0:
            indices[pos] += 1
            if indices[pos] < len(per_sig_perms[pos]):
                break
            indices[pos] = 0
            pos -= 1
        if pos < 0:
            return
