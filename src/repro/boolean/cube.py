"""Cubes (product terms) encoded as USED/PHASE bit-vector pairs.

This is the "metaproduct-like" structure of Siegel et al., section 4.1.1
(after Coudert & Madre): a cube over ``nvars`` Boolean variables is a pair
of machine integers.  Bit ``i`` of ``used`` is set iff variable ``i``
appears in the cube; when it does, bit ``i`` of ``phase`` gives its
polarity (1 = positive literal, 0 = complemented literal).

The encoding makes the hazard-analysis primitives of the paper one-liner
bit operations, e.g. cube adjacency::

    CONFLICTS = (c1.used & c2.used) & (c1.phase ^ c2.phase)

Two cubes are adjacent iff exactly one bit of ``CONFLICTS`` is set and the
cubes intersect everywhere else.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional, Sequence


def popcount(x: int) -> int:
    """Number of set bits of a non-negative integer."""
    return x.bit_count()


def bit_indices(x: int) -> Iterator[int]:
    """Yield the indices of the set bits of ``x`` in increasing order."""
    while x:
        low = x & -x
        yield low.bit_length() - 1
        x ^= low


class Cube:
    """An immutable product term over a fixed number of variables.

    Parameters
    ----------
    used:
        Bit-vector of the variables appearing in the cube.
    phase:
        Bit-vector of polarities for the used variables.  Bits outside
        ``used`` must be zero (the constructor normalizes them away).
    nvars:
        Size of the variable universe the cube lives in.
    """

    __slots__ = ("used", "phase", "nvars")

    def __init__(self, used: int, phase: int, nvars: int) -> None:
        if nvars < 0:
            raise ValueError("nvars must be non-negative")
        mask = (1 << nvars) - 1
        if used & ~mask:
            raise ValueError("used bits outside the variable universe")
        self.used = used
        self.phase = phase & used
        self.nvars = nvars

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def universe(cls, nvars: int) -> "Cube":
        """The cube with no literals: the whole Boolean space."""
        return cls(0, 0, nvars)

    @classmethod
    def from_literals(cls, literals: Iterable[tuple[int, bool]], nvars: int) -> "Cube":
        """Build a cube from ``(variable index, positive?)`` pairs.

        Raises ``ValueError`` if the same variable appears with both
        polarities (an empty product has no cube representation here;
        callers model emptiness with ``None``).
        """
        used = 0
        phase = 0
        for var, positive in literals:
            if not 0 <= var < nvars:
                raise ValueError(f"variable index {var} out of range")
            bit = 1 << var
            if used & bit:
                if bool(phase & bit) != positive:
                    raise ValueError(
                        f"variable {var} appears with both polarities"
                    )
                continue
            used |= bit
            if positive:
                phase |= bit
        return cls(used, phase, nvars)

    @classmethod
    def from_string(cls, text: str, names: Sequence[str]) -> "Cube":
        """Parse a cube like ``"ab'c"`` against an ordered name list.

        Single-character variable names only; a trailing ``'`` complements
        the preceding variable.  ``"1"`` denotes the universal cube.
        """
        text = text.strip()
        index = {name: i for i, name in enumerate(names)}
        if text in ("1", ""):
            return cls.universe(len(names))
        literals: list[tuple[int, bool]] = []
        i = 0
        while i < len(text):
            ch = text[i]
            if ch.isspace():
                i += 1
                continue
            if ch not in index:
                raise ValueError(f"unknown variable {ch!r} in cube {text!r}")
            positive = True
            if i + 1 < len(text) and text[i + 1] == "'":
                positive = False
                i += 1
            literals.append((index[ch], positive))
            i += 1
        return cls.from_literals(literals, len(names))

    @classmethod
    def from_pattern(cls, pattern: str) -> "Cube":
        """Parse a positional pattern like ``"1-0"`` (1, 0, or ``-``).

        Character ``i`` of the pattern describes variable ``i``.
        """
        used = 0
        phase = 0
        for i, ch in enumerate(pattern):
            if ch == "1":
                used |= 1 << i
                phase |= 1 << i
            elif ch == "0":
                used |= 1 << i
            elif ch != "-":
                raise ValueError(f"bad pattern character {ch!r}")
        return cls(used, phase, len(pattern))

    @classmethod
    def minterm(cls, point: int, nvars: int) -> "Cube":
        """The minterm cube of the point ``point`` (an nvars-bit integer)."""
        mask = (1 << nvars) - 1
        return cls(mask, point & mask, nvars)

    # ------------------------------------------------------------------
    # Basic predicates
    # ------------------------------------------------------------------
    @property
    def num_literals(self) -> int:
        """Number of literals in the cube."""
        return popcount(self.used)

    @property
    def free_vars(self) -> int:
        """Bit-vector of variables *not* bound by the cube."""
        return ((1 << self.nvars) - 1) & ~self.used

    def is_universe(self) -> bool:
        return self.used == 0

    def is_minterm(self) -> bool:
        return self.used == (1 << self.nvars) - 1

    def contains_point(self, point: int) -> bool:
        """True iff the minterm ``point`` lies inside the cube."""
        return (point & self.used) == self.phase

    def contains(self, other: "Cube") -> bool:
        """Single-cube containment: ``self`` ⊇ ``other``."""
        self._check_universe(other)
        if self.used & ~other.used:
            return False
        return not ((self.phase ^ other.phase) & self.used)

    def intersects(self, other: "Cube") -> bool:
        """True iff the cubes share at least one minterm."""
        self._check_universe(other)
        return not ((self.used & other.used) & (self.phase ^ other.phase))

    # ------------------------------------------------------------------
    # Combinators
    # ------------------------------------------------------------------
    def intersection(self, other: "Cube") -> Optional["Cube"]:
        """Cube intersection, or ``None`` when disjoint."""
        self._check_universe(other)
        if (self.used & other.used) & (self.phase ^ other.phase):
            return None
        return Cube(self.used | other.used, self.phase | other.phase, self.nvars)

    def supercube(self, other: "Cube") -> "Cube":
        """Smallest cube containing both cubes.

        For two minterms α and β this is the transition space T[α, β]
        of the paper (Definition 4.2).
        """
        self._check_universe(other)
        used = self.used & other.used & ~(self.phase ^ other.phase)
        return Cube(used, self.phase & used, self.nvars)

    def conflicts(self, other: "Cube") -> int:
        """The CONFLICTS bit-vector of section 4.1.1."""
        self._check_universe(other)
        return (self.used & other.used) & (self.phase ^ other.phase)

    def is_adjacent(self, other: "Cube") -> bool:
        """True iff the cubes conflict in exactly one variable."""
        conf = self.conflicts(other)
        return conf != 0 and (conf & (conf - 1)) == 0

    def consensus(self, other: "Cube") -> Optional["Cube"]:
        """Consensus (adjacency cube) of two adjacent cubes.

        Returns ``None`` unless the cubes conflict in exactly one
        variable.  The result is the OR of the two cubes with the
        conflicting literal masked out — the cube spanned by the
        transitions between the two cubes (Figure 5 of the paper).
        """
        conf = self.conflicts(other)
        if conf == 0 or conf & (conf - 1):
            return None
        used = (self.used | other.used) & ~conf
        phase = (self.phase | other.phase) & used
        return Cube(used, phase, self.nvars)

    def cofactor_var(self, var: int, value: bool) -> Optional["Cube"]:
        """Cofactor with respect to a single variable assignment.

        Returns ``None`` when the cube is inconsistent with the
        assignment (the cofactor is empty).
        """
        bit = 1 << var
        if self.used & bit:
            if bool(self.phase & bit) != value:
                return None
            return Cube(self.used & ~bit, self.phase & ~bit, self.nvars)
        return self

    def cofactor(self, other: "Cube") -> Optional["Cube"]:
        """Generalized cofactor ``self / other`` (Shannon with a cube).

        Empty (``None``) when the cubes do not intersect; otherwise the
        cube with ``other``'s bound variables freed.
        """
        if not self.intersects(other):
            return None
        used = self.used & ~other.used
        return Cube(used, self.phase & used, self.nvars)

    def flip_var(self, var: int) -> "Cube":
        """Complement one bound variable of the cube.

        Used by ``findMicDynHaz2level`` to enumerate the cubes adjacent
        to a cube intersection.
        """
        bit = 1 << var
        if not self.used & bit:
            raise ValueError(f"variable {var} is free in the cube")
        return Cube(self.used, self.phase ^ bit, self.nvars)

    def expand_var(self, var: int) -> "Cube":
        """Remove a literal from the cube (raise toward the universe)."""
        bit = 1 << var
        return Cube(self.used & ~bit, self.phase & ~bit, self.nvars)

    def with_universe(self, nvars: int) -> "Cube":
        """Re-embed the cube in a (weakly) larger variable universe."""
        if nvars < self.nvars:
            raise ValueError("cannot shrink the variable universe")
        return Cube(self.used, self.phase, nvars)

    def remap(self, mapping: Sequence[int], nvars: int) -> "Cube":
        """Rename variables: old index ``i`` becomes ``mapping[i]``.

        Used when transporting library-cell hazards through a Boolean
        match's pin binding.
        """
        used = 0
        phase = 0
        for var in bit_indices(self.used):
            new = mapping[var]
            if not 0 <= new < nvars:
                raise ValueError(f"mapped index {new} out of range")
            bit = 1 << new
            if used & bit:
                raise ValueError("mapping is not injective on the cube support")
            used |= bit
            if self.phase & (1 << var):
                phase |= bit
        return Cube(used, phase, nvars)

    def remap_with_polarity(
        self, mapping: Sequence[tuple[int, bool]], nvars: int
    ) -> "Cube":
        """Rename variables with optional polarity inversion.

        ``mapping[i]`` is ``(new_index, inverted)``; when ``inverted`` the
        literal's phase flips.
        """
        used = 0
        phase = 0
        for var in bit_indices(self.used):
            new, inverted = mapping[var]
            bit = 1 << new
            if used & bit:
                raise ValueError("mapping is not injective on the cube support")
            used |= bit
            positive = bool(self.phase & (1 << var)) ^ inverted
            if positive:
                phase |= bit
        return Cube(used, phase, nvars)

    # ------------------------------------------------------------------
    # Enumeration
    # ------------------------------------------------------------------
    def size(self) -> int:
        """Number of minterms in the cube."""
        return 1 << (self.nvars - self.num_literals)

    def minterms(self) -> Iterator[int]:
        """Yield the points (integers) contained in the cube."""
        free = list(bit_indices(self.free_vars))
        base = self.phase
        for assignment in range(1 << len(free)):
            point = base
            for j, var in enumerate(free):
                if assignment >> j & 1:
                    point |= 1 << var
            yield point

    def distance(self, other: "Cube") -> int:
        """Number of conflicting variables between the cubes."""
        return popcount(self.conflicts(other))

    # ------------------------------------------------------------------
    # Formatting / dunder plumbing
    # ------------------------------------------------------------------
    def to_pattern(self) -> str:
        chars = []
        for i in range(self.nvars):
            bit = 1 << i
            if not self.used & bit:
                chars.append("-")
            elif self.phase & bit:
                chars.append("1")
            else:
                chars.append("0")
        return "".join(chars)

    def to_string(self, names: Optional[Sequence[str]] = None) -> str:
        if self.is_universe():
            return "1"
        parts = []
        for i in bit_indices(self.used):
            name = names[i] if names is not None else f"x{i}"
            if self.phase & (1 << i):
                parts.append(name)
            else:
                parts.append(name + "'")
        return "".join(parts)

    def _check_universe(self, other: "Cube") -> None:
        if self.nvars != other.nvars:
            raise ValueError(
                f"cube universes differ ({self.nvars} vs {other.nvars})"
            )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Cube):
            return NotImplemented
        return (
            self.used == other.used
            and self.phase == other.phase
            and self.nvars == other.nvars
        )

    def __hash__(self) -> int:
        return hash((self.used, self.phase, self.nvars))

    def __repr__(self) -> str:
        return f"Cube({self.to_pattern()!r})"
