"""Two-level minimization: primes, essentials, and unate covering.

Provides the Quine–McCluskey-style exact minimizer used by the
*synchronous* decomposition path (whose simplification step is precisely
what can introduce static-1 hazards — Figure 3 of the paper), and the
generic unate-covering solver shared with the hazard-free minimizer in
:mod:`repro.burstmode.hfmin`.
"""

from __future__ import annotations

from typing import Optional, Sequence

from .cover import Cover
from .cube import Cube


class CoveringProblem:
    """A weighted unate covering problem.

    ``rows[r]`` is the set of column indices able to cover row ``r``;
    every row must be covered by at least one chosen column.  Solved
    exactly by branch-and-bound with essential-column and row-dominance
    reductions; falls back to a greedy bound first so pruning is
    effective.
    """

    def __init__(self, rows: Sequence[set[int]], costs: Sequence[float]) -> None:
        self.rows = [set(r) for r in rows]
        self.costs = list(costs)
        for i, row in enumerate(self.rows):
            if not row:
                raise ValueError(f"row {i} cannot be covered by any column")

    def solve(self, max_nodes: int = 200_000) -> list[int]:
        """Return a minimum-cost column set (exact unless the node budget
        is exhausted, in which case the best solution found so far —
        at worst the greedy one — is returned)."""
        greedy = self._greedy()
        best_cost = sum(self.costs[c] for c in greedy)
        best = list(greedy)
        budget = [max_nodes]

        def recurse(rows: list[set[int]], chosen: list[int], cost: float) -> None:
            nonlocal best, best_cost
            if budget[0] <= 0:
                return
            budget[0] -= 1
            rows = [set(r) for r in rows]
            chosen = list(chosen)
            # Reductions to fixpoint.
            changed = True
            while changed and rows:
                changed = False
                # Essential columns: a row with a single candidate.
                for row in rows:
                    if len(row) == 1:
                        col = next(iter(row))
                        chosen.append(col)
                        cost += self.costs[col]
                        rows = [r for r in rows if col not in r]
                        changed = True
                        break
                if changed:
                    continue
                # Row dominance: drop rows that are supersets of others.
                keep: list[set[int]] = []
                for row in rows:
                    if any(other < row for other in rows):
                        changed = True
                        continue
                    keep.append(row)
                rows = keep
            if cost >= best_cost:
                return
            if not rows:
                best = chosen
                best_cost = cost
                return
            # Branch on the smallest row: any cover must pick one of its
            # columns, so trying each in turn is exhaustive.
            pivot = min(rows, key=len)
            for col in sorted(pivot, key=lambda c: self.costs[c]):
                recurse(
                    [r for r in rows if col not in r],
                    chosen + [col],
                    cost + self.costs[col],
                )

        recurse(self.rows, [], 0.0)
        return sorted(set(best))

    def _greedy(self) -> list[int]:
        rows = [set(r) for r in self.rows]
        chosen: list[int] = []
        while rows:
            counts: dict[int, int] = {}
            for row in rows:
                for col in row:
                    counts[col] = counts.get(col, 0) + 1
            col = min(
                counts, key=lambda c: (self.costs[c] / counts[c], self.costs[c], c)
            )
            chosen.append(col)
            rows = [r for r in rows if col not in r]
        return chosen


def essential_primes(cover: Cover, primes: Sequence[Cube]) -> list[Cube]:
    """Primes covering some minterm no other prime covers."""
    essentials = []
    for i, prime in enumerate(primes):
        others = [p for j, p in enumerate(primes) if j != i]
        for point in prime.minterms():
            if not any(o.contains_point(point) for o in others):
                essentials.append(prime)
                break
    return essentials


def minimize_exact(cover: Cover) -> Cover:
    """Exact minimum-cube two-level cover (Quine–McCluskey).

    Enumeral: generates all primes by iterated consensus, then solves
    the prime-covering table over the ON-set minterms exactly.  Intended
    for the small functions handled during decomposition and library
    preparation (the paper's clusters are ≤ ~10 inputs).

    .. warning:: minimization deletes redundant cubes and therefore can
       *introduce static-1 hazards*; only the synchronous flow uses it.
    """
    if not cover.cubes:
        return Cover.empty(cover.nvars)
    primes = cover.all_primes()
    minterms = sorted(cover.minterms())
    if not minterms:
        return Cover.empty(cover.nvars)
    rows = []
    for point in minterms:
        candidates = {i for i, p in enumerate(primes) if p.contains_point(point)}
        rows.append(candidates)
    costs = [1.0 + p.num_literals * 1e-3 for p in primes]
    chosen = CoveringProblem(rows, costs).solve()
    return Cover([primes[i] for i in chosen], cover.nvars)


def simplify_for_sync(cover: Cover) -> Cover:
    """The synchronous decomposition's simplification step.

    Drops duplicate and single-cube-contained cubes and removes
    redundant cubes — hazard-*unsafe* (this is what Figure 3 warns
    about), matching what MIS-style ``tech_decomp`` does.
    """
    return cover.dedup().drop_contained().irredundant()


def complete_sum(cover: Cover) -> Cover:
    """The complete sum (all primes) — the unique two-level SOP free of
    all m.i.c. static-1 logic hazards (section 2.3 of the paper)."""
    return Cover(cover.all_primes(), cover.nvars)


def espresso_lite(
    cover: Cover,
    dcset: Optional[Cover] = None,
    max_iterations: int = 5,
) -> Cover:
    """Heuristic two-level minimization: expand / irredundant / reduce.

    The classical espresso loop in miniature, used as the synchronous
    baseline where exact Quine–McCluskey is too slow.  ``dcset`` points
    may be absorbed into cubes but are never required to be covered.

    .. warning:: like every cover-shrinking transform, this is
       hazard-unsafe; the asynchronous flow never calls it.
    """
    dc = dcset if dcset is not None else Cover.empty(cover.nvars)
    care_function = cover  # ON-set care points the result must keep
    full = cover.union(dc)

    def expand(cubes: list[Cube]) -> list[Cube]:
        expanded: list[Cube] = []
        for cube in cubes:
            prime = full.expand_to_prime(cube)
            if not any(e.contains(prime) for e in expanded):
                expanded = [e for e in expanded if not prime.contains(e)]
                expanded.append(prime)
        return expanded

    def irredundant(cubes: list[Cube]) -> list[Cube]:
        kept = list(cubes)
        i = 0
        while i < len(kept):
            rest = Cover(kept[:i] + kept[i + 1 :], cover.nvars).union(dc)
            victim = kept[i]
            # a cube may go iff every ON point it covers stays covered
            removable = all(
                rest.evaluate(p) or dc.evaluate(p)
                for p in victim.minterms()
                if care_function.evaluate(p)
            )
            if removable and len(kept) > 1:
                kept.pop(i)
            else:
                i += 1
        return kept

    def reduce(cubes: list[Cube]) -> list[Cube]:
        reduced: list[Cube] = []
        for i, cube in enumerate(cubes):
            others = Cover(cubes[:i] + cubes[i + 1 :], cover.nvars).union(dc)
            lonely = [
                p
                for p in cube.minterms()
                if care_function.evaluate(p) and not others.evaluate(p)
            ]
            if not lonely:
                continue
            shrunk = Cube.minterm(lonely[0], cover.nvars)
            for point in lonely[1:]:
                shrunk = shrunk.supercube(Cube.minterm(point, cover.nvars))
            reduced.append(shrunk)
        return reduced if reduced else list(cubes)

    current = cover.dedup().cubes
    best_cost = None
    for __ in range(max_iterations):
        current = expand(current)
        current = irredundant(current)
        cost = (len(current), sum(c.num_literals for c in current))
        if best_cost is not None and cost >= best_cost:
            break
        best_cost = cost
        current = reduce(current)
    result = Cover(expand(current), cover.nvars)
    return Cover(irredundant(result.cubes), cover.nvars)


def make_hazard_free_static(cover: Cover) -> Cover:
    """Augment a cover with the consensus cubes needed to kill its
    static-1 hazards, without disturbing the existing cube list.

    A light-weight hazard-removal transform: repeatedly find uncovered
    adjacencies (see :mod:`repro.hazards.static1`) and add the missing
    prime.  The result keeps every original cube (gate), so other hazard
    classes are not made worse.
    """
    from ..hazards.static1 import find_static1_hazards  # late import: layering

    current = cover
    for _ in range(64):
        hazards = find_static1_hazards(current)
        if not hazards:
            return current
        addition = current.expand_to_prime(hazards[0].transition)
        current = current.with_cube(addition)
    raise RuntimeError("static hazard removal did not converge")
