"""Sum-of-products covers built on :class:`repro.boolean.cube.Cube`.

A :class:`Cover` is an ordered list of cubes interpreted as their union
(an SOP expression / two-level AND-OR network).  The paper treats SOP
expressions and their two-level gate implementations interchangeably
(section 2.2); so do we — the *list of cubes*, including any redundant
ones, is the implementation whose hazards are analyzed.

The module supplies the classical two-level machinery the hazard
algorithms need: tautology checking, cube-in-cover containment, prime
expansion, complementation, and irredundant-cover extraction.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, Optional, Sequence

from .cube import Cube, bit_indices, popcount


class Cover:
    """An SOP expression: the union of a list of cubes.

    The cube *list* is meaningful (it is the two-level implementation),
    so equality is structural; use :meth:`equivalent` for functional
    equality.
    """

    __slots__ = ("cubes", "nvars")

    def __init__(self, cubes: Iterable[Cube], nvars: int) -> None:
        self.cubes = list(cubes)
        self.nvars = nvars
        for cube in self.cubes:
            if cube.nvars != nvars:
                raise ValueError("cube universe does not match the cover")

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def empty(cls, nvars: int) -> "Cover":
        """The constant-0 function."""
        return cls([], nvars)

    @classmethod
    def one(cls, nvars: int) -> "Cover":
        """The constant-1 function (a single universal cube)."""
        return cls([Cube.universe(nvars)], nvars)

    @classmethod
    def from_strings(cls, terms: Iterable[str], names: Sequence[str]) -> "Cover":
        """Build a cover from cube strings like ``["ab'", "cd"]``."""
        return cls([Cube.from_string(t, names) for t in terms], len(names))

    @classmethod
    def from_patterns(cls, patterns: Iterable[str], nvars: int) -> "Cover":
        return cls([Cube.from_pattern(p).with_universe(nvars) for p in patterns], nvars)

    @classmethod
    def from_minterms(cls, points: Iterable[int], nvars: int) -> "Cover":
        return cls([Cube.minterm(p, nvars) for p in points], nvars)

    @classmethod
    def from_function(cls, func: Callable[[int], bool], nvars: int) -> "Cover":
        """Minterm cover of an arbitrary predicate on points (small n)."""
        return cls.from_minterms(
            (p for p in range(1 << nvars) if func(p)), nvars
        )

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.cubes)

    def __iter__(self) -> Iterator[Cube]:
        return iter(self.cubes)

    def __getitem__(self, index: int) -> Cube:
        return self.cubes[index]

    def evaluate(self, point: int) -> bool:
        """Value of the function at a minterm."""
        return any(cube.contains_point(point) for cube in self.cubes)

    def num_literals(self) -> int:
        """Total literal count — the paper's area proxy for CMOS cells."""
        return sum(cube.num_literals for cube in self.cubes)

    def truth_table(self) -> int:
        """Dense truth table as an integer (bit ``p`` = f(p)); small n only."""
        if self.nvars > 16:
            raise ValueError("truth table too large")
        table = 0
        for cube in self.cubes:
            for point in cube.minterms():
                table |= 1 << point
        return table

    def is_empty_list(self) -> bool:
        return not self.cubes

    # ------------------------------------------------------------------
    # Cofactors and tautology
    # ------------------------------------------------------------------
    def cofactor(self, cube: Cube) -> "Cover":
        """Generalized cofactor of the cover with respect to a cube."""
        result = []
        for c in self.cubes:
            cof = c.cofactor(cube)
            if cof is not None:
                result.append(cof)
        return Cover(result, self.nvars)

    def cofactor_var(self, var: int, value: bool) -> "Cover":
        result = []
        for c in self.cubes:
            cof = c.cofactor_var(var, value)
            if cof is not None:
                result.append(cof)
        return Cover(result, self.nvars)

    def is_tautology(self) -> bool:
        """True iff the cover is the constant-1 function.

        Classical recursive Shannon-expansion tautology check with unate
        reduction.
        """
        return _tautology(self.cubes, self.nvars)

    def contains_cube(self, cube: Cube) -> bool:
        """True iff the cube is an implicant of the cover (cube ⊆ f)."""
        return self.cofactor(cube).is_tautology()

    def contains_cover(self, other: "Cover") -> bool:
        return all(self.contains_cube(c) for c in other.cubes)

    def equivalent(self, other: "Cover") -> bool:
        """Functional equality (ignores cube-list structure)."""
        if self.nvars != other.nvars:
            return False
        return self.contains_cover(other) and other.contains_cover(self)

    def single_cube_contains(self, cube: Cube) -> bool:
        """True iff some *single* cube of the cover contains ``cube``.

        This is the hazard-relevant covering notion: a transition
        subcube is glitch-safe only when one gate holds the output
        through the whole transition.
        """
        return any(c.contains(cube) for c in self.cubes)

    # ------------------------------------------------------------------
    # Primality
    # ------------------------------------------------------------------
    def is_implicant(self, cube: Cube) -> bool:
        return self.contains_cube(cube)

    def is_prime(self, cube: Cube) -> bool:
        """True iff ``cube`` is a prime implicant of this function."""
        if not self.contains_cube(cube):
            return False
        for var in bit_indices(cube.used):
            if self.contains_cube(cube.expand_var(var)):
                return False
        return True

    def expand_to_prime(self, cube: Cube) -> Cube:
        """Expand an implicant to a prime implicant (greedy, in variable
        order — deterministic)."""
        if not self.contains_cube(cube):
            raise ValueError("cube is not an implicant of the cover")
        current = cube
        changed = True
        while changed:
            changed = False
            for var in bit_indices(current.used):
                candidate = current.expand_var(var)
                if self.contains_cube(candidate):
                    current = candidate
                    changed = True
        return current

    # ------------------------------------------------------------------
    # Cover-level transforms
    # ------------------------------------------------------------------
    def union(self, other: "Cover") -> "Cover":
        if self.nvars != other.nvars:
            raise ValueError("covers live in different universes")
        return Cover(self.cubes + other.cubes, self.nvars)

    def with_cube(self, cube: Cube) -> "Cover":
        return Cover(self.cubes + [cube], self.nvars)

    def intersect(self, other: "Cover") -> "Cover":
        """Product of two covers: pairwise cube intersections.

        The result is empty (as a function) iff the two functions are
        disjoint, making this the satisfiability workhorse for hazard
        sensitization conditions.
        """
        if self.nvars != other.nvars:
            raise ValueError("covers live in different universes")
        cubes = []
        seen: set[Cube] = set()
        for a in self.cubes:
            for b in other.cubes:
                cab = a.intersection(b)
                if cab is not None and cab not in seen:
                    seen.add(cab)
                    cubes.append(cab)
        return Cover(cubes, self.nvars)

    def xor(self, other: "Cover") -> "Cover":
        """Symmetric difference of two covers (as functions)."""
        return self.intersect(other.complement()).union(
            other.intersect(self.complement())
        )

    def dedup(self) -> "Cover":
        """Drop exact duplicate cubes (keeps first occurrences)."""
        seen: set[Cube] = set()
        result = []
        for cube in self.cubes:
            if cube not in seen:
                seen.add(cube)
                result.append(cube)
        return Cover(result, self.nvars)

    def drop_contained(self) -> "Cover":
        """Drop cubes single-cube-contained in another cube of the list.

        Note: this *changes hazard behaviour* in general (it deletes
        gates); it is a synchronous-style simplification used by
        ``tech_decomp`` but never by ``async_tech_decomp``.
        """
        result: list[Cube] = []
        for i, cube in enumerate(self.cubes):
            contained = False
            for j, other in enumerate(self.cubes):
                if i == j:
                    continue
                if other.contains(cube) and not (cube.contains(other) and j > i):
                    contained = True
                    break
            if not contained:
                result.append(cube)
        return Cover(result, self.nvars)

    def irredundant(self) -> "Cover":
        """A functionally equivalent subset with no redundant cube.

        Greedy: removes cubes (largest first) whose deletion keeps the
        function unchanged.  Synchronous-style simplification — removing
        a redundant cube may *introduce* static-1 hazards (Figure 3).
        """
        cubes = sorted(self.cubes, key=lambda c: c.num_literals)
        kept = list(cubes)
        i = 0
        while i < len(kept):
            candidate = kept[i]
            rest = Cover(kept[:i] + kept[i + 1 :], self.nvars)
            if rest.contains_cube(candidate):
                kept.pop(i)
            else:
                i += 1
        return Cover(kept, self.nvars)

    def complement(self) -> "Cover":
        """Complement of the function, as a new cover (Shannon recursion)."""
        cubes = _complement(self.cubes, self.nvars, (1 << self.nvars) - 1)
        return Cover(cubes, self.nvars)

    def all_primes(self) -> list[Cube]:
        """All prime implicants of the function.

        Iterated-consensus closure: starting from the cover's cubes,
        alternately absorb contained cubes and add consensus cubes until
        no change.  The classical completeness theorem guarantees the
        fixpoint is exactly the set of prime implicants.  Fine for the
        cell/cluster sizes the mapper manipulates (≤ ~12 variables).
        """
        current: set[Cube] = set(self.dedup().cubes)
        changed = True
        while changed:
            changed = False
            # Absorption: drop cubes contained in another cube.
            absorbed = {
                c
                for c in current
                if not any(d != c and d.contains(c) for d in current)
            }
            if absorbed != current:
                current = absorbed
                changed = True
            pairs = list(current)
            for i, c in enumerate(pairs):
                for d in pairs[i + 1 :]:
                    cons = c.consensus(d)
                    if cons is None:
                        continue
                    if any(e.contains(cons) for e in current):
                        continue
                    current.add(cons)
                    changed = True
        return sorted(current, key=lambda c: (c.used, c.phase))

    def remap(self, mapping: Sequence[int], nvars: int) -> "Cover":
        return Cover([c.remap(mapping, nvars) for c in self.cubes], nvars)

    def minterms(self) -> set[int]:
        points: set[int] = set()
        for cube in self.cubes:
            points.update(cube.minterms())
        return points

    # ------------------------------------------------------------------
    # Formatting
    # ------------------------------------------------------------------
    def to_string(self, names: Optional[Sequence[str]] = None) -> str:
        if not self.cubes:
            return "0"
        return " + ".join(c.to_string(names) for c in self.cubes)

    def __repr__(self) -> str:
        return f"Cover([{', '.join(c.to_pattern() for c in self.cubes)}])"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Cover):
            return NotImplemented
        return self.nvars == other.nvars and self.cubes == other.cubes

    def __hash__(self) -> int:
        return hash((tuple(self.cubes), self.nvars))


# ----------------------------------------------------------------------
# Recursive kernels
# ----------------------------------------------------------------------

def _tautology(cubes: list[Cube], nvars: int) -> bool:
    """Shannon-expansion tautology check on a cube list."""
    if not cubes:
        return False
    for cube in cubes:
        if cube.used == 0:
            return True
    # Unate reduction: a variable appearing in only one phase can be
    # cofactored against that phase's absence.
    pos = 0
    neg = 0
    for cube in cubes:
        pos |= cube.phase
        neg |= cube.used & ~cube.phase
    both = pos & neg
    unate = (pos | neg) & ~both
    if unate:
        # For each unate variable, the cover is a tautology only if the
        # cofactor against the *opposite* value is — cubes using the
        # variable can never cover the opposite half-space.
        reduced = []
        for cube in cubes:
            if cube.used & unate:
                continue
            reduced.append(cube)
        return _tautology(reduced, nvars)
    if both == 0:
        # No variables used at all and no universal cube.
        return False
    # Split on the most frequently used binate variable.
    counts: dict[int, int] = {}
    for cube in cubes:
        for var in bit_indices(cube.used & both):
            counts[var] = counts.get(var, 0) + 1
    var = max(counts, key=lambda v: (counts[v], -v))
    for value in (False, True):
        cof = []
        bit = 1 << var
        for cube in cubes:
            if cube.used & bit:
                if bool(cube.phase & bit) != value:
                    continue
                cof.append(Cube(cube.used & ~bit, cube.phase & ~bit, nvars))
            else:
                cof.append(cube)
        if not _tautology(cof, nvars):
            return False
    return True


def _complement(cubes: list[Cube], nvars: int, free_mask: int) -> list[Cube]:
    """Complement a cube list via Shannon recursion.

    ``free_mask`` tracks which variables are still free in the current
    subspace; bound variables are re-added by the caller.
    """
    if not cubes:
        return [Cube.universe(nvars)]
    for cube in cubes:
        if cube.used == 0:
            return []
    if len(cubes) == 1:
        # DeMorgan on a single cube.
        cube = cubes[0]
        result = []
        for var in bit_indices(cube.used):
            bit = 1 << var
            phase = 0 if cube.phase & bit else bit
            result.append(Cube(bit, phase, nvars))
        return result
    # Pick the most used variable to split on.
    counts: dict[int, int] = {}
    for cube in cubes:
        for var in bit_indices(cube.used):
            counts[var] = counts.get(var, 0) + 1
    var = max(counts, key=lambda v: (counts[v], -v))
    bit = 1 << var
    result = []
    for value in (False, True):
        cof = []
        for cube in cubes:
            if cube.used & bit:
                if bool(cube.phase & bit) != value:
                    continue
                cof.append(Cube(cube.used & ~bit, cube.phase & ~bit, nvars))
            else:
                cof.append(cube)
        sub = _complement(cof, nvars, free_mask & ~bit)
        for cube in sub:
            phase = cube.phase | (bit if value else 0)
            result.append(Cube(cube.used | bit, phase, nvars))
    return result
