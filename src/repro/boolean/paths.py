"""Path-labelled flattening of multilevel expressions.

Section 4.2.3 of the paper analyzes static-0 and single-input-change
dynamic hazards of a multilevel network by *relabelling* the variables
"so that each distinct path the variable takes is identified", then
transforming the expression into SOP form through hazard-preserving
operations.  A product term that contains a variable in both phases
(through two different paths — a *vacuous* term, e.g. ``y1'·y2``) is
invisible in steady state but can pulse while the variable is in
transit; such terms are exactly the source of static-0 hazards and of
s.i.c. dynamic hazards.

This module builds the labelled SOP: every literal occurrence of the
(NNF of the) expression receives a distinct path id, and distribution
keeps vacuous products instead of simplifying them away.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Optional, Sequence

from .cover import Cover
from .cube import Cube
from .expr import And, Const, Expr, Lit, Or


@dataclass(frozen=True)
class LabeledLiteral:
    """One literal occurrence: variable, path id, polarity."""

    name: str
    path: int
    positive: bool

    def __str__(self) -> str:
        text = f"{self.name}#{self.path}"
        return text if self.positive else text + "'"


@dataclass(frozen=True)
class LabeledProduct:
    """A product of labelled literals (one AND gate of the flattened net)."""

    literals: tuple[LabeledLiteral, ...]

    def variables(self) -> frozenset[str]:
        return frozenset(lit.name for lit in self.literals)

    def vacuous_variables(self) -> frozenset[str]:
        """Variables occurring in both phases (through different paths)."""
        pos = {lit.name for lit in self.literals if lit.positive}
        neg = {lit.name for lit in self.literals if not lit.positive}
        return frozenset(pos & neg)

    def is_vacuous(self) -> bool:
        return bool(self.vacuous_variables())

    def phase_of(self, name: str) -> Optional[bool]:
        """Unified polarity of a variable, or ``None`` if vacuous/absent."""
        phases = {lit.positive for lit in self.literals if lit.name == name}
        if len(phases) != 1:
            return None
        return next(iter(phases))

    def residual_cube(
        self, drop: Iterable[str], index: Mapping[str, int], nvars: int
    ) -> Optional[Cube]:
        """Unify labels into a plain cube, ignoring variables in ``drop``.

        Returns ``None`` when the residual itself is vacuous (a variable
        outside ``drop`` appears in both phases).
        """
        dropped = set(drop)
        used = 0
        phase = 0
        for lit in self.literals:
            if lit.name in dropped:
                continue
            bit = 1 << index[lit.name]
            if used & bit:
                if bool(phase & bit) != lit.positive:
                    return None
                continue
            used |= bit
            if lit.positive:
                phase |= bit
        return Cube(used, phase, nvars)

    def to_cube(self, index: Mapping[str, int], nvars: int) -> Optional[Cube]:
        """Plain (label-free) cube, or ``None`` when the product is vacuous."""
        return self.residual_cube((), index, nvars)

    def __str__(self) -> str:
        return "·".join(str(lit) for lit in self.literals) if self.literals else "1"


class LabeledSop:
    """The path-labelled two-level form of a multilevel expression."""

    def __init__(self, products: Sequence[LabeledProduct], names: Sequence[str]) -> None:
        self.products = list(products)
        self.names = list(names)
        self.index = {name: i for i, name in enumerate(self.names)}
        self._plain: Optional[Cover] = None

    @property
    def nvars(self) -> int:
        return len(self.names)

    def vacuous_products(self) -> list[LabeledProduct]:
        return [p for p in self.products if p.is_vacuous()]

    def plain_cover(self) -> Cover:
        """Label-free SOP with vacuous products dropped, duplicates merged.

        This is the cover the static-1 and m.i.c. dynamic analyses run
        on: by Unger's Theorem 4.3 the distributive-law flattening is
        static-hazard-preserving, and vacuous products never hold the
        output in steady state.  Cached (the labelled form is immutable
        by convention).
        """
        if self._plain is not None:
            return self._plain
        cubes: list[Cube] = []
        seen: set[Cube] = set()
        for product in self.products:
            cube = product.to_cube(self.index, self.nvars)
            if cube is None or cube in seen:
                continue
            seen.add(cube)
            cubes.append(cube)
        self._plain = Cover(cubes, self.nvars)
        return self._plain

    def __len__(self) -> int:
        return len(self.products)

    def __str__(self) -> str:
        return " + ".join(str(p) for p in self.products) if self.products else "0"


def label_cover(cover: Cover, names: Sequence[str]) -> LabeledSop:
    """Path-labelled view of a two-level AND-OR implementation.

    Each literal of each cube is a distinct physical wire into its AND
    gate, hence a distinct path label.
    """
    from .cube import bit_indices

    counters: dict[str, int] = {}
    products = []
    for cube in cover:
        literals = []
        for var in bit_indices(cube.used):
            name = names[var]
            path = counters.get(name, 0)
            counters[name] = path + 1
            positive = bool(cube.phase & (1 << var))
            literals.append(LabeledLiteral(name, path, positive))
        products.append(LabeledProduct(tuple(literals)))
    return LabeledSop(products, names)


def label_expression(expr: Expr, names: Optional[Sequence[str]] = None) -> LabeledSop:
    """Flatten an expression to its path-labelled SOP.

    Every literal occurrence in the NNF of ``expr`` receives a fresh
    path id (per variable), so reconvergent paths stay distinguishable
    after distribution.  Products are kept verbatim — including vacuous
    ones — because the flattening must be hazard-preserving.
    """
    nnf = expr.to_nnf()
    counters: dict[str, int] = {}

    def walk(node: Expr) -> list[list[LabeledLiteral]]:
        if isinstance(node, Lit):
            path = counters.get(node.name, 0)
            counters[node.name] = path + 1
            return [[LabeledLiteral(node.name, path, node.positive)]]
        if isinstance(node, Const):
            return [[]] if node.value else []
        if isinstance(node, Or):
            result: list[list[LabeledLiteral]] = []
            for term in node.terms:
                result.extend(walk(term))
            return result
        if isinstance(node, And):
            result = [[]]
            for term in node.terms:
                branch = walk(term)
                result = [p + q for p in result for q in branch]
            return result
        raise TypeError(f"unexpected node in NNF: {node!r}")

    raw_products = walk(nnf)
    products = [LabeledProduct(tuple(p)) for p in raw_products]
    if names is None:
        names = sorted(expr.support())
    return LabeledSop(products, names)
