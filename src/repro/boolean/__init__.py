"""Boolean core: cubes, covers, factored forms, BDDs, truth tables."""

from .bdd import BddManager
from .cover import Cover
from .cube import Cube, bit_indices, popcount
from .expr import And, Const, Expr, Lit, Not, Or, Var, parse, sorted_support
from .minimize import (
    CoveringProblem,
    complete_sum,
    espresso_lite,
    make_hazard_free_static,
    minimize_exact,
    simplify_for_sync,
)
from .paths import LabeledLiteral, LabeledProduct, LabeledSop, label_expression

__all__ = [
    "And",
    "BddManager",
    "Const",
    "Cover",
    "CoveringProblem",
    "Cube",
    "Expr",
    "LabeledLiteral",
    "LabeledProduct",
    "LabeledSop",
    "Lit",
    "Not",
    "Or",
    "Var",
    "bit_indices",
    "complete_sum",
    "espresso_lite",
    "label_expression",
    "make_hazard_free_static",
    "minimize_exact",
    "parse",
    "popcount",
    "simplify_for_sync",
    "sorted_support",
]
