"""Boolean factored form (BFF) expressions.

The paper (section 3.2.1) represents both the *function* and the
*structure* of each library element as a Boolean factored form: the BFF
of a static CMOS cell mirrors its pulldown network, so analyzing the BFF
as a multilevel AND/OR/NOT network characterizes the cell's logic-hazard
behaviour.  ``s*a + s'*b`` (a 2:1 mux as two gates) and ``(s + b)*(s' + a)``
describe the same function with different hazards (Figure 4).

This module provides the expression AST, a parser, printers, evaluation,
negation-normal form, and hazard-preserving flattening to two-level SOP
(distributive law + DeMorgan only — Unger Theorem 4.3).
"""

from __future__ import annotations

from typing import Iterator, Mapping, Optional, Sequence

from .cover import Cover
from .cube import Cube


class Expr:
    """Base class for BFF expression nodes (immutable)."""

    __slots__ = ()

    # -- combinators ----------------------------------------------------
    def __invert__(self) -> "Expr":
        return Not(self)

    def __and__(self, other: "Expr") -> "Expr":
        return And((self, other))

    def __or__(self, other: "Expr") -> "Expr":
        return Or((self, other))

    # -- interface ------------------------------------------------------
    def support(self) -> frozenset[str]:
        """Names of variables the expression mentions."""
        raise NotImplementedError

    def evaluate(self, env: Mapping[str, bool]) -> bool:
        raise NotImplementedError

    def children(self) -> tuple["Expr", ...]:
        return ()

    def rename(self, mapping: Mapping[str, str]) -> "Expr":
        """Rename variables (pin binding)."""
        raise NotImplementedError

    def substitute(self, mapping: Mapping[str, "Expr"]) -> "Expr":
        """Replace variables by expressions (no simplification)."""
        raise NotImplementedError

    # -- structure metrics ----------------------------------------------
    def num_literals(self) -> int:
        """Literal count of the factored form.

        For a static CMOS cell this equals the pulldown-network
        transistor count, the paper's Table 3 area unit.
        """
        raise NotImplementedError

    def depth(self) -> int:
        """Levels of alternating logic (variables are depth 0)."""
        raise NotImplementedError

    # -- normal forms ----------------------------------------------------
    def to_nnf(self, negate: bool = False) -> "Expr":
        """Negation normal form via DeMorgan (hazard-preserving)."""
        raise NotImplementedError

    def sop_products(self) -> list[tuple[tuple[str, bool], ...]]:
        """Flatten to products of literals via the distributive law.

        Returns a list of products; each product is a tuple of
        ``(variable name, positive?)`` literals in encounter order,
        *including* vacuous products (containing ``x`` and ``x'``) —
        callers decide how to treat them.  No simplification whatsoever
        is applied (the flattening is static-hazard-preserving).
        """
        nnf = self.to_nnf()
        return _distribute(nnf)

    def to_cover(
        self, names: Sequence[str], keep_vacuous: bool = False
    ) -> Cover:
        """Two-level SOP cover over an ordered variable list.

        Vacuous products (a variable in both phases) are dropped unless
        ``keep_vacuous`` — for the *plain* (label-free) SOP they
        contribute nothing in steady state; static-0 and s.i.c. dynamic
        hazards they cause are analyzed on the path-labelled flattening
        instead (see :mod:`repro.boolean.paths`).
        """
        index = {name: i for i, name in enumerate(names)}
        missing = self.support() - set(names)
        if missing:
            raise ValueError(f"variables {sorted(missing)} missing from ordering")
        cubes = []
        seen: set[Cube] = set()
        for product in self.sop_products():
            cube = _product_to_cube(product, index, len(names))
            if cube is None:
                if keep_vacuous:
                    raise ValueError(
                        "keep_vacuous requires the labelled flattening in "
                        "repro.boolean.paths"
                    )
                continue
            if cube in seen:
                continue
            seen.add(cube)
            cubes.append(cube)
        return Cover(cubes, len(names))

    def to_string(self) -> str:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.to_string()!r})"


class Var(Expr):
    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        self.name = name

    def support(self) -> frozenset[str]:
        return frozenset((self.name,))

    def evaluate(self, env: Mapping[str, bool]) -> bool:
        return bool(env[self.name])

    def rename(self, mapping: Mapping[str, str]) -> "Expr":
        return Var(mapping.get(self.name, self.name))

    def substitute(self, mapping: Mapping[str, "Expr"]) -> "Expr":
        return mapping.get(self.name, self)

    def num_literals(self) -> int:
        return 1

    def depth(self) -> int:
        return 0

    def to_nnf(self, negate: bool = False) -> "Expr":
        return Lit(self.name, not negate)

    def to_string(self) -> str:
        return self.name

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Var) and other.name == self.name

    def __hash__(self) -> int:
        return hash(("Var", self.name))


class Lit(Expr):
    """A literal: a variable with an explicit polarity (NNF leaf)."""

    __slots__ = ("name", "positive")

    def __init__(self, name: str, positive: bool) -> None:
        self.name = name
        self.positive = positive

    def support(self) -> frozenset[str]:
        return frozenset((self.name,))

    def evaluate(self, env: Mapping[str, bool]) -> bool:
        return bool(env[self.name]) == self.positive

    def rename(self, mapping: Mapping[str, str]) -> "Expr":
        return Lit(mapping.get(self.name, self.name), self.positive)

    def substitute(self, mapping: Mapping[str, "Expr"]) -> "Expr":
        if self.name not in mapping:
            return self
        replacement = mapping[self.name]
        return replacement if self.positive else Not(replacement)

    def num_literals(self) -> int:
        return 1

    def depth(self) -> int:
        return 0

    def to_nnf(self, negate: bool = False) -> "Expr":
        return Lit(self.name, self.positive ^ negate)

    def to_string(self) -> str:
        return self.name if self.positive else self.name + "'"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Lit)
            and other.name == self.name
            and other.positive == self.positive
        )

    def __hash__(self) -> int:
        return hash(("Lit", self.name, self.positive))


class Const(Expr):
    __slots__ = ("value",)

    def __init__(self, value: bool) -> None:
        self.value = bool(value)

    def support(self) -> frozenset[str]:
        return frozenset()

    def evaluate(self, env: Mapping[str, bool]) -> bool:
        return self.value

    def rename(self, mapping: Mapping[str, str]) -> "Expr":
        return self

    def substitute(self, mapping: Mapping[str, "Expr"]) -> "Expr":
        return self

    def num_literals(self) -> int:
        return 0

    def depth(self) -> int:
        return 0

    def to_nnf(self, negate: bool = False) -> "Expr":
        return Const(self.value ^ negate)

    def to_string(self) -> str:
        return "1" if self.value else "0"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Const) and other.value == self.value

    def __hash__(self) -> int:
        return hash(("Const", self.value))


class Not(Expr):
    __slots__ = ("child",)

    def __init__(self, child: Expr) -> None:
        self.child = child

    def support(self) -> frozenset[str]:
        return self.child.support()

    def evaluate(self, env: Mapping[str, bool]) -> bool:
        return not self.child.evaluate(env)

    def children(self) -> tuple[Expr, ...]:
        return (self.child,)

    def rename(self, mapping: Mapping[str, str]) -> "Expr":
        return Not(self.child.rename(mapping))

    def substitute(self, mapping: Mapping[str, "Expr"]) -> "Expr":
        return Not(self.child.substitute(mapping))

    def num_literals(self) -> int:
        return self.child.num_literals()

    def depth(self) -> int:
        # A complemented input is a literal, not a gate level; an
        # inverter over a subexpression adds one level.
        if isinstance(self.child, (Var, Lit)):
            return 0
        return self.child.depth() + 1

    def to_nnf(self, negate: bool = False) -> "Expr":
        return self.child.to_nnf(not negate)

    def to_string(self) -> str:
        inner = self.child.to_string()
        if isinstance(self.child, (Var, Lit, Const)):
            return inner + "'"
        return "(" + inner + ")'"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Not) and other.child == self.child

    def __hash__(self) -> int:
        return hash(("Not", self.child))


class _NaryExpr(Expr):
    __slots__ = ("terms",)
    _symbol = "?"

    def __init__(self, terms: Sequence[Expr]) -> None:
        flattened: list[Expr] = []
        for term in terms:
            if isinstance(term, type(self)):
                flattened.extend(term.terms)
            else:
                flattened.append(term)
        if len(flattened) < 1:
            raise ValueError("n-ary expression needs at least one term")
        self.terms = tuple(flattened)

    def support(self) -> frozenset[str]:
        result: frozenset[str] = frozenset()
        for term in self.terms:
            result |= term.support()
        return result

    def children(self) -> tuple[Expr, ...]:
        return self.terms

    def num_literals(self) -> int:
        return sum(t.num_literals() for t in self.terms)

    def depth(self) -> int:
        return 1 + max(t.depth() for t in self.terms)

    def __eq__(self, other: object) -> bool:
        return type(other) is type(self) and other.terms == self.terms  # type: ignore[attr-defined]

    def __hash__(self) -> int:
        return hash((type(self).__name__, self.terms))


class And(_NaryExpr):
    _symbol = "*"

    def evaluate(self, env: Mapping[str, bool]) -> bool:
        return all(t.evaluate(env) for t in self.terms)

    def rename(self, mapping: Mapping[str, str]) -> "Expr":
        return And(tuple(t.rename(mapping) for t in self.terms))

    def substitute(self, mapping: Mapping[str, "Expr"]) -> "Expr":
        return And(tuple(t.substitute(mapping) for t in self.terms))

    def to_nnf(self, negate: bool = False) -> "Expr":
        parts = tuple(t.to_nnf(negate) for t in self.terms)
        return Or(parts) if negate else And(parts)

    def to_string(self) -> str:
        parts = []
        for term in self.terms:
            text = term.to_string()
            if isinstance(term, Or):
                text = "(" + text + ")"
            parts.append(text)
        return "*".join(parts)


class Or(_NaryExpr):
    _symbol = "+"

    def evaluate(self, env: Mapping[str, bool]) -> bool:
        return any(t.evaluate(env) for t in self.terms)

    def rename(self, mapping: Mapping[str, str]) -> "Expr":
        return Or(tuple(t.rename(mapping) for t in self.terms))

    def substitute(self, mapping: Mapping[str, "Expr"]) -> "Expr":
        return Or(tuple(t.substitute(mapping) for t in self.terms))

    def to_nnf(self, negate: bool = False) -> "Expr":
        parts = tuple(t.to_nnf(negate) for t in self.terms)
        return And(parts) if negate else Or(parts)

    def to_string(self) -> str:
        return " + ".join(t.to_string() for t in self.terms)


# ----------------------------------------------------------------------
# Flattening helpers
# ----------------------------------------------------------------------

def _distribute(expr: Expr) -> list[tuple[tuple[str, bool], ...]]:
    """Distributive-law flattening of an NNF expression.

    Returns products as literal tuples; keeps vacuous products.
    """
    if isinstance(expr, Lit):
        return [((expr.name, expr.positive),)]
    if isinstance(expr, Const):
        return [()] if expr.value else []
    if isinstance(expr, Or):
        result: list[tuple[tuple[str, bool], ...]] = []
        for term in expr.terms:
            result.extend(_distribute(term))
        return result
    if isinstance(expr, And):
        result = [()]
        for term in expr.terms:
            branch = _distribute(term)
            result = [p + q for p in result for q in branch]
        return result
    raise TypeError(f"expression is not in NNF: {expr!r}")


def _product_to_cube(
    product: tuple[tuple[str, bool], ...],
    index: Mapping[str, int],
    nvars: int,
) -> Optional[Cube]:
    """Convert a literal product to a cube; ``None`` when vacuous."""
    used = 0
    phase = 0
    for name, positive in product:
        bit = 1 << index[name]
        if used & bit:
            if bool(phase & bit) != positive:
                return None
            continue
        used |= bit
        if positive:
            phase |= bit
    return Cube(used, phase, nvars)


# ----------------------------------------------------------------------
# Parser
# ----------------------------------------------------------------------

class _Tokenizer:
    def __init__(self, text: str) -> None:
        self.text = text
        self.pos = 0

    def tokens(self) -> Iterator[tuple[str, str]]:
        text = self.text
        i = 0
        while i < len(text):
            ch = text[i]
            if ch.isspace():
                i += 1
                continue
            if ch in "+*()'!":
                yield (ch, ch)
                i += 1
                continue
            if ch in "01" and (i + 1 == len(text) or not text[i + 1].isalnum()):
                yield ("const", ch)
                i += 1
                continue
            if ch.isalpha() or ch == "_":
                j = i + 1
                while j < len(text) and (text[j].isalnum() or text[j] == "_"):
                    j += 1
                yield ("ident", text[i:j])
                i = j
                continue
            raise ValueError(f"unexpected character {ch!r} at position {i}")
        yield ("end", "")


def parse(text: str) -> Expr:
    """Parse a Boolean factored form expression.

    Grammar (``'`` is postfix complement, ``!`` prefix complement,
    juxtaposition means AND)::

        expr   := term ('+' term)*
        term   := factor (('*')? factor)*
        factor := atom "'"* | '!' factor
        atom   := ident | '0' | '1' | '(' expr ')'

    Examples: ``"s*a + s'*b"``, ``"(w + x)*y"``, ``"!(a*b) + c"``.
    """
    tokens = list(_Tokenizer(text).tokens())
    pos = 0

    def peek() -> tuple[str, str]:
        return tokens[pos]

    def advance() -> tuple[str, str]:
        nonlocal pos
        token = tokens[pos]
        pos += 1
        return token

    def parse_expr() -> Expr:
        terms = [parse_term()]
        while peek()[0] == "+":
            advance()
            terms.append(parse_term())
        return terms[0] if len(terms) == 1 else Or(tuple(terms))

    def parse_term() -> Expr:
        factors = [parse_factor()]
        while True:
            kind, _ = peek()
            if kind == "*":
                advance()
                factors.append(parse_factor())
            elif kind in ("ident", "(", "!", "const"):
                factors.append(parse_factor())
            else:
                break
        return factors[0] if len(factors) == 1 else And(tuple(factors))

    def parse_factor() -> Expr:
        kind, value = peek()
        if kind == "!":
            advance()
            return Not(parse_factor())
        node = parse_atom()
        while peek()[0] == "'":
            advance()
            node = Not(node)
        return node

    def parse_atom() -> Expr:
        kind, value = advance()
        if kind == "ident":
            return Var(value)
        if kind == "const":
            return Const(value == "1")
        if kind == "(":
            node = parse_expr()
            closing, _ = advance()
            if closing != ")":
                raise ValueError("expected ')'")
            return node
        raise ValueError(f"unexpected token {value!r}")

    result = parse_expr()
    if peek()[0] != "end":
        raise ValueError(f"trailing input at token {peek()[1]!r}")
    return result


def sorted_support(expr: Expr) -> list[str]:
    """Deterministic variable ordering for an expression."""
    return sorted(expr.support())
