"""Command-line interface: ``python -m repro <command>``.

Commands mirror the paper's workflows:

* ``census``  — Table-1-style hazard census of the standard libraries;
* ``audit``   — per-cell hazard records of one library, each confirmed
  by a replayed witness transition and cross-checked against the
  exhaustive oracle;
* ``map``     — map a benchmark (or an equation/BLIF file) onto a
  library with the sync or async mapper, optionally with hazard
  don't-cares, and verify the result;
* ``certify`` — independently re-check mapped networks against their
  source designs (BDD/truth-table equivalence + replayed hazard
  transitions) and emit ``repro-cert/v1`` certificates; also available
  as ``map --certify`` and ``batch --certify``;
* ``explain`` — render the per-cone decision report of a
  ``repro-explain/v1`` log (or map a catalog benchmark on the fly);
* ``batch``   — map a whole catalog of (design, library) jobs through
  the fault-tolerant batch engine (process/thread/serial backends,
  deadlines, retries, resumable ``repro-batch/v1`` journal);
* ``bench``   — list the benchmark catalog;
* ``perf``    — replay the Table-5 workload and write the
  ``BENCH_mapping.json`` snapshot that
  ``benchmarks/check_regression.py`` gates against;
* ``serve``   — run the persistent mapping daemon (HTTP/JSON over the
  ``repro-api/v1`` contract): libraries, hazard annotations, and
  matching indexes stay warm across requests; ``map`` and ``batch``
  take ``--server URL`` to route through it;
* ``cache``   — inspect or clear the on-disk caches: per-library hazard
  annotations and content-addressed whole-map results.

``map`` persists library hazard annotations to a disk cache by default
(pass ``--no-cache`` to disable, ``--cache-dir`` to relocate) and takes
``--workers`` for parallel cone covering.  ``--result-cache``
additionally replays whole map responses from the content-addressed
result cache when the exact (network, library, options) triple was
mapped before (see ``docs/caching.md``).  ``map --trace out.json``
records the run as a span tree (``repro-trace/v1``) and ``--metrics``
prints the run's counter/gauge/histogram snapshot; both are also
available on ``perf``.  ``map --explain [FILE]`` writes the
witness-backed decision log (``repro-explain/v1``) that ``repro
explain`` renders.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Optional, Sequence

from .api import (
    ApiError,
    BatchRequest,
    CertifyRequest,
    ExplainRequest,
    MapRequest,
    add_option_arguments,
    execute_explain,
    netlist_blif,
    option_values_from_args,
    read_blif_text,
    run_map,
)
from .batch import (
    BatchConfig,
    check_artifacts,
    run_batch,
    validate_journal,
)
from .batch.backends import BACKEND_NAMES
from .burstmode.benchmarks import CATALOG, TABLE5_ORDER, synthesize_benchmark
from .library import anncache
from .library.standard import ALL_LIBRARIES, load_library
from .mapping.verify import verify_mapping
from .obs.explain import render_explain, validate_explain_payload
from .obs.export import (
    CERT_SCHEMA,
    load_explain,
    write_bench_snapshot,
    write_certificate,
    write_explain,
    write_trace,
)
from .obs.metrics import MetricsRegistry
from .obs.perf import run_perf
from .obs.tracer import Tracer
from .reporting import render_table
from .testing.faults import FaultPlan


def _cmd_census(args: argparse.Namespace) -> int:
    rows = []
    for name in ALL_LIBRARIES:
        library = load_library(name)
        report = library.annotate_hazards()
        census = library.census()
        rows.append(
            (
                name,
                ",".join(census["hazardous_families"]) or "none",
                census["hazardous"],
                census["total"],
                f"{census['percent']}%",
                f"{report.elapsed:.2f}s",
            )
        )
    print(
        render_table(
            ["Library", "Families", "#", "Total", "%", "Annotation"],
            rows,
            title="Hazard census (paper Table 1)",
        )
    )
    return 0


def _cmd_audit(args: argparse.Namespace) -> int:
    from .hazards.oracle import classify_transition
    from .hazards.witness import analysis_witnesses, replay_witness

    library = load_library(args.library)
    report = library.annotate_hazards()
    print(
        f"{library.name}: {report.cells} cells, {report.hazardous} hazardous "
        f"({report.hazardous_fraction:.0%}), annotated in {report.elapsed:.2f}s"
    )
    mismatches = 0
    for cell in library.hazardous_cells():
        assert cell.analysis is not None
        print(f"\n{cell.name}: {cell.expression.to_string()}")
        for line in cell.analysis.describe():
            print(f"  {line}")
        # One concrete witness per hazard class: replay it on the event
        # simulator AND cross-check the exhaustive oracle's verdict for
        # the same transition, so the audit is evidence, not assertion.
        for record, witness in analysis_witnesses(cell.analysis, per_class=1):
            replay = replay_witness(cell.analysis.lsop, witness)
            verdict = classify_transition(
                cell.analysis.lsop, witness.start, witness.end
            )
            confirmed = replay.glitched and verdict.logic_hazard
            status = "confirmed" if confirmed else "MISMATCH"
            if not confirmed:
                mismatches += 1
            print(
                f"  witness [{witness.kind}] {witness.transition_string()}: "
                f"{replay.changes} output change(s), expected "
                f"{replay.expected} — eventsim "
                f"{'glitched' if replay.glitched else 'clean'}, oracle "
                f"{'hazard' if verdict.logic_hazard else 'clean'} "
                f"({status})"
            )
    if mismatches:
        print(f"\n{mismatches} witness(es) FAILED cross-check", file=sys.stderr)
        return 1
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    rows = []
    for name, info in CATALOG.items():
        synthesis = synthesize_benchmark(name)
        stats = synthesis.spec.stats()
        rows.append(
            (
                name,
                info.description,
                stats["states"],
                stats["transitions"],
                synthesis.total_literals(),
            )
        )
    print(
        render_table(
            ["Benchmark", "Description", "States", "Bursts", "Literals"],
            rows,
            title="Benchmark catalog (paper Table 5)",
        )
    )
    return 0


def _resolved_cache_dir(args: argparse.Namespace) -> anncache.CacheDir:
    # DISABLED (not None) so --no-cache also wins over a set
    # REPRO_ANNOTATION_CACHE environment toggle.
    return (
        anncache.DISABLED
        if args.no_cache
        else (args.cache_dir or str(anncache.default_cache_root()))
    )


def _map_request(args: argparse.Namespace, network) -> MapRequest:
    """The ``repro-api/v1`` request a ``repro map`` invocation denotes.

    ``verify`` stays client-side for local runs (the CLI prints the
    violation list, which the wire response does not carry) but rides
    in the request for ``--server`` runs.
    """
    design = args.design if args.design in CATALOG else None
    payload = None if design else {"blif": netlist_blif(network)}
    return MapRequest(
        library=args.library,
        design=design,
        network=payload,
        dont_cares=args.dont_cares,
        explain=args.explain is not None,
        verify=args.verify and args.server is not None,
        deadline_seconds=args.deadline,
        **option_values_from_args(args),
    )


def _remote_trace_begin(client, tracer, name: str, **attrs):
    """Open the client-side root span and arm header propagation."""
    root = tracer.start_span(name, **attrs)
    client.trace_context = tracer.context(root)
    return root


def _remote_trace_end(args, client, tracer, root, response) -> None:
    """Close the root, graft the daemon's subtree, write the file."""
    tracer.finish_span(root)
    client.trace_context = None
    remote = getattr(response, "trace", None)
    if remote:
        tracer.graft(remote, parent=root)
    tracer.assert_well_formed()
    write_trace(args.trace, tracer)
    print(f"trace written to {args.trace}")


def _cmd_map_remote(args: argparse.Namespace, request: MapRequest) -> int:
    """Send one map request to a running ``repro serve`` instance."""
    from .service.client import ServiceClient, ServiceError

    if args.metrics:
        print("--metrics is not supported with --server", file=sys.stderr)
        return 2
    client = ServiceClient(args.server)
    tracer = Tracer() if args.trace else None
    root_span = None
    if tracer is not None:
        root_span = _remote_trace_begin(
            client, tracer, "map.client",
            design=request.design_name, library=request.library,
        )
    try:
        response = client.map(request)
    except ServiceError as exc:
        print(f"server error: {exc}", file=sys.stderr)
        return 1
    if tracer is not None:
        _remote_trace_end(args, client, tracer, root_span, response)
    print(
        f"{response.mode} mapping of {response.design} onto "
        f"{response.library}: area={response.area:.0f} "
        f"delay={response.delay:.2f} cpu={response.map_seconds:.2f}s"
    )
    print(f"cells: {response.cell_usage}")
    if response.fallback:
        print(
            f"deadline fallback: {response.fallback} "
            f"(budget ran out at {response.deadline_site})"
        )
    if args.explain is not None and response.explain is not None:
        explain_path = args.explain or f"{response.design}_explain.json"
        write_explain(explain_path, response.explain)
        summary = validate_explain_payload(response.explain)
        print(
            f"explain: {summary['candidates']} decisions over "
            f"{summary['cones']} cones "
            f"({summary['rejected_hazard']} hazard-rejected, "
            f"{summary['waived_dont_care']} waived) "
            f"written to {explain_path}"
        )
    if response.verify is not None:
        print(
            f"verification: equivalent={response.verify['equivalent']} "
            f"hazard_safe={response.verify['hazard_safe']}"
        )
    certify_failed = False
    if args.certify:
        try:
            cert_response = client.certify(
                CertifyRequest(
                    mapped_blif=response.blif,
                    design=request.design,
                    network=request.network,
                    library=args.library,
                )
            )
        except ServiceError as exc:
            print(f"server error: {exc}", file=sys.stderr)
            return 1
        certify_failed = not _report_certify_response("certify", cert_response)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(response.blif)
        print(f"mapped network written to {args.output}")
    if response.verify is not None and not response.verify["ok"]:
        return 1
    return 1 if certify_failed else 0


def _cmd_map(args: argparse.Namespace) -> int:
    if args.design in CATALOG:
        network = synthesize_benchmark(args.design).netlist(args.design)
    else:
        from .io import read_blif, read_equations

        with open(args.design) as handle:
            if args.design.endswith(".blif"):
                network = read_blif(handle)
            else:
                network = read_equations(handle)
        if args.dont_cares:
            print("--dont-cares requires a catalog benchmark", file=sys.stderr)
            return 2

    try:
        request = _map_request(args, network)
    except ApiError as exc:
        print(f"bad request: {exc}", file=sys.stderr)
        return 2
    if args.server:
        return _cmd_map_remote(args, request)

    cache_dir = _resolved_cache_dir(args)
    tracer = Tracer() if args.trace else None
    metrics = MetricsRegistry()
    # A one-shot CLI process resolves its library directly (annotation
    # warmth comes from the disk cache); only long-lived callers — the
    # service, batch workers — go through the process-wide warm cache.
    response, result = run_map(
        request,
        library=load_library(args.library),
        network=network,
        cache_dir=cache_dir,
        metrics=metrics,
        tracer=tracer,
    )
    if result is None:
        # Result-cache hit: the stored response is replayed verbatim and
        # there are no in-memory mapping objects to print from.
        print(
            f"{response.mode} mapping of {response.design} onto "
            f"{response.library}: area={response.area:.0f} "
            f"delay={response.delay:.2f} cpu={response.map_seconds:.2f}s "
            f"(result cache: {response.cached} hit)"
        )
        print(f"cells: {response.cell_usage}")
    else:
        print(
            f"{result.mode} mapping of {network.name} onto "
            f"{result.library.name}: "
            f"area={result.area:.0f} delay={result.delay:.2f} "
            f"cpu={result.elapsed:.2f}s"
        )
    if response.fallback:
        print(
            f"deadline fallback: {response.fallback} "
            f"(budget ran out at {response.deadline_site})"
        )
    if result is None:
        mapped = read_blif_text(response.blif)
        if tracer is not None:
            tracer.assert_well_formed()
            write_trace(args.trace, tracer, metrics=metrics)
            print(f"trace written to {args.trace}")
        if args.explain is not None and response.explain is not None:
            explain_path = args.explain or f"{network.name}_explain.json"
            write_explain(explain_path, response.explain)
            print(f"explain log written to {explain_path}")
        if args.metrics:
            print("metrics:")
            for line in _format_metrics(metrics):
                print(f"  {line}")
        if args.verify:
            report = verify_mapping(network, mapped)
            print(
                f"verification: equivalent={report.equivalent} "
                f"hazard_safe={report.hazard_safe}"
            )
            for violation in report.violations[:5]:
                print(f"  ! {violation}")
            if not report.ok:
                return 1
        if args.certify:
            from .conformance.certifier import certify_mapping

            certificate = certify_mapping(
                network, mapped, load_library(args.library), metrics=metrics
            )
            if not _report_certificate("certify", certificate):
                return 1
        if args.output:
            with open(args.output, "w") as handle:
                handle.write(response.blif)
            print(f"mapped network written to {args.output}")
        return 0
    print(f"cells: {result.cell_usage()}")
    if result.annotation_report is not None:
        report = result.annotation_report
        line = (
            f"annotation: {report.source} in {report.elapsed:.2f}s "
            f"({report.hazardous}/{report.cells} cells hazardous)"
        )
        if report.warm and report.cold_elapsed is not None:
            line += f"; cold pass was {report.cold_elapsed:.2f}s"
        print(line)
    stats = result.stats
    print(
        f"covering: {stats.cones} cones in {stats.cone_seconds:.2f}s "
        f"({result.workers} worker{'s' if result.workers != 1 else ''})"
    )
    if stats.filter_invocations or stats.cache_hits or stats.cache_misses:
        print(
            f"hazard cache: {stats.cache_hits} hits, {stats.cache_misses} misses "
            f"({stats.analysis_cache_hits}/{stats.analysis_cache_misses} analyses, "
            f"{stats.subset_cache_hits}/{stats.subset_cache_misses} filter verdicts; "
            f"{stats.filter_invocations} filter invocations)"
        )
    if result.stats.hazardous_matches:
        print(
            f"hazard filter: {result.stats.hazardous_matches} screened, "
            f"{result.stats.hazard_rejections} rejected, "
            f"{result.stats.hazard_accepts} accepted, "
            f"{result.stats.dc_waivers} waived by don't-cares"
        )
    if tracer is not None:
        tracer.assert_well_formed()
        write_trace(args.trace, tracer, metrics=result.metrics)
        print(f"trace written to {args.trace}")
    if args.explain is not None:
        assert result.explain is not None
        explain_path = args.explain or f"{network.name}_explain.json"
        write_explain(explain_path, result.explain)
        summary = result.explain.summary()
        print(
            f"explain: {summary['candidates']} decisions over "
            f"{summary['cones']} cones "
            f"({summary['rejected_hazard']} hazard-rejected, "
            f"{summary['waived_dont_care']} waived) "
            f"written to {explain_path}"
        )
    if args.metrics:
        print("metrics:")
        for line in _format_metrics(result.metrics):
            print(f"  {line}")
    if args.verify:
        report = verify_mapping(network, result.mapped)
        print(
            f"verification: equivalent={report.equivalent} "
            f"hazard_safe={report.hazard_safe}"
        )
        for violation in report.violations[:5]:
            print(f"  ! {violation}")
        if not report.ok:
            return 1
    if args.certify:
        from .conformance.certifier import certify_mapping

        certificate = certify_mapping(
            network, result.mapped, result.library, metrics=metrics
        )
        if not _report_certificate("certify", certificate):
            return 1
    if args.output:
        from .io import write_blif

        with open(args.output, "w") as handle:
            write_blif(result.mapped, handle)
        print(f"mapped network written to {args.output}")
    return 0


def _report_certificate(label: str, certificate) -> bool:
    """Print one certificate verdict line (plus refutations); True if ok."""
    print(
        f"  {label}: {certificate.verdict.upper()} — "
        f"{certificate.outputs_checked} output(s), "
        f"{certificate.transitions_checked} transition(s), "
        f"{certificate.replays} replay(s), "
        f"digest {certificate.evidence_digest[:12]} "
        f"({certificate.elapsed:.2f}s)"
    )
    for violation in certificate.violations[:5]:
        print(f"    ! {violation}")
    shown = 0
    for counterexample in certificate.counterexamples:
        if counterexample.source_hazard:
            continue  # allowed-hazard evidence, not a refutation
        print(f"    counterexample: {counterexample.describe()}")
        shown += 1
        if shown >= 3:
            break
    return certificate.certified


def _report_certify_response(label: str, response) -> bool:
    """The ``_report_certificate`` twin for a wire ``CertifyResponse``."""
    from .conformance.certifier import Counterexample

    print(
        f"  {label}: {response.verdict.upper()} — "
        f"{response.outputs_checked} output(s), "
        f"{response.transitions_checked} transition(s), "
        f"{response.replays} replay(s), "
        f"digest {response.evidence_digest[:12]}"
    )
    for violation in response.violations[:5]:
        print(f"    ! {violation}")
    shown = 0
    for payload in response.counterexamples:
        counterexample = Counterexample.from_dict(payload)
        if counterexample.source_hazard:
            continue
        print(f"    counterexample: {counterexample.describe()}")
        shown += 1
        if shown >= 3:
            break
    return response.certified


def _cmd_certify(args: argparse.Namespace) -> int:
    from .conformance.certifier import certify_mapping

    designs = args.designs or list(TABLE5_ORDER)
    unknown = sorted(set(designs) - set(CATALOG))
    if unknown:
        print(f"unknown benchmark(s): {', '.join(unknown)}", file=sys.stderr)
        return 2
    if args.mapped and len(designs) != 1:
        print("--mapped certifies one design; name exactly one", file=sys.stderr)
        return 2

    library = load_library(args.library)
    cache_dir = _resolved_cache_dir(args)
    metrics = MetricsRegistry()
    certificates: dict[str, dict] = {}
    rejected = []
    print(
        f"certify: {len(designs)} design(s) against {args.library} "
        f"(exhaustive<= {args.exhaustive_limit} vars, "
        f"{args.samples} samples, seed {args.seed})"
    )
    for design in designs:
        source = synthesize_benchmark(design).netlist(design)
        if args.mapped:
            with open(args.mapped) as handle:
                mapped = read_blif_text(handle.read())
        else:
            request = MapRequest(
                library=args.library, design=design, max_depth=args.depth
            )
            _, result = run_map(
                request,
                library=library,
                network=source,
                cache_dir=cache_dir,
                metrics=metrics,
            )
            mapped = result.mapped
        certificate = certify_mapping(
            source,
            mapped,
            library,
            exhaustive_limit=args.exhaustive_limit,
            samples=args.samples,
            seed=args.seed,
            metrics=metrics,
        )
        certificates[design] = certificate.to_dict()
        if not _report_certificate(design, certificate):
            rejected.append(design)
    if args.json:
        if len(designs) == 1:
            write_certificate(args.json, certificates[designs[0]])
        else:
            # A multi-design run writes one stamped envelope keyed by
            # design so the file still round-trips load_certificate.
            write_certificate(
                args.json,
                {"schema": CERT_SCHEMA, "certificates": certificates},
            )
        print(f"certificate(s) written to {args.json}")
    if rejected:
        print(f"REJECTED: {', '.join(rejected)}", file=sys.stderr)
        return 1
    print(f"all {len(designs)} design(s) certified")
    return 0


def _cmd_batch_remote(args: argparse.Namespace, request: BatchRequest) -> int:
    """Send a batch request to a running ``repro serve`` instance."""
    from .service.client import ServiceClient, ServiceError

    unsupported = (
        ("--check", args.check),
        ("--journal", args.journal),
        ("--output-dir", args.output_dir),
        ("--resume", args.resume),
        ("--bench-snapshot", args.bench_snapshot),
        ("--inject", args.inject),
        ("--certify", args.certify),
    )
    for name, value in unsupported:
        if value:
            print(f"{name} is not supported with --server", file=sys.stderr)
            return 2
    client = ServiceClient(args.server)
    tracer = Tracer() if args.trace else None
    root_span = None
    if tracer is not None:
        root_span = _remote_trace_begin(
            client, tracer, "batch.client",
            jobs=len(request.designs) * len(request.libraries),
        )
    try:
        response = client.batch(request)
    except ServiceError as exc:
        print(f"server error: {exc}", file=sys.stderr)
        return 1
    if tracer is not None:
        _remote_trace_end(args, client, tracer, root_span, response)
    for record in response.results:
        if record.get("status") == "ok":
            print(
                f"  {record['job_id']}: area={record['area']:.0f} "
                f"cells={record['cells']} "
                f"{record.get('map_seconds', 0.0):.2f}s"
            )
        else:
            print(
                f"  {record['job_id']}: {record.get('status', '?').upper()} — "
                f"{record.get('error', 'no detail')}"
            )
    print(
        f"batch finished in {response.elapsed:.2f}s: "
        + ", ".join(f"{k}={v}" for k, v in sorted(response.counts.items()) if v)
    )
    failed = [r for r in response.results if r.get("status") != "ok"]
    bad_verify = [
        r
        for r in response.results
        if r.get("status") == "ok" and not r.get("verify", {}).get("ok", True)
    ]
    return 1 if failed or bad_verify else 0


def _cmd_batch(args: argparse.Namespace) -> int:
    from .batch.journal import JournalError

    designs = args.designs or list(TABLE5_ORDER)
    unknown = sorted(set(designs) - set(CATALOG))
    if unknown:
        print(f"unknown benchmark(s): {', '.join(unknown)}", file=sys.stderr)
        return 2
    try:
        request = BatchRequest(
            designs=tuple(designs),
            libraries=tuple(args.libraries),
            verify=args.verify,
            explain=args.explain,
            deadline_seconds=args.deadline,
            **option_values_from_args(args, exclude=("workers",)),
        )
    except ApiError as exc:
        print(f"bad request: {exc}", file=sys.stderr)
        return 2
    if args.server:
        return _cmd_batch_remote(args, request)
    jobs = request.to_jobs()

    journal = args.journal or (
        str(args.output_dir) + "/batch_journal.jsonl" if args.output_dir else None
    )
    if args.check:
        if not journal:
            print("--check needs --journal or --output-dir", file=sys.stderr)
            return 2
        try:
            _, results = validate_journal(journal)
        except (OSError, JournalError) as exc:
            print(f"journal check FAILED: {exc}", file=sys.stderr)
            return 1
        problems = check_artifacts(results, args.output_dir)
        missing = [j.job_id for j in jobs if j.job_id not in results]
        for job_id in missing:
            problems.append(f"{job_id}: no journalled result")
        if problems:
            print(f"batch check FAILED ({len(problems)} problem(s)):")
            for problem in problems:
                print(f"  ! {problem}")
            return 1
        print(
            f"batch check passed: {len(results)} journalled job(s) verified "
            f"against {journal}"
        )
        return 0

    cache_dir = (
        anncache.DISABLED
        if args.no_cache
        else (args.cache_dir or str(anncache.default_cache_root()))
    )
    try:
        fault_plan = FaultPlan.parse(args.inject) if args.inject else None
    except ValueError as exc:
        print(f"bad --inject spec: {exc}", file=sys.stderr)
        return 2
    tracer = Tracer() if args.trace else None
    metrics = MetricsRegistry()

    def progress(record: dict) -> None:
        status = record.get("status")
        note = ""
        if record.get("skipped"):
            note = " (resumed from journal)"
        elif record.get("fallback"):
            note = f" (deadline fallback: {record['fallback']})"
        elif record.get("attempts", 1) > 1:
            note = f" ({record['attempts']} attempts)"
        if status == "ok":
            print(
                f"  {record['job_id']}: area={record['area']:.0f} "
                f"cells={record['cells']} "
                f"{record.get('map_seconds', 0.0):.2f}s{note}"
            )
        else:
            print(
                f"  {record['job_id']}: {status.upper()} — "
                f"{record.get('error', 'no detail')}{note}"
            )

    config = BatchConfig(
        backend=args.backend,
        workers=args.workers,
        deadline=args.deadline,
        retries=args.retries,
        backoff=args.backoff,
        cache_dir=cache_dir,
        journal=journal,
        output_dir=args.output_dir,
        resume=args.resume,
        fault_plan=fault_plan,
        tracer=tracer,
        metrics=metrics,
        progress=progress,
        result_cache=args.result_cache,
    )
    print(
        f"batch: {len(jobs)} job(s) "
        f"({len(designs)} design(s) × {len(args.libraries)} librar"
        f"{'y' if len(args.libraries) == 1 else 'ies'}) on the "
        f"{args.backend} backend, workers={config.resolved_workers()}"
    )
    report = run_batch(jobs, config)
    counts = report.counts()
    print(
        f"batch finished in {report.elapsed:.2f}s: "
        + ", ".join(f"{k}={v}" for k, v in sorted(counts.items()) if v)
        + (f", pool_breaks={report.pool_breaks}" if report.pool_breaks else "")
    )
    if report.journal is not None:
        print(f"journal: {report.journal}")
    if args.bench_snapshot:
        snapshot = report.to_bench_snapshot(max_depth=args.max_depth)
        write_bench_snapshot(args.bench_snapshot, snapshot)
        print(f"bench snapshot written to {args.bench_snapshot}")
    if tracer is not None:
        tracer.assert_well_formed()
        write_trace(args.trace, tracer, metrics=metrics)
        print(f"trace written to {args.trace}")
    if args.metrics:
        print("metrics:")
        for line in _format_metrics(metrics):
            print(f"  {line}")
    failed = [r for r in report.results if r.get("status") != "ok"]
    bad_verify = [
        r
        for r in report.results
        if r.get("status") == "ok" and not r.get("verify", {}).get("ok", True)
    ]
    bad_certify: list[str] = []
    if args.certify:
        from .conformance.certifier import certify_mapping

        by_id = {job.job_id: job for job in jobs}
        sources: dict[str, object] = {}
        libraries: dict[str, object] = {}
        print("certifying mapped networks:")
        for record in report.results:
            if record.get("status") != "ok":
                continue
            job_id = record["job_id"]
            job = by_id.get(job_id)
            blif = record.get("blif")
            if job is None or not blif:
                # A resumed record's netlist text lives in the artifact
                # directory, not the in-memory report — nothing to check.
                print(f"  {job_id}: no netlist text to certify (resumed?)")
                continue
            if job.design not in sources:
                sources[job.design] = synthesize_benchmark(job.design).netlist(
                    job.design
                )
            if job.library not in libraries:
                libraries[job.library] = load_library(job.library)
            certificate = certify_mapping(
                sources[job.design],
                read_blif_text(blif),
                libraries[job.library],
                metrics=metrics,
            )
            if not _report_certificate(job_id, certificate):
                bad_certify.append(job_id)
    for record in failed:
        print(
            f"FAILED {record['job_id']}: {record.get('error')}",
            file=sys.stderr,
        )
    for record in bad_verify:
        print(f"VERIFY FAILED {record['job_id']}", file=sys.stderr)
    for job_id in bad_certify:
        print(f"CERTIFY REJECTED {job_id}", file=sys.stderr)
    return 1 if failed or bad_verify or bad_certify else 0


def _cmd_explain(args: argparse.Namespace) -> int:
    import os

    if os.path.exists(args.source):
        payload = load_explain(args.source)
    elif args.source in CATALOG:
        response = execute_explain(
            ExplainRequest(
                library=args.library,
                design=args.source,
                cone=args.cone,
                limit=args.limit,
                rejected_only=args.rejected_only,
            )
        )
        for line in response.rendered:
            print(line)
        return 0
    else:
        print(
            f"{args.source}: not an explain JSON file or catalog benchmark",
            file=sys.stderr,
        )
        return 2
    try:
        validate_explain_payload(payload)
    except ValueError as exc:
        print(f"invalid explain payload: {exc}", file=sys.stderr)
        return 1
    for line in render_explain(
        payload,
        cone=args.cone,
        limit=args.limit,
        rejected_only=args.rejected_only,
    ):
        print(line)
    return 0


def _format_metrics(registry: MetricsRegistry) -> list[str]:
    lines = []
    for name, snap in registry.snapshot().items():
        if snap["type"] == "histogram":
            mean = f"{snap['mean']:.6f}" if snap["mean"] is not None else "-"
            lines.append(
                f"{name} = histogram(count={snap['count']}, "
                f"sum={snap['sum']:.6f}, mean={mean})"
            )
        else:
            lines.append(f"{name} = {snap['value']}")
    return lines


def _cmd_perf(args: argparse.Namespace) -> int:
    tracer = Tracer() if args.trace else None
    metrics = MetricsRegistry()

    def progress(name: str, entry: dict) -> None:
        verdict = ""
        if "verify" in entry:
            verdict = " verify=ok" if entry["verify"]["ok"] else " verify=FAILED"
        print(
            f"  {name}: {entry['map_seconds']:.2f}s area={entry['area']:.0f} "
            f"cells={entry['cells']} "
            f"cache_hit_rate={entry['cache']['hit_rate']:.2f}{verdict}"
        )

    print(f"perf: mapping onto {args.library} (workers={args.workers})")
    snapshot = run_perf(
        benchmarks=args.benchmarks or None,
        library=args.library,
        workers=args.workers,
        max_depth=args.depth,
        verify=not args.no_verify,
        tracer=tracer,
        metrics=metrics,
        progress=progress,
    )
    write_bench_snapshot(args.output, snapshot)
    print(
        f"snapshot of {len(snapshot['benchmarks'])} benchmark(s) "
        f"written to {args.output}"
    )
    if tracer is not None:
        tracer.assert_well_formed()
        write_trace(args.trace, tracer, metrics=metrics)
        print(f"trace written to {args.trace}")
    if args.metrics:
        print("metrics:")
        for line in _format_metrics(metrics):
            print(f"  {line}")
    failed = [
        name
        for name, entry in snapshot["benchmarks"].items()
        if "verify" in entry and not entry["verify"]["ok"]
    ]
    if failed:
        print(f"verification FAILED for: {', '.join(sorted(failed))}")
        return 1
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from .service.daemon import ServiceConfig, serve

    try:
        fault_plan = FaultPlan.parse(args.inject) if args.inject else None
    except ValueError as exc:
        print(f"bad --inject spec: {exc}", file=sys.stderr)
        return 2
    config = ServiceConfig(
        host=args.host,
        port=args.port,
        backend=args.backend,
        workers=args.workers,
        queue_limit=args.queue_limit,
        deadline_seconds=args.deadline,
        cache_dir=_resolved_cache_dir(args),
        preload=tuple(args.preload or ()),
        fault_plan=fault_plan,
        trace_path=args.trace,
        metrics_path=args.metrics_file,
    )
    return serve(config)


def _cmd_obs(args: argparse.Namespace) -> int:
    from .obs.inspect import (
        critical_path,
        diff_traces,
        load_trace,
        render_critical,
        render_diff,
        render_top,
        render_tree,
        top_spans,
    )

    try:
        if args.view == "diff":
            diff = diff_traces(load_trace(args.trace), load_trace(args.other))
            lines = render_diff(diff, limit=args.limit)
        else:
            payload = load_trace(args.trace)
            if args.view == "tree":
                lines = render_tree(payload, max_depth=args.depth)
            elif args.view == "top":
                lines = render_top(
                    top_spans(
                        payload, limit=args.limit, by_worker=args.by_worker
                    )
                )
            else:  # critical
                lines = render_critical(critical_path(payload))
    except (OSError, ValueError) as exc:
        print(f"cannot inspect trace: {exc}", file=sys.stderr)
        return 1
    try:
        for line in lines:
            print(line)
    except BrokenPipeError:
        # Downstream pager/head closed early; suppress the traceback the
        # interpreter would otherwise print while flushing stdout at exit.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    from .cache import resultcache

    root = args.cache_dir or str(anncache.default_cache_root())
    if args.clear:
        removed = anncache.clear_annotation_cache(root)
        print(f"cleared {removed} cached annotation payload(s) from {root}")
        removed = resultcache.clear_result_cache(root)
        print(f"cleared {removed} cached map result(s) from {root}")
        return 0
    entries = anncache.cache_entries(root)
    print(f"annotation cache at {root}: {len(entries)} entrie(s)")
    for path in entries:
        size = path.stat().st_size
        print(f"  {path.name}  ({size} bytes)")
    results = resultcache.result_entries(root)
    total = sum(path.stat().st_size for path in results)
    print(
        f"result cache at {root}: {len(results)} entrie(s), {total} bytes"
    )
    for path in results:
        size = path.stat().st_size
        print(f"  {path.name}  ({size} bytes)")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Hazard-aware technology mapping (Siegel/De Micheli/Dill, DAC'93)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("census", help="Table-1 hazard census").set_defaults(
        func=_cmd_census
    )

    audit = sub.add_parser("audit", help="per-cell hazard audit of a library")
    audit.add_argument("library", choices=sorted(ALL_LIBRARIES))
    audit.set_defaults(func=_cmd_audit)

    sub.add_parser("bench", help="list the benchmark catalog").set_defaults(
        func=_cmd_bench
    )

    map_cmd = sub.add_parser("map", help="map a design onto a library")
    map_cmd.add_argument("design", help="catalog benchmark, .eqn, or .blif file")
    map_cmd.add_argument("library", choices=sorted(ALL_LIBRARIES))
    # Option flags (--sync/--depth/--max-inputs/--objective/--filter-mode/
    # --workers) are derived from the repro-api/v1 declaration table.
    add_option_arguments(map_cmd)
    map_cmd.add_argument(
        "--dont-cares",
        action="store_true",
        help="waive hazards outside the specified bursts (section 6)",
    )
    map_cmd.add_argument("--verify", action="store_true")
    map_cmd.add_argument(
        "--certify",
        action="store_true",
        help="independently certify the mapped network (equivalence + "
        "hazard freedom, repro-cert/v1); nonzero exit on rejection",
    )
    map_cmd.add_argument("--output", help="write the mapped network as BLIF")
    map_cmd.add_argument(
        "--deadline",
        type=float,
        default=None,
        help="budget in seconds; overruns degrade to the trivial "
        "depth-1 cover",
    )
    map_cmd.add_argument(
        "--server",
        metavar="URL",
        help="send the request to a running `repro serve` instance",
    )
    map_cmd.add_argument(
        "--no-cache",
        action="store_true",
        help="skip the on-disk library-annotation cache "
        "(overrides REPRO_ANNOTATION_CACHE)",
    )
    map_cmd.add_argument(
        "--cache-dir", help="annotation cache location (default: ~/.cache/repro-tmap)"
    )
    map_cmd.add_argument(
        "--trace",
        metavar="FILE",
        help="record the run as a repro-trace/v1 span tree at FILE "
        "(with --server: the stitched client+daemon+worker tree)",
    )
    map_cmd.add_argument(
        "--log",
        metavar="FILE",
        help="append repro-log/v1 structured events to FILE",
    )
    map_cmd.add_argument(
        "--metrics",
        action="store_true",
        help="print the run's metrics snapshot",
    )
    map_cmd.add_argument(
        "--explain",
        metavar="FILE",
        nargs="?",
        const="",
        default=None,
        help="record every covering decision as a repro-explain/v1 log "
        "(default FILE: <design>_explain.json)",
    )
    map_cmd.set_defaults(func=_cmd_map)

    batch = sub.add_parser(
        "batch",
        help="map a catalog of jobs through the fault-tolerant batch engine",
    )
    batch.add_argument(
        "designs",
        nargs="*",
        help="catalog benchmarks (default: the full Table-5 catalog)",
    )
    batch.add_argument(
        "--libraries",
        nargs="+",
        choices=sorted(ALL_LIBRARIES),
        default=["CMOS3"],
        help="target libraries; jobs are the designs × libraries product",
    )
    batch.add_argument(
        "--backend",
        choices=BACKEND_NAMES,
        default="processes",
        help="execution backend (default: processes)",
    )
    batch.add_argument(
        "--workers",
        type=int,
        default=0,
        help="pool width (0 = one per CPU)",
    )
    batch.add_argument(
        "--deadline",
        type=float,
        default=None,
        help="per-job budget in seconds; overruns degrade to the "
        "trivial depth-1 cover",
    )
    batch.add_argument(
        "--retries",
        type=int,
        default=2,
        help="retries per job for transient failures (default: 2)",
    )
    batch.add_argument(
        "--backoff",
        type=float,
        default=0.5,
        help="base backoff seconds, doubled per attempt (default: 0.5)",
    )
    # Shared option flags from the repro-api/v1 table; `--workers` is
    # excluded because on batch it is the pool width (declared above).
    add_option_arguments(batch, exclude=("workers",))
    batch.add_argument(
        "--server",
        metavar="URL",
        help="send the batch to a running `repro serve` instance",
    )
    batch.add_argument(
        "--verify",
        action="store_true",
        help="verify every mapped network (equivalence + hazard safety)",
    )
    batch.add_argument(
        "--explain",
        action="store_true",
        help="write a repro-explain/v1 log next to each netlist artifact",
    )
    batch.add_argument(
        "--certify",
        action="store_true",
        help="post-pass: independently certify every successful job's "
        "mapped network; nonzero exit on any rejection",
    )
    batch.add_argument(
        "--journal",
        help="repro-batch/v1 checkpoint journal path "
        "(default: <output-dir>/batch_journal.jsonl)",
    )
    batch.add_argument(
        "--output-dir",
        help="write each mapped network as BLIF (plus the journal) here",
    )
    batch.add_argument(
        "--resume",
        action="store_true",
        help="skip journalled jobs whose spec and artifact digests verify",
    )
    batch.add_argument(
        "--check",
        action="store_true",
        help="verify the journal and artifacts without mapping; "
        "nonzero exit on tamper/failure",
    )
    batch.add_argument(
        "--bench-snapshot",
        metavar="FILE",
        help="write a repro-bench-mapping/v1 snapshot (single-library "
        "batches; gated by benchmarks/check_regression.py --subset)",
    )
    batch.add_argument(
        "--inject",
        action="append",
        metavar="KIND@SITE[#JOB][*TIMES]",
        help="install a deterministic fault (e.g. raise@cover.cone#chu-ad-opt); "
        "repeatable, for CI smoke tests of the retry path",
    )
    batch.add_argument(
        "--no-cache",
        action="store_true",
        help="skip the on-disk library-annotation cache",
    )
    batch.add_argument(
        "--cache-dir", help="annotation cache location (default: ~/.cache/repro-tmap)"
    )
    batch.add_argument(
        "--trace",
        metavar="FILE",
        help="record the run as a repro-trace/v1 span tree at FILE "
        "(with --server: the stitched client+daemon+worker tree)",
    )
    batch.add_argument(
        "--log",
        metavar="FILE",
        help="append repro-log/v1 structured events to FILE",
    )
    batch.add_argument(
        "--metrics",
        action="store_true",
        help="print the run's metrics snapshot",
    )
    batch.set_defaults(func=_cmd_batch)

    certify = sub.add_parser(
        "certify",
        help="independently certify mapped networks (repro-cert/v1)",
    )
    certify.add_argument(
        "designs",
        nargs="*",
        help="catalog benchmarks (default: the full Table-5 catalog)",
    )
    certify.add_argument(
        "--library",
        choices=sorted(ALL_LIBRARIES),
        default="CMOS3",
        help="target library (default: CMOS3)",
    )
    certify.add_argument(
        "--depth",
        type=int,
        default=3,
        help="cluster-enumeration depth for the mapping pass (default: 3)",
    )
    certify.add_argument(
        "--mapped",
        metavar="FILE",
        help="certify an existing mapped BLIF against one named design "
        "instead of mapping it here",
    )
    certify.add_argument(
        "--exhaustive-limit",
        type=int,
        default=6,
        help="enumerate every transition pair up to this many support "
        "variables; sample above it (default: 6)",
    )
    certify.add_argument(
        "--samples",
        type=int,
        default=150,
        help="sampled transitions per output above the exhaustive "
        "limit (default: 150)",
    )
    certify.add_argument(
        "--seed",
        type=int,
        default=0,
        help="seed for the sampled-transition generator (default: 0)",
    )
    certify.add_argument(
        "--json",
        metavar="FILE",
        help="write the repro-cert/v1 certificate(s) to FILE",
    )
    certify.add_argument(
        "--no-cache",
        action="store_true",
        help="skip the on-disk library-annotation cache",
    )
    certify.add_argument(
        "--cache-dir", help="annotation cache location (default: ~/.cache/repro-tmap)"
    )
    certify.set_defaults(func=_cmd_certify)

    explain_cmd = sub.add_parser(
        "explain",
        help="render the per-cone decision report of an explain log",
    )
    explain_cmd.add_argument(
        "source",
        help="a repro-explain/v1 JSON file, or a catalog benchmark "
        "to map on the fly",
    )
    explain_cmd.add_argument(
        "--library",
        choices=sorted(ALL_LIBRARIES),
        default="CMOS3",
        help="library for on-the-fly mapping (default: CMOS3)",
    )
    explain_cmd.add_argument("--cone", help="restrict to one cone root")
    explain_cmd.add_argument(
        "--limit", type=int, help="cap candidate lines per cone"
    )
    explain_cmd.add_argument(
        "--rejected-only",
        action="store_true",
        help="show only hazard-rejected candidates",
    )
    explain_cmd.set_defaults(func=_cmd_explain)

    perf = sub.add_parser(
        "perf",
        help="run the Table-5 workload and write a BENCH_mapping.json snapshot",
    )
    perf.add_argument(
        "--benchmarks",
        nargs="*",
        choices=sorted(CATALOG),
        help="catalog subset to run (default: the full Table-5 order)",
    )
    perf.add_argument(
        "--library", choices=sorted(ALL_LIBRARIES), default="CMOS3"
    )
    perf.add_argument(
        "--output",
        default="BENCH_mapping.json",
        help="snapshot destination (default: ./BENCH_mapping.json)",
    )
    perf.add_argument("--depth", type=int, default=5)
    perf.add_argument(
        "--workers",
        type=int,
        default=1,
        help="parallel cone-covering threads (0 = one per CPU)",
    )
    perf.add_argument(
        "--no-verify",
        action="store_true",
        help="skip hazard/equivalence verification of each mapped network",
    )
    perf.add_argument(
        "--trace",
        metavar="FILE",
        help="record the whole session as a repro-trace/v1 span forest",
    )
    perf.add_argument(
        "--metrics",
        action="store_true",
        help="print the aggregated metrics snapshot",
    )
    perf.set_defaults(func=_cmd_perf)

    serve_cmd = sub.add_parser(
        "serve",
        help="run the persistent mapping service (HTTP/JSON, repro-api/v1)",
    )
    serve_cmd.add_argument("--host", default="127.0.0.1")
    serve_cmd.add_argument(
        "--port",
        type=int,
        default=8347,
        help="listen port (0 = an ephemeral port, reported at startup)",
    )
    serve_cmd.add_argument(
        "--backend",
        choices=BACKEND_NAMES,
        default="threads",
        help="request-execution backend (default: threads — shares the "
        "warm library cache and metrics registry)",
    )
    serve_cmd.add_argument(
        "--workers",
        type=int,
        default=2,
        help="executor pool width (default: 2)",
    )
    serve_cmd.add_argument(
        "--queue-limit",
        type=int,
        default=8,
        help="max requests admitted at once; beyond it clients get 429",
    )
    serve_cmd.add_argument(
        "--deadline",
        type=float,
        default=None,
        help="default per-request budget in seconds; overruns degrade "
        "to the trivial depth-1 cover",
    )
    serve_cmd.add_argument(
        "--preload",
        nargs="*",
        choices=sorted(ALL_LIBRARIES),
        help="libraries to load, annotate, and index at boot",
    )
    serve_cmd.add_argument(
        "--no-cache",
        action="store_true",
        help="skip the on-disk library-annotation cache",
    )
    serve_cmd.add_argument(
        "--cache-dir", help="annotation cache location (default: ~/.cache/repro-tmap)"
    )
    serve_cmd.add_argument(
        "--inject",
        action="append",
        metavar="KIND@SITE[#JOB][*TIMES]",
        help="install a deterministic fault plan (smoke tests only)",
    )
    serve_cmd.add_argument(
        "--trace",
        metavar="FILE",
        help="write the service's repro-trace/v1 span forest at shutdown",
    )
    serve_cmd.add_argument(
        "--log",
        metavar="FILE",
        help="append repro-log/v1 structured events (including the "
        "per-request access log) to FILE",
    )
    serve_cmd.add_argument(
        "--metrics-file",
        metavar="FILE",
        help="write the repro-metrics/v1 snapshot at shutdown",
    )
    serve_cmd.set_defaults(func=_cmd_serve)

    obs = sub.add_parser(
        "obs",
        help="inspect repro-trace/v1 files: tree, hot spans, critical "
        "path, run-to-run diff",
    )
    obs_sub = obs.add_subparsers(dest="view", required=True)
    obs_tree = obs_sub.add_parser("tree", help="render the span tree")
    obs_tree.add_argument("trace", help="a repro-trace/v1 JSON file")
    obs_tree.add_argument(
        "--depth", type=int, default=None, help="clip the tree at this depth"
    )
    obs_top = obs_sub.add_parser(
        "top", help="hottest span groups by self-time"
    )
    obs_top.add_argument("trace", help="a repro-trace/v1 JSON file")
    obs_top.add_argument("--limit", type=int, default=10)
    obs_top.add_argument(
        "--by-worker",
        action="store_true",
        help="split groups by the worker-thread attribute",
    )
    obs_critical = obs_sub.add_parser(
        "critical", help="greedy longest-duration root-to-leaf chain"
    )
    obs_critical.add_argument("trace", help="a repro-trace/v1 JSON file")
    obs_diff = obs_sub.add_parser(
        "diff", help="span-by-span duration diff of two traces"
    )
    obs_diff.add_argument("trace", help="the before trace")
    obs_diff.add_argument("other", help="the after trace")
    obs_diff.add_argument("--limit", type=int, default=20)
    for obs_parser in (obs_tree, obs_top, obs_critical, obs_diff):
        obs_parser.set_defaults(func=_cmd_obs)

    cache_cmd = sub.add_parser(
        "cache", help="inspect or clear the annotation and result caches"
    )
    cache_cmd.add_argument("--clear", action="store_true", help="delete all entries")
    cache_cmd.add_argument("--cache-dir", help="cache location to operate on")
    cache_cmd.set_defaults(func=_cmd_cache)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    log_path = getattr(args, "log", None)
    if not log_path:
        return args.func(args)
    # --log: every structured event the command (and, on in-process
    # backends, its workers) emits goes to one JSON-lines file.  The
    # handler is installed before any pool is created so forked
    # process-pool workers inherit it.
    from .obs.log import close_event_log, configure_event_log

    handler = configure_event_log(log_path)
    try:
        return args.func(args)
    finally:
        close_event_log(handler)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
