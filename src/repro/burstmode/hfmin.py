"""Hazard-free two-level minimization (Nowick & Dill, ICCAD'92).

This is the paper's reference [12] — the logic optimizer whose output
the asynchronous technology mapper consumes.  Given an incompletely
specified function (ON-set / OFF-set covers; everything else don't
care) and a set of multiple-input-change transitions, it produces a
sum-of-products cover free of logic hazards for every specified
transition:

* a **1→1** transition ``[A, B]`` demands its whole transition cube be
  held by a *single* cube of the cover (a *required cube*);
* a **1→0** transition ``A→B`` makes its transition cube *privileged*
  with start point ``A``: no cover cube may intersect it without
  containing ``A`` (an *illegal intersection* could turn on and off
  mid-burst — a dynamic hazard); additionally every maximal ON subcube
  ``[A, C]`` is required, so the output falls exactly once;
* a **0→1** transition is the reverse of a 1→0;
* a **0→0** transition needs nothing (AND-OR logic cannot glitch high
  while every product stays off).

Two engines share the requirement analysis:

* **exact** — all primes of (ON ∪ DC), split into maximal
  *dhf-implicants* (no illegal intersections), then a minimum covering
  over required cubes and ON points (the published algorithm);
* **heuristic** — each required/ON cube greedily expanded to a maximal
  dhf-implicant.  Still provably hazard-free (both Nowick–Dill
  conditions hold by construction), merely not minimum; used for the
  larger benchmark controllers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

from ..boolean.cover import Cover
from ..boolean.cube import Cube, bit_indices
from ..boolean.minimize import CoveringProblem


class HazardFreeError(Exception):
    """The specification admits no hazard-free sum-of-products cover."""


@dataclass(frozen=True)
class TransitionSpec:
    """One specified input burst: from point ``start`` to point ``end``."""

    start: int
    end: int

    def space(self, nvars: int) -> Cube:
        return Cube.minterm(self.start, nvars).supercube(
            Cube.minterm(self.end, nvars)
        )


@dataclass(frozen=True)
class PrivilegedCube:
    """A dynamic transition's cube: touch it only through its start."""

    cube: Cube
    start: int

    def illegally_intersected_by(self, implicant: Cube) -> bool:
        return implicant.intersects(self.cube) and not implicant.contains_point(
            self.start
        )


@dataclass
class HazardFreeResult:
    cover: Cover
    required_cubes: list[Cube]
    privileged_cubes: list[PrivilegedCube]
    exact: bool


def classify_requirements(
    onset: Cover,
    offset: Cover,
    transitions: Sequence[TransitionSpec],
) -> tuple[list[Cube], list[PrivilegedCube]]:
    """Derive required and privileged cubes from the transition list."""
    nvars = onset.nvars
    required: list[Cube] = []
    privileged: list[PrivilegedCube] = []

    def value(point: int) -> Optional[bool]:
        if onset.evaluate(point):
            return True
        if offset.evaluate(point):
            return False
        return None

    for transition in transitions:
        v_start = value(transition.start)
        v_end = value(transition.end)
        if v_start is None or v_end is None:
            raise HazardFreeError(
                "transition endpoints must have specified values"
            )
        space = transition.space(nvars)
        if v_start and v_end:
            # Static 1→1: the whole cube must be ON and singly held.
            for point in space.minterms():
                if value(point) is False:
                    raise HazardFreeError(
                        f"function hazard: 1→1 transition "
                        f"{transition.start:0{nvars}b}->{transition.end:0{nvars}b} "
                        f"crosses an OFF point"
                    )
            required.append(space)
        elif v_start and not v_end:
            required.extend(
                _falling_required(transition.start, space, value)
            )
            privileged.append(PrivilegedCube(space, transition.start))
        elif not v_start and v_end:
            required.extend(
                _falling_required(transition.end, space, value)
            )
            privileged.append(PrivilegedCube(space, transition.end))
        # 0→0: nothing to do.
    return _maximal(required), privileged


def _falling_required(on_point: int, space: Cube, value) -> list[Cube]:
    """Maximal ON subcubes [on_point, C] of a dynamic transition.

    These keep the output from falling early: along any change order
    the output stays 1 while the inputs remain inside one of them.
    """
    nvars = space.nvars
    on_cube = Cube.minterm(on_point, nvars)
    candidates: list[Cube] = []
    for point in space.minterms():
        if value(point) is False:
            continue
        candidate = on_cube.supercube(Cube.minterm(point, nvars))
        if all(value(inner) is not False for inner in candidate.minterms()):
            candidates.append(candidate)
    return _maximal(candidates)


def _maximal(cubes: Iterable[Cube]) -> list[Cube]:
    unique = list(dict.fromkeys(cubes))
    return [
        c for c in unique if not any(d != c and d.contains(c) for d in unique)
    ]


def is_implicant(cube: Cube, offset: Cover) -> bool:
    """Implicant of (ON ∪ DC) ⇔ disjoint from every OFF cube."""
    return not any(cube.intersects(off) for off in offset)


def is_dhf_implicant(
    cube: Cube, offset: Cover, privileged: Sequence[PrivilegedCube]
) -> bool:
    if not is_implicant(cube, offset):
        return False
    return not any(p.illegally_intersected_by(cube) for p in privileged)


def expand_to_dhf_prime(
    cube: Cube, offset: Cover, privileged: Sequence[PrivilegedCube]
) -> Cube:
    """Greedily expand a dhf-implicant to a maximal one (deterministic)."""
    if not is_dhf_implicant(cube, offset, privileged):
        raise HazardFreeError(
            f"cube {cube.to_pattern()} is not a dhf-implicant"
        )
    current = cube
    changed = True
    while changed:
        changed = False
        for var in bit_indices(current.used):
            candidate = current.expand_var(var)
            if is_dhf_implicant(candidate, offset, privileged):
                current = candidate
                changed = True
    return current


def dhf_prime_implicants(
    onset: Cover,
    offset: Cover,
    privileged: Sequence[PrivilegedCube],
) -> list[Cube]:
    """All maximal dhf-implicants (exact engine).

    Standard splitting: a violating prime is replaced by its maximal
    subcubes pushed off the privileged cube (one extra literal, opposed
    to the cube's phase, per free variable of the implicant inside the
    privileged cube's fixed dimensions).
    """
    function = offset.complement()  # ON ∪ DC
    primes = function.all_primes()
    result: set[Cube] = set()
    seen: set[Cube] = set()
    work = list(primes)
    while work:
        implicant = work.pop()
        if implicant in seen:
            continue
        seen.add(implicant)
        violation = None
        for priv in privileged:
            if priv.illegally_intersected_by(implicant):
                violation = priv
                break
        if violation is None:
            result.add(implicant)
            continue
        for var in bit_indices(violation.cube.used & implicant.free_vars):
            bit = 1 << var
            opposite = 0 if violation.cube.phase & bit else bit
            child = Cube(
                implicant.used | bit,
                (implicant.phase & ~bit) | opposite,
                implicant.nvars,
            )
            if child not in seen:
                work.append(child)
    return _maximal(result)


#: Beyond this many variables the exact engine is not attempted.
EXACT_MAX_VARS = 8


def minimize_hazard_free(
    onset: Cover,
    offset: Cover,
    transitions: Sequence[TransitionSpec],
    exact: Optional[bool] = None,
) -> HazardFreeResult:
    """Hazard-free two-level minimization.

    ``exact=None`` picks the exact engine for functions of at most
    ``EXACT_MAX_VARS`` variables and the heuristic otherwise.  Raises
    :class:`HazardFreeError` when the specification is unrealizable
    (the Nowick–Dill existence condition fails).
    """
    nvars = onset.nvars
    required, privileged = classify_requirements(onset, offset, transitions)
    if exact is None:
        exact = nvars <= EXACT_MAX_VARS
    if exact:
        cover = _solve_exact(onset, offset, required, privileged)
    else:
        cover = _solve_heuristic(onset, offset, required, privileged)
    problems = verify_hazard_free_cover(cover, required, privileged)
    if problems:
        raise HazardFreeError("; ".join(problems))
    return HazardFreeResult(cover, required, list(privileged), exact)


def _solve_exact(
    onset: Cover,
    offset: Cover,
    required: list[Cube],
    privileged: list[PrivilegedCube],
) -> Cover:
    nvars = onset.nvars
    dhf = dhf_prime_implicants(onset, offset, privileged)
    rows: list[set[int]] = []
    for cube in required:
        covering = {i for i, p in enumerate(dhf) if p.contains(cube)}
        if not covering:
            raise HazardFreeError(
                f"required cube {cube.to_pattern()} fits in no dhf-prime "
                "implicant; the transition set is unrealizable in "
                "hazard-free two-level logic"
            )
        rows.append(covering)
    for point in sorted(onset.minterms()):
        covering = {i for i, p in enumerate(dhf) if p.contains_point(point)}
        if not covering:
            raise HazardFreeError(
                f"ON point {point:0{nvars}b} uncoverable without an "
                "illegal intersection"
            )
        rows.append(covering)
    if not rows:
        return Cover.empty(nvars)
    costs = [1.0 + p.num_literals * 1e-3 for p in dhf]
    chosen = CoveringProblem(rows, costs).solve()
    return Cover([dhf[i] for i in chosen], nvars)


def _solve_heuristic(
    onset: Cover,
    offset: Cover,
    required: list[Cube],
    privileged: list[PrivilegedCube],
) -> Cover:
    """Expansion-based engine: hazard-free by construction, not minimum."""
    nvars = onset.nvars
    chosen: list[Cube] = []

    def add(cube: Cube) -> None:
        if not is_dhf_implicant(cube, offset, privileged):
            raise HazardFreeError(
                f"cube {cube.to_pattern()} cannot join a hazard-free cover "
                "(illegal intersection or OFF overlap)"
            )
        expanded = expand_to_dhf_prime(cube, offset, privileged)
        if not any(existing.contains(expanded) for existing in chosen):
            chosen.append(expanded)

    for cube in required:
        add(cube)
    current = Cover(chosen, nvars)
    for cube in onset:
        for point in cube.minterms():
            if not current.evaluate(point):
                add(Cube.minterm(point, nvars))
                current = Cover(chosen, nvars)
    # Drop cubes wholly contained in another chosen cube (safe: both
    # Nowick–Dill conditions survive deleting a contained duplicate).
    pruned: list[Cube] = []
    for i, cube in enumerate(chosen):
        others = chosen[:i] + chosen[i + 1 :]
        if any(o.contains(cube) for o in pruned) or any(
            o.contains(cube) and not cube.contains(o) for o in others
        ):
            continue
        pruned.append(cube)
    return Cover(pruned, nvars)


def verify_hazard_free_cover(
    cover: Cover,
    required: Sequence[Cube],
    privileged: Sequence[PrivilegedCube],
) -> list[str]:
    """Independent check of the two Nowick–Dill conditions.

    Returns human-readable violations (empty list = hazard-free for the
    specified transitions).
    """
    problems = []
    for cube in required:
        if not cover.single_cube_contains(cube):
            problems.append(f"required cube {cube.to_pattern()} not singly held")
    for priv in privileged:
        for cube in cover:
            if priv.illegally_intersected_by(cube):
                problems.append(
                    f"cube {cube.to_pattern()} illegally intersects "
                    f"privileged {priv.cube.to_pattern()}"
                )
    return problems
