"""Burst-mode specifications (Figure 1 of the paper).

A burst-mode machine sits in a state until a complete *input burst* — a
non-empty set of input changes, arriving in any order — has occurred,
then emits an *output burst* and moves to a next state.  The generalized
fundamental-mode assumption says the combinational logic settles before
the next burst begins, but no hazard may appear *during* a burst.

The synthesis path (:mod:`repro.burstmode.synth`) turns a specification
into hazard-free two-level equations for the architecture of Figure 1:
combinational next-state/output logic plus separate storage elements.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Optional, Sequence


@dataclass(frozen=True)
class Burst:
    """One specified transition of a burst-mode machine.

    ``input_changes`` — names of inputs that toggle (in any order);
    ``output_changes`` — names of outputs that toggle once the burst
    completes; ``next_state`` — successor state name.
    """

    input_changes: frozenset[str]
    output_changes: frozenset[str]
    next_state: str

    @classmethod
    def make(
        cls,
        inputs: Iterable[str],
        outputs: Iterable[str],
        next_state: str,
    ) -> "Burst":
        changes = frozenset(inputs)
        if not changes:
            raise SpecError("input burst must be non-empty")
        return cls(changes, frozenset(outputs), next_state)


class SpecError(Exception):
    """Raised for malformed burst-mode specifications."""


@dataclass
class BurstModeSpec:
    """A complete burst-mode state machine.

    ``transitions[state]`` lists the bursts leaving ``state``.  The
    machine starts in ``initial_state`` with input/output values
    ``initial_inputs`` / ``initial_outputs``.
    """

    name: str
    inputs: list[str]
    outputs: list[str]
    initial_state: str
    transitions: dict[str, list[Burst]] = field(default_factory=dict)
    initial_inputs: dict[str, bool] = field(default_factory=dict)
    initial_outputs: dict[str, bool] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for name in self.inputs:
            self.initial_inputs.setdefault(name, False)
        for name in self.outputs:
            self.initial_outputs.setdefault(name, False)

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    @property
    def states(self) -> list[str]:
        names: list[str] = []
        for state, bursts in self.transitions.items():
            if state not in names:
                names.append(state)
            for burst in bursts:
                if burst.next_state not in names:
                    names.append(burst.next_state)
        if self.initial_state not in names:
            names.insert(0, self.initial_state)
        return names

    def add_transition(
        self,
        state: str,
        input_changes: Iterable[str],
        output_changes: Iterable[str],
        next_state: str,
    ) -> None:
        burst = Burst.make(input_changes, output_changes, next_state)
        for name in burst.input_changes:
            if name not in self.inputs:
                raise SpecError(f"unknown input {name!r}")
        for name in burst.output_changes:
            if name not in self.outputs:
                raise SpecError(f"unknown output {name!r}")
        self.transitions.setdefault(state, []).append(burst)

    # ------------------------------------------------------------------
    # Validity
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check the burst-mode rules.

        * every transition references known signals;
        * *maximal set property*: no input burst leaving a state is a
          subset of another leaving the same state (otherwise the
          machine could fire early);
        * reachability of every state with consistent entry values.
        """
        for state, bursts in self.transitions.items():
            for i, a in enumerate(bursts):
                for b in bursts[i + 1 :]:
                    if a.input_changes <= b.input_changes:
                        raise SpecError(
                            f"state {state}: burst {sorted(a.input_changes)} is a "
                            f"subset of {sorted(b.input_changes)}"
                        )
                    if b.input_changes <= a.input_changes:
                        raise SpecError(
                            f"state {state}: burst {sorted(b.input_changes)} is a "
                            f"subset of {sorted(a.input_changes)}"
                        )
        self.trace_entry_points()

    def trace_entry_points(
        self,
    ) -> dict[str, tuple[dict[str, bool], dict[str, bool]]]:
        """Input/output values on entry to each reachable state.

        Burst-mode machines require a unique entry point per state; a
        conflict (two paths entering a state with different values)
        raises :class:`SpecError`.
        """
        entry: dict[str, tuple[dict[str, bool], dict[str, bool]]] = {
            self.initial_state: (dict(self.initial_inputs), dict(self.initial_outputs))
        }
        frontier = [self.initial_state]
        while frontier:
            state = frontier.pop()
            in_values, out_values = entry[state]
            for burst in self.transitions.get(state, []):
                new_in = dict(in_values)
                for name in burst.input_changes:
                    new_in[name] = not new_in[name]
                new_out = dict(out_values)
                for name in burst.output_changes:
                    new_out[name] = not new_out[name]
                successor = burst.next_state
                if successor in entry:
                    old_in, old_out = entry[successor]
                    if old_in != new_in or old_out != new_out:
                        raise SpecError(
                            f"state {successor} entered with inconsistent values"
                        )
                else:
                    entry[successor] = (new_in, new_out)
                    frontier.append(successor)
        return entry

    def stats(self) -> dict[str, int]:
        return {
            "states": len(self.states),
            "inputs": len(self.inputs),
            "outputs": len(self.outputs),
            "transitions": sum(len(b) for b in self.transitions.values()),
        }
