"""Burst-mode front end: specs, hazard-free minimization, synthesis, benchmarks."""

from .benchmarks import (
    CATALOG,
    TABLE5_ORDER,
    BenchmarkInfo,
    benchmark_names,
    benchmark_netlist,
    build_loop_machine,
    synthesize_benchmark,
)
from .machine import (
    ImplementationSimulator,
    MachineStatus,
    SpecSimulator,
    conformance_check,
)
from .hfmin import (
    HazardFreeError,
    HazardFreeResult,
    PrivilegedCube,
    TransitionSpec,
    classify_requirements,
    dhf_prime_implicants,
    expand_to_dhf_prime,
    minimize_hazard_free,
    verify_hazard_free_cover,
)
from .sequential import SequentialMachine, StepResult
from .spec import Burst, BurstModeSpec, SpecError
from .synth import SynthesisResult, synthesize

__all__ = [
    "Burst",
    "BurstModeSpec",
    "BenchmarkInfo",
    "CATALOG",
    "HazardFreeError",
    "HazardFreeResult",
    "ImplementationSimulator",
    "MachineStatus",
    "PrivilegedCube",
    "SpecError",
    "SequentialMachine",
    "SpecSimulator",
    "StepResult",
    "SynthesisResult",
    "TABLE5_ORDER",
    "TransitionSpec",
    "benchmark_names",
    "benchmark_netlist",
    "build_loop_machine",
    "classify_requirements",
    "conformance_check",
    "dhf_prime_implicants",
    "expand_to_dhf_prime",
    "minimize_hazard_free",
    "synthesize",
    "synthesize_benchmark",
    "verify_hazard_free_cover",
]
