"""The complete Figure-1 machine: combinational cloud + storage elements.

The paper's architecture separates the (technology-mapped)
combinational logic from the latches that hold state, clocked by a
locally generated strobe once the logic settles.  This module closes
that loop operationally:

* :class:`SequentialMachine` holds latch state and steps the machine
  burst by burst, evaluating the combinational network (synthesized or
  mapped) between bursts;
* with ``monitor_glitches`` every burst is additionally run through the
  event-driven timing simulator under randomized gate delays, so any
  output glitch during fundamental-mode operation is caught in the act
  — the dynamic counterpart of the static hazard proofs.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..network.eventsim import EventSimulator, burst_response
from ..network.netlist import Netlist
from .machine import SpecSimulator
from .spec import Burst
from .synth import SynthesisResult


@dataclass
class StepResult:
    """Outcome of one burst step."""

    state: str
    inputs: dict[str, bool]
    outputs: dict[str, bool]
    glitched_outputs: list[str] = field(default_factory=list)


class SequentialMachine:
    """Operational model of a mapped burst-mode controller."""

    def __init__(
        self,
        synthesis: SynthesisResult,
        netlist: Optional[Netlist] = None,
        monitor_glitches: bool = False,
        glitch_trials: int = 5,
        seed: int = 0,
    ) -> None:
        self.synthesis = synthesis
        self.netlist = netlist if netlist is not None else synthesis.netlist()
        self.monitor_glitches = monitor_glitches
        self.glitch_trials = glitch_trials
        self._rng = random.Random(seed)
        self._spec_sim = SpecSimulator(synthesis.spec)
        self.reset()

    def reset(self) -> None:
        status = self._spec_sim.reset()
        self.state = status.state
        self.inputs = dict(status.inputs)
        self.outputs = dict(status.outputs)
        self.history: list[StepResult] = []

    # ------------------------------------------------------------------
    # Stepping
    # ------------------------------------------------------------------
    def enabled_bursts(self) -> list[Burst]:
        return self._spec_sim.spec.transitions.get(self.state, [])

    def _environment(self, inputs: dict[str, bool]) -> dict[str, bool]:
        env = dict(inputs)
        code = self.synthesis.state_codes[self.state]
        for i, bit in enumerate(self.synthesis.state_bits):
            env[bit] = bool(code >> i & 1)
        return env

    def step(self, burst: Burst) -> StepResult:
        """Apply one input burst; settle; latch the next state."""
        if burst not in self.enabled_bursts():
            raise ValueError(f"burst not enabled in state {self.state!r}")
        start_env = self._environment(self.inputs)
        new_inputs = dict(self.inputs)
        for name in burst.input_changes:
            new_inputs[name] = not new_inputs[name]
        end_env = self._environment(new_inputs)

        glitched: list[str] = []
        if self.monitor_glitches:
            glitched = self._watch_burst(start_env, end_env)

        settled = self.netlist.evaluate(end_env)
        outputs = {z: settled[z] for z in self.synthesis.spec.outputs}
        next_code = 0
        for i, bit in enumerate(self.synthesis.state_bits):
            if settled[f"{bit}_next"]:
                next_code |= 1 << i
        next_state = None
        for name, code in self.synthesis.state_codes.items():
            if code == next_code:
                next_state = name
                break
        if next_state is None:
            raise RuntimeError(f"network latched unknown state code {next_code}")

        self.state = next_state
        self.inputs = new_inputs
        self.outputs = outputs
        result = StepResult(next_state, dict(new_inputs), dict(outputs), glitched)
        self.history.append(result)
        return result

    def _watch_burst(
        self, start_env: dict[str, bool], end_env: dict[str, bool]
    ) -> list[str]:
        """Timing-simulate the burst; report outputs that glitch."""
        start_values = self.netlist.evaluate(start_env)
        end_values = self.netlist.evaluate(end_env)
        glitched: set[str] = set()
        watched = list(self.synthesis.spec.outputs) + [
            f"{bit}_next" for bit in self.synthesis.state_bits
        ]
        for __ in range(self.glitch_trials):
            simulator = EventSimulator.with_random_delays(
                self.netlist, seed=self._rng.randrange(1 << 30)
            )
            waves = burst_response(
                simulator, start_env, end_env, seed=self._rng.randrange(1 << 30)
            )
            for name in watched:
                expected = int(start_values[name] != end_values[name])
                if waves[name].glitched(expected):
                    glitched.add(name)
        return sorted(glitched)

    # ------------------------------------------------------------------
    # Whole-run drivers
    # ------------------------------------------------------------------
    def run_random(self, steps: int, seed: int = 0) -> list[StepResult]:
        rng = random.Random(seed)
        results = []
        for __ in range(steps):
            bursts = self.enabled_bursts()
            if not bursts:
                break
            results.append(self.step(rng.choice(bursts)))
        return results

    def conforms(self, steps: int = 100, seed: int = 0) -> list[str]:
        """Run both models side by side; return mismatch descriptions."""
        problems: list[str] = []
        golden = self._spec_sim.reset()
        self.reset()
        rng = random.Random(seed)
        for step_index in range(steps):
            bursts = self._spec_sim.enabled_bursts(golden)
            if not bursts:
                break
            burst = rng.choice(bursts)
            golden = self._spec_sim.fire(golden, burst)
            actual = self.step(burst)
            if actual.state != golden.state:
                problems.append(
                    f"step {step_index}: state {actual.state} != {golden.state}"
                )
            if actual.outputs != golden.outputs:
                problems.append(
                    f"step {step_index}: outputs {actual.outputs} != "
                    f"{golden.outputs}"
                )
            if actual.glitched_outputs:
                problems.append(
                    f"step {step_index}: glitches on {actual.glitched_outputs}"
                )
        return problems
