"""The Table-5 benchmark controllers, as synthetic burst-mode machines.

The paper maps eleven asynchronous controllers (chu-ad-opt, the dme
family, oscsi-ctrl, pe-send-ifc, vanbek-opt, dean-ctrl, scsi, abcs)
whose logic equations were never published.  We rebuild each as a
burst-mode specification of comparable signature and complexity —
handshake controllers in the style of the originals — and synthesize
hazard-free equations with the Nowick–Dill minimizer.  Relative sizes
track the paper's Table 5 (dean-ctrl ≫ scsi > oscsi-ctrl > abcs >
pe-send-ifc > the dme/chu/vanbek cluster); see DESIGN.md for the
substitution rationale.

All machines are *loop compositions*: from the idle state, one or more
handshake loops run through private states and return to idle with all
signals restored, which guarantees the burst-mode entry-point
consistency rules by construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Callable, Iterable, Sequence

from ..network.netlist import Netlist
from .spec import BurstModeSpec
from .synth import SynthesisResult, synthesize

LoopStep = tuple[Sequence[str], Sequence[str]]


def build_loop_machine(
    name: str,
    inputs: Sequence[str],
    outputs: Sequence[str],
    loops: Sequence[Sequence[LoopStep]],
) -> BurstModeSpec:
    """Compose handshake loops through a shared idle state.

    Each loop is a burst sequence ``(input_changes, output_changes)``
    leaving and re-entering ``idle``; every signal must toggle an even
    number of times per loop so the entry values close.
    """
    spec = BurstModeSpec(
        name=name, inputs=list(inputs), outputs=list(outputs), initial_state="idle"
    )
    for loop_id, steps in enumerate(loops):
        toggles: dict[str, int] = {}
        for in_changes, out_changes in steps:
            for signal in list(in_changes) + list(out_changes):
                toggles[signal] = toggles.get(signal, 0) + 1
        odd = sorted(s for s, count in toggles.items() if count % 2)
        if odd:
            raise ValueError(
                f"{name} loop {loop_id}: signals {odd} toggle an odd number "
                "of times; the loop cannot re-enter idle consistently"
            )
        state = "idle"
        for step_id, (in_changes, out_changes) in enumerate(steps):
            last = step_id == len(steps) - 1
            next_state = "idle" if last else f"L{loop_id}_{step_id + 1}"
            spec.add_transition(state, in_changes, out_changes, next_state)
            state = next_state
    spec.validate()
    return spec


@dataclass(frozen=True)
class BenchmarkInfo:
    """Catalog entry for one benchmark controller."""

    name: str
    description: str
    builder: Callable[[], BurstModeSpec]


# ----------------------------------------------------------------------
# Small controllers
# ----------------------------------------------------------------------

def chu_ad_opt() -> BurstModeSpec:
    """Chu-style A/D handshake converter (small, 2×2)."""
    return build_loop_machine(
        "chu-ad-opt",
        inputs=["req", "da"],
        outputs=["ack", "ld"],
        loops=[
            [
                (["req"], ["ld"]),
                (["da"], ["ack"]),
                (["req", "da"], ["ack", "ld"]),
            ]
        ],
    )


def vanbek_opt() -> BurstModeSpec:
    """Van Berkel-style sequencer (small)."""
    return build_loop_machine(
        "vanbek-opt",
        inputs=["go", "d"],
        outputs=["r1", "r2"],
        loops=[
            [
                (["go"], ["r1"]),
                (["d"], ["r1", "r2"]),
                (["go", "d"], ["r2"]),
            ]
        ],
    )


def _dme_loops(fast: bool, optimized: bool) -> list[list[LoopStep]]:
    """Distributed mutual-exclusion cell: left/ring handshakes.

    The -fast variants add a token-held bypass loop (entered on the
    ring acknowledge); the -opt variants fold the release burst,
    changing equation shapes.  Initial bursts — {lreq}, {rin}, {rack} —
    form an antichain as burst-mode requires.
    """
    left = [
        (["lreq"], ["rreq"]),
        (["rack"], ["lack"]),
        (["lreq"], ["rreq"]) if optimized else (["lreq", "rack"], ["rreq", "lack"]),
    ]
    if optimized:
        left.append((["rack"], ["lack"]))
    ring: list[LoopStep] = [
        (["rin"], ["rout"]),
        (["rin"], ["rout"]),
    ]
    loops = [left, ring]
    if fast:
        loops.append(
            [
                (["rack"], ["lack", "rout"]),
                (["lreq", "rin"], ["lack"]),
                (["lreq", "rin", "rack"], ["rout"]),
            ]
        )
    return loops


def dme() -> BurstModeSpec:
    return build_loop_machine(
        "dme",
        inputs=["lreq", "rack", "rin"],
        outputs=["lack", "rreq", "rout"],
        loops=_dme_loops(fast=False, optimized=False),
    )


def dme_opt() -> BurstModeSpec:
    return build_loop_machine(
        "dme-opt",
        inputs=["lreq", "rack", "rin"],
        outputs=["lack", "rreq", "rout"],
        loops=_dme_loops(fast=False, optimized=True),
    )


def dme_fast() -> BurstModeSpec:
    return build_loop_machine(
        "dme-fast",
        inputs=["lreq", "rack", "rin"],
        outputs=["lack", "rreq", "rout"],
        loops=_dme_loops(fast=True, optimized=False),
    )


def dme_fast_opt() -> BurstModeSpec:
    return build_loop_machine(
        "dme-fast-opt",
        inputs=["lreq", "rack", "rin"],
        outputs=["lack", "rreq", "rout"],
        loops=_dme_loops(fast=True, optimized=True),
    )


# ----------------------------------------------------------------------
# Mid-size controllers
# ----------------------------------------------------------------------

def pe_send_ifc() -> BurstModeSpec:
    """Post-office processing-element send interface (mid-size)."""
    return build_loop_machine(
        "pe-send-ifc",
        inputs=["req", "tack", "peack", "adbld"],
        outputs=["treq", "pereq", "adbldack"],
        loops=[
            [
                (["req"], ["treq"]),
                (["tack"], ["pereq"]),
                (["peack"], ["treq", "pereq"]),
                (["req", "tack", "peack"], []),
            ],
            [
                (["adbld"], ["adbldack"]),
                (["adbld"], ["adbldack"]),
            ],
            [
                (["tack", "peack"], ["pereq"]),
                (["req", "adbld"], ["treq", "adbldack"]),
                (["tack", "peack", "adbld"], ["pereq", "adbldack"]),
                (["req"], ["treq"]),
            ],
        ],
    )


def abcs() -> BurstModeSpec:
    """Stanford/HP asynchronous infrared communications control block."""
    return build_loop_machine(
        "abcs",
        inputs=["rxd", "frame", "cts", "brg", "err"],
        outputs=["rdy", "shift", "stb", "irq"],
        loops=[
            [
                (["rxd"], ["shift"]),
                (["brg"], ["shift"]),
                (["rxd", "brg"], []),
            ],
            [
                (["frame"], ["rdy"]),
                (["cts"], ["stb"]),
                (["frame", "cts"], ["rdy", "stb"]),
            ],
            [
                (["err"], ["irq"]),
                (["frame", "err"], ["irq", "rdy"]),
                (["frame"], ["rdy"]),
            ],
            [
                (["brg", "cts"], ["stb"]),
                (["rxd", "frame"], ["shift", "rdy"]),
                (["brg", "cts"], ["stb"]),
                (["rxd", "frame"], ["shift", "rdy"]),
            ],
        ],
    )


def oscsi_ctrl() -> BurstModeSpec:
    """Optical SCSI datapath controller (mid/large)."""
    return build_loop_machine(
        "oscsi-ctrl",
        inputs=["sel", "bsy", "atn", "dreq", "dack"],
        outputs=["phase", "drdy", "latch", "done"],
        loops=[
            [
                (["sel"], ["phase"]),
                (["bsy"], ["drdy"]),
                (["sel", "bsy"], ["phase", "drdy"]),
            ],
            [
                (["dreq"], ["latch"]),
                (["dack"], ["drdy"]),
                (["dreq", "dack"], ["latch", "drdy"]),
            ],
            [
                (["atn"], ["done"]),
                (["sel", "atn"], ["phase", "done"]),
                (["sel"], ["phase"]),
            ],
            [
                (["bsy", "dack"], ["drdy", "latch"]),
                (["dreq", "atn"], ["done"]),
                (["bsy", "dack", "dreq", "atn"], ["drdy", "latch", "done"]),
            ],
        ],
    )


# ----------------------------------------------------------------------
# Large controllers
# ----------------------------------------------------------------------

def scsi() -> BurstModeSpec:
    """Locally-clocked SCSI controller (large)."""
    return build_loop_machine(
        "scsi",
        inputs=["sel", "bsy", "req", "io", "cd", "msg"],
        outputs=["ack", "atn", "drive", "latch", "done"],
        loops=[
            [
                (["sel"], ["drive"]),
                (["bsy"], ["atn"]),
                (["sel", "bsy"], ["drive", "atn"]),
            ],
            [
                (["req"], ["ack"]),
                (["io"], ["latch"]),
                (["req", "io"], ["ack", "latch"]),
            ],
            [
                (["cd"], ["done"]),
                (["msg"], ["done", "latch"]),
                (["cd", "msg"], ["latch"]),
            ],
            [
                (["bsy", "io"], ["atn", "latch"]),
                (["req", "cd"], ["ack", "done"]),
                (["bsy", "io"], ["atn", "latch"]),
                (["req", "cd"], ["ack", "done"]),
            ],
            [
                (["io", "msg"], ["latch", "done"]),
                (["sel", "bsy"], ["drive", "atn"]),
                (["io", "msg"], ["latch", "done"]),
                (["sel", "bsy"], ["drive", "atn"]),
            ],
        ],
    )


def dean_ctrl() -> BurstModeSpec:
    """The largest benchmark: a multi-channel datapath controller."""
    return build_loop_machine(
        "dean-ctrl",
        inputs=["r0", "r1", "r2", "g0", "g1", "stall"],
        outputs=["a0", "a1", "a2", "sel0", "sel1", "hold"],
        loops=[
            [
                (["r0"], ["a0", "sel0"]),
                (["g0"], ["hold"]),
                (["r0", "g0"], ["a0", "sel0", "hold"]),
            ],
            [
                (["r1"], ["a1", "sel1"]),
                (["g1"], ["hold"]),
                (["r1", "g1"], ["a1", "sel1", "hold"]),
            ],
            [
                (["r2"], ["a2"]),
                (["stall"], ["hold"]),
                (["r2", "stall"], ["a2", "hold"]),
            ],
            [
                (["g0", "g1"], ["sel0", "sel1"]),
                (["r0", "r1"], ["a0", "a1"]),
                (["g0", "g1"], ["sel0", "sel1"]),
                (["r0", "r1"], ["a0", "a1"]),
            ],
            [
                (["g1", "stall"], ["sel1", "hold"]),
                (["r2", "g0"], ["a2", "sel0"]),
                (["g1", "stall"], ["sel1", "hold"]),
                (["r2", "g0"], ["a2", "sel0"]),
            ],
            [
                (["g0", "stall"], ["sel0", "hold"]),
                (["r0", "r2"], ["a0", "a2"]),
                (["g0", "stall"], ["sel0", "hold"]),
                (["r0", "r2"], ["a0", "a2"]),
            ],
        ],
    )


# ----------------------------------------------------------------------
# Catalog
# ----------------------------------------------------------------------

CATALOG: dict[str, BenchmarkInfo] = {
    info.name: info
    for info in [
        BenchmarkInfo("chu-ad-opt", "Chu A/D handshake converter", chu_ad_opt),
        BenchmarkInfo("dme-fast-opt", "DME cell, fast+optimized", dme_fast_opt),
        BenchmarkInfo("dme-fast", "DME cell, fast", dme_fast),
        BenchmarkInfo("dme-opt", "DME cell, optimized", dme_opt),
        BenchmarkInfo("dme", "DME cell", dme),
        BenchmarkInfo("oscsi-ctrl", "optical SCSI controller", oscsi_ctrl),
        BenchmarkInfo("pe-send-ifc", "PE send interface", pe_send_ifc),
        BenchmarkInfo("vanbek-opt", "Van Berkel sequencer", vanbek_opt),
        BenchmarkInfo("dean-ctrl", "multi-channel datapath controller", dean_ctrl),
        BenchmarkInfo("scsi", "locally-clocked SCSI controller", scsi),
        BenchmarkInfo("abcs", "IR communications control block", abcs),
    ]
}

#: Table 5's row order.
TABLE5_ORDER = [
    "chu-ad-opt",
    "dme-fast-opt",
    "dme-fast",
    "dme-opt",
    "dme",
    "oscsi-ctrl",
    "pe-send-ifc",
    "vanbek-opt",
    "dean-ctrl",
    "scsi",
    "abcs",
]


@lru_cache(maxsize=None)
def synthesize_benchmark(name: str) -> SynthesisResult:
    """Burst-mode synthesis of a catalog entry (cached)."""
    return synthesize(CATALOG[name].builder())


def benchmark_netlist(name: str) -> Netlist:
    """The hazard-free technology-independent network of a benchmark."""
    return synthesize_benchmark(name).netlist(name)


def benchmark_names() -> list[str]:
    return list(TABLE5_ORDER)
