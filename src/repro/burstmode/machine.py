"""Behavioural simulation of burst-mode machines.

Two interpreters that must agree:

* :class:`SpecSimulator` walks the burst-mode specification directly —
  the golden model;
* :class:`ImplementationSimulator` drives a synthesized (or mapped)
  combinational network in the Figure-1 architecture: apply the input
  burst, read the output and next-state functions, latch the state.

Used by tests and examples to show the synthesized equations and every
mapped network implement the specified machine, burst for burst.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

from ..network.netlist import Netlist
from .spec import Burst, BurstModeSpec
from .synth import SynthesisResult


@dataclass(frozen=True)
class MachineStatus:
    """One stable configuration of a burst-mode machine."""

    state: str
    inputs: dict[str, bool]
    outputs: dict[str, bool]

    def __post_init__(self) -> None:  # freeze the dicts' identity
        object.__setattr__(self, "inputs", dict(self.inputs))
        object.__setattr__(self, "outputs", dict(self.outputs))


class SpecSimulator:
    """Golden interpreter of a burst-mode specification."""

    def __init__(self, spec: BurstModeSpec) -> None:
        spec.validate()
        self.spec = spec

    def reset(self) -> MachineStatus:
        return MachineStatus(
            self.spec.initial_state,
            dict(self.spec.initial_inputs),
            dict(self.spec.initial_outputs),
        )

    def enabled_bursts(self, status: MachineStatus) -> list[Burst]:
        return list(self.spec.transitions.get(status.state, []))

    def fire(self, status: MachineStatus, burst: Burst) -> MachineStatus:
        if burst not in self.enabled_bursts(status):
            raise ValueError(f"burst not enabled in state {status.state!r}")
        inputs = dict(status.inputs)
        for name in burst.input_changes:
            inputs[name] = not inputs[name]
        outputs = dict(status.outputs)
        for name in burst.output_changes:
            outputs[name] = not outputs[name]
        return MachineStatus(burst.next_state, inputs, outputs)

    def random_walk(
        self, steps: int, seed: int = 0
    ) -> list[tuple[MachineStatus, Burst]]:
        """A random trace of (status before, burst fired) pairs."""
        rng = random.Random(seed)
        trace = []
        status = self.reset()
        for __ in range(steps):
            bursts = self.enabled_bursts(status)
            if not bursts:
                break
            burst = rng.choice(bursts)
            trace.append((status, burst))
            status = self.fire(status, burst)
        return trace


class ImplementationSimulator:
    """Drives a combinational network as the Figure-1 machine.

    ``netlist`` must expose the synthesis interface: the spec's inputs
    plus the state lines as primary inputs, and the spec's outputs plus
    ``<bit>_next`` as primary outputs.  The mapped network from
    ``async_tmap`` keeps this interface, so both can be checked.
    """

    def __init__(self, synthesis: SynthesisResult, netlist: Netlist) -> None:
        self.synthesis = synthesis
        self.netlist = netlist
        missing = set(synthesis.variables) - set(netlist.inputs)
        if missing:
            raise ValueError(f"network misses machine inputs {sorted(missing)}")

    def evaluate(
        self, state: str, inputs: dict[str, bool]
    ) -> tuple[dict[str, bool], int]:
        """Outputs and next-state code for one stable input vector."""
        env = dict(inputs)
        code = self.synthesis.state_codes[state]
        for i, bit in enumerate(self.synthesis.state_bits):
            env[bit] = bool(code >> i & 1)
        values = self.netlist.evaluate(env)
        outputs = {z: values[z] for z in self.synthesis.spec.outputs}
        next_code = 0
        for i, bit in enumerate(self.synthesis.state_bits):
            if values[f"{bit}_next"]:
                next_code |= 1 << i
        return outputs, next_code

    def check_trace(
        self, trace: Iterable[tuple[MachineStatus, Burst]]
    ) -> list[str]:
        """Replay a golden trace; return mismatches (empty = conforms).

        At each step the implementation is evaluated at the burst's
        *completion* point: outputs must equal the spec's post-burst
        values and the next-state code must name the successor state.
        Stability at the entry point (outputs hold, state holds) is
        checked too.
        """
        problems = []
        codes = self.synthesis.state_codes
        spec_sim = SpecSimulator(self.synthesis.spec)
        for status, burst in trace:
            # Stability at the entry point.
            outputs, next_code = self.evaluate(status.state, status.inputs)
            if outputs != status.outputs:
                problems.append(
                    f"{status.state}: outputs {outputs} != {status.outputs} at entry"
                )
            if next_code != codes[status.state]:
                problems.append(f"{status.state}: state not stable at entry")
            # Behaviour at burst completion.
            after = spec_sim.fire(status, burst)
            outputs, next_code = self.evaluate(status.state, after.inputs)
            if outputs != after.outputs:
                problems.append(
                    f"{status.state} --{sorted(burst.input_changes)}--> "
                    f"{after.state}: outputs {outputs} != {after.outputs}"
                )
            if next_code != codes[after.state]:
                problems.append(
                    f"{status.state} --{sorted(burst.input_changes)}--> "
                    f"{after.state}: next-state code {next_code} != "
                    f"{codes[after.state]}"
                )
        return problems


def conformance_check(
    synthesis: SynthesisResult,
    netlist: Optional[Netlist] = None,
    steps: int = 200,
    seed: int = 0,
) -> list[str]:
    """Random-walk conformance of an implementation against its spec."""
    implementation = ImplementationSimulator(
        synthesis, netlist if netlist is not None else synthesis.netlist()
    )
    trace = SpecSimulator(synthesis.spec).random_walk(steps, seed)
    return implementation.check_trace(trace)
