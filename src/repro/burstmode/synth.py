"""Burst-mode synthesis to hazard-free two-level equations.

A simplified locally-clocked-style flow (the paper's reference [19],
architecture per Figure 1): state is held in storage elements whose
update the local clock isolates, so the combinational next-state and
output logic must be hazard-free exactly for the *input bursts*, during
which the state lines are constant.

Per function the flow builds an incompletely specified Boolean function
over (inputs + state lines) whose care set is the union of specified
transition cubes, derives the transition list, and runs the exact
hazard-free minimizer of :mod:`repro.burstmode.hfmin`.  The result is a
set of hazard-free SOP equations — precisely the technology-independent
description the asynchronous technology mapper takes as input.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

from ..boolean.cover import Cover
from ..boolean.cube import Cube
from ..network.netlist import Netlist, cover_to_expr
from .hfmin import (
    HazardFreeError,
    HazardFreeResult,
    TransitionSpec,
    minimize_hazard_free,
)
from .spec import BurstModeSpec, SpecError


@dataclass
class SynthesisResult:
    """Hazard-free equations plus the artifacts behind them."""

    spec: BurstModeSpec
    variables: list[str]
    state_bits: list[str]
    state_codes: dict[str, int]
    equations: dict[str, Cover]
    transitions: dict[str, list[TransitionSpec]]
    details: dict[str, HazardFreeResult] = field(default_factory=dict)

    def netlist(self, name: Optional[str] = None) -> Netlist:
        """The combinational cloud as a technology-independent network.

        State lines appear as primary inputs (they come back from the
        latches); next-state functions as primary outputs.
        """
        net = Netlist(name or self.spec.name)
        for variable in self.variables:
            net.add_input(variable)
        for target, cover in self.equations.items():
            gate = net.add_gate(
                f"{target}__logic", cover_to_expr(cover, self.variables)
            )
            net.add_output(target, gate)
        return net

    def total_literals(self) -> int:
        return sum(cover.num_literals() for cover in self.equations.values())

    def total_cubes(self) -> int:
        return sum(len(cover) for cover in self.equations.values())


def synthesize(spec: BurstModeSpec) -> SynthesisResult:
    """Synthesize hazard-free next-state/output equations for a spec."""
    spec.validate()
    entry = spec.trace_entry_points()
    states = [s for s in spec.states if s in entry]  # reachable, stable order
    num_state_bits = max(1, math.ceil(math.log2(max(len(states), 2))))
    state_bits = [f"y{i}" for i in range(num_state_bits)]
    state_codes = {state: i for i, state in enumerate(states)}

    variables = list(spec.inputs) + state_bits
    nvars = len(variables)
    index = {name: i for i, name in enumerate(variables)}

    def full_point(input_values: dict[str, bool], state: str) -> int:
        point = 0
        for name, value in input_values.items():
            if value:
                point |= 1 << index[name]
        code = state_codes[state]
        for i, bit_name in enumerate(state_bits):
            if code >> i & 1:
                point |= 1 << index[bit_name]
        return point

    targets = list(spec.outputs) + [f"{bit}_next" for bit in state_bits]

    onsets: dict[str, list[Cube]] = {t: [] for t in targets}
    offsets: dict[str, list[Cube]] = {t: [] for t in targets}
    transition_lists: dict[str, list[TransitionSpec]] = {t: [] for t in targets}

    def record_transition(
        target: str,
        start_point: int,
        end_point: int,
        space: Cube,
        start_value: bool,
        end_value: bool,
    ) -> None:
        """Record the mid-burst requirement: hold the entry value at
        every point of the transition space except the completed burst.

        Cube-level bookkeeping (rather than per-minterm) keeps prime
        generation tractable for wide bursts.
        """
        end_cube = Cube.minterm(end_point, nvars)
        if start_value == end_value:
            bucket = onsets[target] if start_value else offsets[target]
            bucket.append(space)
            return
        # Dynamic: constant at start_value except the end point.  The
        # complement of a point within a cube: fix one changing
        # variable at its start-side value.
        hold = onsets[target] if start_value else offsets[target]
        flip = offsets[target] if start_value else onsets[target]
        from ..boolean.cube import bit_indices as _bits

        changing = start_point ^ end_point
        for var in _bits(changing):
            bit = 1 << var
            phase = space.phase | (start_point & bit)
            hold.append(Cube(space.used | bit, phase, nvars))
        flip.append(end_cube)

    for state, (in_values, out_values) in entry.items():
        start_point = full_point(in_values, state)
        code = state_codes[state]
        for burst in spec.transitions.get(state, []):
            end_values = dict(in_values)
            for name in burst.input_changes:
                end_values[name] = not end_values[name]
            end_point = full_point(end_values, state)
            space = Cube.minterm(start_point, nvars).supercube(
                Cube.minterm(end_point, nvars)
            )
            next_code = state_codes[burst.next_state]
            for target in targets:
                if target in spec.outputs:
                    start_value = out_values[target]
                    end_value = start_value ^ (target in burst.output_changes)
                else:
                    bit = state_bits.index(target[: -len("_next")])
                    start_value = bool(code >> bit & 1)
                    end_value = bool(next_code >> bit & 1)
                record_transition(
                    target, start_point, end_point, space, start_value, end_value
                )
                transition_lists[target].append(
                    TransitionSpec(start_point, end_point)
                )

    equations: dict[str, Cover] = {}
    details: dict[str, HazardFreeResult] = {}
    for target in targets:
        onset = Cover(onsets[target], nvars).dedup()
        offset = Cover(offsets[target], nvars).dedup()
        conflict = onset.intersect(offset)
        if conflict.cubes:
            raise SpecError(
                f"conflicting requirements for {target} over "
                f"{conflict.cubes[0].to_pattern()}"
            )
        result = minimize_hazard_free(onset, offset, transition_lists[target])
        equations[target] = result.cover
        details[target] = result

    return SynthesisResult(
        spec=spec,
        variables=variables,
        state_bits=state_bits,
        state_codes=state_codes,
        equations=equations,
        transitions=transition_lists,
        details=details,
    )
