"""Event-driven gate-level timing simulation.

The hazard algebra of :mod:`repro.hazards` answers "*can* some delay
assignment glitch this output?".  This module answers the operational
counterpart: given one concrete assignment of per-gate delays, what
waveform does each node actually produce for an input burst?  It turns
abstract hazard verdicts into visible glitches — and lets tests confirm
the two views agree: a transition flagged hazardous glitches under some
sampled delay assignment, and a hazard-free network never glitches
under any.

The model is the classic pure-delay gate: a gate re-evaluates whenever
a fanin changes and schedules its new value after its delay.  Pure
delays propagate arbitrarily short pulses, matching the worst-case
assumption behind fundamental-mode hazard analysis (an inertial model
would *hide* glitches, which is exactly what one must not assume).
"""

from __future__ import annotations

import heapq
import itertools
import random
from dataclasses import dataclass, field
from typing import Mapping, Optional, Sequence

from .netlist import Netlist


@dataclass(frozen=True)
class Edge:
    """One signal change."""

    time: float
    node: str
    value: bool


@dataclass
class Waveform:
    """The edge history of one node (initial value + changes)."""

    initial: bool
    edges: list[Edge] = field(default_factory=list)

    def value_at(self, time: float) -> bool:
        value = self.initial
        for edge in self.edges:
            if edge.time > time:
                break
            value = edge.value
        return value

    @property
    def final(self) -> bool:
        return self.edges[-1].value if self.edges else self.initial

    @property
    def change_count(self) -> int:
        """Number of real transitions (consecutive duplicates merged)."""
        count = 0
        value = self.initial
        for edge in self.edges:
            if edge.value != value:
                count += 1
                value = edge.value
        return count

    def glitched(self, expected_changes: int) -> bool:
        """More transitions than the ideal monotone response?"""
        return self.change_count > expected_changes


class EventSimulator:
    """Pure-delay event-driven simulator for a combinational network."""

    def __init__(
        self,
        netlist: Netlist,
        gate_delays: Optional[Mapping[str, float]] = None,
        default_delay: float = 1.0,
    ) -> None:
        netlist.validate()
        self.netlist = netlist
        self.delays: dict[str, float] = {}
        for node in netlist.gates():
            if gate_delays and node.name in gate_delays:
                self.delays[node.name] = float(gate_delays[node.name])
            elif node.cell is not None:
                self.delays[node.name] = node.cell.delay
            else:
                self.delays[node.name] = default_delay
        self.fanouts = netlist.fanouts()

    @classmethod
    def with_random_delays(
        cls,
        netlist: Netlist,
        seed: int,
        low: float = 0.5,
        high: float = 2.0,
    ) -> "EventSimulator":
        rng = random.Random(seed)
        delays = {
            node.name: rng.uniform(low, high) for node in netlist.gates()
        }
        return cls(netlist, delays)

    def run(
        self,
        start: Mapping[str, bool],
        input_edges: Sequence[tuple[float, str, bool]],
        horizon: float = 1e6,
    ) -> dict[str, Waveform]:
        """Simulate from the stable state ``start`` through input edges.

        ``input_edges`` are (time, input name, new value) triples.
        Returns the waveform of every node, settled to quiescence.
        """
        stable = self.netlist.evaluate(start)
        waveforms = {name: Waveform(stable[name]) for name in self.netlist.nodes}
        values = dict(stable)

        counter = itertools.count()
        queue: list[tuple[float, int, str, bool]] = []
        for time, name, value in input_edges:
            if name not in self.netlist.nodes or not self.netlist.nodes[name].is_input():
                raise ValueError(f"{name!r} is not a primary input")
            heapq.heappush(queue, (float(time), next(counter), name, value))

        while queue:
            time, __, name, value = heapq.heappop(queue)
            if time > horizon:
                break
            if values[name] == value:
                continue
            values[name] = value
            waveforms[name].edges.append(Edge(time, name, value))
            for consumer in self.fanouts[name]:
                node = self.netlist.nodes[consumer]
                if node.is_output():
                    # outputs are aliases: follow instantly
                    heapq.heappush(
                        queue, (time, next(counter), consumer, value)
                    )
                    continue
                assert node.func is not None
                new_value = node.func.evaluate(values)
                delay = self.delays[consumer]
                heapq.heappush(
                    queue, (time + delay, next(counter), consumer, new_value)
                )
        return waveforms


def burst_response(
    simulator: EventSimulator,
    start: Mapping[str, bool],
    end: Mapping[str, bool],
    arrival_times: Optional[Mapping[str, float]] = None,
    seed: int = 0,
) -> dict[str, Waveform]:
    """Simulate one input burst with per-input arrival times.

    Changing inputs switch once, at their arrival time (random within
    [0, 1) when not given) — the generalized fundamental-mode burst.
    """
    rng = random.Random(seed)
    edges = []
    for name in simulator.netlist.inputs:
        if bool(start[name]) != bool(end[name]):
            time = (
                arrival_times[name]
                if arrival_times and name in arrival_times
                else rng.random()
            )
            edges.append((time, name, bool(end[name])))
    return simulator.run(start, edges)


def output_glitches(
    netlist: Netlist,
    start: Mapping[str, bool],
    end: Mapping[str, bool],
    trials: int = 20,
    seed: int = 0,
) -> dict[str, bool]:
    """Did any sampled delay/arrival assignment glitch each output?

    For every output the ideal response has 0 changes (static
    transition) or 1 (dynamic); any extra transition under any sampled
    assignment marks the output glitchy.  Sampling cannot prove
    absence — use :mod:`repro.hazards` for that — but presence here is
    a concrete witness.
    """
    values_start = netlist.evaluate(start)
    values_end = netlist.evaluate(end)
    verdicts = {name: False for name in netlist.outputs}
    for trial in range(trials):
        simulator = EventSimulator.with_random_delays(netlist, seed * 1000 + trial)
        waveforms = burst_response(
            simulator, start, end, seed=seed * 1000 + trial
        )
        for output in netlist.outputs:
            expected = int(values_start[output] != values_end[output])
            if waveforms[output].glitched(expected):
                verdicts[output] = True
    return verdicts
