"""Logic-network substrate: netlists, decomposition, partitioning, simulation."""

from .eventsim import (
    Edge,
    EventSimulator,
    Waveform,
    burst_response,
    output_glitches,
)
from .decompose import async_tech_decomp, base_gate_kind, is_base_network, tech_decomp
from .netlist import Netlist, NetlistError, Node, cover_to_expr
from .partition import Cone, cone_depths, partition
from .simulate import (
    ONE,
    X,
    ZERO,
    TernaryResult,
    eichelberger,
    eval_ternary,
    simulate_ternary,
    static_hazard_ternary,
)

__all__ = [
    "Cone",
    "Edge",
    "EventSimulator",
    "Waveform",
    "burst_response",
    "output_glitches",
    "Netlist",
    "NetlistError",
    "Node",
    "ONE",
    "TernaryResult",
    "X",
    "ZERO",
    "async_tech_decomp",
    "base_gate_kind",
    "cone_depths",
    "cover_to_expr",
    "eichelberger",
    "eval_ternary",
    "is_base_network",
    "partition",
    "simulate_ternary",
    "static_hazard_ternary",
    "tech_decomp",
]
