"""Binary and ternary (Eichelberger) simulation of logic networks.

Ternary simulation is the classical hazard-detection technique the
paper's section 4.2 improves upon: to check an input burst, changing
inputs are first driven to the unknown value X and the network relaxed
(procedure A), then set to their final values and relaxed again
(procedure B).  If a node resolves away from X only in procedure B
after matching initial/final values, some delay assignment can glitch
it — a static hazard.  We use it as an independent oracle for the
algebraic static-hazard algorithms.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from ..boolean.expr import And, Const, Expr, Lit, Not, Or, Var
from .netlist import Netlist

#: Ternary values.
ZERO, ONE, X = 0, 1, 2


def ternary_not(value: int) -> int:
    if value == X:
        return X
    return ONE - value


def ternary_and(values: list[int]) -> int:
    if any(v == ZERO for v in values):
        return ZERO
    if all(v == ONE for v in values):
        return ONE
    return X


def ternary_or(values: list[int]) -> int:
    if any(v == ONE for v in values):
        return ONE
    if all(v == ZERO for v in values):
        return ZERO
    return X


def eval_ternary(expr: Expr, env: Mapping[str, int]) -> int:
    """Evaluate an expression in three-valued logic."""
    if isinstance(expr, Var):
        return env[expr.name]
    if isinstance(expr, Lit):
        value = env[expr.name]
        return value if expr.positive else ternary_not(value)
    if isinstance(expr, Const):
        return ONE if expr.value else ZERO
    if isinstance(expr, Not):
        return ternary_not(eval_ternary(expr.child, env))
    if isinstance(expr, And):
        return ternary_and([eval_ternary(t, env) for t in expr.terms])
    if isinstance(expr, Or):
        return ternary_or([eval_ternary(t, env) for t in expr.terms])
    raise TypeError(f"unexpected expression {expr!r}")


def simulate_ternary(netlist: Netlist, env: Mapping[str, int]) -> dict[str, int]:
    """Single ternary sweep in topological order."""
    values: dict[str, int] = {}
    for name in netlist.topological_order():
        node = netlist.nodes[name]
        if node.is_input():
            values[name] = env[name]
        elif node.is_output():
            values[name] = values[node.fanins[0]]
        else:
            assert node.func is not None
            values[name] = eval_ternary(node.func, values)
    return values


@dataclass(frozen=True)
class TernaryResult:
    """Outcome of an Eichelberger two-procedure run for one transition."""

    went_unknown: dict[str, bool]
    final: dict[str, int]

    def output_hazard_possible(self, output: str) -> bool:
        """Did the output pass through X although its endpoints agree?"""
        return self.went_unknown[output]


def eichelberger(
    netlist: Netlist, start: Mapping[str, bool], end: Mapping[str, bool]
) -> TernaryResult:
    """Procedure A + B ternary analysis of the burst ``start → end``.

    Returns, per output, whether the node was X after procedure A (the
    potential-glitch indicator) and its resolved final value.  For a
    static transition (equal endpoint values) an X during A certifies a
    hazard — function or logic — under some delay assignment.
    """
    env_a: dict[str, int] = {}
    for name in netlist.inputs:
        if bool(start[name]) == bool(end[name]):
            env_a[name] = ONE if start[name] else ZERO
        else:
            env_a[name] = X
    values_a = simulate_ternary(netlist, env_a)

    env_b = {name: (ONE if end[name] else ZERO) for name in netlist.inputs}
    values_b = simulate_ternary(netlist, env_b)

    went_unknown = {out: values_a[out] == X for out in netlist.outputs}
    final = {out: values_b[out] for out in netlist.outputs}
    return TernaryResult(went_unknown, final)


def static_hazard_ternary(
    netlist: Netlist, output: str, start: Mapping[str, bool], end: Mapping[str, bool]
) -> bool:
    """Ternary verdict: can ``output`` glitch on a static transition?

    Only meaningful when the output's value agrees at both endpoints.
    Ternary simulation conflates function and logic hazards; callers
    filter function hazards first when the distinction matters.
    """
    values_start = netlist.evaluate(start)
    values_end = netlist.evaluate(end)
    if values_start[output] != values_end[output]:
        raise ValueError("transition is not static for this output")
    return eichelberger(netlist, start, end).output_hazard_possible(output)
