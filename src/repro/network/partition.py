"""Cone partitioning (paper section 3.1.2).

The decomposed network is broken at points of multiple fanout into
single-output *cones* of logic; the covering step then treats each cone
independently.  Partitioning itself does not alter hazard behaviour: it
only decides where one replacement region ends and the next begins.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..obs.tracer import NULL_TRACER
from .netlist import Netlist


@dataclass
class Cone:
    """A single-output, fanout-free region of the decomposed network.

    ``root`` is the cone output; ``members`` the gate nodes inside (all
    with single fanout except possibly the root); ``leaves`` the cone's
    inputs — primary inputs or roots of other cones.
    """

    root: str
    members: list[str] = field(default_factory=list)
    leaves: list[str] = field(default_factory=list)

    @property
    def size(self) -> int:
        return len(self.members)


def partition(netlist: Netlist, tracer=None) -> list[Cone]:
    """Split the network into cones at multi-fanout points.

    Cone roots are primary-output drivers and every gate whose fanout
    count exceeds one.  The returned list is in topological order of
    roots (leaves-first), which is the order the covering step wants.

    ``tracer`` records the pass as a ``partition`` span carrying the
    cone count and the largest cone size.
    """
    tracer = tracer or NULL_TRACER
    with tracer.span("partition") as span:
        cones = _partition_body(netlist)
        span.set_attr(
            cones=len(cones),
            largest=max((cone.size for cone in cones), default=0),
        )
    return cones


def _partition_body(netlist: Netlist) -> list[Cone]:
    netlist.validate()
    fanouts = netlist.fanouts()
    output_drivers = {netlist.nodes[o].fanins[0] for o in netlist.outputs}
    roots: set[str] = set()
    for node in netlist.gates():
        consumers = fanouts[node.name]
        if node.name in output_drivers or len(consumers) > 1:
            roots.add(node.name)
    # Primary inputs directly driving outputs form degenerate cones the
    # mapper handles as wires; skip them here.
    cones: list[Cone] = []
    order = netlist.topological_order()
    for name in order:
        if name not in roots:
            continue
        cone = Cone(root=name)
        stack = [name]
        seen: set[str] = set()
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            cone.members.append(current)
            for fanin in netlist.nodes[current].fanins:
                fanin_node = netlist.nodes[fanin]
                if fanin_node.is_input() or fanin_node.is_constant() or fanin in roots:
                    if fanin not in cone.leaves:
                        cone.leaves.append(fanin)
                else:
                    stack.append(fanin)
        cones.append(cone)
    return cones


def cone_depths(netlist: Netlist, cone: Cone) -> dict[str, int]:
    """Logic depth of each cone member above the cone leaves."""
    depth: dict[str, int] = {leaf: 0 for leaf in cone.leaves}
    for name in netlist.topological_order():
        if name not in cone.members:
            continue
        node = netlist.nodes[name]
        depth[name] = 1 + max((depth.get(f, 0) for f in node.fanins), default=0)
    return depth
