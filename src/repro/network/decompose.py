"""Decomposition into two-input base gates (paper section 3.1.1).

``async_tech_decomp`` rewrites every logic node into a tree of 2-input
AND/OR gates plus inverters using *only* DeMorgan's theorem and the
associative law — both hazard-preserving for all logic hazards (Unger),
so the decomposed network has identical hazard behaviour to the source.

``tech_decomp`` is the synchronous variant: it first *simplifies* each
node's SOP (duplicate/contained/redundant-cube removal, as MIS does
during decomposition).  Removing a redundant cube deletes the gate that
held the output through some transition, so this step can introduce
static-1 hazards — the asynchronous flow must never use it (Figure 3).
"""

from __future__ import annotations

from typing import Optional

from ..boolean.expr import And, Const, Expr, Lit, Not, Or, Var
from ..boolean.minimize import simplify_for_sync
from ..obs.tracer import NULL_TRACER
from .netlist import Netlist, NetlistError


def async_tech_decomp(
    netlist: Netlist, balanced: bool = True, tracer=None
) -> Netlist:
    """Hazard-preserving decomposition into AND2/OR2/INV nodes.

    ``tracer`` records the pass as a ``decompose`` span (mode, source
    and emitted gate counts) under the caller's current span.
    """
    return _decompose(netlist, simplify=False, balanced=balanced, tracer=tracer)


def tech_decomp(netlist: Netlist, balanced: bool = True, tracer=None) -> Netlist:
    """Synchronous decomposition: simplification + same structuring.

    .. warning:: the simplification step may introduce static-1 hazards;
       appropriate only for the synchronous baseline mapper.
    """
    return _decompose(netlist, simplify=True, balanced=balanced, tracer=tracer)


def _decompose(
    netlist: Netlist, simplify: bool, balanced: bool, tracer=None
) -> Netlist:
    tracer = tracer or NULL_TRACER
    with tracer.span(
        "decompose", mode="sync" if simplify else "async"
    ) as span:
        result = _decompose_body(netlist, simplify, balanced)
        span.set_attr(
            source_gates=sum(1 for _ in netlist.gates()),
            gates=sum(1 for _ in result.gates()),
        )
    return result


def _decompose_body(netlist: Netlist, simplify: bool, balanced: bool) -> Netlist:
    netlist.validate()
    result = Netlist(netlist.name + ".decomposed")
    for pi in netlist.inputs:
        result.add_input(pi)

    signal_of: dict[str, str] = {pi: pi for pi in netlist.inputs}
    inverter_of: dict[str, str] = {}

    def invert(signal: str) -> str:
        """Shared inverter for a signal (an INV is one more gate level;
        sharing it is plain fanout and hazard-neutral)."""
        if signal not in inverter_of:
            gate = result.add_gate(
                result.fresh_name(f"{signal}_inv"), Not(Var(signal)), [signal]
            )
            inverter_of[signal] = gate
        return inverter_of[signal]

    def emit_tree(op: str, signals: list[str]) -> str:
        """Reduce a signal list with 2-input ``op`` gates.

        ``balanced`` builds a balanced tree; otherwise a right-leaning
        chain.  Either shape is reachable from the other by the
        associative law alone, so both are hazard-preserving.
        """
        while len(signals) > 1:
            if balanced:
                next_level = []
                for i in range(0, len(signals) - 1, 2):
                    a, b = signals[i], signals[i + 1]
                    func: Expr = (
                        And((Var(a), Var(b))) if op == "and" else Or((Var(a), Var(b)))
                    )
                    next_level.append(
                        result.add_gate(result.fresh_name(op), func, [a, b])
                    )
                if len(signals) % 2:
                    next_level.append(signals[-1])
                signals = next_level
            else:
                b = signals.pop()
                a = signals.pop()
                func = And((Var(a), Var(b))) if op == "and" else Or((Var(a), Var(b)))
                signals.append(result.add_gate(result.fresh_name(op), func, [a, b]))
        return signals[0]

    def build(expr: Expr) -> str:
        """Emit gates for an NNF expression (over decomposed signal
        names); returns the root signal."""
        if isinstance(expr, Lit):
            return expr.name if expr.positive else invert(expr.name)
        if isinstance(expr, Var):
            return expr.name
        if isinstance(expr, Const):
            raise NetlistError("constant functions cannot be decomposed")
        if isinstance(expr, And):
            return emit_tree("and", [build(t) for t in expr.terms])
        if isinstance(expr, Or):
            return emit_tree("or", [build(t) for t in expr.terms])
        raise NetlistError(f"unexpected node {expr!r} in NNF")

    constants: dict[bool, str] = {}

    def constant_signal(value: bool) -> str:
        if value not in constants:
            constants[value] = result.add_constant(
                result.fresh_name("tie1" if value else "tie0"), value
            )
        return constants[value]

    for name in netlist.topological_order():
        node = netlist.nodes[name]
        if node.is_input():
            continue
        if node.is_output():
            continue
        if node.is_constant():
            assert isinstance(node.func, Const)
            signal_of[name] = constant_signal(node.func.value)
            continue
        assert node.func is not None
        func = node.func
        if simplify:
            ordering = sorted(func.support())
            if ordering:
                cover = simplify_for_sync(func.to_cover(ordering))
                from .netlist import cover_to_expr

                func = cover_to_expr(cover, ordering)
        # DeMorgan to NNF (hazard-preserving), rename source fanins to
        # their decomposed signals, then build the 2-input gate tree.
        nnf = func.to_nnf().rename({f: signal_of[f] for f in node.fanins})
        if isinstance(nnf, Const):
            signal_of[name] = constant_signal(nnf.value)
        else:
            signal_of[name] = build(nnf)

    for out in netlist.outputs:
        driver = netlist.nodes[out].fanins[0]
        result.add_output(out, signal_of[driver])
    return result


def is_base_network(netlist: Netlist) -> bool:
    """True iff every gate is a 2-input AND/OR or an inverter."""
    for node in netlist.gates():
        func = node.func
        if isinstance(func, Not) and isinstance(func.child, Var):
            continue
        if isinstance(func, (And, Or)) and len(func.terms) == 2 and all(
            isinstance(t, Var) for t in func.terms
        ):
            continue
        return False
    return True


def base_gate_kind(node_func: Optional[Expr]) -> str:
    """Classify a base gate function: 'and', 'or', 'inv' or 'other'."""
    if isinstance(node_func, Not) and isinstance(node_func.child, Var):
        return "inv"
    if isinstance(node_func, And):
        return "and"
    if isinstance(node_func, Or):
        return "or"
    return "other"
