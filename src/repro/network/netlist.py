"""Multi-level logic networks (Boolean DAGs).

The technology mapper's subject: a directed acyclic graph of logic
nodes, each computing a Boolean-factored-form expression of its fanins.
Primary inputs feed the combinational cloud; primary outputs name the
functions the burst-mode synthesizer produced (next-state and output
equations — the storage elements stay outside, as Figure 1's
architecture prescribes).

A *mapped* network is the same structure whose gate nodes additionally
reference library cells with a pin binding, enabling area/delay
reporting against the cell library.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Iterable, Mapping, Optional, Sequence

from ..boolean.bdd import BddManager
from ..boolean.cover import Cover
from ..boolean.expr import And, Const, Expr, Lit, Not, Or, Var, parse

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..library.cell import LibraryCell


class NetlistError(Exception):
    """Raised on malformed network operations."""


@dataclass
class Node:
    """One vertex of the network DAG.

    ``kind`` is ``"input"``, ``"gate"`` or ``"output"``.  A gate's
    ``func`` is an expression over its fanin names; an output node is an
    identity alias of its single fanin.  Mapped gates carry ``cell``
    (the library cell) whose pins bind positionally to ``fanins``.
    """

    name: str
    kind: str
    fanins: list[str] = field(default_factory=list)
    func: Optional[Expr] = None
    cell: Optional["LibraryCell"] = None

    def is_input(self) -> bool:
        return self.kind == "input"

    def is_gate(self) -> bool:
        return self.kind == "gate"

    def is_output(self) -> bool:
        return self.kind == "output"

    def is_constant(self) -> bool:
        return self.kind == "const"


class Netlist:
    """A combinational logic network."""

    def __init__(self, name: str = "net") -> None:
        self.name = name
        self.nodes: dict[str, Node] = {}
        self.inputs: list[str] = []
        self.outputs: list[str] = []
        self._counter = 0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_input(self, name: str) -> str:
        if name in self.nodes:
            raise NetlistError(f"node {name!r} already exists")
        self.nodes[name] = Node(name, "input")
        self.inputs.append(name)
        return name

    def add_constant(self, name: str, value: bool) -> str:
        """A tie-high/tie-low node (an output that never toggles)."""
        if name in self.nodes:
            raise NetlistError(f"node {name!r} already exists")
        self.nodes[name] = Node(name, "const", [], Const(bool(value)))
        return name

    def add_gate(
        self,
        name: str,
        func: Expr,
        fanins: Optional[Sequence[str]] = None,
        cell: Optional["LibraryCell"] = None,
    ) -> str:
        """Add a gate computing ``func`` (an expression over fanin names).

        ``fanins`` defaults to the sorted support of ``func``.
        """
        if name in self.nodes:
            raise NetlistError(f"node {name!r} already exists")
        support = func.support()
        if fanins is None:
            fanins = sorted(support)
        missing = support - set(fanins)
        if missing:
            raise NetlistError(f"gate {name!r} misses fanins {sorted(missing)}")
        for fanin in fanins:
            if fanin not in self.nodes:
                raise NetlistError(f"gate {name!r} references unknown {fanin!r}")
        self.nodes[name] = Node(name, "gate", list(fanins), func, cell)
        return name

    def add_sop_gate(
        self, name: str, cover: Cover, fanin_names: Sequence[str]
    ) -> str:
        """Add a gate whose function is given as an SOP cover."""
        return self.add_gate(name, cover_to_expr(cover, fanin_names), fanin_names)

    def add_output(self, name: str, driver: str) -> str:
        if name in self.nodes:
            raise NetlistError(f"node {name!r} already exists")
        if driver not in self.nodes:
            raise NetlistError(f"output {name!r} references unknown {driver!r}")
        self.nodes[name] = Node(name, "output", [driver])
        self.outputs.append(name)
        return name

    def fresh_name(self, prefix: str = "n") -> str:
        while True:
            self._counter += 1
            candidate = f"{prefix}{self._counter}"
            if candidate not in self.nodes:
                return candidate

    # ------------------------------------------------------------------
    # Structure queries
    # ------------------------------------------------------------------
    def gates(self) -> list[Node]:
        return [n for n in self.nodes.values() if n.is_gate()]

    def fanouts(self) -> dict[str, list[str]]:
        """Map node name → names of nodes reading it."""
        result: dict[str, list[str]] = {name: [] for name in self.nodes}
        for node in self.nodes.values():
            for fanin in node.fanins:
                result[fanin].append(node.name)
        return result

    def topological_order(self) -> list[str]:
        """Inputs first, then gates/outputs in dependency order."""
        order: list[str] = []
        state: dict[str, int] = {}

        def visit(name: str) -> None:
            status = state.get(name, 0)
            if status == 1:
                raise NetlistError(f"combinational cycle through {name!r}")
            if status == 2:
                return
            state[name] = 1
            for fanin in self.nodes[name].fanins:
                visit(fanin)
            state[name] = 2
            order.append(name)

        for name in self.inputs:
            visit(name)
        for name in self.nodes:
            visit(name)
        return order

    def validate(self) -> None:
        """Check the network is a well-formed combinational DAG."""
        self.topological_order()
        for node in self.nodes.values():
            if node.is_gate() and node.func is None:
                raise NetlistError(f"gate {node.name!r} has no function")
            if node.is_output() and len(node.fanins) != 1:
                raise NetlistError(f"output {node.name!r} needs one driver")

    def transitive_fanin(self, name: str) -> set[str]:
        seen: set[str] = set()
        stack = [name]
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            stack.extend(self.nodes[current].fanins)
        return seen

    def gate_count(self) -> int:
        return len(self.gates())

    def literal_count(self) -> int:
        return sum(n.func.num_literals() for n in self.gates() if n.func)

    # ------------------------------------------------------------------
    # Semantics
    # ------------------------------------------------------------------
    def evaluate(self, assignment: Mapping[str, bool]) -> dict[str, bool]:
        """Binary simulation; returns values of every node."""
        values: dict[str, bool] = {}
        for name in self.topological_order():
            node = self.nodes[name]
            if node.is_input():
                values[name] = bool(assignment[name])
            elif node.is_output():
                values[name] = values[node.fanins[0]]
            else:
                assert node.func is not None
                values[name] = node.func.evaluate(values)
        return values

    def collapse(self, name: str, stop_at: Optional[set[str]] = None) -> Expr:
        """Flatten a node into an expression over PIs (or ``stop_at``).

        Substitution only — no simplification — so the result's
        *structure* mirrors the network (fanout duplicated per path),
        which is exactly what hazard analysis wants.
        """
        stop = set(stop_at or ())
        memo: dict[str, Expr] = {}

        def build(current: str) -> Expr:
            if current in memo:
                return memo[current]
            node = self.nodes[current]
            if node.is_input() or current in stop:
                result: Expr = Var(current)
            elif node.is_output():
                result = build(node.fanins[0])
            else:
                assert node.func is not None
                mapping = {fanin: build(fanin) for fanin in node.fanins}
                result = node.func.substitute(mapping)
            memo[current] = result
            return result

        return build(name)

    def output_covers(self, names: Optional[Sequence[str]] = None) -> dict[str, Cover]:
        """Flattened SOP of each output over the primary inputs."""
        ordering = list(names or self.inputs)
        result = {}
        for output in self.outputs:
            result[output] = self.collapse(output).to_cover(ordering)
        return result

    def equivalent(self, other: "Netlist") -> bool:
        """Functional equivalence over shared input/output names (BDD)."""
        if set(self.inputs) != set(other.inputs):
            return False
        if set(self.outputs) != set(other.outputs):
            return False
        order = sorted(self.inputs)
        manager = BddManager(len(order))
        for output in self.outputs:
            mine = manager.from_expr(self.collapse(output), order)
            theirs = manager.from_expr(other.collapse(output), order)
            if mine != theirs:
                return False
        return True

    # ------------------------------------------------------------------
    # Mapped-network metrics
    # ------------------------------------------------------------------
    def total_area(self) -> float:
        """Sum of cell areas (mapped gates only)."""
        return sum(n.cell.area for n in self.gates() if n.cell is not None)

    def critical_path_delay(self) -> float:
        """Longest input→output delay using per-cell delays.

        Unmapped gates count one unit each.
        """
        arrival: dict[str, float] = {}
        worst = 0.0
        for name in self.topological_order():
            node = self.nodes[name]
            if node.is_input():
                arrival[name] = 0.0
            elif node.is_output():
                arrival[name] = arrival[node.fanins[0]]
            else:
                base = max((arrival[f] for f in node.fanins), default=0.0)
                delay = node.cell.delay if node.cell is not None else 1.0
                arrival[name] = base + delay
            worst = max(worst, arrival[name])
        return worst

    def cell_usage(self) -> dict[str, int]:
        usage: dict[str, int] = {}
        for node in self.gates():
            if node.cell is not None:
                usage[node.cell.name] = usage.get(node.cell.name, 0) + 1
        return usage

    # ------------------------------------------------------------------
    # Convenience constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_equations(
        cls,
        equations: Mapping[str, str | Expr],
        name: str = "net",
        inputs: Optional[Sequence[str]] = None,
    ) -> "Netlist":
        """Build a network from output-name → expression-text equations.

        Every variable not defined by an equation becomes a primary
        input; each equation becomes one logic node plus an output
        alias.  Equations may reference other equations (acyclically).
        """
        net = cls(name)
        exprs: dict[str, Expr] = {}
        for out, text in equations.items():
            exprs[out] = parse(text) if isinstance(text, str) else text
        referenced: set[str] = set()
        for expr in exprs.values():
            referenced |= expr.support()
        pi_names = [v for v in sorted(referenced) if v not in exprs]
        if inputs is not None:
            declared = list(inputs)
            for pi in pi_names:
                if pi not in declared:
                    raise NetlistError(f"undeclared primary input {pi!r}")
            pi_names = declared
        for pi in pi_names:
            net.add_input(pi)
        # Add equation nodes in dependency order.
        remaining = dict(exprs)
        placed: set[str] = set(pi_names)
        while remaining:
            progress = False
            for out in list(remaining):
                expr = remaining[out]
                if expr.support() <= placed:
                    gate = net.add_gate(f"{out}__logic", expr.rename(
                        {o: f"{o}__logic" for o in exprs if o in expr.support()}
                    ))
                    placed.add(out)
                    del remaining[out]
                    progress = True
            if not progress:
                raise NetlistError("cyclic equation dependencies")
        for out in exprs:
            net.add_output(out, f"{out}__logic")
        return net

    def copy(self, name: Optional[str] = None) -> "Netlist":
        clone = Netlist(name or self.name)
        clone.inputs = list(self.inputs)
        clone.outputs = list(self.outputs)
        clone._counter = self._counter
        for key, node in self.nodes.items():
            clone.nodes[key] = Node(
                node.name, node.kind, list(node.fanins), node.func, node.cell
            )
        return clone

    def stats(self) -> dict[str, float]:
        return {
            "inputs": len(self.inputs),
            "outputs": len(self.outputs),
            "gates": self.gate_count(),
            "literals": self.literal_count(),
            "area": self.total_area(),
            "delay": self.critical_path_delay(),
        }

    def __repr__(self) -> str:
        return (
            f"Netlist({self.name!r}, {len(self.inputs)} in, "
            f"{len(self.outputs)} out, {self.gate_count()} gates)"
        )


def cover_to_expr(cover: Cover, names: Sequence[str]) -> Expr:
    """Literal translation of an SOP cover to an expression tree.

    Cube order and literal order are preserved so the expression's
    structure matches the two-level implementation the cover denotes.
    """
    from ..boolean.cube import bit_indices

    if not cover.cubes:
        return Const(False)
    products: list[Expr] = []
    for cube in cover:
        literals: list[Expr] = [
            Lit(names[v], bool(cube.phase & (1 << v))) for v in bit_indices(cube.used)
        ]
        if not literals:
            products.append(Const(True))
        elif len(literals) == 1:
            products.append(literals[0])
        else:
            products.append(And(tuple(literals)))
    if len(products) == 1:
        return products[0]
    return Or(tuple(products))
