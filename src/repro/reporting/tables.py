"""Plain-text table rendering for the benchmark harness.

The benchmark scripts print the same rows the paper's tables report;
this module keeps the formatting in one place.
"""

from __future__ import annotations

from typing import Iterable, Sequence


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render an ASCII table with right-padded columns."""
    materialized = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in materialized:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "| " + " | ".join(c.ljust(widths[i]) for i, c in enumerate(cells)) + " |"

    rule = "+" + "+".join("-" * (w + 2) for w in widths) + "+"
    out = []
    if title:
        out.append(title)
    out.append(rule)
    out.append(line(list(headers)))
    out.append(rule)
    for row in materialized:
        out.append(line(row))
    out.append(rule)
    return "\n".join(out)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        if cell >= 100:
            return f"{cell:.0f}"
        if cell >= 10:
            return f"{cell:.1f}"
        return f"{cell:.2f}"
    return str(cell)
