"""Reporting helpers."""

from .tables import render_table

__all__ = ["render_table"]
