"""Content-addressed cache of whole ``repro-api/v1`` map responses.

Mapping is deterministic given its inputs — the CI byte-identity gates
pin that — so the *entire* result of a map request can be memoized the
way SIS and cut-based LUT mappers memoize at the result level.  This
module keys a full :class:`~repro.api.schema.MapResponse` payload by a
SHA-256 digest over everything that can change the result:

* the **canonical network serialization** — the BLIF text of the
  resolved source netlist (so two spellings of the same design, say a
  catalog name and its inline BLIF, share a key);
* the **library digest** — :func:`repro.library.anncache.
  library_fingerprint`, which already covers the cache version, the
  package version, and every cell's (name, expression, pins, area,
  delay);
* the **normalized mapping options** — the result-affecting subset of
  the ``repro-api/v1`` option fields, canonicalized from
  :data:`~repro.api.schema.OPTION_FIELDS` defaults so two spellings of
  identical options (defaults omitted vs. written out) share a key.
  Knobs that cannot change the payload — ``workers``,
  ``deadline_seconds``, ``result_cache`` itself — stay out of the key.

Storage is two-tier:

* a bounded in-memory LRU (:class:`MemoryTier`) that serves a
  long-lived process — the ``repro serve`` daemon, a batch worker —
  in microseconds;
* a version-stamped on-disk store under
  ``<cache root>/results/v<RESULT_CACHE_VERSION>/<key>.json`` reusing
  the atomic per-PID-temp + ``os.replace`` + advisory-lock discipline
  of the annotation cache (:func:`repro.library.anncache.
  atomic_store_json`), bounded by entry count and total bytes with
  oldest-first eviction.

Every disk hit is **re-verified** before it is served: the stamped
cache version, the stored key, and the response's own SHA-256 BLIF
digest must all check out, or the entry is evicted and the mapping
recomputed — a corrupt or stale cache can cost time, never correctness.

Telemetry lands in the caller's
:class:`~repro.obs.metrics.MetricsRegistry` under ``cache.result.*``
(hits/misses/stores/evictions/verify failures, per-tier hit counters,
and a lookup-latency histogram) and the facade wraps lookups and
stores in ``result_cache`` spans, so warm-vs-cold is visible in
``repro obs top`` and the Prometheus exposition alike.

Enabling: requests opt in via the ``result_cache`` option field (the
CLI's ``--result-cache``/``--no-result-cache``); the
``REPRO_RESULT_CACHE`` environment toggle supplies a default location
the same way ``REPRO_ANNOTATION_CACHE`` does for annotations.  ``repro
cache`` reports and clears this store alongside the annotation cache.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
import time
from collections import OrderedDict
from pathlib import Path
from typing import TYPE_CHECKING, Optional

from ..library.anncache import (
    DISABLED,
    CacheDir,
    _CacheDisabled,
    atomic_store_json,
    default_cache_root,
    library_fingerprint,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..api.schema import MapRequest
    from ..library.library import Library

#: Bump when the key derivation or the stored payload layout changes.
RESULT_CACHE_VERSION = 1

#: Version stamp carried inside every on-disk entry.
RESULT_SCHEMA = "repro-result-cache/v1"

_ENV_TOGGLE = "REPRO_RESULT_CACHE"
_ENV_MAX_ENTRIES = "REPRO_RESULT_CACHE_MAX_ENTRIES"
_ENV_MAX_BYTES = "REPRO_RESULT_CACHE_MAX_BYTES"
_ENV_MEMORY_ENTRIES = "REPRO_RESULT_CACHE_MEMORY_ENTRIES"

#: Disk-tier bounds (both enforced after every store, oldest first).
DEFAULT_MAX_ENTRIES = 256
DEFAULT_MAX_BYTES = 64 * 1024 * 1024
#: In-memory LRU bound (responses, not bytes — payloads are small).
DEFAULT_MEMORY_ENTRIES = 64

#: The ``repro-api/v1`` option fields that can change a map response.
#: ``workers`` cannot (parallel covering is deterministic), a deadline
#: only selects *whether* the full result is produced (fallback
#: responses are never stored), and ``result_cache`` is the toggle
#: itself.
RESULT_KEY_FIELDS = (
    "mode",
    "max_depth",
    "max_inputs",
    "objective",
    "filter_mode",
    "dont_cares",
    "verify",
    "explain",
)


def _int_env(name: str, default: int) -> int:
    raw = os.environ.get(name, "").strip()
    if not raw:
        return default
    try:
        return max(0, int(raw))
    except ValueError:
        return default


def resolve_result_cache_dir(cache_dir: CacheDir = None) -> Optional[Path]:
    """Resolve the disk tier's location (``None`` = no disk tier).

    Mirrors :func:`repro.library.anncache.resolve_cache_dir` with its
    own ``REPRO_RESULT_CACHE`` toggle: :data:`~repro.library.anncache.
    DISABLED` always wins, an explicit path is used as-is, and ``None``
    consults the environment (unset/falsy keeps runs hermetic).
    """
    if isinstance(cache_dir, _CacheDisabled):
        return None
    if cache_dir is not None:
        return Path(cache_dir)
    toggle = os.environ.get(_ENV_TOGGLE, "").strip()
    if not toggle or toggle.lower() in ("0", "off", "no", "false"):
        return None
    if toggle.lower() in ("1", "on", "yes", "true", "auto"):
        return default_cache_root()
    return Path(toggle)


# ----------------------------------------------------------------------
# Key derivation
# ----------------------------------------------------------------------
def normalized_options(values: dict) -> dict:
    """The canonical, fully-spelled form of the result-affecting options.

    Accepts any mapping of option names to values (missing names take
    the ``repro-api/v1`` defaults, unknown or result-neutral names are
    dropped) and returns a dict with exactly the
    :data:`RESULT_KEY_FIELDS` keys in declaration order — so two
    spellings of identical options produce one canonical form and hence
    one key.
    """
    import dataclasses

    from ..api.schema import MapRequest, OPTION_FIELDS

    defaults = {f.name: f.default for f in OPTION_FIELDS}
    for field in dataclasses.fields(MapRequest):
        defaults.setdefault(field.name, field.default)
    return {
        name: values.get(name, defaults.get(name))
        for name in RESULT_KEY_FIELDS
    }


def result_cache_key(
    network_blif: str, library: "Library", options: dict
) -> str:
    """SHA-256 key of one (network, library, options) mapping triple."""
    canonical = normalized_options(options)
    hasher = hashlib.sha256()
    hasher.update(f"result-cache-v{RESULT_CACHE_VERSION}".encode())
    hasher.update(b"|network|")
    hasher.update(network_blif.encode("utf-8"))
    hasher.update(b"|library|")
    hasher.update(library_fingerprint(library).encode())
    hasher.update(b"|options|")
    hasher.update(
        json.dumps(canonical, sort_keys=True, separators=(",", ":")).encode()
    )
    return hasher.hexdigest()


def request_cache_key(
    request: "MapRequest", network_blif: str, library: "Library"
) -> str:
    """The cache key a ``repro-api/v1`` map request denotes."""
    values = {name: getattr(request, name) for name in RESULT_KEY_FIELDS}
    return result_cache_key(network_blif, library, values)


# ----------------------------------------------------------------------
# Verification (shared by both tiers)
# ----------------------------------------------------------------------
def _payload_ok(entry: dict, key: str) -> bool:
    """Is one stored entry intact, current, and addressed by ``key``?"""
    if not isinstance(entry, dict):
        return False
    if entry.get("schema") != RESULT_SCHEMA:
        return False
    if entry.get("cache_version") != RESULT_CACHE_VERSION:
        return False
    if entry.get("key") != key:
        return False
    response = entry.get("response")
    if not isinstance(response, dict):
        return False
    blif = response.get("blif")
    digest = response.get("digest")
    if not isinstance(blif, str) or not isinstance(digest, str):
        return False
    return hashlib.sha256(blif.encode("utf-8")).hexdigest() == digest


# ----------------------------------------------------------------------
# Tier 1: bounded in-memory LRU
# ----------------------------------------------------------------------
class MemoryTier:
    """A thread-safe, entry-bounded LRU of response payloads."""

    def __init__(self, max_entries: int = DEFAULT_MEMORY_ENTRIES) -> None:
        self.max_entries = max_entries
        self._lock = threading.Lock()
        self._entries: OrderedDict[str, dict] = OrderedDict()
        self.evictions = 0

    def get(self, key: str) -> Optional[dict]:
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                return None
            self._entries.move_to_end(key)
            return entry

    def put(self, key: str, entry: dict) -> None:
        if self.max_entries <= 0:
            return
        with self._lock:
            self._entries[key] = entry
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self.evictions += 1

    def evict(self, key: str) -> None:
        with self._lock:
            self._entries.pop(key, None)

    def clear(self) -> int:
        with self._lock:
            count = len(self._entries)
            self._entries.clear()
            return count

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


#: The process-wide memory tier (the daemon's and batch workers' warm
#: path).  Tests size it down or :func:`clear_result_cache` it.
MEMORY = MemoryTier(_int_env(_ENV_MEMORY_ENTRIES, DEFAULT_MEMORY_ENTRIES))


# ----------------------------------------------------------------------
# Tier 2: version-stamped on-disk store
# ----------------------------------------------------------------------
def results_root(cache_dir: Path) -> Path:
    return Path(cache_dir) / "results" / f"v{RESULT_CACHE_VERSION}"


def result_path(cache_dir: Path, key: str) -> Path:
    return results_root(cache_dir) / f"{key}.json"


def result_entries(cache_dir: CacheDir = None) -> list[Path]:
    """Every result payload under the (resolved or default) cache root."""
    if isinstance(cache_dir, _CacheDisabled):
        return []
    root = resolve_result_cache_dir(cache_dir) or default_cache_root()
    base = Path(root) / "results"
    if not base.exists():
        return []
    return sorted(base.glob("v*/*.json"))


def clear_result_cache(cache_dir: CacheDir = None) -> int:
    """Drop the memory tier and delete all disk entries; returns count."""
    MEMORY.clear()
    removed = 0
    for path in result_entries(cache_dir):
        try:
            path.unlink()
            removed += 1
        except OSError:
            pass
    return removed


def _evict_file(path: Path) -> None:
    try:
        path.unlink()
    except OSError:
        pass


def _enforce_bounds(
    cache_dir: Path,
    max_entries: int,
    max_bytes: int,
    metrics=None,
) -> int:
    """Prune oldest entries until both disk bounds hold; returns count."""
    root = results_root(cache_dir)
    if not root.exists():
        return 0
    entries = []
    total = 0
    for path in root.glob("*.json"):
        try:
            stat = path.stat()
        except OSError:
            continue
        entries.append((stat.st_mtime, stat.st_size, path))
        total += stat.st_size
    entries.sort()
    evicted = 0
    while entries and (len(entries) > max_entries or total > max_bytes):
        _, size, path = entries.pop(0)
        _evict_file(path)
        total -= size
        evicted += 1
    if evicted and metrics is not None:
        metrics.counter("cache.result.evictions").inc(evicted)
    return evicted


# ----------------------------------------------------------------------
# The two-tier cache facade
# ----------------------------------------------------------------------
class ResultCache:
    """One lookup/store surface over the memory and disk tiers.

    ``cache_dir`` is the *annotation-cache-style* location argument —
    ``None`` consults ``REPRO_RESULT_CACHE``, a path is used directly,
    :data:`~repro.library.anncache.DISABLED` turns the disk tier off.
    The memory tier is always active (it is what makes a warm daemon
    warm); :func:`clear_result_cache` empties it for hermetic tests.
    """

    def __init__(
        self,
        cache_dir: CacheDir = None,
        memory: Optional[MemoryTier] = None,
        max_entries: Optional[int] = None,
        max_bytes: Optional[int] = None,
    ) -> None:
        self.disk_dir = resolve_result_cache_dir(cache_dir)
        self.memory = memory if memory is not None else MEMORY
        self.max_entries = (
            max_entries
            if max_entries is not None
            else _int_env(_ENV_MAX_ENTRIES, DEFAULT_MAX_ENTRIES)
        )
        self.max_bytes = (
            max_bytes
            if max_bytes is not None
            else _int_env(_ENV_MAX_BYTES, DEFAULT_MAX_BYTES)
        )

    # -- lookup -----------------------------------------------------
    def lookup(self, key: str, metrics=None) -> Optional[tuple[str, dict]]:
        """Return ``(tier, response_payload)`` or ``None`` on a miss.

        Both tiers re-verify before serving: a mismatched version
        stamp, a foreign key, or a response whose BLIF no longer hashes
        to its recorded digest is evicted and reported as a miss —
        corrupt entries are never served.
        """
        started = time.perf_counter()
        tier, payload = self._lookup(key, metrics)
        if metrics is not None:
            metrics.counter(
                "cache.result.hits" if payload is not None
                else "cache.result.misses"
            ).inc()
            if payload is not None:
                metrics.counter(f"cache.result.hits.{tier}").inc()
            metrics.histogram("cache.result.lookup_seconds").observe(
                time.perf_counter() - started
            )
        if payload is None:
            return None
        return tier, payload

    def _lookup(self, key: str, metrics) -> tuple[str, Optional[dict]]:
        entry = self.memory.get(key)
        if entry is not None:
            if _payload_ok(entry, key):
                return "memory", entry["response"]
            # A torn in-memory entry can only come from deliberate
            # tampering (tests) but the discipline is uniform: evict,
            # never serve.
            self.memory.evict(key)
            self._count_verify_failure(metrics)
        if self.disk_dir is None:
            return "none", None
        path = result_path(self.disk_dir, key)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                entry = json.load(handle)
        except FileNotFoundError:
            return "none", None
        except (OSError, ValueError):
            entry = None
        if entry is None or not _payload_ok(entry, key):
            # Corrupt, truncated, stale, or mis-keyed: evict so the
            # recomputed result can be stored cleanly.
            _evict_file(path)
            self._count_verify_failure(metrics)
            if metrics is not None:
                metrics.counter("cache.result.evictions").inc()
            return "none", None
        self.memory.put(key, entry)
        return "disk", entry["response"]

    @staticmethod
    def _count_verify_failure(metrics) -> None:
        if metrics is not None:
            metrics.counter("cache.result.verify_failures").inc()

    # -- store ------------------------------------------------------
    def store(
        self,
        key: str,
        response_payload: dict,
        *,
        library: Optional["Library"] = None,
        design: Optional[str] = None,
        metrics=None,
    ) -> Optional[Path]:
        """Publish one response payload to both tiers.

        Returns the disk path (or ``None`` when there is no disk tier).
        The entry is self-describing — schema, cache version, key,
        library fingerprint, creation time — so a later lookup (or a
        human) can audit it without context.
        """
        entry = {
            "schema": RESULT_SCHEMA,
            "cache_version": RESULT_CACHE_VERSION,
            "key": key,
            "created": time.time(),
            "library": library.name if library is not None else None,
            "library_fingerprint": (
                library_fingerprint(library) if library is not None else None
            ),
            "design": design,
            "response": response_payload,
        }
        self.memory.put(key, entry)
        if metrics is not None:
            metrics.counter("cache.result.stores").inc()
        if self.disk_dir is None:
            return None
        path = result_path(self.disk_dir, key)
        atomic_store_json(path, entry)
        _enforce_bounds(
            self.disk_dir, self.max_entries, self.max_bytes, metrics
        )
        return path

    @property
    def enabled_tiers(self) -> tuple[str, ...]:
        tiers = ["memory"]
        if self.disk_dir is not None:
            tiers.append("disk")
        return tuple(tiers)


__all__ = [
    "DEFAULT_MAX_BYTES",
    "DEFAULT_MAX_ENTRIES",
    "DEFAULT_MEMORY_ENTRIES",
    "DISABLED",
    "MEMORY",
    "MemoryTier",
    "RESULT_CACHE_VERSION",
    "RESULT_KEY_FIELDS",
    "RESULT_SCHEMA",
    "ResultCache",
    "clear_result_cache",
    "normalized_options",
    "request_cache_key",
    "resolve_result_cache_dir",
    "result_cache_key",
    "result_entries",
    "result_path",
]
