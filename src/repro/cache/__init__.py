"""Content-addressed whole-result caching for mapping requests.

The annotation cache (:mod:`repro.library.anncache`) memoizes the
per-library hazard analyses; this package memoizes one level up — the
complete ``repro-api/v1`` map response for a (network, library,
options) triple — so a warm daemon or batch re-run skips mapping
entirely.  See :mod:`repro.cache.resultcache` for the design and
``docs/caching.md`` for the operator's view.
"""

from .resultcache import (
    DEFAULT_MAX_BYTES,
    DEFAULT_MAX_ENTRIES,
    DEFAULT_MEMORY_ENTRIES,
    MEMORY,
    MemoryTier,
    RESULT_CACHE_VERSION,
    RESULT_KEY_FIELDS,
    RESULT_SCHEMA,
    ResultCache,
    clear_result_cache,
    normalized_options,
    request_cache_key,
    resolve_result_cache_dir,
    result_cache_key,
    result_entries,
    result_path,
)

__all__ = [
    "DEFAULT_MAX_BYTES",
    "DEFAULT_MAX_ENTRIES",
    "DEFAULT_MEMORY_ENTRIES",
    "MEMORY",
    "MemoryTier",
    "RESULT_CACHE_VERSION",
    "RESULT_KEY_FIELDS",
    "RESULT_SCHEMA",
    "ResultCache",
    "clear_result_cache",
    "normalized_options",
    "request_cache_key",
    "resolve_result_cache_dir",
    "result_cache_key",
    "result_entries",
    "result_path",
]
