"""Synthetic recreations of the paper's four cell libraries (Table 1).

The real LSI9K / CMOS3 / GDT / Actel-Act1 libraries are proprietary;
what Table 1 depends on is only cell *structure*, which we model
faithfully:

* **LSI9K** — a general-purpose CMOS ASIC library: 86 cells across the
  usual families, of which the 12 multiplexers are the only hazardous
  elements (≈14 %).  Muxes written as their true two-gate SOP structure
  ``s'·a + s·b`` carry the classic static-1 hazard.
* **CMOS3** — a small ASIC library (Heinbuch): 30 cells, one mux (3 %).
* **GDT** — a chip-specific standard-cell library with many *complex*
  AOI/OAI gates in factored single-gate form: complements of disjoint
  products have no adjacent or intersecting cubes, so none of the 72
  cells is hazardous — but their size makes hazard analysis slow, which
  is exactly Table 2's GDT row.
* **ACTEL** — an antifuse FPGA family whose macros are built from
  multiplexer trees; AND-OR macros written mux-style
  (``c + c'·a·b``) lose the consensus term and become hazardous: 24 of
  84 cells (≈29 %), concentrated in the AO/OA/AOI/OAI and mux macros.

Areas default to the pulldown-transistor count (the Table 3 unit);
LSI areas are scaled to a µm²-flavoured unit so that Table 5's "area
numbers are relative to the particular library" property holds.
"""

from __future__ import annotations

from functools import lru_cache

from .cell import LibraryCell
from .library import Library

# ----------------------------------------------------------------------
# Family builders
# ----------------------------------------------------------------------

_PINS = "abcdefghij"


def _ands(n: int) -> str:
    return "*".join(_PINS[:n])


def _ors(n: int) -> str:
    return " + ".join(_PINS[:n])


def _cell(
    name: str,
    text: str,
    delay: float,
    family: str = "logic",
    area_scale: float = 1.0,
    area_offset: float = 0.0,
) -> LibraryCell:
    cell = LibraryCell.from_text(name, text, area=None, delay=delay, family=family)
    cell.area = cell.area * area_scale + area_offset
    return cell


def _basic_family(
    drive_counts: dict[str, int],
    delay_unit: float,
    area_scale: float,
) -> list[LibraryCell]:
    """INV/BUF/NAND/NOR/AND/OR/XOR cells with drive-strength variants.

    ``drive_counts`` maps a template key (e.g. ``"NAND2"``) to how many
    drive variants to emit.  Higher drives get slightly lower delay and
    higher area, like real libraries.
    """
    templates: dict[str, tuple[str, float]] = {
        "INV": ("a'", 0.6),
        "BUF": ("a", 1.0),
    }
    for n in (2, 3, 4, 5, 6, 8):
        templates[f"NAND{n}"] = (f"({_ands(n)})'", 0.8 + 0.15 * n)
        templates[f"NOR{n}"] = (f"({_ors(n)})'", 0.9 + 0.18 * n)
        templates[f"AND{n}"] = (_ands(n), 1.0 + 0.15 * n)
        templates[f"OR{n}"] = (_ors(n), 1.1 + 0.18 * n)
    templates["XOR2"] = ("a'*b + a*b'", 1.8)
    templates["XNOR2"] = ("a*b + a'*b'", 1.8)
    templates["XOR3"] = ("a'*b'*c + a'*b*c' + a*b'*c' + a*b*c", 2.4)
    templates["XNOR3"] = ("a'*b'*c' + a'*b*c + a*b'*c + a*b*c'", 2.4)

    cells = []
    for key, count in drive_counts.items():
        text, rel_delay = templates[key]
        for drive in range(1, count + 1):
            suffix = "" if count == 1 else f"_{drive}X"
            delay = delay_unit * rel_delay / (0.8 + 0.2 * drive)
            cells.append(
                _cell(
                    f"{key}{suffix}",
                    text,
                    delay=round(delay, 3),
                    family="xor" if key.startswith("X") else "basic",
                    area_scale=area_scale * (1.0 + 0.25 * (drive - 1)),
                )
            )
    return cells


def _aoi_family(
    shapes: list[tuple[int, ...]],
    delay_unit: float,
    area_scale: float,
    invert: bool,
    prefix: str,
) -> list[LibraryCell]:
    """Complex AND-OR(-INVERT) gates in factored single-gate form.

    ``shapes`` lists the AND-leg widths, e.g. ``(2, 1)`` is AOI21 =
    ``(a·b + c)'``.  Disjoint product legs have no cube adjacencies or
    intersections, so these factored forms are logic-hazard-free.
    """
    cells = []
    pin_iter = _PINS
    for shape in shapes:
        legs = []
        offset = 0
        for width in shape:
            legs.append("*".join(pin_iter[offset : offset + width]))
            offset += width
        body = " + ".join(legs)
        text = f"({body})'" if invert else body
        name = prefix + "".join(str(w) for w in shape)
        delay = delay_unit * (0.9 + 0.22 * offset)
        cells.append(
            _cell(name, text, delay=round(delay, 3), family="aoi", area_scale=area_scale)
        )
    return cells


def _oai_family(
    shapes: list[tuple[int, ...]],
    delay_unit: float,
    area_scale: float,
    invert: bool,
    prefix: str,
) -> list[LibraryCell]:
    """OR-AND(-INVERT) gates in factored form, e.g. OAI21 = ((a+b)·c)'."""
    cells = []
    pin_iter = _PINS
    for shape in shapes:
        legs = []
        offset = 0
        for width in shape:
            group = " + ".join(pin_iter[offset : offset + width])
            legs.append(f"({group})" if width > 1 else group)
            offset += width
        body = "*".join(legs)
        text = f"({body})'" if invert else body
        name = prefix + "".join(str(w) for w in shape)
        delay = delay_unit * (0.95 + 0.22 * offset)
        cells.append(
            _cell(name, text, delay=round(delay, 3), family="oai", area_scale=area_scale)
        )
    return cells


def _mux_family(
    variants: list[str], delay_unit: float, area_scale: float
) -> list[LibraryCell]:
    """Multiplexers in their true two-level SOP structure — hazardous.

    ``s'·a + s·b`` misses the consensus cube ``a·b``; a select change
    with both data inputs high can glitch low (static-1), and related
    dynamic hazards follow.  Inverted-output versions reconverge the
    select internally (a vacuous ``s·s'`` path), adding static-0 /
    s.i.c. dynamic hazards — matching real pass-gate structures.
    """
    templates = {
        "MUX21": "s'*a + s*b",
        "MUX21I": "(s'*a + s*b)'",
        "MUX41": "t'*s'*a + t'*s*b + t*s'*c + t*s*d",
        "MUX41I": "(t'*s'*a + t'*s*b + t*s'*c + t*s*d)'",
        "MUXA21": "s'*a*b + s*c",
        "MUXO21": "s'*(a + b) + s*c",
    }
    cells = []
    for variant in variants:
        base, __, drive = variant.partition(":")
        name = base if not drive else f"{base}_{drive}X"
        scale = 1.0 if not drive else 1.0 + 0.25 * (int(drive) - 1)
        text = templates[base]
        delay = delay_unit * (1.6 if "41" in base else 1.2)
        cells.append(
            _cell(
                name,
                text,
                delay=round(delay, 3),
                family="mux",
                area_scale=area_scale * scale,
            )
        )
    return cells


def _actel_macro_family(delay_unit: float) -> list[LibraryCell]:
    """Actel AO/OA/AOI/OAI macros in their mux-tree realization.

    The Act1 logic module computes everything by steering data through
    multiplexers, so an AND-OR macro like ``a·b + c`` is realized as
    ``c + c'·a·b`` — the consensus term ``a·b`` is gone and a change of
    ``c`` with ``a·b`` high can glitch: hazardous, unlike the same
    function in a complementary-CMOS library.
    """
    macros = {
        # AND-OR macros: f = leg + c  realized as  c + c'·leg
        "AO1": "c + c'*a*b",
        "AO2": "d + d'*a*b*c",
        "AO3": "c + c'*(a + b)*b + c'*a*b'",
        "AO4": "d + d'*a*b + d'*a'*c*b",
        "AO5": "c*d + (c*d)'*a*b + (c*d)'*a*c'*d'",
        "AO6": "d + d'*c + d'*c'*a*b*c",
        # OR-AND macros: f = (a+b)·c realized by steering c
        "OA1": "c*a + c*a'*b",
        "OA2": "d*a + d*a'*b + d*a'*b'*c*a",
        "OA3": "c*b + c*b'*a",
        "OA4": "d*c*a + d*c*a'*b",
        "OA5": "c*a*b' + c*b",
        # Inverting macros: mux-realized complements keep the select
        # reconvergence, hence vacuous select paths.
        "AOI1": "(c + c'*a*b)'",
        "AOI2": "(d + d'*a*b*c)'",
        "AOI3": "(c + c'*(a + b)*b + c'*a*b')'",
        "AOI4": "(d + d'*a*b + d'*a'*c*b)'",
        "OAI1": "(c*a + c*a'*b)'",
        "OAI2": "(c*b + c*b'*a)'",
        "OAI3": "(d*c*a + d*c*a'*b)'",
    }
    cells = []
    for name, text in macros.items():
        expression_cost = 1.2 + 0.1 * len(text)
        cells.append(
            _cell(
                name,
                text,
                delay=round(delay_unit * expression_cost / 2.0, 3),
                family="aoi" if name.startswith(("AO", "AOI")) else "oai",
            )
        )
    return cells


# ----------------------------------------------------------------------
# The four libraries
# ----------------------------------------------------------------------


@lru_cache(maxsize=None)
def lsi9k() -> Library:
    """LSI Logic 9K-flavoured ASIC library: 86 cells, 12 hazardous muxes."""
    delay_unit = 1.4  # ns-ish; Table 5's LSI delays are an order above CMOS3
    area_scale = 16.0
    cells: list[LibraryCell] = []
    cells += _basic_family(
        {
            "INV": 4,
            "BUF": 4,
            "NAND2": 3,
            "NAND3": 2,
            "NAND4": 2,
            "NAND5": 1,
            "NAND6": 1,
            "NAND8": 1,
            "NOR2": 3,
            "NOR3": 2,
            "NOR4": 2,
            "NOR5": 1,
            "NOR6": 1,
            "NOR8": 1,
            "AND2": 2,
            "AND3": 2,
            "AND4": 2,
            "AND5": 1,
            "AND6": 1,
            "OR2": 2,
            "OR3": 2,
            "OR4": 2,
            "OR5": 1,
            "OR6": 1,
            "XOR2": 3,
            "XNOR2": 3,
            "XOR3": 1,
            "XNOR3": 1,
        },
        delay_unit,
        area_scale,
    )
    cells += _aoi_family(
        [(2, 1), (2, 2), (2, 1, 1), (2, 2, 1), (2, 2, 2), (3, 1), (3, 2), (3, 3)],
        delay_unit,
        area_scale,
        invert=True,
        prefix="AOI",
    )
    cells += _oai_family(
        [(2, 1), (2, 2), (2, 1, 1), (2, 2, 1), (2, 2, 2), (3, 1), (3, 2), (3, 3)],
        delay_unit,
        area_scale,
        invert=True,
        prefix="OAI",
    )
    cells += _aoi_family(
        [(2, 1), (2, 2), (3, 3)], delay_unit, area_scale, invert=False, prefix="AO"
    )
    cells += _oai_family(
        [(2, 1), (2, 2), (3, 3)], delay_unit, area_scale, invert=False, prefix="OA"
    )
    cells += _mux_family(
        [
            "MUX21:1",
            "MUX21:2",
            "MUX21:3",
            "MUX21I:1",
            "MUX21I:2",
            "MUX41:1",
            "MUX41:2",
            "MUX41I:1",
            "MUXA21:1",
            "MUXA21:2",
            "MUXO21:1",
            "MUXO21:2",
        ],
        delay_unit,
        area_scale,
    )
    return Library("LSI", cells)


@lru_cache(maxsize=None)
def cmos3() -> Library:
    """Heinbuch CMOS3-flavoured cell library: 30 cells, one mux."""
    delay_unit = 0.22
    cells: list[LibraryCell] = []
    cells += _basic_family(
        {
            "INV": 2,
            "BUF": 1,
            "NAND2": 2,
            "NAND3": 1,
            "NAND4": 1,
            "NOR2": 2,
            "NOR3": 1,
            "NOR4": 1,
            "AND2": 1,
            "AND3": 1,
            "AND4": 1,
            "OR2": 1,
            "OR3": 1,
            "OR4": 1,
            "XOR2": 1,
            "XNOR2": 1,
        },
        delay_unit,
        area_scale=1.0,
    )
    cells += _aoi_family(
        [(2, 1), (2, 2), (2, 2, 1)], delay_unit, 1.0, invert=True, prefix="AOI"
    )
    cells += _oai_family(
        [(2, 1), (2, 2), (2, 2, 1)], delay_unit, 1.0, invert=True, prefix="OAI"
    )
    cells += _aoi_family([(2, 1)], delay_unit, 1.0, invert=False, prefix="AO")
    cells += _oai_family([(2, 1)], delay_unit, 1.0, invert=False, prefix="OA")
    cells += _aoi_family([(2, 2)], delay_unit, 1.0, invert=False, prefix="AO")
    cells += _oai_family([(2, 2)], delay_unit, 1.0, invert=False, prefix="OA")
    cells += _mux_family(["MUX21"], delay_unit, 1.0)
    return Library("CMOS3", cells)


@lru_cache(maxsize=None)
def gdt() -> Library:
    """GDT-flavoured custom library: 72 cells, heavy on complex AOIs.

    Written for one particular chip, it trades breadth for very wide
    single-stage complex gates — which is why its hazard analysis
    dominates Table 2 despite containing no hazardous element.
    """
    delay_unit = 0.9
    cells: list[LibraryCell] = []
    cells += _basic_family(
        {
            "INV": 3,
            "BUF": 3,
            "NAND2": 2,
            "NAND3": 2,
            "NAND4": 1,
            "NAND5": 1,
            "NAND6": 1,
            "NOR2": 2,
            "NOR3": 2,
            "NOR4": 1,
            "NOR5": 1,
            "NOR6": 1,
            "AND2": 1,
            "AND3": 1,
            "AND4": 1,
            "AND5": 1,
            "AND6": 1,
            "OR2": 1,
            "OR3": 1,
            "OR4": 1,
            "OR5": 1,
            "OR6": 1,
            "XOR2": 1,
            "XNOR2": 1,
        },
        delay_unit,
        area_scale=1.0,
    )
    cells += _aoi_family(
        [
            (2, 1),
            (2, 2),
            (2, 1, 1),
            (2, 2, 1),
            (2, 2, 2),
            (3, 1),
            (3, 2),
            (3, 3),
            (2, 2, 2, 1),
            (2, 2, 2, 2),
            (3, 2, 2),
            (3, 3, 2),
            (3, 3, 3),
            (4, 2),
            (4, 3),
            (4, 4),
        ],
        delay_unit,
        1.0,
        invert=True,
        prefix="AOI",
    )
    cells += _oai_family(
        [
            (2, 1),
            (2, 2),
            (2, 1, 1),
            (2, 2, 1),
            (2, 2, 2),
            (3, 1),
            (3, 2),
            (3, 3),
            (2, 2, 2, 1),
            (2, 2, 2, 2),
            (3, 2, 2),
            (3, 3, 2),
            (3, 3, 3),
            (4, 2),
            (4, 3),
            (4, 4),
        ],
        delay_unit,
        1.0,
        invert=True,
        prefix="OAI",
    )
    cells += _aoi_family(
        [(2, 1), (2, 2), (2, 2, 2), (3, 3)], delay_unit, 1.0, invert=False, prefix="AO"
    )
    cells += _oai_family(
        [(2, 1), (2, 2), (2, 2, 2), (3, 3)], delay_unit, 1.0, invert=False, prefix="OA"
    )
    return Library("GDT", cells)


@lru_cache(maxsize=None)
def actel_act1() -> Library:
    """Actel Act1-flavoured macro library: 84 cells, 24 hazardous.

    Every combinational macro is a personalization of the mux-based
    logic module, so the AO/OA/AOI/OAI macros and the muxes themselves
    carry logic hazards (Table 1's 29 %).
    """
    delay_unit = 1.1
    cells: list[LibraryCell] = []
    cells += _basic_family(
        {
            "INV": 5,
            "BUF": 4,
            "NAND2": 4,
            "NAND3": 3,
            "NAND4": 3,
            "NOR2": 4,
            "NOR3": 3,
            "NOR4": 3,
            "AND2": 4,
            "AND3": 3,
            "AND4": 3,
            "OR2": 4,
            "OR3": 3,
            "OR4": 3,
            "XOR2": 3,
            "XNOR2": 3,
            "XOR3": 1,
        },
        delay_unit,
        area_scale=1.0,
    )
    # Hazard-free wide gates realizable as mux cascades without
    # reconvergence (single-phase steering).
    cells += _aoi_family(
        [(2, 1, 1), (3, 1)], delay_unit, 1.0, invert=False, prefix="AO_W"
    )
    cells += _oai_family(
        [(2, 1, 1), (3, 1)], delay_unit, 1.0, invert=False, prefix="OA_W"
    )
    # 24 hazardous macros: muxes + mux-realized AND-OR macros.
    cells += _mux_family(
        ["MUX21:1", "MUX21:2", "MUX21I:1", "MUX41:1", "MUX41:2", "MUX41I:1"],
        delay_unit,
        1.0,
    )
    cells += _actel_macro_family(delay_unit)
    return Library("ACTEL", cells)


@lru_cache(maxsize=None)
def minimal_teaching_library() -> Library:
    """A deliberately small library for examples and unit tests."""
    spec = [
        ("INV", "a'", None, 0.5, "basic"),
        ("BUF", "a", None, 0.9, "basic"),
        ("AND2", "a*b", None, 1.0, "basic"),
        ("OR2", "a + b", None, 1.1, "basic"),
        ("NAND2", "(a*b)'", None, 0.8, "basic"),
        ("NOR2", "(a + b)'", None, 0.9, "basic"),
        ("AND3", "a*b*c", None, 1.2, "basic"),
        ("OR3", "a + b + c", None, 1.3, "basic"),
        ("AOI21", "(a*b + c)'", None, 1.2, "aoi"),
        ("OAI21", "((a + b)*c)'", None, 1.2, "oai"),
        ("AO21", "a*b + c", None, 1.4, "aoi"),
        ("OA21", "(a + b)*c", None, 1.4, "oai"),
        ("MUX21", "s'*a + s*b", None, 1.5, "mux"),
        ("XOR2", "a'*b + a*b'", None, 1.6, "xor"),
    ]
    return Library.from_spec("MINI", spec)


ALL_LIBRARIES = {
    "LSI": lsi9k,
    "CMOS3": cmos3,
    "GDT": gdt,
    "ACTEL": actel_act1,
}


def load_library(name: str) -> Library:
    """Load one of the synthetic standard libraries by name."""
    try:
        return ALL_LIBRARIES[name]()
    except KeyError:
        raise KeyError(
            f"unknown library {name!r}; choose from {sorted(ALL_LIBRARIES)}"
        ) from None
