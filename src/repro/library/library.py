"""Cell libraries and the hazard-annotation pass.

``Library.annotate_hazards`` is the paper's
``augment-library-with-hazard-info``: every cell's BFF is analyzed once
when the library is read in (Table 2 measures this), and the per-cell
:class:`~repro.hazards.analyzer.HazardAnalysis` is consulted during
matching.  Matching-oriented indexes (pin count, permutation-invariant
signature) are built on demand.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace
from typing import Iterable, Iterator, Optional, Sequence

from ..boolean import truthtable as tt
from ..obs.tracer import NULL_TRACER
from . import anncache
from .cell import LibraryCell


@dataclass
class AnnotationReport:
    """Timing/result record of a library hazard-annotation pass.

    ``source`` says where the analyses came from: ``"cold"`` (computed
    now), ``"disk"`` (replayed from the annotation cache), or
    ``"memory"`` (the library was already annotated).  ``cold_elapsed``
    always records the cold pass that originally produced the analyses,
    so warm reports expose both timings — the Table-2 initialization
    overhead and what the cache reduced it to.
    """

    library: str
    elapsed: float
    cells: int
    hazardous: int
    source: str = "cold"
    cold_elapsed: Optional[float] = None
    cache_path: Optional[str] = None

    @property
    def hazardous_fraction(self) -> float:
        return self.hazardous / self.cells if self.cells else 0.0

    @property
    def warm(self) -> bool:
        return self.source != "cold"


class Library:
    """An ordered collection of cells with matching indexes."""

    def __init__(self, name: str, cells: Iterable[LibraryCell]) -> None:
        self.name = name
        self.cells = list(cells)
        self._by_name: dict[str, LibraryCell] = {}
        for cell in self.cells:
            if cell.name in self._by_name:
                raise ValueError(
                    f"duplicate cell names in library: {cell.name!r}"
                )
            self._by_name[cell.name] = cell
        self._by_pins: Optional[dict[int, list[LibraryCell]]] = None
        self._signatures: Optional[dict[tuple, list[LibraryCell]]] = None
        self.annotated = False
        self._annotation_report: Optional[AnnotationReport] = None

    def __len__(self) -> int:
        return len(self.cells)

    def __iter__(self) -> Iterator[LibraryCell]:
        return iter(self.cells)

    def cell(self, name: str) -> LibraryCell:
        try:
            return self._by_name[name]
        except KeyError:
            raise KeyError(name) from None

    @property
    def max_pins(self) -> int:
        return max((c.num_pins for c in self.cells), default=0)

    # ------------------------------------------------------------------
    # Matching indexes
    # ------------------------------------------------------------------
    # The lazy builds populate a local dict and publish it with a single
    # attribute assignment, so a concurrent reader sees either None
    # (and builds its own complete copy) or a fully built index — never
    # a partially filled one.  Parallel covering additionally calls
    # build_matching_indexes() before spawning workers.
    def _build_pin_index(self) -> dict[int, list[LibraryCell]]:
        index: dict[int, list[LibraryCell]] = {}
        for cell in self.cells:
            index.setdefault(cell.num_pins, []).append(cell)
        return index

    def _build_signature_index(self) -> dict[tuple, list[LibraryCell]]:
        index: dict[tuple, list[LibraryCell]] = {}
        for cell in self.cells:
            key = (cell.num_pins, tt.signature(cell.truth_table(), cell.num_pins))
            index.setdefault(key, []).append(cell)
        return index

    def build_matching_indexes(self) -> None:
        """Build both matching indexes eagerly (idempotent).

        Call before sharing the library across covering threads so no
        worker ever races the first lazy build.
        """
        if self._by_pins is None:
            self._by_pins = self._build_pin_index()
        if self._signatures is None:
            self._signatures = self._build_signature_index()

    def by_pin_count(self, pins: int) -> list[LibraryCell]:
        index = self._by_pins
        if index is None:
            index = self._build_pin_index()
            self._by_pins = index
        return index.get(pins, [])

    def candidates(self, table: int, pins: int) -> list[LibraryCell]:
        """Cells whose permutation-invariant signature matches ``table``."""
        index = self._signatures
        if index is None:
            index = self._build_signature_index()
            self._signatures = index
        key = (pins, tt.signature(table, pins))
        return index.get(key, [])

    # ------------------------------------------------------------------
    # Hazard annotation (async library initialization)
    # ------------------------------------------------------------------
    def annotate_hazards(
        self,
        exhaustive: bool = True,
        cache_dir: anncache.CacheDir = None,
        refresh: bool = False,
        tracer=None,
        metrics=None,
    ) -> AnnotationReport:
        """Analyze every cell's BFF for logic hazards (section 3.2.1).

        With a cache directory (explicit ``cache_dir`` or the
        ``REPRO_ANNOTATION_CACHE`` environment toggle) the per-cell
        analyses are replayed from disk when a valid payload exists and
        persisted after a cold pass, so the Table-2 initialization cost
        is paid once per library version.  ``refresh`` forces a cold
        re-analysis (and re-stores it).

        ``tracer`` records the pass as an ``annotate_library`` span
        whose ``source`` attribute distinguishes the cold analysis from
        disk/memory replays; ``metrics`` (a
        :class:`repro.obs.metrics.MetricsRegistry`) receives
        ``annotate.*`` gauges and the ``anncache.*`` I/O timings.
        """
        tracer = tracer or NULL_TRACER
        with tracer.span("annotate_library", library=self.name) as span:
            report = self._annotate_hazards(
                exhaustive, cache_dir, refresh, metrics
            )
            span.set_attr(
                source=report.source,
                cells=report.cells,
                hazardous=report.hazardous,
            )
        if metrics is not None:
            metrics.gauge("annotate.seconds").set(report.elapsed)
            metrics.gauge("annotate.source").set(report.source)
            metrics.gauge("annotate.cells").set(report.cells)
            metrics.gauge("annotate.hazardous").set(report.hazardous)
            # Counters (not gauges): the serving benchmark proves warm
            # requests skip annotation by asserting these stay flat.
            metrics.counter("library.annotate.calls").inc()
            metrics.counter(f"library.annotate.{report.source}").inc()
        return report

    def _annotate_hazards(
        self,
        exhaustive: bool,
        cache_dir: anncache.CacheDir,
        refresh: bool,
        metrics=None,
    ) -> AnnotationReport:
        if self.annotated and not refresh:
            if self._annotation_report is not None:
                return replace(
                    self._annotation_report, source="memory", elapsed=0.0
                )

        start = time.perf_counter()
        resolved = anncache.resolve_cache_dir(cache_dir)
        payload = None
        if resolved is not None and not refresh:
            payload = anncache.load_annotations(
                self, exhaustive, resolved, metrics=metrics
            )

        if payload is not None:
            for cell in self.cells:
                cell.analysis = payload.analyses[cell.name]
            source = "disk"
            cold_elapsed = payload.cold_elapsed
            cache_path = str(
                anncache.annotation_path(self, exhaustive, resolved)
            )
        else:
            for cell in self.cells:
                if refresh:
                    cell.analysis = None
                cell.annotate(exhaustive=exhaustive)
            source = "cold"
            cold_elapsed = None  # set to elapsed below
            cache_path = None
            if resolved is not None:
                cache_path = str(
                    anncache.store_annotations(
                        self,
                        exhaustive,
                        time.perf_counter() - start,
                        resolved,
                        metrics=metrics,
                    )
                )

        hazardous = sum(1 for cell in self.cells if cell.is_hazardous)
        elapsed = time.perf_counter() - start
        self.annotated = True
        report = AnnotationReport(
            library=self.name,
            elapsed=elapsed,
            cells=len(self.cells),
            hazardous=hazardous,
            source=source,
            cold_elapsed=elapsed if cold_elapsed is None else cold_elapsed,
            cache_path=cache_path,
        )
        self._annotation_report = report
        return report

    def hazardous_cells(self) -> list[LibraryCell]:
        if not self.annotated:
            self.annotate_hazards()
        return [c for c in self.cells if c.is_hazardous]

    def census(self) -> dict[str, object]:
        """Table-1 row: hazardous families, counts, fraction."""
        hazardous = self.hazardous_cells()
        families = sorted({c.family for c in hazardous})
        return {
            "library": self.name,
            "hazardous_families": families,
            "hazardous": len(hazardous),
            "total": len(self.cells),
            "percent": round(100.0 * len(hazardous) / len(self.cells))
            if self.cells
            else 0,
        }

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_spec(
        cls,
        name: str,
        spec: Sequence[tuple],
    ) -> "Library":
        """Build a library from ``(name, bff_text, area, delay[, family])``
        tuples; ``area=None`` derives the pulldown-transistor count."""
        cells = []
        for entry in spec:
            cell_name, text, area, delay = entry[:4]
            family = entry[4] if len(entry) > 4 else "logic"
            cells.append(
                LibraryCell.from_text(
                    cell_name, text, area=area, delay=delay, family=family
                )
            )
        return cls(name, cells)

    def __repr__(self) -> str:
        return f"Library({self.name!r}, {len(self.cells)} cells)"
