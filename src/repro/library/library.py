"""Cell libraries and the hazard-annotation pass.

``Library.annotate_hazards`` is the paper's
``augment-library-with-hazard-info``: every cell's BFF is analyzed once
when the library is read in (Table 2 measures this), and the per-cell
:class:`~repro.hazards.analyzer.HazardAnalysis` is consulted during
matching.  Matching-oriented indexes (pin count, permutation-invariant
signature) are built on demand.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Iterable, Iterator, Optional, Sequence

from ..boolean import truthtable as tt
from .cell import LibraryCell


@dataclass
class AnnotationReport:
    """Timing/result record of a library hazard-annotation pass."""

    library: str
    elapsed: float
    cells: int
    hazardous: int

    @property
    def hazardous_fraction(self) -> float:
        return self.hazardous / self.cells if self.cells else 0.0


class Library:
    """An ordered collection of cells with matching indexes."""

    def __init__(self, name: str, cells: Iterable[LibraryCell]) -> None:
        self.name = name
        self.cells = list(cells)
        names = [c.name for c in self.cells]
        if len(set(names)) != len(names):
            raise ValueError("duplicate cell names in library")
        self._by_pins: Optional[dict[int, list[LibraryCell]]] = None
        self._signatures: Optional[dict[tuple, list[LibraryCell]]] = None
        self.annotated = False

    def __len__(self) -> int:
        return len(self.cells)

    def __iter__(self) -> Iterator[LibraryCell]:
        return iter(self.cells)

    def cell(self, name: str) -> LibraryCell:
        for candidate in self.cells:
            if candidate.name == name:
                return candidate
        raise KeyError(name)

    @property
    def max_pins(self) -> int:
        return max((c.num_pins for c in self.cells), default=0)

    # ------------------------------------------------------------------
    # Matching indexes
    # ------------------------------------------------------------------
    def by_pin_count(self, pins: int) -> list[LibraryCell]:
        if self._by_pins is None:
            self._by_pins = {}
            for cell in self.cells:
                self._by_pins.setdefault(cell.num_pins, []).append(cell)
        return self._by_pins.get(pins, [])

    def candidates(self, table: int, pins: int) -> list[LibraryCell]:
        """Cells whose permutation-invariant signature matches ``table``."""
        if self._signatures is None:
            self._signatures = {}
            for cell in self.cells:
                key = (cell.num_pins, tt.signature(cell.truth_table(), cell.num_pins))
                self._signatures.setdefault(key, []).append(cell)
        key = (pins, tt.signature(table, pins))
        return self._signatures.get(key, [])

    # ------------------------------------------------------------------
    # Hazard annotation (async library initialization)
    # ------------------------------------------------------------------
    def annotate_hazards(self, exhaustive: bool = True) -> AnnotationReport:
        """Analyze every cell's BFF for logic hazards (section 3.2.1)."""
        start = time.perf_counter()
        hazardous = 0
        for cell in self.cells:
            cell.annotate(exhaustive=exhaustive)
            if cell.is_hazardous:
                hazardous += 1
        self.annotated = True
        return AnnotationReport(
            library=self.name,
            elapsed=time.perf_counter() - start,
            cells=len(self.cells),
            hazardous=hazardous,
        )

    def hazardous_cells(self) -> list[LibraryCell]:
        if not self.annotated:
            self.annotate_hazards()
        return [c for c in self.cells if c.is_hazardous]

    def census(self) -> dict[str, object]:
        """Table-1 row: hazardous families, counts, fraction."""
        hazardous = self.hazardous_cells()
        families = sorted({c.family for c in hazardous})
        return {
            "library": self.name,
            "hazardous_families": families,
            "hazardous": len(hazardous),
            "total": len(self.cells),
            "percent": round(100.0 * len(hazardous) / len(self.cells))
            if self.cells
            else 0,
        }

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_spec(
        cls,
        name: str,
        spec: Sequence[tuple],
    ) -> "Library":
        """Build a library from ``(name, bff_text, area, delay[, family])``
        tuples; ``area=None`` derives the pulldown-transistor count."""
        cells = []
        for entry in spec:
            cell_name, text, area, delay = entry[:4]
            family = entry[4] if len(entry) > 4 else "logic"
            cells.append(
                LibraryCell.from_text(
                    cell_name, text, area=area, delay=delay, family=family
                )
            )
        return cls(name, cells)

    def __repr__(self) -> str:
        return f"Library({self.name!r}, {len(self.cells)} cells)"
