"""Persistent on-disk cache of library hazard annotations.

Table 2 measures the one-time cost of ``augment-library-with-hazard-
info``; in a service-style session that maps many circuits against the
same libraries the cost should be paid once per *library version*, not
once per process.  This module stores each library's per-cell
:class:`~repro.hazards.analyzer.HazardAnalysis` objects in a
version-stamped cache directory and replays them on the next load.

Layout::

    <cache root>/annotations/v<CACHE_VERSION>/<lib>-<x|r>-<fingerprint>.pkl

The fingerprint is a SHA-256 over the cache version, the package
version, and every cell's (name, BFF text, pin order, area, delay), so
any change to the library or to the analysis code's on-disk contract
misses cleanly.  Payloads carry the fingerprint again and are validated
on read; corrupt, truncated, or stale files are removed and silently
rebuilt — the cache can never change results, only timing.

Enabling the cache:

* pass ``cache_dir`` to :meth:`repro.library.library.Library.annotate_hazards`;
* or set ``REPRO_ANNOTATION_CACHE`` (``1``/``on`` for the default
  location, any other value is taken as a directory path);
* the CLI enables it by default (``--no-cache`` / ``--cache-dir``).

The default root honours ``REPRO_CACHE_DIR``, then ``XDG_CACHE_HOME``,
then ``~/.cache/repro-tmap``.  ``repro cache --clear`` (or
:func:`clear_annotation_cache`) empties it.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import time
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Optional, Union

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..hazards.analyzer import HazardAnalysis
    from .library import Library

#: Bump when the pickled payload layout or the analysis semantics change.
CACHE_VERSION = 1

_ENV_TOGGLE = "REPRO_ANNOTATION_CACHE"
_ENV_ROOT = "REPRO_CACHE_DIR"

CacheDir = Union[str, os.PathLike, None]


def default_cache_root() -> Path:
    """The cache root: ``$REPRO_CACHE_DIR`` > XDG > ``~/.cache/repro-tmap``."""
    root = os.environ.get(_ENV_ROOT)
    if root:
        return Path(root)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro-tmap"


def resolve_cache_dir(cache_dir: CacheDir = None) -> Optional[Path]:
    """Resolve a caller-supplied cache location to a directory or None.

    ``None`` consults ``REPRO_ANNOTATION_CACHE``: unset/falsy disables
    the cache (keeping library loads hermetic by default); ``1``/``on``/
    ``yes``/``auto`` selects the default root; anything else is a path.
    """
    if cache_dir is not None:
        return Path(cache_dir)
    toggle = os.environ.get(_ENV_TOGGLE, "").strip()
    if not toggle or toggle.lower() in ("0", "off", "no", "false"):
        return None
    if toggle.lower() in ("1", "on", "yes", "true", "auto"):
        return default_cache_root()
    return Path(toggle)


def library_fingerprint(library: "Library") -> str:
    """Content hash of everything the annotation result depends on."""
    from .. import __version__

    hasher = hashlib.sha256()
    hasher.update(f"v{CACHE_VERSION}|{__version__}|{library.name}".encode())
    for cell in library.cells:
        hasher.update(
            f"|{cell.name}|{cell.expression.to_string()}"
            f"|{','.join(cell.pins)}|{cell.area}|{cell.delay}".encode()
        )
    return hasher.hexdigest()


def annotation_path(
    library: "Library", exhaustive: bool, cache_dir: Path
) -> Path:
    """The payload file for one (library, exhaustive) pair."""
    fingerprint = library_fingerprint(library)
    flavour = "x" if exhaustive else "r"
    return (
        Path(cache_dir)
        / "annotations"
        / f"v{CACHE_VERSION}"
        / f"{library.name}-{flavour}-{fingerprint[:16]}.pkl"
    )


@dataclass
class AnnotationPayload:
    """What one cache file holds."""

    fingerprint: str
    library: str
    exhaustive: bool
    cold_elapsed: float
    analyses: dict[str, "HazardAnalysis"]
    created: float


def load_annotations(
    library: "Library", exhaustive: bool, cache_dir: Path
) -> Optional[AnnotationPayload]:
    """Read and validate a payload; corrupt or stale files are removed.

    Returns ``None`` on any miss — the caller rebuilds and re-stores, so
    a damaged cache silently repairs itself.
    """
    path = annotation_path(library, exhaustive, cache_dir)
    if not path.exists():
        return None
    try:
        with open(path, "rb") as handle:
            payload = pickle.load(handle)
        if not isinstance(payload, AnnotationPayload):
            raise ValueError("unexpected payload type")
        if payload.fingerprint != library_fingerprint(library):
            raise ValueError("stale fingerprint")
        if payload.exhaustive != exhaustive:
            raise ValueError("annotation flavour mismatch")
        missing = {c.name for c in library.cells} - set(payload.analyses)
        if missing:
            raise ValueError(f"cells missing from payload: {sorted(missing)}")
    except Exception:
        # Corrupt/stale/truncated: drop the file and fall back to cold.
        try:
            path.unlink()
        except OSError:
            pass
        return None
    return payload


def store_annotations(
    library: "Library", exhaustive: bool, cold_elapsed: float, cache_dir: Path
) -> Path:
    """Persist the library's current annotations (atomic replace)."""
    path = annotation_path(library, exhaustive, cache_dir)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = AnnotationPayload(
        fingerprint=library_fingerprint(library),
        library=library.name,
        exhaustive=exhaustive,
        cold_elapsed=cold_elapsed,
        analyses={
            cell.name: cell.analysis
            for cell in library.cells
            if cell.analysis is not None
        },
        created=time.time(),
    )
    tmp = path.with_suffix(f".tmp-{os.getpid()}")
    with open(tmp, "wb") as handle:
        pickle.dump(payload, handle, protocol=pickle.HIGHEST_PROTOCOL)
    os.replace(tmp, path)
    return path


def cache_entries(cache_dir: CacheDir = None) -> list[Path]:
    """Every payload file under the (resolved or default) cache root."""
    root = resolve_cache_dir(cache_dir) or default_cache_root()
    base = Path(root) / "annotations"
    if not base.exists():
        return []
    return sorted(base.glob("v*/*.pkl"))


def clear_annotation_cache(cache_dir: CacheDir = None) -> int:
    """Delete all cached annotation payloads; returns the removal count."""
    removed = 0
    for path in cache_entries(cache_dir):
        try:
            path.unlink()
            removed += 1
        except OSError:
            pass
    return removed
