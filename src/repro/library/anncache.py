"""Persistent on-disk cache of library hazard annotations.

Table 2 measures the one-time cost of ``augment-library-with-hazard-
info``; in a service-style session that maps many circuits against the
same libraries the cost should be paid once per *library version*, not
once per process.  This module stores each library's per-cell
:class:`~repro.hazards.analyzer.HazardAnalysis` objects in a
version-stamped cache directory and replays them on the next load.

Layout::

    <cache root>/annotations/v<CACHE_VERSION>/<lib>-<x|r>-<fingerprint>.json

Payloads are plain JSON holding only data (cube bit-vectors, record
lists, verdict tuples) — never pickled objects — so loading a cache
file from a shared or otherwise untrusted directory can at worst
produce a validation miss, not code execution.  The fingerprint is a
SHA-256 over the cache version, the package version, and every cell's
(name, BFF text, pin order, area, delay), so any change to the library
or to the analysis code's on-disk contract misses cleanly.  Payloads
carry the fingerprint again and are validated on read; corrupt,
truncated, or stale files are removed and silently rebuilt — the cache
can never change results, only timing.

Writes are multi-process safe: each writer renders to a per-PID temp
file and atomically renames it over the payload path while holding an
advisory ``fcntl`` lock on ``<payload>.lock``, so concurrent batch
workers annotating the same library can never publish a torn JSON
payload (see :func:`payload_lock`).

Enabling the cache:

* pass ``cache_dir`` to :meth:`repro.library.library.Library.annotate_hazards`;
* or set ``REPRO_ANNOTATION_CACHE`` (``1``/``on`` for the default
  location, any other value is taken as a directory path);
* the CLI enables it by default (``--no-cache`` / ``--cache-dir``).

Passing the :data:`DISABLED` sentinel as ``cache_dir`` turns the cache
off unconditionally — unlike ``None`` it does *not* fall back to the
environment toggle, which is how the CLI's ``--no-cache`` stays
hermetic under ``REPRO_ANNOTATION_CACHE=1``.

The default root honours ``REPRO_CACHE_DIR``, then ``XDG_CACHE_HOME``,
then ``~/.cache/repro-tmap``.  ``repro cache --clear`` (or
:func:`clear_annotation_cache`) empties it.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Iterator, Optional, Union

try:  # POSIX advisory locks; absent on some platforms.
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None  # type: ignore[assignment]

from ..boolean.cover import Cover
from ..boolean.cube import Cube
from ..boolean.paths import LabeledLiteral, LabeledProduct, LabeledSop
from ..hazards.oracle import TransitionKind, TransitionVerdict
from ..hazards.types import (
    MicDynamicHazard,
    SicDynamicHazard,
    Static0Hazard,
    Static1Hazard,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..hazards.analyzer import HazardAnalysis
    from .library import Library

#: Bump when the payload layout or the analysis semantics change.
#: v2: JSON data-only payloads (v1 was pickled objects).
CACHE_VERSION = 2

_ENV_TOGGLE = "REPRO_ANNOTATION_CACHE"
_ENV_ROOT = "REPRO_CACHE_DIR"


class _CacheDisabled:
    """Sentinel type: cache explicitly off, environment toggle ignored."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "anncache.DISABLED"


#: Pass as ``cache_dir`` to force the cache off regardless of
#: ``REPRO_ANNOTATION_CACHE`` (the CLI's ``--no-cache``).
DISABLED = _CacheDisabled()

CacheDir = Union[str, os.PathLike, None, _CacheDisabled]


def default_cache_root() -> Path:
    """The cache root: ``$REPRO_CACHE_DIR`` > XDG > ``~/.cache/repro-tmap``."""
    root = os.environ.get(_ENV_ROOT)
    if root:
        return Path(root)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro-tmap"


def resolve_cache_dir(cache_dir: CacheDir = None) -> Optional[Path]:
    """Resolve a caller-supplied cache location to a directory or None.

    :data:`DISABLED` always disables the cache.  ``None`` consults
    ``REPRO_ANNOTATION_CACHE``: unset/falsy disables the cache (keeping
    library loads hermetic by default); ``1``/``on``/``yes``/``auto``
    selects the default root; anything else is a path.
    """
    if isinstance(cache_dir, _CacheDisabled):
        return None
    if cache_dir is not None:
        return Path(cache_dir)
    toggle = os.environ.get(_ENV_TOGGLE, "").strip()
    if not toggle or toggle.lower() in ("0", "off", "no", "false"):
        return None
    if toggle.lower() in ("1", "on", "yes", "true", "auto"):
        return default_cache_root()
    return Path(toggle)


def library_fingerprint(library: "Library") -> str:
    """Content hash of everything the annotation result depends on."""
    from .. import __version__

    hasher = hashlib.sha256()
    hasher.update(f"v{CACHE_VERSION}|{__version__}|{library.name}".encode())
    for cell in library.cells:
        hasher.update(
            f"|{cell.name}|{cell.expression.to_string()}"
            f"|{','.join(cell.pins)}|{cell.area}|{cell.delay}".encode()
        )
    return hasher.hexdigest()


def annotation_path(
    library: "Library", exhaustive: bool, cache_dir: Path
) -> Path:
    """The payload file for one (library, exhaustive) pair."""
    fingerprint = library_fingerprint(library)
    flavour = "x" if exhaustive else "r"
    return (
        Path(cache_dir)
        / "annotations"
        / f"v{CACHE_VERSION}"
        / f"{library.name}-{flavour}-{fingerprint[:16]}.json"
    )


@dataclass
class AnnotationPayload:
    """What one cache file holds."""

    fingerprint: str
    library: str
    exhaustive: bool
    cold_elapsed: float
    analyses: dict[str, "HazardAnalysis"]
    created: float


# ----------------------------------------------------------------------
# Data-only (de)serialization of HazardAnalysis
# ----------------------------------------------------------------------
def _analysis_to_data(analysis: "HazardAnalysis") -> dict:
    def cube(c: Cube) -> list[int]:
        return [c.used, c.phase]

    def cover(cov: Cover) -> list[list[int]]:
        return [cube(c) for c in cov.cubes]

    def pulse(record) -> list:
        return [record.var, cube(record.residual), cover(record.condition)]

    return {
        "names": analysis.names,
        "plain": cover(analysis.plain),
        "lsop": [
            [[lit.name, lit.path, lit.positive] for lit in product.literals]
            for product in analysis.lsop.products
        ],
        "static1": [cube(h.transition) for h in analysis.static1],
        "static0": [pulse(h) for h in analysis.static0],
        "mic_dynamic": [[h.start, h.end] for h in analysis.mic_dynamic],
        "sic_dynamic": [pulse(h) for h in analysis.sic_dynamic],
        "verdicts": None
        if analysis.verdicts is None
        else [
            [v.start, v.end, v.kind.value, v.function_hazard, v.logic_hazard]
            for v in analysis.verdicts
        ],
    }


def _analysis_from_data(data: dict) -> "HazardAnalysis":
    from ..hazards.analyzer import HazardAnalysis

    names = [str(n) for n in data["names"]]
    nvars = len(names)

    def cube(pair) -> Cube:
        used, phase = pair
        return Cube(int(used), int(phase), nvars)

    def cover(pairs) -> Cover:
        return Cover([cube(p) for p in pairs], nvars)

    lsop = LabeledSop(
        [
            LabeledProduct(
                tuple(
                    LabeledLiteral(str(name), int(path), bool(positive))
                    for name, path, positive in product
                )
            )
            for product in data["lsop"]
        ],
        names,
    )
    verdicts = data["verdicts"]
    return HazardAnalysis(
        names=names,
        plain=cover(data["plain"]),
        lsop=lsop,
        static1=[Static1Hazard(cube(c)) for c in data["static1"]],
        static0=[
            Static0Hazard(int(var), cube(residual), cover(condition))
            for var, residual, condition in data["static0"]
        ],
        mic_dynamic=[
            MicDynamicHazard(int(start), int(end), nvars)
            for start, end in data["mic_dynamic"]
        ],
        sic_dynamic=[
            SicDynamicHazard(int(var), cube(residual), cover(condition))
            for var, residual, condition in data["sic_dynamic"]
        ],
        verdicts=None
        if verdicts is None
        else [
            TransitionVerdict(
                int(start), int(end), TransitionKind(kind), bool(fh), bool(lh)
            )
            for start, end, kind, fh, lh in verdicts
        ],
    )


def load_annotations(
    library: "Library", exhaustive: bool, cache_dir: Path, metrics=None
) -> Optional[AnnotationPayload]:
    """Read and validate a payload; corrupt or stale files are removed.

    Returns ``None`` on any miss — the caller rebuilds and re-stores, so
    a damaged cache silently repairs itself.

    ``metrics`` (a :class:`repro.obs.metrics.MetricsRegistry`) receives
    ``anncache.hits`` / ``anncache.misses`` counters and an
    ``anncache.load_seconds`` histogram — the cold-vs-warm signal the
    Table-2 trajectory in ``BENCH_mapping.json`` tracks.
    """
    start = time.perf_counter()
    payload = _load_annotations(library, exhaustive, cache_dir)
    if metrics is not None:
        metrics.counter("anncache.hits" if payload else "anncache.misses").inc()
        metrics.histogram("anncache.load_seconds").observe(
            time.perf_counter() - start
        )
    return payload


def _load_annotations(
    library: "Library", exhaustive: bool, cache_dir: Path
) -> Optional[AnnotationPayload]:
    path = annotation_path(library, exhaustive, cache_dir)
    if not path.exists():
        return None
    try:
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
        if not isinstance(data, dict):
            raise ValueError("unexpected payload type")
        if data.get("cache_version") != CACHE_VERSION:
            raise ValueError("cache version mismatch")
        if data.get("fingerprint") != library_fingerprint(library):
            raise ValueError("stale fingerprint")
        if bool(data.get("exhaustive")) != exhaustive:
            raise ValueError("annotation flavour mismatch")
        raw = data["analyses"]
        missing = {c.name for c in library.cells} - set(raw)
        if missing:
            raise ValueError(f"cells missing from payload: {sorted(missing)}")
        analyses = {name: _analysis_from_data(entry) for name, entry in raw.items()}
        payload = AnnotationPayload(
            fingerprint=str(data["fingerprint"]),
            library=str(data["library"]),
            exhaustive=exhaustive,
            cold_elapsed=float(data["cold_elapsed"]),
            analyses=analyses,
            created=float(data["created"]),
        )
    except Exception:
        # Corrupt/stale/truncated: drop the file and fall back to cold.
        try:
            path.unlink()
        except OSError:
            pass
        return None
    return payload


def store_annotations(
    library: "Library",
    exhaustive: bool,
    cold_elapsed: float,
    cache_dir: Path,
    metrics=None,
) -> Path:
    """Persist the library's current annotations (atomic replace).

    ``metrics`` receives an ``anncache.store_seconds`` histogram.
    """
    start = time.perf_counter()
    path = _store_annotations(library, exhaustive, cold_elapsed, cache_dir)
    if metrics is not None:
        metrics.histogram("anncache.store_seconds").observe(
            time.perf_counter() - start
        )
    return path


@contextmanager
def payload_lock(path: Path) -> Iterator[None]:
    """Advisory exclusive lock for one payload file (best-effort).

    Writers of the same payload serialize on ``<payload>.lock`` so two
    batch processes annotating the same library never interleave their
    write-temp-then-rename sequences; readers never lock (the rename is
    atomic, so a reader sees either the old payload or the new one,
    never a torn mix).  On platforms without ``fcntl`` the lock degrades
    to a no-op — per-PID temp names plus ``os.replace`` still guarantee
    the payload itself is never torn, the lock only removes duplicate
    concurrent cold passes.
    """
    if fcntl is None:  # pragma: no cover - non-POSIX fallback
        yield
        return
    lock_path = path.with_name(path.name + ".lock")
    lock_path.parent.mkdir(parents=True, exist_ok=True)
    with open(lock_path, "a+") as handle:
        fcntl.flock(handle.fileno(), fcntl.LOCK_EX)
        try:
            yield
        finally:
            fcntl.flock(handle.fileno(), fcntl.LOCK_UN)


def atomic_store_json(path: Path, data: dict) -> Path:
    """Atomically publish one JSON payload file (the shared store step).

    Write a per-PID temp file, then rename over the final path under an
    advisory lock.  Readers never see a partial payload (rename is
    atomic) and concurrent writers never interleave (the lock serializes
    them) — safe for multi-process batch runs.  Both on-disk cache tiers
    (this module's annotation payloads and the result cache in
    :mod:`repro.cache.resultcache`) publish through this one helper so
    they share a single write/lock discipline.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_suffix(f".tmp-{os.getpid()}")
    with payload_lock(path):
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(data, handle, separators=(",", ":"))
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    return path


def _store_annotations(
    library: "Library", exhaustive: bool, cold_elapsed: float, cache_dir: Path
) -> Path:
    path = annotation_path(library, exhaustive, cache_dir)
    data = {
        "cache_version": CACHE_VERSION,
        "fingerprint": library_fingerprint(library),
        "library": library.name,
        "exhaustive": exhaustive,
        "cold_elapsed": cold_elapsed,
        "created": time.time(),
        "analyses": {
            cell.name: _analysis_to_data(cell.analysis)
            for cell in library.cells
            if cell.analysis is not None
        },
    }
    return atomic_store_json(path, data)


def cache_entries(cache_dir: CacheDir = None) -> list[Path]:
    """Every payload file under the (resolved or default) cache root.

    Includes legacy v1 ``.pkl`` payloads so ``clear_annotation_cache``
    sweeps them away too.
    """
    root = resolve_cache_dir(cache_dir) or default_cache_root()
    base = Path(root) / "annotations"
    if not base.exists():
        return []
    return sorted([*base.glob("v*/*.json"), *base.glob("v*/*.pkl")])


def clear_annotation_cache(cache_dir: CacheDir = None) -> int:
    """Delete all cached annotation payloads; returns the removal count."""
    removed = 0
    for path in cache_entries(cache_dir):
        try:
            path.unlink()
            removed += 1
        except OSError:
            pass
    return removed
