"""Pass-transistor network hazard model (paper section 6 future work).

The paper's conclusions: *"We are currently developing a model for the
representation and hazard analysis of pass-transistor networks, such as
those employed in MUX-based FPGAs such as the Actel Act2, which do not
exhibit the same hazard behavior as complementary CMOS networks."*

A transmission-gate multiplexer differs from the AND-OR mux in two
physical ways:

* when no path conducts, the output node **floats and holds** its
  previous value (charge storage) instead of collapsing to 0 — so the
  classic select-change static-1 glitch of ``s·a + s'·b`` does *not*
  occur under a break-before-make select discipline;
* when two paths conduct simultaneously (make-before-break overlap,
  or skew between a select wire and its internal complement), the
  output can see **contention** between different data values.

The model: a tree of :class:`PassMux` nodes.  Each select drives the
pass side directly and the opposite side through an internal inverter,
and the two can switch at independent times — two events per changing
select, one per changing data leaf.  All event orders are explored
(the same subset-lattice trick as
:mod:`repro.hazards.multilevel`), with path-dependent hold semantics:
the verdict per transition is *clean*, *glitch* (the driven value
sequence is non-monotone), or *contention* (conflicting values driven
at once).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Iterator, Mapping, Optional, Sequence, Union

PassInput = Union["PassMux", str]


@dataclass(frozen=True)
class PassMux:
    """One 2:1 transmission-gate multiplexer.

    ``when_high`` conducts while ``select`` is 1, ``when_low`` while the
    internally inverted select is 1.
    """

    select: str
    when_high: PassInput
    when_low: PassInput

    def leaves(self) -> frozenset[str]:
        result: set[str] = set()
        for branch in (self.when_high, self.when_low):
            if isinstance(branch, PassMux):
                result |= branch.leaves()
            else:
                result.add(branch)
        return frozenset(result)

    def selects(self) -> frozenset[str]:
        result = {self.select}
        for branch in (self.when_high, self.when_low):
            if isinstance(branch, PassMux):
                result |= branch.selects()
        return frozenset(result)

    def support(self) -> frozenset[str]:
        return self.leaves() | self.selects()

    def evaluate(self, env: Mapping[str, bool]) -> bool:
        branch = self.when_high if env[self.select] else self.when_low
        if isinstance(branch, PassMux):
            return branch.evaluate(env)
        return bool(env[branch])


class PassVerdict(Enum):
    CLEAN = "clean"
    GLITCH = "glitch"
    CONTENTION = "contention"


@dataclass(frozen=True)
class PassTransition:
    """Verdict for one input burst on a pass-transistor tree."""

    start: int
    end: int
    verdict: PassVerdict


class PassGateAnalyzer:
    """Exhaustive hazard analysis of a pass-transistor mux tree."""

    def __init__(self, tree: PassMux, names: Optional[Sequence[str]] = None) -> None:
        self.tree = tree
        self.names = list(names) if names is not None else sorted(tree.support())
        missing = tree.support() - set(self.names)
        if missing:
            raise ValueError(f"names miss {sorted(missing)}")
        self.index = {name: i for i, name in enumerate(self.names)}

    @property
    def nvars(self) -> int:
        return len(self.names)

    # ------------------------------------------------------------------
    # Event semantics
    # ------------------------------------------------------------------
    def _events(self, changing: int) -> list[tuple[str, str]]:
        """(kind, name) events: selects contribute a direct and an
        inverted-path event; data leaves one event each."""
        events: list[tuple[str, str]] = []
        for name in self.names:
            if not changing >> self.index[name] & 1:
                continue
            if name in self.tree.selects():
                events.append(("sel+", name))
                events.append(("sel-", name))
            if name in self.tree.leaves():
                events.append(("leaf", name))
        return events

    def _driven_values(
        self,
        node: PassInput,
        start: int,
        end: int,
        switched: frozenset[tuple[str, str]],
    ) -> set[bool]:
        """Values conducted to this subtree's output in one event state."""

        def value_of(name: str, kind: str) -> bool:
            bit = 1 << self.index[name]
            if not (start ^ end) & bit:
                return bool(start & bit)
            after = (kind, name) in switched
            return bool(end & bit) if after else bool(start & bit)

        if isinstance(node, str):
            return {value_of(node, "leaf")}
        # Pass side sees the select directly; the opposite side sees the
        # internal complement, switching at its own time.
        direct = value_of(node.select, "sel+")
        inverted_input = value_of(node.select, "sel-")
        values: set[bool] = set()
        if direct:
            values |= self._driven_values(node.when_high, start, end, switched)
        if not inverted_input:
            values |= self._driven_values(node.when_low, start, end, switched)
        return values

    # ------------------------------------------------------------------
    # Per-transition verdict
    # ------------------------------------------------------------------
    def classify(self, start: int, end: int) -> PassTransition:
        """Explore every event order with hold-on-float semantics."""
        changing = start ^ end
        events = self._events(changing)
        n = len(events)
        if n > 16:
            raise ValueError("transition too wide for exhaustive analysis")
        initial = self.tree.evaluate(
            {name: bool(start >> i & 1) for i, name in enumerate(self.names)}
        )

        # DP over (state, last driven value, seen-extra-change?) —
        # reachable combinations; detect contention and non-monotone
        # driven sequences.
        f_end = self.tree.evaluate(
            {name: bool(end >> i & 1) for i, name in enumerate(self.names)}
        )
        expected_changes = int(initial != f_end)
        contention = False
        worst_changes = 0
        # frontier: map state-bitmask -> set of (value, changes) pairs
        frontier: dict[int, set[tuple[bool, int]]] = {0: {(initial, 0)}}
        order_index = {event: i for i, event in enumerate(events)}
        for popcount_level in range(n + 1):
            next_frontier: dict[int, set[tuple[bool, int]]] = {}
            for state, outcomes in frontier.items():
                for event in events:
                    bit = 1 << order_index[event]
                    if state & bit:
                        continue
                    new_state = state | bit
                    switched = frozenset(
                        events[i] for i in range(n) if new_state >> i & 1
                    )
                    driven = self._driven_values(self.tree, start, end, switched)
                    for value, changes in outcomes:
                        if len(driven) > 1:
                            contention = True
                            new_value, new_changes = value, changes
                        elif driven:
                            new_value = next(iter(driven))
                            new_changes = changes + int(new_value != value)
                        else:
                            new_value, new_changes = value, changes  # hold
                        worst_changes = max(worst_changes, new_changes)
                        next_frontier.setdefault(new_state, set()).add(
                            (new_value, new_changes)
                        )
            if next_frontier:
                frontier = next_frontier
        if contention:
            return PassTransition(start, end, PassVerdict.CONTENTION)
        if worst_changes > expected_changes:
            return PassTransition(start, end, PassVerdict.GLITCH)
        return PassTransition(start, end, PassVerdict.CLEAN)

    def hazardous_transitions(self) -> list[PassTransition]:
        result = []
        for start in range(1 << self.nvars):
            for end in range(1 << self.nvars):
                if start == end:
                    continue
                verdict = self.classify(start, end)
                if verdict.verdict is not PassVerdict.CLEAN:
                    result.append(verdict)
        return result

    def is_hazard_free(self) -> bool:
        return not self.hazardous_transitions()


def act1_style_mux(select: str, when_low: str, when_high: str) -> PassMux:
    """The basic Act-family steering mux."""
    return PassMux(select, when_high, when_low)


def act2_c_module(
    s0: str, s1: str, d0: str, d1: str, d2: str, d3: str
) -> PassMux:
    """The Act2 combinational module: a 4:1 pass-transistor mux tree."""
    return PassMux(
        s1,
        PassMux(s0, d3, d2),
        PassMux(s0, d1, d0),
    )
