"""Cell libraries: cells, annotation, and the four synthetic libraries."""

from .anncache import (
    clear_annotation_cache,
    default_cache_root,
    library_fingerprint,
    resolve_cache_dir,
)
from .cell import LibraryCell
from .library import AnnotationReport, Library
from .standard import (
    ALL_LIBRARIES,
    actel_act1,
    cmos3,
    gdt,
    load_library,
    lsi9k,
    minimal_teaching_library,
)

__all__ = [
    "ALL_LIBRARIES",
    "AnnotationReport",
    "Library",
    "LibraryCell",
    "actel_act1",
    "clear_annotation_cache",
    "cmos3",
    "default_cache_root",
    "gdt",
    "library_fingerprint",
    "load_library",
    "lsi9k",
    "minimal_teaching_library",
    "resolve_cache_dir",
]
