"""Cell libraries: cells, annotation, and the four synthetic libraries."""

from .cell import LibraryCell
from .library import AnnotationReport, Library
from .standard import (
    ALL_LIBRARIES,
    actel_act1,
    cmos3,
    gdt,
    load_library,
    lsi9k,
    minimal_teaching_library,
)

__all__ = [
    "ALL_LIBRARIES",
    "AnnotationReport",
    "Library",
    "LibraryCell",
    "actel_act1",
    "cmos3",
    "gdt",
    "load_library",
    "lsi9k",
    "minimal_teaching_library",
]
