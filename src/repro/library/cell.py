"""Library cells: Boolean factored form + hazard annotation.

Section 3.2.1: the functionality *and structure* of each library
element is expressed as a Boolean factored form whose shape mirrors the
cell's pulldown network.  The BFF is analyzed for logic hazards when
the library is read in, and the result is attached to the cell for use
during matching.  Area defaults to the pulldown transistor count (one
unit per literal — the Table 3 cost model).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..boolean import truthtable as tt
from ..boolean.expr import Expr, parse
from ..hazards.analyzer import HazardAnalysis, analyze_expression


@dataclass
class LibraryCell:
    """One standard cell.

    ``pins`` fixes the input ordering used by truth tables and pin
    bindings.  ``expression`` is the BFF over the pin names.
    """

    name: str
    expression: Expr
    pins: list[str]
    area: float
    delay: float
    family: str = "logic"
    analysis: Optional[HazardAnalysis] = None
    _truth_table: Optional[int] = field(default=None, repr=False)

    @classmethod
    def from_text(
        cls,
        name: str,
        text: str,
        area: Optional[float] = None,
        delay: float = 1.0,
        pins: Optional[Sequence[str]] = None,
        family: str = "logic",
    ) -> "LibraryCell":
        expression = parse(text)
        pin_list = list(pins) if pins is not None else sorted(expression.support())
        missing = expression.support() - set(pin_list)
        if missing:
            raise ValueError(f"cell {name!r}: pins {sorted(missing)} undeclared")
        if area is None:
            area = float(expression.num_literals())
        return cls(name, expression, pin_list, float(area), float(delay), family)

    @property
    def num_pins(self) -> int:
        return len(self.pins)

    def truth_table(self) -> int:
        """Dense truth table over the pin ordering (cached)."""
        if self._truth_table is None:
            order = self.pins

            def func(point: int) -> bool:
                env = {
                    pin: bool(point >> i & 1) for i, pin in enumerate(order)
                }
                return self.expression.evaluate(env)

            self._truth_table = tt.from_callable(func, self.num_pins)
        return self._truth_table

    def annotate(self, exhaustive: bool = True) -> HazardAnalysis:
        """Run the hazard characterization of section 4 on the BFF.

        With ``exhaustive`` (default) the complete hazardous-transition
        list is also enumerated and stored — this is the asynchronous
        library-initialization overhead measured in Table 2.
        """
        if self.analysis is None:
            self.analysis = analyze_expression(
                self.expression, self.pins, exhaustive=exhaustive
            )
        return self.analysis

    @property
    def is_hazardous(self) -> bool:
        if self.analysis is None:
            raise RuntimeError(
                f"cell {self.name!r} not annotated; call annotate() or "
                "Library.annotate_hazards() first"
            )
        return self.analysis.has_hazards

    def __repr__(self) -> str:
        return f"LibraryCell({self.name!r}, {self.expression.to_string()!r})"
