"""Multi-input-change dynamic hazard analysis of two-level networks.

Implements Theorem 4.1 of the paper and the efficient procedure
``findMicDynHaz2level`` (section 4.2.1): rather than scanning all
transition pairs, start from each cube intersection, look at the cubes
adjacent to the intersection (complement one care variable at a time),
split the adjacent points into OFF (α) and ON (β) sets, and emit the
minimal function-hazard-free transition spaces ``T[i, j]`` spanned by
α × β pairs.  Dynamic hazards that are merely the shadow of a static-1
hazard (Example 4.2.3) are characterized by the static-1 analysis and
intentionally not re-reported here.
"""

from __future__ import annotations

from typing import Iterator

from ..boolean.cover import Cover
from ..boolean.cube import Cube, bit_indices
from .transition import dynamic_fhf, transition_space
from .types import MicDynamicHazard

#: Do not enumerate adjacent-cube minterms past this many free variables.
MAX_FREE_ENUM = 12


def theorem41_condition(cover: Cover, start: int, end: int) -> bool:
    """Condition 2 of Theorem 4.1 on an SOP implementation.

    Orientation: the f = 1 endpoint is what the offending cube must
    miss.  A dynamic logic hazard exists for the (function-hazard-free)
    transition iff some implementation cube intersects the transition
    space but does not contain that endpoint.
    """
    on_point = end if cover.evaluate(end) else start
    space = transition_space(start, end, cover.nvars)
    for cube in cover:
        if cube.intersects(space) and not cube.contains_point(on_point):
            return True
    return False


def exhibits_mic_dynamic(cover: Cover, start: int, end: int) -> bool:
    """Full Theorem 4.1: FHF transition + an escaping cube."""
    if cover.evaluate(start) == cover.evaluate(end):
        raise ValueError("transition is not dynamic")
    if not dynamic_fhf(cover, start, end):
        return False
    return theorem41_condition(cover, start, end)


def cube_intersections(cover: Cover) -> list[Cube]:
    """The deduplicated pairwise cube intersections of the cover."""
    cubes = cover.dedup().cubes
    seen: set[Cube] = set()
    result: list[Cube] = []
    for i, c1 in enumerate(cubes):
        for c2 in cubes[i + 1 :]:
            inter = c1.intersection(c2)
            if inter is not None and inter not in seen:
                seen.add(inter)
                result.append(inter)
    return result


def _adjacent_points(cover: Cover, inter: Cube) -> Iterator[int]:
    """Minterms of the cubes adjacent to a cube intersection.

    "Adjacent" per the paper: complement one care variable of the
    intersection at a time.
    """
    free = inter.nvars - inter.num_literals
    if free > MAX_FREE_ENUM:
        raise ValueError(
            "cube intersection has too many free variables to enumerate; "
            "analyze a smaller cluster"
        )
    for var in bit_indices(inter.used):
        flipped = inter.flip_var(var)
        yield from flipped.minterms()


def find_mic_dyn_haz_2level(cover: Cover) -> list[MicDynamicHazard]:
    """The paper's ``findMicDynHaz2level`` procedure.

    Returns one record per minimal function-hazard-free transition space
    with a dynamic logic hazard caused by intersecting cubes.  Each
    candidate α×β pair is validated against Theorem 4.1 before being
    reported, so every record is a real hazard of this implementation.
    """
    expr = cover.dedup()
    nvars = expr.nvars
    hazards: list[MicDynamicHazard] = []
    seen: set[tuple[int, int]] = set()
    for inter in cube_intersections(expr):
        alpha: list[int] = []
        beta: list[int] = []
        for point in _adjacent_points(expr, inter):
            if expr.evaluate(point):
                beta.append(point)
            else:
                alpha.append(point)
        for i in alpha:
            for j in beta:
                key = (i, j)
                if key in seen:
                    continue
                seen.add(key)
                if not dynamic_fhf(expr, i, j):
                    continue
                if theorem41_condition(expr, i, j):
                    hazards.append(MicDynamicHazard(i, j, nvars))
    return hazards


def has_mic_dynamic_hazard(cover: Cover) -> bool:
    """Existence predicate via the efficient procedure."""
    return bool(find_mic_dyn_haz_2level(cover))


def witness_transitions(hazard: MicDynamicHazard):
    """Candidate witness bursts for one m.i.c. dynamic hazard record.

    The record *is* a transition pair (validated against Theorem 4.1
    when it was emitted); the same record also certifies the reverse
    burst, so both orientations are offered.
    """
    yield hazard.start, hazard.end
    yield hazard.end, hazard.start
