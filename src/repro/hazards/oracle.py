"""Brute-force hazard oracle — ground truth for the efficient algorithms.

The oracle classifies *every* input transition of a (small) network
straight from the definitions in section 2.3 / 4.2 of the paper, using
the exact event-lattice delay semantics of
:func:`repro.hazards.multilevel.transition_has_hazard` — each physical
path switches once at an arbitrary time, and a hazard exists iff some
event order makes the output non-monotone (dynamic) or lets it leave its
resting value (static).

Exponential in the number of inputs: strictly for tests, library-cell
audits, and the figure-gallery benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Iterator

from ..boolean.cover import Cover
from ..boolean.paths import LabeledSop
from .multilevel import transition_has_hazard
from .transition import dynamic_fhf, static_fhf, transition_space


class TransitionKind(Enum):
    STATIC_0 = "static-0"
    STATIC_1 = "static-1"
    DYNAMIC = "dynamic"


@dataclass(frozen=True)
class TransitionVerdict:
    """Exact classification of one (start, end) input burst."""

    start: int
    end: int
    kind: TransitionKind
    function_hazard: bool
    logic_hazard: bool

    @property
    def hazard_free(self) -> bool:
        return not (self.function_hazard or self.logic_hazard)


def classify_transition(lsop: LabeledSop, start: int, end: int) -> TransitionVerdict:
    """Classify one transition of a labelled implementation."""
    plain = lsop.plain_cover()
    f_start = plain.evaluate(start)
    f_end = plain.evaluate(end)
    if f_start == f_end:
        kind = TransitionKind.STATIC_1 if f_start else TransitionKind.STATIC_0
        space = transition_space(start, end, plain.nvars)
        fhf = static_fhf(plain, space, f_start)
    else:
        kind = TransitionKind.DYNAMIC
        fhf = dynamic_fhf(plain, start, end)
    if not fhf:
        # A function hazard precludes a logic hazard for the same
        # transition (section 2.3).
        return TransitionVerdict(start, end, kind, True, False)
    logic = transition_has_hazard(lsop, start, end)
    return TransitionVerdict(start, end, kind, False, logic)


def all_transitions(nvars: int) -> Iterator[tuple[int, int]]:
    """Every ordered pair of distinct input points."""
    for start in range(1 << nvars):
        for end in range(1 << nvars):
            if start != end:
                yield start, end


def sic_transitions(nvars: int) -> Iterator[tuple[int, int]]:
    """Every single-input-change pair (each unordered pair once per
    direction)."""
    for start in range(1 << nvars):
        for var in range(nvars):
            yield start, start ^ (1 << var)


def enumerate_hazards(
    lsop: LabeledSop,
) -> dict[TransitionKind, list[TransitionVerdict]]:
    """All logic-hazardous transitions, grouped by kind."""
    result: dict[TransitionKind, list[TransitionVerdict]] = {
        kind: [] for kind in TransitionKind
    }
    for start, end in all_transitions(lsop.nvars):
        verdict = classify_transition(lsop, start, end)
        if verdict.logic_hazard:
            result[verdict.kind].append(verdict)
    return result


def is_logic_hazard_free(lsop: LabeledSop) -> bool:
    """Exhaustive hazard-freedom check (all transition classes)."""
    for start, end in all_transitions(lsop.nvars):
        if classify_transition(lsop, start, end).logic_hazard:
            return False
    return True


def hazard_subset(inner: LabeledSop, outer: LabeledSop) -> bool:
    """Exhaustive check: are ``inner``'s logic hazards ⊆ ``outer``'s?

    The gold-standard version of the paper's matching filter
    (section 3.2.2) — both implementations must realize the same
    function over the same variable ordering.
    """
    for start, end in all_transitions(inner.nvars):
        verdict = classify_transition(inner, start, end)
        if verdict.logic_hazard:
            other = classify_transition(outer, start, end)
            if not other.logic_hazard:
                return False
    return True
