"""Hazard-removal transformations.

Section 4 notes the analysis algorithms "can also be extended to
hazard-removal algorithms"; this module provides the three practical
removals, each built on machinery already validated elsewhere:

* :func:`remove_static1` — add the missing consensus/prime cubes until
  no static-1 hazard remains, never touching existing gates (safe for
  every other hazard class: adding a gate that holds 1 through a 1-1
  transition cannot create new glitches of its own if it is an
  implicant, *except* new cube intersections, which are re-checked);
* :func:`remove_vacuous` — flatten a multilevel structure to plain SOP,
  eliminating every static-0 and s.i.c. dynamic hazard (two-level
  AND-OR logic has neither) at the price of possibly more gates;
* :func:`make_hazard_free_for` — the strongest tool: given the
  transitions that actually matter (the burst-mode don't-care view),
  re-synthesize a cover that is provably hazard-free for all of them
  via the Nowick–Dill conditions.  Raises when unrealizable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from ..boolean.cover import Cover
from ..boolean.cube import Cube
from ..boolean.expr import Expr
from ..boolean.paths import label_expression
from ..burstmode.hfmin import (
    HazardFreeError,
    TransitionSpec,
    minimize_hazard_free,
)
from .analyzer import analyze_cover
from .static1 import find_static1_hazards_complete, has_static1_hazard


@dataclass
class RemovalReport:
    """What a removal pass changed."""

    added_cubes: list[Cube]
    before_static1: int
    after_static1: int
    before_dynamic: int
    after_dynamic: int

    @property
    def clean(self) -> bool:
        return self.after_static1 == 0


def remove_static1(cover: Cover, max_rounds: int = 64) -> tuple[Cover, RemovalReport]:
    """Add uncovered primes until the cover is static-1 hazard-free.

    Keeps every original cube (deleting a gate could introduce other
    hazards); the additions are prime implicants, so the function is
    unchanged.  Returns the repaired cover and an accounting report.
    """
    before = analyze_cover(cover)
    current = cover
    added: list[Cube] = []
    for __ in range(max_rounds):
        missing = [
            h.transition
            for h in find_static1_hazards_complete(current)
        ]
        if not missing:
            after = analyze_cover(current)
            return current, RemovalReport(
                added_cubes=added,
                before_static1=len(before.static1),
                after_static1=0,
                before_dynamic=len(before.mic_dynamic),
                after_dynamic=len(after.mic_dynamic),
            )
        cube = missing[0]
        current = current.with_cube(cube)
        added.append(cube)
    raise RuntimeError("static-1 removal did not converge")


def remove_vacuous(expr: Expr, names: Optional[Sequence[str]] = None) -> Cover:
    """Flatten to plain SOP: no vacuous terms remain.

    Two-level AND-OR logic has no static-0 and no s.i.c. dynamic logic
    hazards, so both classes vanish; static-1 behaviour is preserved
    exactly (Unger Theorem 4.3).  M.i.c. dynamic hazards may increase —
    flattening decorrelates shared paths — so callers wanting full
    hazard control should continue with :func:`make_hazard_free_for`.
    """
    lsop = label_expression(expr, names)
    return lsop.plain_cover()


def make_hazard_free_for(
    cover: Cover,
    transitions: Sequence[tuple[int, int]],
    exact: Optional[bool] = None,
) -> Cover:
    """Re-synthesize the function hazard-free for the given transitions.

    ``transitions`` are (start, end) point pairs — the machine's
    specified bursts.  The result holds every required cube in a single
    gate and intersects no privileged cube illegally (the Nowick–Dill
    conditions), hence carries no logic hazard for any listed
    transition.  Raises :class:`HazardFreeError` when the set is
    unrealizable in two-level logic.
    """
    offset = cover.complement()
    specs = [TransitionSpec(start, end) for start, end in transitions]
    result = minimize_hazard_free(cover, offset, specs, exact=exact)
    return result.cover


def repair_summary(original: Cover, repaired: Cover) -> dict[str, int]:
    """Quick before/after hazard accounting for reports and tests."""
    before = analyze_cover(original)
    after = analyze_cover(repaired)
    return {
        "static1_before": len(before.static1),
        "static1_after": len(after.static1),
        "dynamic_before": len(before.mic_dynamic),
        "dynamic_after": len(after.mic_dynamic),
        "cubes_before": len(original),
        "cubes_after": len(repaired),
    }
