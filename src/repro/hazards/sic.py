"""Single-input-change dynamic logic hazard analysis (paper §4.2.3).

A s.i.c. dynamic hazard is present whenever a variable appears within a
product term of the path-labelled SOP in both its complemented and
uncomplemented forms (a vacuous term) and the remaining variables of
the term can be held true while the overall output makes a dynamic
(0→1 or 1→0) transition on that variable: the vacuous term can pulse
once mid-transition, turning the single expected output change into a
triple change.

As with static-0 analysis, the algebraic condition (residual true ∧
``f(v=0) ≠ f(v=1)``) is a *candidate* filter: a pulse is masked when a
product sharing the raising path holds the output through it.  Each
candidate point is therefore confirmed on the event lattice, which is
tiny here (only one variable's paths switch) — the result is exact.
"""

from __future__ import annotations

from ..boolean.cover import Cover
from ..boolean.cube import Cube
from ..boolean.paths import LabeledSop
from .types import SicDynamicHazard


def _candidate_conditions(lsop: LabeledSop) -> dict[int, list[tuple[Cube, Cover]]]:
    plain = lsop.plain_cover()
    nvars = lsop.nvars
    result: dict[int, list[tuple[Cube, Cover]]] = {}
    seen: set[tuple[int, Cube]] = set()
    for product in lsop.vacuous_products():
        for name in sorted(product.vacuous_variables()):
            var = lsop.index[name]
            residual = product.residual_cube((name,), lsop.index, nvars)
            if residual is None:
                continue
            key = (var, residual)
            if key in seen:
                continue
            seen.add(key)
            on_low = plain.cofactor_var(var, False)
            on_high = plain.cofactor_var(var, True)
            toggling = on_low.xor(on_high)
            condition = Cover([residual], nvars).intersect(toggling)
            if condition.cubes:
                result.setdefault(var, []).append((residual, condition))
    return result


def find_sic_dynamic_hazards(lsop: LabeledSop) -> list[SicDynamicHazard]:
    """All s.i.c. dynamic logic hazards, one record per variable.

    The record's ``condition`` holds exactly the confirmed surrounding
    points (the changing variable left free: both endpoint minterms of
    each confirmed transition are included).
    """
    from .multilevel import transition_has_hazard  # cycle-free at runtime

    nvars = lsop.nvars
    hazards: list[SicDynamicHazard] = []
    for var, candidates in sorted(_candidate_conditions(lsop).items()):
        bit = 1 << var
        confirmed: set[int] = set()
        checked: set[int] = set()
        for __, condition in candidates:
            for cube in condition:
                for point in cube.minterms():
                    low = point & ~bit
                    if low in checked:
                        continue
                    checked.add(low)
                    if transition_has_hazard(
                        lsop, low, low | bit
                    ) or transition_has_hazard(lsop, low | bit, low):
                        confirmed.add(low)
                        confirmed.add(low | bit)
        if confirmed:
            hazards.append(
                SicDynamicHazard(
                    var,
                    candidates[0][0],
                    Cover.from_minterms(sorted(confirmed), nvars),
                )
            )
    return hazards


def witness_transitions(hazard: SicDynamicHazard):
    """Candidate witness bursts for one s.i.c. dynamic hazard record.

    Each confirmed point of ``condition`` certifies a dynamic transition
    of the reconverging variable in at least one direction (the detector
    replays both); both orientations are offered and the caller keeps
    whichever the event lattice confirms.
    """
    bit = 1 << hazard.var
    seen: set[int] = set()
    for cube in hazard.condition:
        for point in cube.minterms():
            low = point & ~bit
            if low in seen:
                continue
            seen.add(low)
            yield low, low | bit
            yield low | bit, low


def exhibits_sic_dynamic(lsop: LabeledSop, var: int, condition: Cover) -> bool:
    """Matching-filter predicate: can the implementation pulse during a
    dynamic s.i.c. of ``var`` at every point of ``condition``?"""
    own = find_sic_dynamic_hazards(lsop)
    pulses = [h.condition for h in own if h.var == var]
    if not pulses:
        return False
    union = Cover.empty(lsop.nvars)
    for cover in pulses:
        union = union.union(cover)
    return union.contains_cover(condition)
