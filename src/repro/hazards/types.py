"""Hazard records and the hazard behaviour of an implementation.

The paper's classification (section 2.3):

* **static-1** logic hazards — a transition subcube on which the function
  is constant 1 but no single gate holds the output;
* **static-0** logic hazards — vacuous terms (a variable and its
  complement reconverging in one product) that can pulse while the
  output should stay 0;
* **m.i.c. dynamic** logic hazards — a cube that turns on and off during
  a function-hazard-free dynamic transition (Theorem 4.1);
* **s.i.c. dynamic** logic hazards — a vacuous term pulsing during a
  single-input-change dynamic transition.

Function hazards are deliberately *not* recorded: they are a property of
the function, identical in any implementation of it, and therefore
irrelevant to the matching filter (section 3.2.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from ..boolean.cover import Cover
from ..boolean.cube import Cube


@dataclass(frozen=True)
class Static1Hazard:
    """A static-1 logic hazard.

    ``transition`` is a subcube of the ON-set on which no single
    implementation cube holds the output; any input burst across it can
    glitch low.
    """

    transition: Cube

    def remap(self, mapping: Sequence[int], nvars: int) -> "Static1Hazard":
        return Static1Hazard(self.transition.remap(mapping, nvars))

    def describe(self, names: Optional[Sequence[str]] = None) -> str:
        return f"static-1 over {self.transition.to_string(names)}"


@dataclass(frozen=True)
class Static0Hazard:
    """A static-0 logic hazard.

    Variable ``var`` reconverges with its complement inside one product
    term whose residual is ``residual``; ``condition`` is the set of
    surrounding input points (a cover, with ``var`` free) at which the
    output is 0 on both sides of the change yet the term can pulse high.
    """

    var: int
    residual: Cube
    condition: Cover

    def remap(self, mapping: Sequence[int], nvars: int) -> "Static0Hazard":
        return Static0Hazard(
            mapping[self.var],
            self.residual.remap(mapping, nvars),
            self.condition.remap(mapping, nvars),
        )

    def describe(self, names: Optional[Sequence[str]] = None) -> str:
        name = names[self.var] if names else f"x{self.var}"
        return (
            f"static-0 on {name} change when {self.condition.to_string(names)}"
        )


@dataclass(frozen=True)
class MicDynamicHazard:
    """A multi-input-change dynamic logic hazard.

    The transition runs between minterms ``start`` (where f = 0) and
    ``end`` (where f = 1); within the transition space some cube can
    turn on and off before the output settles (Theorem 4.1).  The same
    record also certifies the reverse 1→0 transition.
    """

    start: int
    end: int
    nvars: int

    @property
    def space(self) -> Cube:
        return Cube.minterm(self.start, self.nvars).supercube(
            Cube.minterm(self.end, self.nvars)
        )

    def remap(self, mapping: Sequence[int], nvars: int) -> "MicDynamicHazard":
        def remap_point(point: int) -> int:
            result = 0
            for i in range(self.nvars):
                if point >> i & 1:
                    result |= 1 << mapping[i]
            return result

        return MicDynamicHazard(
            remap_point(self.start), remap_point(self.end), nvars
        )

    def describe(self, names: Optional[Sequence[str]] = None) -> str:
        a = Cube.minterm(self.start, self.nvars).to_string(names)
        b = Cube.minterm(self.end, self.nvars).to_string(names)
        return f"m.i.c. dynamic over {a} -> {b}"


@dataclass(frozen=True)
class SicDynamicHazard:
    """A single-input-change dynamic logic hazard.

    While ``var`` changes with the other inputs at a point of
    ``condition`` (a cover with ``var`` free), a vacuous term with
    residual ``residual`` can pulse, turning the expected single output
    change into a multiple change.
    """

    var: int
    residual: Cube
    condition: Cover

    def remap(self, mapping: Sequence[int], nvars: int) -> "SicDynamicHazard":
        return SicDynamicHazard(
            mapping[self.var],
            self.residual.remap(mapping, nvars),
            self.condition.remap(mapping, nvars),
        )

    def describe(self, names: Optional[Sequence[str]] = None) -> str:
        name = names[self.var] if names else f"x{self.var}"
        return (
            f"s.i.c. dynamic on {name} change when "
            f"{self.condition.to_string(names)}"
        )


@dataclass(frozen=True)
class HazardSummary:
    """Aggregate counts, used by the library census (Table 1)."""

    static1: int
    static0: int
    mic_dynamic: int
    sic_dynamic: int

    @property
    def total(self) -> int:
        return self.static1 + self.static0 + self.mic_dynamic + self.sic_dynamic

    @property
    def hazard_free(self) -> bool:
        return self.total == 0

    def __str__(self) -> str:
        if self.hazard_free:
            return "hazard-free"
        return (
            f"s1={self.static1} s0={self.static0} "
            f"dyn={self.mic_dynamic} sic={self.sic_dynamic}"
        )
