"""Hazard analysis algorithms (paper section 4)."""

from .analyzer import (
    HazardAnalysis,
    analyze_cover,
    analyze_expression,
    hazards_subset,
    static1_census,
)
from .cache import (
    CacheStats,
    HazardCache,
    analysis_fingerprint,
    clear_global_cache,
    global_cache,
    lsop_fingerprint,
)
from .dynamic import (
    exhibits_mic_dynamic,
    find_mic_dyn_haz_2level,
    has_mic_dynamic_hazard,
    theorem41_condition,
)
from .multilevel import find_mic_dyn_haz_multilevel, transition_has_hazard
from .oracle import (
    TransitionKind,
    TransitionVerdict,
    classify_transition,
    enumerate_hazards,
    hazard_subset,
    is_logic_hazard_free,
)
from .removal import (
    RemovalReport,
    make_hazard_free_for,
    remove_static1,
    remove_vacuous,
    repair_summary,
)
from .sic import find_sic_dynamic_hazards
from .static0 import find_static0_hazards
from .static1 import (
    exhibits_static1,
    find_sic_static1_hazards,
    find_static1_hazards,
    find_static1_hazards_complete,
    has_static1_hazard,
    static1_subset,
)
from .transition import dynamic_fhf, is_fhf, static_fhf, transition_space
from .types import (
    HazardSummary,
    MicDynamicHazard,
    SicDynamicHazard,
    Static0Hazard,
    Static1Hazard,
)

__all__ = [
    "CacheStats",
    "HazardAnalysis",
    "HazardCache",
    "HazardSummary",
    "MicDynamicHazard",
    "RemovalReport",
    "SicDynamicHazard",
    "Static0Hazard",
    "Static1Hazard",
    "TransitionKind",
    "TransitionVerdict",
    "analysis_fingerprint",
    "analyze_cover",
    "analyze_expression",
    "classify_transition",
    "clear_global_cache",
    "global_cache",
    "lsop_fingerprint",
    "dynamic_fhf",
    "enumerate_hazards",
    "exhibits_mic_dynamic",
    "exhibits_static1",
    "find_mic_dyn_haz_2level",
    "find_mic_dyn_haz_multilevel",
    "find_sic_dynamic_hazards",
    "find_sic_static1_hazards",
    "find_static0_hazards",
    "find_static1_hazards",
    "find_static1_hazards_complete",
    "has_mic_dynamic_hazard",
    "has_static1_hazard",
    "hazard_subset",
    "hazards_subset",
    "is_fhf",
    "is_logic_hazard_free",
    "make_hazard_free_for",
    "remove_static1",
    "remove_vacuous",
    "repair_summary",
    "static1_census",
    "static1_subset",
    "static_fhf",
    "theorem41_condition",
    "transition_has_hazard",
    "transition_space",
]
