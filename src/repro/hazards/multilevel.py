"""Multilevel dynamic hazard analysis (paper section 4.2.2).

``findMicDynHazMultiLevel``: flatten the network with static-hazard-
preserving transformations, run the two-level procedure as a *filter*
producing candidate transitions, then examine the original multilevel
structure on exactly those transitions and discard false hazards.

For step 3 the paper suggests path labelling or ternary simulation on
the specific transitions.  We use an exact event-lattice decision
procedure on the path-labelled SOP: during a burst each labelled literal
(physical path) switches once at an arbitrary time, so the reachable
circuit states are precisely the monotone subsets of switch events.
Because *every* monotone event order is possible under the arbitrary
gate/wire delay model, "the output can glitch" reduces to a subset-
lattice reachability query, solved by dynamic programming in
``O(2^k · k)`` for ``k`` changing path literals — exact, and cheap at
cell/cluster sizes.
"""

from __future__ import annotations

from ..boolean.cover import Cover
from ..boolean.cube import Cube
from ..boolean.paths import LabeledSop
from .dynamic import find_mic_dyn_haz_2level
from .types import MicDynamicHazard

#: Refuse lattice analysis past this many changing path literals.
MAX_EVENTS = 20


def _product_masks(
    lsop: LabeledSop, start: int, end: int
) -> tuple[list[tuple[int, int]], int]:
    """Compile products into (need_switched, need_unswitched) event masks.

    Each changing labelled literal is an event; a literal of a changing
    variable is true either only before or only after its path switches,
    so a product is on in state ``s`` iff ``s`` contains its
    need-switched events and none of its need-unswitched events.
    Products with a false fixed literal are dropped.  Returns the mask
    list and the event count.
    """
    changing = start ^ end
    events: dict[tuple[str, int], int] = {}
    masks: list[tuple[int, int]] = []
    for product in lsop.products:
        need_switched = 0
        need_unswitched = 0
        alive = True
        for lit in product.literals:
            var = lsop.index[lit.name]
            bit = 1 << var
            if not changing & bit:
                value = bool(start & bit)
                if value != lit.positive:
                    alive = False
                    break
                continue
            key = (lit.name, lit.path)
            event = events.setdefault(key, len(events))
            true_after = bool(end & bit) == lit.positive
            if true_after:
                need_switched |= 1 << event
            else:
                need_unswitched |= 1 << event
        if not alive:
            continue
        masks.append((need_switched, need_unswitched))
    if len(events) > MAX_EVENTS:
        raise ValueError(
            f"{len(events)} changing path literals exceed the lattice limit"
        )
    return masks, len(events)


def transition_has_hazard(lsop: LabeledSop, start: int, end: int) -> bool:
    """Exact logic-glitch decision for one transition of a multilevel net.

    For a static transition (f equal at the endpoints) the answer is
    True iff some reachable event-state evaluates to the opposite value;
    for a dynamic transition, iff the output can be non-monotone (rise
    then fall for 0→1, fall then rise for 1→0) before settling.

    Note: on transitions that carry a *function* hazard this necessarily
    returns True for every implementation; callers interested only in
    logic hazards must pre-filter with
    :func:`repro.hazards.transition.is_fhf`.
    """
    masks, k = _product_masks(lsop, start, end)
    plain = lsop.plain_cover()
    f_start = plain.evaluate(start)
    f_end = plain.evaluate(end)

    nstates = 1 << k
    out = bytearray(nstates)
    for s in range(nstates):
        value = 0
        for need_sw, need_un in masks:
            if (s & need_sw) == need_sw and not (s & need_un):
                value = 1
                break
        out[s] = value

    if f_start == f_end:
        target = 1 if f_start else 0
        return any(out[s] != target for s in range(nstates))

    # Dynamic transition: look for a non-monotone pair s1 ⊆ s2.
    # ``seen_opposite[s]``: some subset of s evaluates to the *initial*
    # post-change polarity (1 for a 0→1 transition, 0 for 1→0).
    rising = not f_start
    mark = 1 if rising else 0
    seen = bytearray(nstates)
    for s in range(nstates):
        if out[s] == mark:
            seen[s] = 1
        else:
            sub = s
            found = 0
            for e in range(k):
                if s >> e & 1 and seen[s ^ (1 << e)]:
                    found = 1
                    break
            seen[s] = found
        # Hazard: output has already shown ``mark`` on the way to s,
        # yet s evaluates to the opposite value (and the run still must
        # end at f_end == mark, completing the extra swing).
        if out[s] != mark and seen[s]:
            return True
    return False


def find_mic_dyn_haz_multilevel(lsop: LabeledSop) -> list[MicDynamicHazard]:
    """The paper's three-step multilevel procedure.

    1. flatten to two-level SOP (static-hazard-preserving — done by the
       caller when constructing ``lsop``);
    2. run ``findMicDynHaz2level`` on the flattened expression;
    3. keep only candidates the real multilevel structure exhibits.
    """
    plain = lsop.plain_cover()
    candidates = find_mic_dyn_haz_2level(plain)
    confirmed = []
    for hazard in candidates:
        if transition_has_hazard(lsop, hazard.start, hazard.end):
            confirmed.append(hazard)
    return confirmed


def exhibits_transition_hazard(
    lsop: LabeledSop, hazard: MicDynamicHazard
) -> bool:
    """Matching-filter predicate for one m.i.c. dynamic hazard record."""
    return transition_has_hazard(lsop, hazard.start, hazard.end)
