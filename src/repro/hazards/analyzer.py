"""One-call hazard characterization and the matching-filter comparison.

``analyze_expression`` / ``analyze_cover`` run the full battery of
section-4 algorithms on an implementation and return a
:class:`HazardAnalysis` holding the hazard records of every class.  The
library loader annotates each cell with one of these (section 3.2.1);
the matching routine compares a hazardous cell's analysis against the
subnetwork being replaced (section 3.2.2) with :func:`hazards_subset`.

Two comparison modes are provided:

* ``"exact"`` (default) — the cell's hazardous transitions are
  enumerated exhaustively once (at library-annotation time, which is
  exactly where the paper pays its initialization overhead, Table 2)
  and each is replayed on the subnetwork with the exact event-lattice
  check.  Sound and complete.
* ``"paper"`` — uses only the efficient section-4 record lists.  This
  is the paper's procedure verbatim; it is exact for irredundant
  covers but can miss pulse hazards of *absorbed* cubes (a cube
  contained in two others), a case our test-suite documents.
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Optional, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .witness import HazardWitness

from ..boolean.cover import Cover
from ..boolean.expr import Expr
from ..boolean.paths import LabeledSop, label_cover, label_expression
from .dynamic import find_mic_dyn_haz_2level
from .multilevel import find_mic_dyn_haz_multilevel, transition_has_hazard
from .oracle import TransitionVerdict, all_transitions, classify_transition
from .sic import find_sic_dynamic_hazards
from .static0 import find_static0_hazards
from .static1 import find_static1_hazards, find_static1_hazards_complete
from .types import (
    HazardSummary,
    MicDynamicHazard,
    SicDynamicHazard,
    Static0Hazard,
    Static1Hazard,
)

#: Exhaustive transition enumeration is attempted up to this many inputs.
#: Beyond it the record-based section-4 algorithms stand alone (the
#: test-suite validates their agreement with the exhaustive oracle at
#: enumerable sizes).
EXHAUSTIVE_MAX_VARS = 7


@dataclass
class HazardAnalysis:
    """The logic-hazard behaviour of one implementation.

    ``plain`` is the label-free flattened SOP (static-hazard-equivalent
    to the implementation); ``lsop`` the path-labelled flattening used
    for dynamic/vacuous-term analysis; ``verdicts`` (when computed) the
    exhaustive list of logic-hazardous transitions.
    """

    names: list[str]
    plain: Cover
    lsop: LabeledSop
    static1: list[Static1Hazard] = field(default_factory=list)
    static0: list[Static0Hazard] = field(default_factory=list)
    mic_dynamic: list[MicDynamicHazard] = field(default_factory=list)
    sic_dynamic: list[SicDynamicHazard] = field(default_factory=list)
    verdicts: Optional[list[TransitionVerdict]] = None
    #: Canonical structural key, filled in lazily by the hazard cache.
    fingerprint: Optional[tuple] = field(
        default=None, repr=False, compare=False
    )

    @property
    def has_hazards(self) -> bool:
        if self.verdicts is not None:
            return bool(self.verdicts) or bool(
                self.static1 or self.static0 or self.mic_dynamic or self.sic_dynamic
            )
        return bool(
            self.static1 or self.static0 or self.mic_dynamic or self.sic_dynamic
        )

    def summary(self) -> HazardSummary:
        return HazardSummary(
            static1=len(self.static1),
            static0=len(self.static0),
            mic_dynamic=len(self.mic_dynamic),
            sic_dynamic=len(self.sic_dynamic),
        )

    def describe(self) -> list[str]:
        lines = []
        for hazard in self.static1:
            lines.append(hazard.describe(self.names))
        for hazard in self.static0:
            lines.append(hazard.describe(self.names))
        for hazard in self.mic_dynamic:
            lines.append(hazard.describe(self.names))
        for hazard in self.sic_dynamic:
            lines.append(hazard.describe(self.names))
        return lines

    def ensure_verdicts(self) -> Optional[list[TransitionVerdict]]:
        """Compute (and cache) the exhaustive hazardous-transition list.

        Returns ``None`` when the input count makes enumeration
        unreasonable; callers then fall back to the record lists.
        """
        if self.verdicts is not None:
            return self.verdicts
        if self.nvars > EXHAUSTIVE_MAX_VARS:
            return None
        hazardous = []
        for start, end in all_transitions(self.nvars):
            verdict = classify_transition(self.lsop, start, end)
            if verdict.logic_hazard:
                hazardous.append(verdict)
        self.verdicts = hazardous
        return hazardous

    @property
    def nvars(self) -> int:
        return len(self.names)


def analyze_cover(
    cover: Cover,
    names: Optional[Sequence[str]] = None,
    exhaustive: bool = False,
    metrics=None,
) -> HazardAnalysis:
    """Hazard analysis of a two-level AND-OR implementation.

    ``metrics`` (a :class:`repro.obs.metrics.MetricsRegistry`) counts
    the call and times it under ``hazard.cover_analyses`` /
    ``hazard.analysis_seconds`` — the per-analysis cost the hazard
    cache amortizes.
    """
    start = _time.perf_counter() if metrics is not None else 0.0
    if names is None:
        names = [f"x{i}" for i in range(cover.nvars)]
    names = list(names)
    lsop = label_cover(cover, names)
    analysis = HazardAnalysis(
        names=names,
        plain=cover.dedup(),
        lsop=lsop,
        static1=find_static1_hazards(cover),
        static0=find_static0_hazards(lsop),  # none for plain SOP, by construction
        mic_dynamic=find_mic_dyn_haz_2level(cover),
        sic_dynamic=find_sic_dynamic_hazards(lsop),
    )
    if exhaustive:
        analysis.ensure_verdicts()
    if metrics is not None:
        metrics.counter("hazard.cover_analyses").inc()
        metrics.histogram("hazard.analysis_seconds").observe(
            _time.perf_counter() - start
        )
    return analysis


def analyze_expression(
    expr: Expr,
    names: Optional[Sequence[str]] = None,
    exhaustive: bool = False,
    metrics=None,
) -> HazardAnalysis:
    """Hazard analysis of a multilevel Boolean-factored-form structure.

    This is the library-element annotation pass of section 3.2.1: the
    BFF is flattened with hazard-preserving transformations and each
    class of logic hazards is characterized.  With ``exhaustive`` the
    complete hazardous-transition list is also stored (library cells are
    small, and this is where the async mapper pays its initialization
    overhead).

    ``metrics`` counts the call and times it under
    ``hazard.expression_analyses`` / ``hazard.analysis_seconds``.
    """
    start = _time.perf_counter() if metrics is not None else 0.0
    if names is None:
        names = sorted(expr.support())
    names = list(names)
    lsop = label_expression(expr, names)
    plain = lsop.plain_cover()
    analysis = HazardAnalysis(
        names=names,
        plain=plain,
        lsop=lsop,
        static1=find_static1_hazards(plain),
        static0=find_static0_hazards(lsop),
        mic_dynamic=find_mic_dyn_haz_multilevel(lsop),
        sic_dynamic=find_sic_dynamic_hazards(lsop),
    )
    if exhaustive:
        analysis.ensure_verdicts()
    if metrics is not None:
        metrics.counter("hazard.expression_analyses").inc()
        metrics.histogram("hazard.analysis_seconds").observe(
            _time.perf_counter() - start
        )
    return analysis


def _map_point(point: int, mapping: Sequence[int], old_nvars: int) -> int:
    result = 0
    for i in range(old_nvars):
        if point >> i & 1:
            result |= 1 << mapping[i]
    return result


#: Signature of the pluggable event-lattice replay used by the filter.
TransitionCheck = Callable[[LabeledSop, int, int], bool]


def hazards_subset(
    cell: HazardAnalysis,
    target: HazardAnalysis,
    mapping: Optional[Sequence[int]] = None,
    mode: str = "exact",
    transition_check: TransitionCheck = transition_has_hazard,
) -> bool:
    """Section 3.2.2 filter: ``hazards(cell) ⊆ hazards(target)``?

    ``mapping`` renames cell variable ``i`` to target variable
    ``mapping[i]`` (the Boolean match's pin binding); identity when
    omitted.  See the module docstring for the two modes.
    ``transition_check`` lets callers (the hazard cache) substitute a
    memoized event-lattice replay; it must be extensionally equal to
    :func:`repro.hazards.multilevel.transition_has_hazard`.
    """
    if mapping is None:
        mapping = list(range(cell.nvars))
    mapping = list(mapping)
    if mode == "exact":
        verdicts = cell.ensure_verdicts()
        if verdicts is not None:
            for verdict in verdicts:
                start = _map_point(verdict.start, mapping, cell.nvars)
                end = _map_point(verdict.end, mapping, cell.nvars)
                if not transition_check(target.lsop, start, end):
                    return False
            return True
        # Too large to enumerate — fall through to the record filter.
    return _paper_filter(cell, target, mapping, transition_check)


def _condition_exhibited(records, var: int, condition: Cover, nvars: int) -> bool:
    """Is ``condition`` covered by the union of the targets' confirmed
    pulse conditions for ``var``?

    The records are the target's own ``static0`` / ``sic_dynamic``
    lists, already computed at analysis time — re-deriving them per
    match (as ``exhibits_static0`` does for standalone use) would redo
    the candidate extraction and lattice confirmation on every filter
    call.
    """
    pulses = [h.condition for h in records if h.var == var]
    if not pulses:
        return False
    union = Cover.empty(nvars)
    for cover in pulses:
        union = union.union(cover)
    return union.contains_cover(condition)


def _paper_filter(
    cell: HazardAnalysis,
    target: HazardAnalysis,
    mapping: list[int],
    transition_check: TransitionCheck = transition_has_hazard,
) -> bool:
    """The record-list filter, per hazard class (paper section 3.2.2)."""
    nvars = target.nvars

    # Static-1: exact two-cover criterion — every transition safe in the
    # cell must be safe in the target, i.e. every cube of the target's
    # flattened cover lies inside a single cube of the mapped cell cover.
    mapped_cell_cover = cell.plain.remap(mapping, nvars)
    for cube in target.plain.dedup():
        if not mapped_cell_cover.single_cube_contains(cube):
            return False

    for s0 in cell.static0:
        mapped = s0.remap(mapping, nvars)
        if not _condition_exhibited(
            target.static0, mapped.var, mapped.condition, nvars
        ):
            return False
    for sic in cell.sic_dynamic:
        mapped = sic.remap(mapping, nvars)
        if not _condition_exhibited(
            target.sic_dynamic, mapped.var, mapped.condition, nvars
        ):
            return False
    for dyn in cell.mic_dynamic:
        mapped = dyn.remap(mapping, nvars)
        if not transition_check(target.lsop, mapped.start, mapped.end):
            return False
    return True


@dataclass(frozen=True)
class SubsetViolation:
    """Why :func:`hazards_subset` said no, with evidence.

    ``witness`` is a cell-space :class:`repro.hazards.witness
    .HazardWitness` demonstrating the offending hazard on the cell's own
    implementation; ``target_start``/``target_end`` is the same
    transition transported through the pin binding into the subnetwork's
    variable space — where the replacement target does *not* glitch,
    which is exactly what makes the cell unsafe there.
    """

    kind: str
    detail: str
    witness: Optional["HazardWitness"]
    target_start: int
    target_end: int


def find_subset_violation(
    cell: HazardAnalysis,
    target: HazardAnalysis,
    mapping: Optional[Sequence[int]] = None,
    mode: str = "exact",
    transition_check: TransitionCheck = transition_has_hazard,
) -> Optional[SubsetViolation]:
    """First hazard of ``cell`` that ``target`` does not share.

    The provenance twin of :func:`hazards_subset`: same walk, same
    modes, but instead of a verdict it returns the offending hazard —
    ``None`` iff the filter would accept.  Pure and deterministic (the
    record lists and verdicts are in fixed order), so the explain layer
    gets identical reasons for any worker count.
    """
    from .witness import witness_for_verdict

    if mapping is None:
        mapping = list(range(cell.nvars))
    mapping = list(mapping)
    if mode == "exact":
        verdicts = cell.ensure_verdicts()
        if verdicts is not None:
            for verdict in verdicts:
                start = _map_point(verdict.start, mapping, cell.nvars)
                end = _map_point(verdict.end, mapping, cell.nvars)
                if not transition_check(target.lsop, start, end):
                    witness = witness_for_verdict(verdict, cell)
                    return SubsetViolation(
                        witness.kind, witness.detail, witness, start, end
                    )
            return None
        # Too large to enumerate — fall through to the record walk.
    return _paper_violation(cell, target, mapping, transition_check)


def _paper_violation(
    cell: HazardAnalysis,
    target: HazardAnalysis,
    mapping: list[int],
    transition_check: TransitionCheck = transition_has_hazard,
) -> Optional[SubsetViolation]:
    """Record-list walk mirroring :func:`_paper_filter`, returning the
    first offending record instead of a bare verdict."""
    from .witness import witness_for_record

    nvars = target.nvars

    def violation_from(record) -> SubsetViolation:
        witness = witness_for_record(record, cell)
        if witness is not None:
            start = _map_point(witness.start, mapping, cell.nvars)
            end = _map_point(witness.end, mapping, cell.nvars)
        else:  # no spanning transition (degenerate record) — still report
            start = end = 0
        kind = witness.kind if witness is not None else "unknown"
        return SubsetViolation(
            kind, record.describe(cell.names), witness, start, end
        )

    # Static-1: a target cube not held by one mapped cell cube means the
    # cell is hazardous over that subcube where the target is safe; map
    # the cube back through the (injective) binding to name the cell's
    # own hazard record.
    mapped_cell_cover = cell.plain.remap(mapping, nvars)
    inverse = [0] * nvars
    for i, m in enumerate(mapping):
        inverse[m] = i
    for cube in target.plain.dedup():
        if not mapped_cell_cover.single_cube_contains(cube):
            return violation_from(Static1Hazard(cube.remap(inverse, cell.nvars)))

    for s0 in cell.static0:
        mapped = s0.remap(mapping, nvars)
        if not _condition_exhibited(
            target.static0, mapped.var, mapped.condition, nvars
        ):
            return violation_from(s0)
    for sic in cell.sic_dynamic:
        mapped = sic.remap(mapping, nvars)
        if not _condition_exhibited(
            target.sic_dynamic, mapped.var, mapped.condition, nvars
        ):
            return violation_from(sic)
    for dyn in cell.mic_dynamic:
        mapped = dyn.remap(mapping, nvars)
        if not transition_check(target.lsop, mapped.start, mapped.end):
            return violation_from(dyn)
    return None


def static1_census(cover: Cover) -> list[Static1Hazard]:
    """Complete static-1 hazard list (uncovered primes) — used by the
    library census where existence, not the efficient summary, matters."""
    return find_static1_hazards_complete(cover)
