"""Memoized hazard analysis — the warm path of the async mapper.

The paper pays its hazard cost in two hot loops: library annotation at
load time (Table 2) and the per-match ``hazards_subset`` filter inside
covering (section 3.2.2).  Both recompute pure functions of small
structures, so a :class:`HazardCache` keyed by canonical forms turns the
second and every later evaluation into a dictionary hit:

* **analyses** — ``analyze_expression`` / ``analyze_cover`` results,
  keyed by the expression (hashable) or the cube list, plus the variable
  ordering;
* **subset verdicts** — ``hazards_subset`` results, keyed by the
  structural fingerprints of both implementations, the pin binding, and
  the mode;
* **transition replays** — ``transition_has_hazard`` event-lattice
  decisions, keyed by the target fingerprint and the transition
  endpoints, so distinct cells screened against the same subnetwork
  share replays.

Fingerprints lead with an NPN-style bucket (the output-polarity-folded
permutation-invariant signature of :func:`repro.boolean.truthtable
.np_signature`) followed by the exact path-labelled structure.  Hazard
behaviour is a property of the *implementation*, not the function, so
the structural part is what guarantees soundness; the signature keeps
buckets of related functions apart cheaply.

A process-wide cache (:func:`global_cache`) backs the mapper; it is
thread-safe, so parallel cone covering shares one warm store.  All
methods return ``(value, hit)`` pairs so callers can surface hit/miss
counters (``CoverStats``, the CLI summary).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Optional, Sequence

from ..boolean import truthtable as tt
from ..boolean.cover import Cover
from ..boolean.expr import Expr
from ..boolean.paths import LabeledSop
from .analyzer import HazardAnalysis, analyze_cover, analyze_expression, hazards_subset
from .multilevel import transition_has_hazard

#: Skip the truth-table signature above this input count (the structural
#: fingerprint alone still keys correctly; the bucket is an accelerator).
SIGNATURE_MAX_VARS = 12


def lsop_fingerprint(lsop: LabeledSop) -> tuple:
    """Canonical key of a path-labelled implementation.

    Two implementations with equal fingerprints have identical hazard
    behaviour: the labelled product structure determines every section-4
    record list and every event-lattice replay.
    """
    if lsop.nvars <= SIGNATURE_MAX_VARS:
        bucket = tt.np_signature(lsop.plain_cover().truth_table(), lsop.nvars)
    else:
        bucket = None
    structure = tuple(
        tuple((lit.name, lit.path, lit.positive) for lit in product.literals)
        for product in lsop.products
    )
    return (tuple(lsop.names), bucket, structure)


def analysis_fingerprint(analysis: HazardAnalysis) -> tuple:
    """Fingerprint of an analysis, computed once and stored on it."""
    if analysis.fingerprint is None:
        analysis.fingerprint = lsop_fingerprint(analysis.lsop)
    return analysis.fingerprint


@dataclass
class CacheStats:
    """Aggregate hit/miss counters of one :class:`HazardCache`."""

    analysis_hits: int = 0
    analysis_misses: int = 0
    subset_hits: int = 0
    subset_misses: int = 0
    transition_hits: int = 0
    transition_misses: int = 0

    @property
    def total_hits(self) -> int:
        return self.analysis_hits + self.subset_hits + self.transition_hits

    @property
    def total_misses(self) -> int:
        return self.analysis_misses + self.subset_misses + self.transition_misses


class HazardCache:
    """Thread-safe memo store for hazard analyses and filter verdicts.

    ``bind_metrics`` optionally mirrors hit/miss counts into a
    :class:`repro.obs.metrics.MetricsRegistry` under ``hazard_cache.*``
    and forwards the registry into the analysis computations so cold
    analyses land in ``hazard.analysis_seconds``.  Binding is a
    whole-cache choice: the process-wide :func:`global_cache` is shared
    by every concurrent mapping run, so bind it only in single-tenant
    processes (the CLI does); per-run accounting belongs to
    ``CoverStats``/``MappingResult.metrics``.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._analyses: dict[tuple, HazardAnalysis] = {}
        self._subsets: dict[tuple, bool] = {}
        self._transitions: dict[tuple, bool] = {}
        self.stats = CacheStats()
        self.metrics = None

    def bind_metrics(self, registry) -> None:
        """Mirror this cache's activity into ``registry`` (None unbinds)."""
        self.metrics = registry

    def _count(self, name: str) -> None:
        if self.metrics is not None:
            self.metrics.counter("hazard_cache." + name).inc()

    # ------------------------------------------------------------------
    # Analyses
    # ------------------------------------------------------------------
    def expression_analysis(
        self,
        expr: Expr,
        names: Optional[Sequence[str]] = None,
        exhaustive: bool = False,
    ) -> tuple[HazardAnalysis, bool]:
        """Memoized :func:`repro.hazards.analyzer.analyze_expression`."""
        key = ("expr", expr, tuple(names) if names is not None else None)
        return self._analysis(
            key,
            lambda: analyze_expression(expr, names, metrics=self.metrics),
            exhaustive,
        )

    def cover_analysis(
        self,
        cover: Cover,
        names: Optional[Sequence[str]] = None,
        exhaustive: bool = False,
    ) -> tuple[HazardAnalysis, bool]:
        """Memoized :func:`repro.hazards.analyzer.analyze_cover`."""
        key = (
            "cover",
            cover.nvars,
            tuple((c.used, c.phase) for c in cover.cubes),
            tuple(names) if names is not None else None,
        )
        return self._analysis(
            key,
            lambda: analyze_cover(cover, names, metrics=self.metrics),
            exhaustive,
        )

    def _analysis(self, key, compute, exhaustive) -> tuple[HazardAnalysis, bool]:
        with self._lock:
            cached = self._analyses.get(key)
        if cached is not None:
            with self._lock:
                self.stats.analysis_hits += 1
            self._count("analysis_hits")
            if exhaustive:
                cached.ensure_verdicts()
            return cached, True
        analysis = compute()
        if exhaustive:
            analysis.ensure_verdicts()
        analysis_fingerprint(analysis)
        with self._lock:
            self.stats.analysis_misses += 1
            # First writer wins, so every caller shares one object.
            analysis = self._analyses.setdefault(key, analysis)
        self._count("analysis_misses")
        return analysis, False

    # ------------------------------------------------------------------
    # Transition replays
    # ------------------------------------------------------------------
    def transition_has_hazard(
        self,
        lsop: LabeledSop,
        start: int,
        end: int,
        fingerprint: Optional[tuple] = None,
    ) -> bool:
        """Memoized event-lattice replay on one implementation."""
        if fingerprint is None:
            fingerprint = lsop_fingerprint(lsop)
        key = (fingerprint, start, end)
        with self._lock:
            if key in self._transitions:
                self.stats.transition_hits += 1
                cached = (self._transitions[key],)
            else:
                cached = None
        if cached is not None:
            self._count("transition_hits")
            return cached[0]
        value = transition_has_hazard(lsop, start, end)
        with self._lock:
            self.stats.transition_misses += 1
            self._transitions[key] = value
        self._count("transition_misses")
        return value

    # ------------------------------------------------------------------
    # Matching-filter verdicts
    # ------------------------------------------------------------------
    def hazards_subset(
        self,
        cell: HazardAnalysis,
        target: HazardAnalysis,
        mapping: Optional[Sequence[int]] = None,
        mode: str = "exact",
    ) -> tuple[bool, bool]:
        """Memoized section-3.2.2 filter; replays go through the
        transition memo so they are shared across cells."""
        cell_key = analysis_fingerprint(cell)
        target_key = analysis_fingerprint(target)
        mapping_key = tuple(mapping) if mapping is not None else None
        key = (cell_key, target_key, mapping_key, mode)
        with self._lock:
            if key in self._subsets:
                self.stats.subset_hits += 1
                cached = (self._subsets[key],)
            else:
                cached = None
        if cached is not None:
            self._count("subset_hits")
            return cached[0], True

        def check(lsop: LabeledSop, start: int, end: int) -> bool:
            # ``hazards_subset`` only ever replays on the target's lsop.
            fp = target_key if lsop is target.lsop else None
            return self.transition_has_hazard(lsop, start, end, fingerprint=fp)

        value = hazards_subset(
            cell, target, mapping=mapping, mode=mode, transition_check=check
        )
        with self._lock:
            self.stats.subset_misses += 1
            self._subsets[key] = value
        self._count("subset_misses")
        return value, False

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def clear(self) -> None:
        with self._lock:
            self._analyses.clear()
            self._subsets.clear()
            self._transitions.clear()
            self.stats = CacheStats()

    def __len__(self) -> int:
        with self._lock:
            return len(self._analyses) + len(self._subsets) + len(self._transitions)

    def __repr__(self) -> str:
        return (
            f"HazardCache(analyses={len(self._analyses)}, "
            f"subsets={len(self._subsets)}, transitions={len(self._transitions)})"
        )


_GLOBAL = HazardCache()


def global_cache() -> HazardCache:
    """The process-wide cache shared by every mapping run."""
    return _GLOBAL


def clear_global_cache() -> None:
    _GLOBAL.clear()
