"""Hazard witnesses: self-verifying evidence for every reported hazard.

The section-4 analyzers return *records* (cubes, vacuous terms,
transition pairs); this module turns each record into a
:class:`HazardWitness` — one concrete input burst that provably glitches
the implementation — and replays it on the event-driven simulator
(:mod:`repro.network.eventsim`) to confirm the glitch actually happens.
That makes every hazard the explain layer reports evidence in the
Verbeek/Schmaltz style: the claim ships with an executable check, so a
bug in an analyzer shows up as a witness that fails to glitch, not as a
silently wrong counter.

Replays are deterministic, not sampled: the same subset-lattice dynamic
programming that decides :func:`repro.hazards.multilevel
.transition_has_hazard` is rerun with back-pointers to extract a
*glitching event order* (which path switches when), and the witness
netlist gives every path its own buffer gate so per-gate delays can
realize exactly that order.  One simulation, guaranteed glitch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Optional

from ..boolean.expr import And, Not, Or, Var
from ..boolean.paths import LabeledSop
from ..network.eventsim import EventSimulator, Waveform, burst_response
from ..network.netlist import Netlist
from .multilevel import MAX_EVENTS, transition_has_hazard
from .oracle import TransitionKind, TransitionVerdict
from . import dynamic as _dynamic
from . import sic as _sic
from . import static0 as _static0
from . import static1 as _static1
from .types import (
    MicDynamicHazard,
    SicDynamicHazard,
    Static0Hazard,
    Static1Hazard,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .analyzer import HazardAnalysis

#: Witness kind strings — the explain-log reason codes.  They name the
#: paper sections that define each class (see docs/paper_map.md).
KIND_STATIC1 = "static-1"
KIND_STATIC0 = "static-0"
KIND_MIC = "dynamic-mic"
KIND_SIC = "dynamic-sic"
ALL_KINDS = (KIND_STATIC1, KIND_STATIC0, KIND_MIC, KIND_SIC)
STATIC_KINDS = frozenset({KIND_STATIC1, KIND_STATIC0})


@dataclass(frozen=True)
class HazardWitness:
    """One concrete input burst that glitches an implementation.

    ``start``/``end`` are input minterms over ``names`` (bit ``i`` is
    variable ``names[i]``); ``kind`` is the hazard class the burst
    demonstrates and ``detail`` the section-4 record (cube, cube pair,
    or vacuous term) that induced it.
    """

    kind: str
    start: int
    end: int
    nvars: int
    names: tuple[str, ...]
    detail: str = ""

    @property
    def expected_changes(self) -> int:
        """Glitch-free output transition count: 0 static, 1 dynamic."""
        return 0 if self.kind in STATIC_KINDS else 1

    def vector(self, point: int) -> dict[str, bool]:
        return {
            name: bool(point >> i & 1) for i, name in enumerate(self.names)
        }

    def start_vector(self) -> dict[str, bool]:
        return self.vector(self.start)

    def end_vector(self) -> dict[str, bool]:
        return self.vector(self.end)

    def transition_string(self) -> str:
        """Human rendering: changing inputs as arrows, the rest pinned."""
        parts = []
        for i, name in enumerate(self.names):
            before = self.start >> i & 1
            after = self.end >> i & 1
            if before != after:
                parts.append(f"{name}{'↑' if after else '↓'}")
            else:
                parts.append(f"{name}={before}")
        return " ".join(parts)

    def describe(self) -> str:
        text = f"{self.kind} witness: {self.transition_string()}"
        if self.detail:
            text += f" (from {self.detail})"
        return text

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "start": self.start,
            "end": self.end,
            "nvars": self.nvars,
            "names": list(self.names),
            "detail": self.detail,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "HazardWitness":
        return cls(
            kind=payload["kind"],
            start=int(payload["start"]),
            end=int(payload["end"]),
            nvars=int(payload["nvars"]),
            names=tuple(payload["names"]),
            detail=payload.get("detail", ""),
        )


@dataclass
class WitnessReplay:
    """Outcome of replaying one witness on the event simulator."""

    witness: HazardWitness
    glitched: bool
    changes: int
    expected: int
    waveform: Waveform
    schedule: list[tuple[str, int]]
    netlist: Netlist

    def describe(self) -> str:
        verdict = "glitches" if self.glitched else "NO GLITCH"
        return (
            f"{self.witness.describe()} — replay {verdict} "
            f"({self.changes} output changes, expected {self.expected})"
        )


def witness_netlist(
    lsop: LabeledSop, output: str = "f"
) -> tuple[Netlist, dict[tuple[str, int], str]]:
    """Path-explicit gate network of a labelled SOP.

    Every labelled literal becomes its own buffer/inverter gate, so each
    physical path carries an independently assignable delay — exactly
    the arbitrary-delay model the hazard algebra assumes.  Products are
    AND gates, the output an OR.  Returns the netlist and the
    ``(variable, path) -> wire node`` map used to program delays.
    """
    net = Netlist(f"{output}.witness")
    for name in lsop.names:
        net.add_input(name)
    wires: dict[tuple[str, int], str] = {}
    product_nodes: list[str] = []
    for j, product in enumerate(lsop.products):
        if not product.literals:
            # A constant-true product makes the function 1 — no witness
            # can exist; keep the structure well-formed regardless.
            const = f"_one{j}"
            net.add_constant(const, True)
            product_nodes.append(const)
            continue
        fanins = []
        for lit in product.literals:
            key = (lit.name, lit.path)
            wire = wires.get(key)
            if wire is None:
                wire = f"_w_{lit.name}_{lit.path}"
                expr = Var(lit.name) if lit.positive else Not(Var(lit.name))
                net.add_gate(wire, expr, [lit.name])
                wires[key] = wire
            fanins.append(wire)
        pname = f"_p{j}"
        func = Var(fanins[0]) if len(fanins) == 1 else And([Var(f) for f in fanins])
        net.add_gate(pname, func, fanins)
        product_nodes.append(pname)
    if not product_nodes:
        net.add_constant("_zero", False)
        net.add_output(output, "_zero")
        return net, wires
    if len(product_nodes) == 1:
        net.add_output(output, product_nodes[0])
        return net, wires
    net.add_gate("_or", Or([Var(p) for p in product_nodes]), product_nodes)
    net.add_output(output, "_or")
    return net, wires


def _event_masks(
    lsop: LabeledSop, start: int, end: int
) -> tuple[list[tuple[int, int]], dict[tuple[str, int], int]]:
    """Product on/off masks over the changing path events.

    Mirrors :func:`repro.hazards.multilevel._product_masks` but keeps
    the ``(variable, path) -> event bit`` map so a glitching state can
    be decompiled back into a wire switching order.
    """
    changing = start ^ end
    events: dict[tuple[str, int], int] = {}
    masks: list[tuple[int, int]] = []
    for product in lsop.products:
        need_switched = 0
        need_unswitched = 0
        alive = True
        for lit in product.literals:
            var = lsop.index[lit.name]
            bit = 1 << var
            if not changing & bit:
                if bool(start & bit) != lit.positive:
                    alive = False
                    break
                continue
            key = (lit.name, lit.path)
            event = events.setdefault(key, len(events))
            if bool(end & bit) == lit.positive:
                need_switched |= 1 << event
            else:
                need_unswitched |= 1 << event
        if alive:
            masks.append((need_switched, need_unswitched))
    if len(events) > MAX_EVENTS:
        raise ValueError(
            f"{len(events)} changing path literals exceed the lattice limit"
        )
    return masks, events


def glitch_schedule(
    lsop: LabeledSop, start: int, end: int
) -> Optional[list[tuple[str, int]]]:
    """A path switching order under which the output provably glitches.

    Runs the subset-lattice DP of ``transition_has_hazard`` with
    back-pointers: for a static transition it finds a reachable event
    state with the wrong output value; for a dynamic one, a pair
    ``s1 ⊆ s2`` whose outputs are non-monotone.  The returned list
    orders the changing ``(variable, path)`` wires so the simulation
    passes through those states; ``None`` means no glitch exists (the
    transition is not logic-hazardous).
    """
    masks, events = _event_masks(lsop, start, end)
    k = len(events)
    keys: list[tuple[str, int]] = [("", 0)] * k
    for key, event in events.items():
        keys[event] = key
    plain = lsop.plain_cover()
    f_start = plain.evaluate(start)
    f_end = plain.evaluate(end)

    nstates = 1 << k
    out = bytearray(nstates)
    for s in range(nstates):
        for need_sw, need_un in masks:
            if (s & need_sw) == need_sw and not (s & need_un):
                out[s] = 1
                break

    stages: Optional[list[int]] = None
    if f_start == f_end:
        target = 1 if f_start else 0
        for s in range(nstates):
            if out[s] != target:
                stages = [s]
                break
    else:
        rising = not f_start
        mark = 1 if rising else 0
        seen = bytearray(nstates)
        src = [0] * nstates  # the subset of s that first showed ``mark``
        for s in range(nstates):
            if out[s] == mark:
                seen[s] = 1
                src[s] = s
            else:
                for e in range(k):
                    sub = s ^ (1 << e)
                    if s >> e & 1 and seen[sub]:
                        seen[s] = 1
                        src[s] = src[sub]
                        break
            if out[s] != mark and seen[s]:
                stages = [src[s], s]
                break
    if stages is None:
        return None

    schedule: list[tuple[str, int]] = []
    done = 0
    for stage in stages:
        add = stage & ~done
        for e in range(k):
            if add >> e & 1:
                schedule.append(keys[e])
        done |= stage
    for e in range(k):
        if not done >> e & 1:
            schedule.append(keys[e])
    return schedule


#: Event spacing vs gate delay: logic gates settle in ``2 * GATE_DELAY``
#: (AND then OR), far inside the ``SPACING`` between path switches, so
#: the output visits every scheduled lattice state.
SPACING = 1.0
GATE_DELAY = 0.01


def replay_witness(
    lsop: LabeledSop, witness: HazardWitness, output: str = "f"
) -> WitnessReplay:
    """Deterministically replay one witness on the event simulator.

    Builds the path-explicit netlist, programs per-path buffer delays to
    realize a glitching event order from :func:`glitch_schedule`, fires
    the burst with all changing inputs switching at t=0, and reports
    whether the output waveform shows more transitions than the ideal
    monotone response.
    """
    net, wires = witness_netlist(lsop, output)
    schedule = glitch_schedule(lsop, witness.start, witness.end) or []
    changing = witness.start ^ witness.end
    ordered = list(schedule)
    scheduled = set(ordered)
    # Wires of dropped products still switch physically; let them trail.
    for key in sorted(wires):
        name, __ = key
        var = lsop.index[name]
        if changing >> var & 1 and key not in scheduled:
            ordered.append(key)
    delays = {node.name: GATE_DELAY for node in net.gates()}
    for i, key in enumerate(ordered):
        delays[wires[key]] = SPACING * (i + 1)
    simulator = EventSimulator(net, delays)
    arrivals = {
        name: 0.0
        for i, name in enumerate(witness.names)
        if changing >> i & 1
    }
    waveforms = burst_response(
        simulator,
        witness.start_vector(),
        witness.end_vector(),
        arrival_times=arrivals,
    )
    wave = waveforms[output]
    expected = witness.expected_changes
    return WitnessReplay(
        witness=witness,
        glitched=wave.glitched(expected),
        changes=wave.change_count,
        expected=expected,
        waveform=wave,
        schedule=ordered,
        netlist=net,
    )


def verify_witness(lsop: LabeledSop, witness: HazardWitness) -> bool:
    """Does the witness burst really glitch this implementation?"""
    return replay_witness(lsop, witness).glitched


# ----------------------------------------------------------------------
# Materializing witnesses from section-4 records
# ----------------------------------------------------------------------

def _record_candidates(record) -> tuple[str, Iterable[tuple[int, int]]]:
    if isinstance(record, Static1Hazard):
        return KIND_STATIC1, _static1.witness_transitions(record)
    if isinstance(record, Static0Hazard):
        return KIND_STATIC0, _static0.witness_transitions(record)
    if isinstance(record, MicDynamicHazard):
        return KIND_MIC, _dynamic.witness_transitions(record)
    if isinstance(record, SicDynamicHazard):
        return KIND_SIC, _sic.witness_transitions(record)
    raise TypeError(f"not a hazard record: {record!r}")


def witness_for_record(
    record, analysis: "HazardAnalysis"
) -> Optional[HazardWitness]:
    """Materialize one confirmed witness burst for a hazard record.

    Candidate transitions come from the record's own analyzer module;
    each is confirmed on the event lattice before being returned, so a
    returned witness is guaranteed to replay as a glitch.  ``None``
    means no candidate confirmed (only possible for a record with no
    spanning transition, e.g. a point-sized cube).
    """
    lsop = analysis.lsop
    kind, candidates = _record_candidates(record)
    for start, end in candidates:
        if start == end:
            continue
        if transition_has_hazard(lsop, start, end):
            return HazardWitness(
                kind=kind,
                start=start,
                end=end,
                nvars=analysis.nvars,
                names=tuple(analysis.names),
                detail=record.describe(analysis.names),
            )
    return None


def analysis_witnesses(
    analysis: "HazardAnalysis", per_class: Optional[int] = None
) -> list[tuple[object, HazardWitness]]:
    """(record, witness) pairs for every hazard record of an analysis.

    ``per_class`` caps the number of witnessed records per hazard class
    (the library audit shows one exemplar per class; tests take all).
    Records whose candidates do not confirm are skipped.
    """
    pairs: list[tuple[object, HazardWitness]] = []
    for records in (
        analysis.static1,
        analysis.static0,
        analysis.mic_dynamic,
        analysis.sic_dynamic,
    ):
        emitted = 0
        for record in records:
            if per_class is not None and emitted >= per_class:
                break
            witness = witness_for_record(record, analysis)
            if witness is not None:
                pairs.append((record, witness))
                emitted += 1
    return pairs


def witness_for_verdict(
    verdict: TransitionVerdict, analysis: "HazardAnalysis"
) -> HazardWitness:
    """Witness for one exhaustive-oracle verdict (already confirmed)."""
    from ..boolean.cube import popcount

    if verdict.kind is TransitionKind.STATIC_1:
        kind = KIND_STATIC1
    elif verdict.kind is TransitionKind.STATIC_0:
        kind = KIND_STATIC0
    elif popcount(verdict.start ^ verdict.end) == 1:
        kind = KIND_SIC
    else:
        kind = KIND_MIC
    return HazardWitness(
        kind=kind,
        start=verdict.start,
        end=verdict.end,
        nvars=analysis.nvars,
        names=tuple(analysis.names),
        detail=_verdict_detail(kind, verdict, analysis),
    )


def _verdict_detail(
    kind: str, verdict: TransitionVerdict, analysis: "HazardAnalysis"
) -> str:
    """Best-effort link from an exhaustive verdict back to the inducing
    section-4 record (cube, cube pair, or vacuous term)."""
    from .transition import transition_space

    names = analysis.names
    space = transition_space(verdict.start, verdict.end, analysis.nvars)
    if kind == KIND_STATIC1:
        for hazard in analysis.static1:
            if hazard.transition.contains(space):
                return hazard.describe(names)
    elif kind == KIND_STATIC0:
        for hazard in analysis.static0:
            if hazard.condition.evaluate(verdict.start) or hazard.condition.evaluate(
                verdict.end
            ):
                return hazard.describe(names)
    elif kind == KIND_SIC:
        var = (verdict.start ^ verdict.end).bit_length() - 1
        for hazard in analysis.sic_dynamic:
            if hazard.var == var and (
                hazard.condition.evaluate(verdict.start)
                or hazard.condition.evaluate(verdict.end)
            ):
                return hazard.describe(names)
    else:
        for hazard in analysis.mic_dynamic:
            if space.contains(hazard.space):
                return hazard.describe(names)
        # Dynamic hazards that are merely the shadow of a static-1
        # hazard (Example 4.2.3) are characterized by the static-1
        # records and intentionally not re-reported by the m.i.c.
        # procedure — link the shadow explicitly.
        for hazard in analysis.static1:
            if hazard.transition.intersection(space) is not None:
                return f"shadow of {hazard.describe(names)} (Ex. 4.2.3)"
    witness = HazardWitness(
        kind=kind,
        start=verdict.start,
        end=verdict.end,
        nvars=analysis.nvars,
        names=tuple(names),
    )
    return f"exhaustive verdict for {witness.transition_string()}"
