"""Static-0 logic hazard analysis (paper section 4.1.2).

Static-0 hazards arise from *vacuous terms*: products of the
path-labelled SOP that contain a variable and its complement through
different reconvergent paths (e.g. ``x#0·x#1'·r``).  In steady state
such a term contributes nothing, but while ``x`` is in transit the two
paths can briefly both read true, pulsing the term — and the output —
high although the function is 0 on both sides of the change.

Detection (a subset of the s.i.c. dynamic detection, as the paper
notes) proceeds in two stages:

1. *candidates*: for each vacuous term with unifiable residual ``r``,
   the points where ``r`` holds and the function is 0 for both values
   of the reconverging variable;
2. *confirmation*: each candidate point is replayed on the event
   lattice — a pulse can be masked when another product shares the very
   path that raises it (the masking product then holds the output
   through the would-be glitch), so the algebraic condition alone
   over-approximates.

Only one variable's paths switch, so the lattice is tiny and the
confirmed result is exact.
"""

from __future__ import annotations

from ..boolean.cover import Cover
from ..boolean.cube import Cube
from ..boolean.paths import LabeledSop
from .types import Static0Hazard


def _candidate_conditions(lsop: LabeledSop) -> dict[int, list[tuple[Cube, Cover]]]:
    """Per variable: (residual, algebraic sensitization condition)."""
    plain = lsop.plain_cover()
    complement = plain.complement()
    nvars = lsop.nvars
    result: dict[int, list[tuple[Cube, Cover]]] = {}
    seen: set[tuple[int, Cube]] = set()
    for product in lsop.vacuous_products():
        for name in sorted(product.vacuous_variables()):
            var = lsop.index[name]
            residual = product.residual_cube((name,), lsop.index, nvars)
            if residual is None:
                # Vacuous in a second variable too: with that variable
                # fixed the term can never turn on through this one.
                continue
            key = (var, residual)
            if key in seen:
                continue
            seen.add(key)
            off_low = complement.cofactor_var(var, False)
            off_high = complement.cofactor_var(var, True)
            condition = (
                Cover([residual], nvars).intersect(off_low).intersect(off_high)
            )
            if condition.cubes:
                result.setdefault(var, []).append((residual, condition))
    return result


def find_static0_hazards(lsop: LabeledSop) -> list[Static0Hazard]:
    """All static-0 logic hazards, one record per reconverging variable.

    The record's ``condition`` holds exactly the confirmed sensitizing
    points (with the changing variable free).
    """
    from .multilevel import transition_has_hazard  # cycle-free at runtime

    nvars = lsop.nvars
    hazards: list[Static0Hazard] = []
    for var, candidates in sorted(_candidate_conditions(lsop).items()):
        bit = 1 << var
        confirmed: set[int] = set()
        checked: set[int] = set()
        for __, condition in candidates:
            for cube in condition:
                for point in cube.minterms():
                    low = point & ~bit
                    if low in checked:
                        continue
                    checked.add(low)
                    if transition_has_hazard(lsop, low, low | bit):
                        confirmed.add(low)
                        confirmed.add(low | bit)
        if confirmed:
            hazards.append(
                Static0Hazard(
                    var,
                    candidates[0][0],
                    Cover.from_minterms(sorted(confirmed), nvars),
                )
            )
    return hazards


def witness_transitions(hazard: Static0Hazard):
    """Candidate witness bursts for one static-0 hazard record.

    Every confirmed point of ``condition`` certifies the low→high burst
    of the reconverging variable (the direction the detector replayed on
    the event lattice): the vacuous term pulses while the output should
    rest at 0.
    """
    bit = 1 << hazard.var
    seen: set[int] = set()
    for cube in hazard.condition:
        for point in cube.minterms():
            low = point & ~bit
            if low in seen:
                continue
            seen.add(low)
            yield low, low | bit


def exhibits_static0(lsop: LabeledSop, var: int, condition: Cover) -> bool:
    """Does the implementation glitch low→high→low at *every* point of
    ``condition`` while ``var`` changes?

    Used by the matching filter: a library cell's static-0 hazard is
    present in the subnetwork iff the subnetwork can pulse at each
    sensitizing point of the cell's hazard.
    """
    own = find_static0_hazards(lsop)
    pulses = [h.condition for h in own if h.var == var]
    if not pulses:
        return False
    union = Cover.empty(lsop.nvars)
    for cover in pulses:
        union = union.union(cover)
    return union.contains_cover(condition)
