"""Static-1 logic hazard analysis (paper section 4.1.1).

A static-1 logic hazard exists for a transition α→β with f ≡ 1 over the
transition space exactly when no single implementation cube contains the
whole space — momentarily every AND gate can be off.

``find_static1_hazards`` is the paper's bit-vector algorithm: expand
non-prime cubes (flagging missing primes), generate all cube adjacencies
with the CONFLICTS trick, and flag every adjacency cube that is not
contained in a single implementation cube.

``find_static1_hazards_complete`` is the exhaustive characterization —
the *uncovered prime implicants*.  Because "covered by one cube" is
monotone under cube containment, the set of hazardous transition
subcubes is upward closed within the implicants of f, so a hazard exists
iff some prime is uncovered; the uncovered primes are the maximal
hazardous transitions.  The test-suite cross-checks both detectors.
"""

from __future__ import annotations

from ..boolean.cover import Cover
from ..boolean.cube import Cube
from .types import Static1Hazard


def find_static1_hazards(cover: Cover) -> list[Static1Hazard]:
    """The paper's ``static_1_analysis`` procedure.

    Works on the (deduplicated) SOP implementation.  Returns hazard
    records whose ``transition`` cubes are ON-set subcubes not held by
    any single gate.
    """
    expr = cover.dedup()
    implementation = expr  # coverage checks are against the real gates
    hazards: list[Static1Hazard] = []
    seen: set[Cube] = set()

    def flag(cube: Cube) -> None:
        if cube not in seen:
            seen.add(cube)
            hazards.append(Static1Hazard(cube))

    # Any uncovered non-primes represent hazards — look at those first.
    work = list(expr.cubes)
    for cube in expr.cubes:
        if not expr.is_prime(cube):
            prime = expr.expand_to_prime(cube)
            if not implementation.single_cube_contains(prime):
                flag(prime)
            if prime not in work:
                work.append(prime)

    # Generate all cube adjacencies (CONFLICTS has exactly one bit set),
    # then flag every adjacency not covered by a single gate.
    for i, cube1 in enumerate(work):
        for cube2 in work[i + 1 :]:
            adjacency = cube1.consensus(cube2)
            if adjacency is None:
                continue
            if not implementation.single_cube_contains(adjacency):
                flag(adjacency)
    return hazards


def find_sic_static1_hazards(cover: Cover) -> list[Static1Hazard]:
    """Single-input-change static-1 hazards only.

    The simpler check from the paper: every cube adjacency must be
    covered by some single cube of the expression (no prime expansion —
    s.i.c. transitions in/out of a non-prime cube stay within some other
    cube or are cube adjacencies).
    """
    expr = cover.dedup()
    hazards: list[Static1Hazard] = []
    seen: set[Cube] = set()
    for i, cube1 in enumerate(expr.cubes):
        for cube2 in expr.cubes[i + 1 :]:
            adjacency = cube1.consensus(cube2)
            if adjacency is None:
                continue
            if not expr.single_cube_contains(adjacency):
                if adjacency not in seen:
                    seen.add(adjacency)
                    hazards.append(Static1Hazard(adjacency))
    return hazards


def find_static1_hazards_complete(cover: Cover) -> list[Static1Hazard]:
    """Exhaustive static-1 characterization: the uncovered primes."""
    return [
        Static1Hazard(prime)
        for prime in cover.all_primes()
        if not cover.single_cube_contains(prime)
    ]


def has_static1_hazard(cover: Cover) -> bool:
    """Existence predicate (complete): some prime is uncovered."""
    return any(
        not cover.single_cube_contains(prime) for prime in cover.all_primes()
    )


def exhibits_static1(cover: Cover, transition: Cube) -> bool:
    """Does this implementation exhibit a static-1 hazard over the cube?

    ``transition`` must be an implicant of the function; the hazard is
    present exactly when no single cube of the implementation holds it.
    """
    return not cover.single_cube_contains(transition)


def witness_transitions(hazard: Static1Hazard):
    """Candidate witness bursts for one static-1 hazard record.

    The burst spanning the whole hazardous ON-subcube (all free
    variables of the transition cube change at once) is the canonical
    exhibit: during it every implementation cube can be momentarily off.
    A point-sized cube spans no transition and yields nothing.
    """
    cube = hazard.transition
    free = cube.free_vars
    if not free:
        return
    yield cube.phase, cube.phase | free
    yield cube.phase | free, cube.phase


def static1_subset(inner: Cover, outer: Cover) -> bool:
    """Are ``inner``'s static-1 hazards a subset of ``outer``'s?

    Both covers must implement the same function.  Hazardous transitions
    of ``inner`` ⊆ those of ``outer`` iff every transition *safe* in
    ``outer`` is safe in ``inner`` — i.e. every cube of ``outer`` is
    contained in a single cube of ``inner``.  (Exact; see module doc.)
    """
    return all(inner.single_cube_contains(cube) for cube in outer.dedup())
