"""Transition spaces and function-hazard tests.

Definition 4.2 of the paper: the transition space ``T[α, β]`` is the
smallest Boolean subspace containing both endpoints — the supercube of
the two minterms.  During a generalized fundamental-mode input burst the
inputs trace an arbitrary monotone path from α to β inside T.

Function hazards are a property of the function alone; the matching
filter ignores them, but the dynamic-hazard detector needs to recognize
*function-hazard-free* (FHF) transition spaces (Theorem 4.1, condition 1).
"""

from __future__ import annotations

from typing import Iterator

from ..boolean.cover import Cover
from ..boolean.cube import Cube


def transition_space(start: int, end: int, nvars: int) -> Cube:
    """T[start, end]: the supercube of the two minterms."""
    return Cube.minterm(start, nvars).supercube(Cube.minterm(end, nvars))


def is_static_transition(cover: Cover, start: int, end: int) -> bool:
    return cover.evaluate(start) == cover.evaluate(end)


def static_fhf(cover: Cover, space: Cube, value: bool) -> bool:
    """Is a static transition over ``space`` function-hazard-free?

    For value 1: f must be identically 1 on the space (the space is an
    implicant).  For value 0: no cube may intersect the space.
    """
    if value:
        return cover.contains_cube(space)
    return not any(cube.intersects(space) for cube in cover)


def dynamic_fhf(cover: Cover, start: int, end: int) -> bool:
    """Is the dynamic transition start→end function-hazard-free?

    f(start) ≠ f(end) is assumed.  The transition is FHF iff the
    function changes monotonically along *every* monotone input path —
    equivalently, orienting so f(start) = 0 and f(end) = 1, every ON
    point p inside the space satisfies f ≡ 1 over T[p, end] (once the
    function has risen it may never fall again on the way to ``end``).
    """
    f_start = cover.evaluate(start)
    f_end = cover.evaluate(end)
    if f_start == f_end:
        raise ValueError("transition is not dynamic")
    if f_start:
        start, end = end, start
    nvars = cover.nvars
    space = transition_space(start, end, nvars)
    end_cube = Cube.minterm(end, nvars)
    for point in space.minterms():
        if cover.evaluate(point):
            tail = Cube.minterm(point, nvars).supercube(end_cube)
            if not cover.contains_cube(tail):
                return False
    return True


def is_fhf(cover: Cover, start: int, end: int) -> bool:
    """Function-hazard-freedom of an arbitrary transition."""
    if cover.evaluate(start) == cover.evaluate(end):
        value = cover.evaluate(start)
        return static_fhf(cover, transition_space(start, end, cover.nvars), value)
    return dynamic_fhf(cover, start, end)


def monotone_paths(start: int, end: int) -> Iterator[list[int]]:
    """Enumerate every monotone input path from ``start`` to ``end``.

    Each changing variable flips exactly once; the orders are all
    permutations of the changing set.  Exponential — oracle use only.
    """
    from itertools import permutations

    diff = [i for i in range(max(start, end).bit_length() + 1) if (start ^ end) >> i & 1]
    for order in permutations(diff):
        path = [start]
        point = start
        for var in order:
            point ^= 1 << var
            path.append(point)
        yield path
