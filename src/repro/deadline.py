"""Cooperative deadlines for long-running mapping work.

A :class:`Deadline` is a wall-clock budget that cooperating code checks
at natural preemption points — the mapper tests it before covering each
cone and before building the mapped netlist, and the fault-injection
hooks honour it while simulating hangs.  Python cannot preempt a
running computation, so this is the portable cancellation mechanism the
batch engine relies on for *every* backend; the process backend adds a
hard kill-and-respawn backstop on top for code that never reaches a
checkpoint.

Deadlines are cheap (one monotonic clock read per check) and are plain
per-run objects: they hold no global state and are never shared between
jobs.
"""

from __future__ import annotations

import time
from typing import Optional


class DeadlineExceeded(RuntimeError):
    """A cooperative checkpoint found the job's time budget exhausted.

    Carries the checkpoint ``site`` so failure reports can say *where*
    the budget ran out (``cover.cone``, ``netlist.build``, …).  ``args``
    mirrors the constructor arguments so the exception pickles cleanly
    out of process-pool workers.
    """

    def __init__(self, site: str, seconds: float) -> None:
        super().__init__(site, seconds)
        self.site = site
        self.seconds = seconds

    def __str__(self) -> str:
        return f"deadline of {self.seconds:.3f}s exceeded at {self.site!r}"


class Deadline:
    """A monotonic-clock budget of ``seconds`` starting at construction."""

    __slots__ = ("seconds", "_expires")

    #: Sleep-slice granularity of :meth:`sleep` (seconds).
    SLICE = 0.01

    def __init__(self, seconds: float) -> None:
        if seconds <= 0:
            raise ValueError("deadline must be a positive number of seconds")
        self.seconds = float(seconds)
        self._expires = time.monotonic() + self.seconds

    def remaining(self) -> float:
        """Seconds left (negative once expired)."""
        return self._expires - time.monotonic()

    def expired(self) -> bool:
        return self.remaining() <= 0

    def check(self, site: str) -> None:
        """Raise :class:`DeadlineExceeded` if the budget is exhausted."""
        if self.expired():
            raise DeadlineExceeded(site, self.seconds)

    def sleep(self, duration: float, site: str = "sleep") -> None:
        """Sleep up to ``duration``, checking the budget between slices.

        Raises :class:`DeadlineExceeded` as soon as the budget runs out,
        so an injected hang longer than the deadline wakes up *at* the
        deadline rather than after the full hang.
        """
        end = time.monotonic() + duration
        while True:
            self.check(site)
            left = end - time.monotonic()
            if left <= 0:
                return
            time.sleep(min(self.SLICE, left, max(self.remaining(), 0.0)))


def checked_sleep(
    duration: float, deadline: Optional[Deadline], site: str = "sleep"
) -> None:
    """Sleep honouring ``deadline`` when one is active (else plain sleep)."""
    if deadline is None:
        time.sleep(duration)
    else:
        deadline.sleep(duration, site)
