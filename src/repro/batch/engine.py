"""The fault-tolerant batch mapping engine behind ``repro batch``.

One coordinator loop schedules :class:`~repro.batch.jobs.BatchJob`
specs onto an :class:`~repro.batch.backends.ExecutorBackend` and wraps
every job in the robustness layer the catalog-scale workloads need:

* **deadlines** — each job runs under a cooperative
  :class:`~repro.deadline.Deadline`; a job past its budget degrades to
  the trivial depth-1 cover inside the worker (recorded as
  ``fallback="trivial-cover"``), and on the process backend a hard
  ``4× deadline`` backstop kills and respawns the pool for workers that
  never reach a checkpoint;
* **retry with exponential backoff** — transient failures (injected
  faults, corrupted result digests, broken pools) are retried up to
  ``retries`` times, waiting ``backoff · 2^(attempt-1)`` between tries;
* **crash isolation** — a dead worker process breaks the pool; the
  engine respawns it and re-runs the in-flight jobs *one at a time* so
  the poison job identifies itself by crashing alone, fails on its own
  budget, and never takes a neighbour down with it;
* **digest verification** — every worker result is re-hashed on the
  coordinator; a mismatch is a transient corrupt-result failure;
* **checkpoint journal** — every settled job is appended (and fsynced)
  to a ``repro-batch/v1`` JSONL journal; ``resume=True`` replays it and
  skips jobs whose spec digest, status, and artifact digest all verify.

Results are returned in job-spec order regardless of backend, worker
count, retries, or completion order, and each successful result's BLIF
text is byte-identical to a sequential
:func:`~repro.mapping.mapper.map_network` run of the same spec.

Observability: the run publishes ``batch.*`` counters/histograms into
the supplied :class:`~repro.obs.metrics.MetricsRegistry` and records a
``batch`` span with one child span per job attempt; per-job explain
logs (``BatchJob.explain``) land next to the netlist artifacts.
"""

from __future__ import annotations

import json
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, Future, wait
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Optional, Sequence, Union

from ..deadline import DeadlineExceeded
from ..library import anncache
from ..obs import log as obs_log
from ..obs.export import BENCH_SCHEMA
from ..obs.metrics import MetricsRegistry
from ..obs.tracer import NULL_TRACER, SpanContext, Tracer
from ..testing.faults import FaultInjected, FaultPlan
from .backends import BrokenExecutor, ExecutorBackend, create_backend
from .jobs import BatchJob, text_digest
from .journal import BATCH_SCHEMA, JournalWriter, file_digest, read_journal

#: Multiplier on the cooperative deadline giving the process backend's
#: hard kill-and-respawn backstop.
HARD_TIMEOUT_FACTOR = 4.0
#: Coordinator poll tick while waiting on in-flight futures.
_TICK = 0.05


class BatchConfigError(ValueError):
    """The batch run was configured inconsistently."""


@dataclass
class BatchConfig:
    """Engine knobs (everything the CLI's ``repro batch`` flags map to)."""

    backend: str = "serial"
    workers: int = 1
    deadline: Optional[float] = None
    retries: int = 0
    backoff: float = 0.5
    cache_dir: anncache.CacheDir = None
    journal: Optional[Union[str, Path]] = None
    output_dir: Optional[Union[str, Path]] = None
    resume: bool = False
    fault_plan: Optional[FaultPlan] = None
    tracer: Optional[Tracer] = None
    metrics: Optional[MetricsRegistry] = None
    progress: Optional[Callable[[dict], None]] = None
    #: Serve byte-identical stored responses from the content-addressed
    #: result cache (a deployment knob like ``cache_dir`` — job specs
    #: and resume identity never see it).
    result_cache: bool = False

    def resolved_workers(self) -> int:
        import os

        if self.workers == 0:
            return os.cpu_count() or 1
        return max(1, self.workers)


@dataclass
class _JobState:
    """Coordinator-side bookkeeping for one job."""

    job: BatchJob
    index: int
    attempt: int = 0
    next_eligible: float = 0.0
    backoffs: list[float] = field(default_factory=list)
    submitted_at: float = 0.0
    span: Optional[object] = None
    record: Optional[dict] = None


@dataclass
class BatchReport:
    """What a batch run produced, in job-spec order."""

    results: list[dict]
    backend: str
    workers: int
    elapsed: float
    skipped: int = 0
    pool_breaks: int = 0
    journal: Optional[Path] = None
    output_dir: Optional[Path] = None

    def by_status(self, status: str) -> list[dict]:
        return [r for r in self.results if r.get("status") == status]

    @property
    def ok(self) -> bool:
        return all(
            r.get("status") == "ok"
            and r.get("verify", {}).get("ok", True)
            for r in self.results
        )

    def counts(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for record in self.results:
            status = str(record.get("status"))
            counts[status] = counts.get(status, 0) + 1
        counts["fallback"] = sum(
            1 for r in self.results if r.get("fallback")
        )
        counts["skipped"] = self.skipped
        return counts

    def to_bench_snapshot(self, max_depth: int = 5) -> dict:
        """A ``repro-bench-mapping/v1`` view of a single-library run.

        Lets ``benchmarks/check_regression.py --subset`` gate batch
        quality and wall-time against the committed ``repro perf``
        baseline; only valid when every job targets the same library
        with the sync/async default flow.
        """
        libraries = {r["job_id"].split("@", 1)[1] for r in self.results}
        if len(libraries) != 1:
            raise BatchConfigError(
                "bench snapshots need a single-library batch; got "
                f"{sorted(libraries)}"
            )
        rows = {}
        annotate = 0.0
        for record in self.results:
            if record.get("status") != "ok":
                continue
            name = record["job_id"].split("@", 1)[0]
            entry = {
                "map_seconds": record.get("map_seconds", 0.0),
                "area": record.get("area"),
                "delay": record.get("delay"),
                "cells": record.get("cells"),
                "cell_usage": record.get("cell_usage"),
                "cones": record.get("cones"),
                "matches": record.get("matches"),
                "filter_invocations": record.get("filter_invocations"),
                "cache": {"hits": 0, "misses": 0, "hit_rate": 0.0},
            }
            if "verify" in record:
                entry["verify"] = record["verify"]
            rows[name] = entry
            annotate = max(annotate, record.get("annotate_seconds", 0.0))
        return {
            "schema": BENCH_SCHEMA,
            "library": next(iter(libraries)),
            # Inner per-job mapping is single-threaded regardless of the
            # batch fan-out, which is what this field describes.
            "workers": 1,
            "max_depth": max_depth,
            "annotate_seconds": round(annotate, 4),
            "annotate_source": "batch",
            "batch_backend": self.backend,
            "batch_workers": self.workers,
            "benchmarks": rows,
        }


class _Transient(Exception):
    """Internal: a retryable attempt failure with a reason tag."""

    def __init__(self, reason: str, status: str = "failed") -> None:
        super().__init__(reason)
        self.reason = reason
        self.status = status


def run_batch(
    jobs: Sequence[BatchJob], config: Optional[BatchConfig] = None
) -> BatchReport:
    """Run a catalog of jobs through the fault-tolerance layer."""
    config = config or BatchConfig()
    engine = _Engine(list(jobs), config)
    return engine.run()


class _Engine:
    def __init__(self, jobs: list[BatchJob], config: BatchConfig) -> None:
        ids = [job.job_id for job in jobs]
        if len(set(ids)) != len(ids):
            dupes = sorted({i for i in ids if ids.count(i) > 1})
            raise BatchConfigError(f"duplicate job ids: {dupes}")
        self.jobs = jobs
        self.config = config
        self.metrics = (
            config.metrics if config.metrics is not None else MetricsRegistry()
        )
        self.tracer = config.tracer or NULL_TRACER
        self.workers = config.resolved_workers()
        self.backend: ExecutorBackend = create_backend(
            config.backend, self.workers
        )
        self.output_dir = (
            Path(config.output_dir) if config.output_dir else None
        )
        journal = config.journal
        if journal is None and self.output_dir is not None:
            journal = self.output_dir / "batch_journal.jsonl"
        self.journal_path = Path(journal) if journal else None
        self.writer: Optional[JournalWriter] = None
        self.states = [
            _JobState(job=job, index=index) for index, job in enumerate(jobs)
        ]
        self.records: dict[int, dict] = {}
        self.pending: deque[_JobState] = deque()
        self.skipped = 0
        self.pool_breaks = 0
        self._span = None

    # -- journal / resume ------------------------------------------------
    def _artifact_ok(self, job: BatchJob, record: dict) -> bool:
        if self.output_dir is None or not record.get("artifact"):
            return True
        path = self.output_dir / record["artifact"]
        return path.exists() and file_digest(path) == record.get("digest")

    def _resume_skips(self) -> None:
        if not (
            self.config.resume
            and self.journal_path is not None
            and self.journal_path.exists()
        ):
            return
        _, previous = read_journal(self.journal_path)
        for state in self.states:
            record = previous.get(state.job.job_id)
            if (
                record is not None
                and record.get("status") == "ok"
                and record.get("spec") == state.job.spec_digest()
                and self._artifact_ok(state.job, record)
            ):
                self.records[state.index] = dict(record, skipped=True)
                self.skipped += 1
                self.metrics.counter("batch.jobs_skipped").inc()
                self._progress(self.records[state.index])

    def _open_journal(self) -> None:
        if self.journal_path is None:
            return
        self.writer = JournalWriter(self.journal_path)
        fresh = not (self.config.resume and self.journal_path.exists())
        if fresh:
            self.journal_path.unlink(missing_ok=True)
            self.writer.write_header(
                jobs={job.job_id: job.spec_digest() for job in self.jobs},
                config={
                    "backend": self.config.backend,
                    "workers": self.workers,
                    "deadline": self.config.deadline,
                    "retries": self.config.retries,
                    "backoff": self.config.backoff,
                },
            )
        else:
            self.writer.repair_tail()
            self.writer.write_resume(
                skipped=self.skipped, rerun=len(self.jobs) - self.skipped
            )

    # -- submission ------------------------------------------------------
    def _submit(self, state: _JobState, retry: bool = True) -> Future:
        if retry:
            state.attempt += 1
        state.submitted_at = time.monotonic()
        state.span = self.tracer.start_span(
            "batch_job",
            parent=self._span,
            job=state.job.job_id,
            attempt=state.attempt,
        )
        # With tracing on, hand the worker this run's trace_id and the
        # batch_job span as remote parent; the worker's span tree comes
        # back in the result payload and is grafted under that span.
        trace_context = (
            SpanContext(self.tracer.trace_id, state.span.span_id)
            if self.tracer.trace_id is not None
            else None
        )
        return self.backend.submit(
            state.job,
            attempt=state.attempt,
            deadline_seconds=self.config.deadline,
            cache_dir=self.config.cache_dir,
            fault_plan=self.config.fault_plan,
            trace_context=trace_context,
            result_cache=self.config.result_cache,
            # In-process workers share the run's registry (same policy
            # as the service daemon), so worker-side telemetry — the
            # cache.result.* counters above all — lands in one place;
            # process-pool workers cannot share an in-memory registry.
            metrics=(
                self.metrics if self.backend.name != "processes" else None
            ),
        )

    def _finish_span(self, state: _JobState, status: str) -> None:
        if state.span is not None:
            state.span.set_attr(status=status)
            self.tracer.finish_span(state.span)
            state.span = None

    def _graft_worker_trace(self, span, trace: Optional[dict]) -> None:
        """Re-parent a worker's shipped span tree under its job span."""
        if trace is None or span is None or self.tracer.trace_id is None:
            return
        grafted = self.tracer.graft(trace, parent=span)
        self.metrics.counter("batch.spans_grafted").inc(
            sum(1 for root in grafted for _ in root.walk())
        )

    def _event(self, state: Optional[_JobState], name: str, **fields) -> None:
        """Emit one engine event, correlated to the batch trace."""
        if not obs_log.enabled():
            return
        span = None
        if state is not None and state.span is not None:
            span = state.span
        elif self._span is not None:
            span = self._span
        obs_log.event(
            "repro.batch",
            name,
            trace_id=self.tracer.trace_id,
            span_id=getattr(span, "span_id", None) or None,
            job_id=state.job.job_id if state is not None else None,
            **fields,
        )

    # -- settlement ------------------------------------------------------
    def _settle_success(self, state: _JobState, payload: dict) -> None:
        record = dict(payload)
        blif = record.pop("blif", "")
        explain = record.pop("explain", None)
        trace = record.pop("trace", None)
        record["attempts"] = state.attempt
        record["backoff_seconds"] = list(state.backoffs)
        if record.get("fallback"):
            self.metrics.counter("batch.jobs_fallback").inc()
            self.metrics.counter("batch.deadline_hits").inc()
            self._event(
                state, "job.fallback",
                fallback=record["fallback"],
                deadline_site=record.get("deadline_site"),
            )
        if self.output_dir is not None:
            self.output_dir.mkdir(parents=True, exist_ok=True)
            artifact = state.job.artifact_name()
            (self.output_dir / artifact).write_text(blif)
            record["artifact"] = artifact
            if explain is not None:
                explain_name = artifact.replace(".blif", "_explain.json")
                (self.output_dir / explain_name).write_text(
                    json.dumps(explain, indent=2) + "\n"
                )
                record["explain_artifact"] = explain_name
        record["blif"] = blif  # in-memory consumers get the full text
        if explain is not None:
            record["explain"] = explain
        self.records[state.index] = record
        self.metrics.counter("batch.jobs_ok").inc()
        self.metrics.histogram("batch.job_seconds").observe(
            record.get("worker_seconds", 0.0)
        )
        self.metrics.histogram("batch.attempts").observe(state.attempt)
        self._event(
            state, "job.ok",
            attempts=state.attempt,
            worker_seconds=record.get("worker_seconds"),
            area=record.get("area"),
        )
        span = state.span
        self._finish_span(state, "ok")
        self._graft_worker_trace(span, trace)
        self._journal_result(record)
        self._progress(record)

    def _settle_failure(
        self, state: _JobState, status: str, error: str
    ) -> None:
        record = {
            "job_id": state.job.job_id,
            "spec": state.job.spec_digest(),
            "status": status,
            "error": error,
            "attempts": state.attempt,
            "backoff_seconds": list(state.backoffs),
        }
        self.records[state.index] = record
        self.metrics.counter("batch.jobs_failed").inc()
        self.metrics.histogram("batch.attempts").observe(state.attempt)
        self._event(
            state, "job.failed", level="warning",
            status=status, error=error, attempts=state.attempt,
        )
        self._finish_span(state, status)
        self._journal_result(record)
        self._progress(record)

    def _journal_result(self, record: dict) -> None:
        if self.writer is not None:
            slim = {
                key: value
                for key, value in record.items()
                if key not in ("blif", "explain", "cell_usage", "verify")
            }
            self.writer.write_result(slim)

    def _progress(self, record: dict) -> None:
        if self.config.progress is not None:
            self.config.progress(record)

    def _retry_or_fail(self, state: _JobState, failure: _Transient) -> bool:
        """Back the job off for another attempt; False when exhausted."""
        if state.attempt > self.config.retries:
            self._settle_failure(
                state,
                failure.status,
                f"{failure.reason} (attempts exhausted: {state.attempt})",
            )
            return False
        delay = self.config.backoff * (2 ** (state.attempt - 1))
        state.backoffs.append(delay)
        state.next_eligible = time.monotonic() + delay
        self.metrics.counter("batch.retries").inc()
        self._event(
            state, "job.retry", level="warning",
            attempt=state.attempt, reason=failure.reason,
            backoff_seconds=round(delay, 4),
        )
        self._finish_span(state, f"retry:{failure.reason}")
        return True

    def _classify(self, state: _JobState, future: Future) -> None:
        """Settle one completed future (success, retry, or failure)."""
        exc = future.exception()
        if exc is None:
            payload = future.result()
            if text_digest(payload.get("blif", "")) != payload.get("digest"):
                self.metrics.counter("batch.corrupt_results").inc()
                if self._retry_or_fail(
                    state, _Transient("corrupted result digest")
                ):
                    self.pending.append(state)
                return
            self._settle_success(state, payload)
        elif isinstance(exc, FaultInjected):
            if self._retry_or_fail(state, _Transient(f"transient: {exc}")):
                self.pending.append(state)
        elif isinstance(exc, DeadlineExceeded):
            # The worker normally degrades to the trivial cover itself;
            # reaching here means even the fallback overran.
            self._settle_failure(state, "timeout", str(exc))
        else:
            self._settle_failure(
                state, "failed", f"{type(exc).__name__}: {exc}"
            )

    # -- crash isolation -------------------------------------------------
    def _isolate_crash(self, survivors: list[_JobState]) -> None:
        """Re-run the in-flight jobs of a broken pool one at a time.

        Alone in a fresh pool, the poison job identifies itself by
        breaking the pool again — only then does it burn an attempt;
        innocent neighbours re-run under their original attempt number
        and budget.
        """
        self.pool_breaks += 1
        self.metrics.counter("batch.pool_breaks").inc()
        self._event(
            None, "batch.quarantine", level="warning",
            jobs=[s.job.job_id for s in survivors],
        )
        self.backend.restart()
        for state in sorted(survivors, key=lambda s: s.index):
            self._finish_span(state, "pool-break")
            future = self._submit(state, retry=False)
            (done,), _ = wait([future])
            crash = isinstance(done.exception(), BrokenExecutor)
            if not crash:
                self._classify(state, done)
                continue
            self.pool_breaks += 1
            self.metrics.counter("batch.pool_breaks").inc()
            self.backend.restart()
            if self._retry_or_fail(
                state,
                _Transient("worker process died", status="crashed"),
            ):
                self.pending.append(state)

    # -- main loop -------------------------------------------------------
    def run(self) -> BatchReport:
        started = time.perf_counter()
        self.metrics.gauge("batch.backend").set(self.backend.name)
        self.metrics.gauge("batch.workers").set(self.workers)
        self.metrics.counter("batch.jobs").inc(len(self.jobs))
        self._span = self.tracer.start_span(
            "batch",
            backend=self.backend.name,
            workers=self.workers,
            jobs=len(self.jobs),
        )
        try:
            self._resume_skips()
            self._open_journal()
            self.pending: deque[_JobState] = deque(
                s for s in self.states if s.index not in self.records
            )
            self.backend.start()
            inflight: dict[Future, _JobState] = {}
            hard_timeout = (
                self.config.deadline * HARD_TIMEOUT_FACTOR
                if self.config.deadline is not None
                and self.backend.supports_crash_isolation
                else None
            )
            while self.pending or inflight:
                now = time.monotonic()
                # Submit every eligible job the pool has room for, in
                # spec order (determinism of the *schedule*; results are
                # ordered by index regardless).
                eligible = [
                    s for s in self.pending if s.next_eligible <= now
                ]
                for state in sorted(eligible, key=lambda s: s.index):
                    if len(inflight) >= self.workers:
                        break
                    self.pending.remove(state)
                    inflight[self._submit(state)] = state

                if not inflight:
                    wake = min(s.next_eligible for s in self.pending)
                    time.sleep(max(0.0, min(wake - now, 1.0)))
                    continue

                done, _ = wait(
                    inflight, timeout=_TICK, return_when=FIRST_COMPLETED
                )
                broken = any(
                    isinstance(f.exception(), BrokenExecutor) for f in done
                )
                if broken:
                    # Keep work that finished before the pool died;
                    # everything else goes through crash isolation.
                    survivors = []
                    for future in list(inflight):
                        state = inflight.pop(future)
                        if future.done() and not isinstance(
                            future.exception(), BrokenExecutor
                        ):
                            self._classify(state, future)
                        else:
                            survivors.append(state)
                    self._isolate_crash(survivors)
                    continue
                for future in done:
                    state = inflight.pop(future)
                    self._classify(state, future)
                if hard_timeout is not None and not done:
                    overdue = {
                        f: s
                        for f, s in inflight.items()
                        if now - s.submitted_at > hard_timeout
                    }
                    if overdue:  # pragma: no cover - backstop path
                        survivors = [
                            s
                            for f, s in inflight.items()
                            if f not in overdue
                        ]
                        for state in overdue.values():
                            if self._retry_or_fail(
                                state,
                                _Transient(
                                    "hard deadline exceeded", status="timeout"
                                ),
                            ):
                                self.pending.append(state)
                        inflight.clear()
                        self.backend.restart()
                        for state in survivors:
                            self._finish_span(state, "pool-restart")
                            state.next_eligible = 0.0
                            self.pending.append(state)
        finally:
            self.backend.shutdown()
            self.tracer.finish_span(self._span)

        elapsed = time.perf_counter() - started
        self.metrics.gauge("batch.elapsed_seconds").set(round(elapsed, 4))
        results = [self.records[index] for index in range(len(self.jobs))]
        if obs_log.enabled():
            counts: dict[str, int] = {}
            for record in results:
                status = str(record.get("status"))
                counts[status] = counts.get(status, 0) + 1
            obs_log.event(
                "repro.batch",
                "batch.done",
                trace_id=self.tracer.trace_id,
                span_id=getattr(self._span, "span_id", None) or None,
                jobs=len(self.jobs),
                counts=counts,
                elapsed_seconds=round(elapsed, 4),
                backend=self.backend.name,
                workers=self.workers,
            )
        return BatchReport(
            results=results,
            backend=self.backend.name,
            workers=self.workers,
            elapsed=elapsed,
            skipped=self.skipped,
            pool_breaks=self.pool_breaks,
            journal=self.journal_path,
            output_dir=self.output_dir,
        )
