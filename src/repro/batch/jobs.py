"""Picklable batch job specs and the worker function that runs them.

A :class:`BatchJob` is plain data — design name, library name, and the
mapping knobs — so it crosses process boundaries untouched; the worker
(:func:`execute_job`) rebuilds the heavyweight objects on its side of
the fence by routing the job through the :mod:`repro.api` facade
(:func:`repro.api.facade.execute_map`), the same execution path the CLI
and the HTTP service use.

The job's option fields are exactly the batch-carried subset of the
``repro-api/v1`` schema (:data:`repro.api.schema.BATCH_OPTION_NAMES`)
— a new mapping option is declared once in ``repro.api`` and flows to
job specs, CLI flags, and service payloads from there; a guard test
(``tests/service/test_api.py``) pins the correspondence.

Determinism contract: a worker maps through the facade and serializes
the result with the same BLIF writer the CLI uses, so for a given job
spec the returned BLIF text — and hence its SHA-256 digest — is
byte-identical across backends, worker counts, attempt numbers, and
processes.  The engine's digest verification and the checkpoint
journal both lean on that.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import asdict, dataclass
from typing import Optional

from ..api.facade import (
    FALLBACK_DEPTH,  # noqa: F401  (re-exported; the engine documents it)
    execute_map,
    netlist_blif,  # noqa: F401  (re-exported for tests and callers)
    shared_library,
    text_digest,
)
from ..api.schema import BATCH_OPTION_NAMES, ApiError, MapRequest, MapResponse
from ..library import anncache
from ..library.library import Library
from ..obs import log as obs_log
from ..obs.tracer import SpanContext, Tracer
from ..testing import faults
from ..testing.faults import FaultPlan


@dataclass(frozen=True)
class BatchJob:
    """One (design, library, options) mapping job — pure picklable data."""

    design: str
    library: str
    mode: str = "async"
    max_depth: int = 5
    max_inputs: int = 8
    objective: str = "area"
    filter_mode: str = "exact"
    verify: bool = False
    explain: bool = False

    def __post_init__(self) -> None:
        # Delegate validation to the repro-api/v1 schema — one rulebook.
        try:
            self.to_request()
        except ApiError as exc:
            raise ValueError(str(exc)) from exc

    @classmethod
    def from_request(cls, request: MapRequest) -> "BatchJob":
        """Derive a job spec from a ``repro-api/v1`` map request."""
        if request.design is None:
            raise ApiError("batch jobs need catalog designs, not inline networks")
        if request.dont_cares:
            raise ApiError("batch jobs do not support hazard don't-cares")
        values = {
            name: getattr(request, name) for name in BATCH_OPTION_NAMES
        }
        return cls(
            design=request.design,
            library=request.library,
            verify=request.verify,
            explain=request.explain,
            **values,
        )

    def to_request(
        self, deadline_seconds: Optional[float] = None
    ) -> MapRequest:
        """The ``repro-api/v1`` request this job executes."""
        values = {name: getattr(self, name) for name in BATCH_OPTION_NAMES}
        return MapRequest(
            library=self.library,
            design=self.design,
            verify=self.verify,
            explain=self.explain,
            deadline_seconds=deadline_seconds,
            **values,
        )

    @property
    def job_id(self) -> str:
        """Human-readable identity used in journals, logs, and matching."""
        suffix = "" if self.mode == "async" else f"+{self.mode}"
        return f"{self.design}@{self.library}{suffix}"

    def spec_digest(self) -> str:
        """Hash of every result-affecting field (resume compares this)."""
        payload = "|".join(
            f"{key}={value}" for key, value in sorted(asdict(self).items())
        )
        return hashlib.sha256(payload.encode()).hexdigest()[:16]

    def artifact_name(self) -> str:
        """The BLIF filename this job writes under the output directory."""
        stem = self.job_id.replace("@", "__").replace("+", "_")
        return f"{stem}.blif"


def _annotated_library(name: str, cache_dir: anncache.CacheDir) -> Library:
    """Worker-process-local warm library (annotated on first mapping)."""
    return shared_library(name, cache_dir)


def _result_payload(job: BatchJob, response: MapResponse) -> dict:
    """The worker's plain-dict result, from the facade's response.

    A ``corrupt`` fault tears the BLIF *after* the digest was computed —
    exactly what a torn write or bit-flip in transit looks like to the
    engine's verification step.
    """
    payload = {
        "job_id": job.job_id,
        "spec": job.spec_digest(),
        "status": "ok",
        "digest": response.digest,
        "blif": faults.corrupt("netlist.build", response.blif),
        "area": response.area,
        "delay": response.delay,
        "cells": response.cells,
        "cell_usage": response.cell_usage,
        "cones": response.cones,
        "matches": response.matches,
        "filter_invocations": response.filter_invocations,
        "map_seconds": response.map_seconds,
        "annotate_seconds": response.annotate_seconds,
        "fallback": response.fallback,
    }
    if job.verify:
        payload["verify"] = response.verify
    if job.explain and response.explain is not None:
        payload["explain"] = response.explain
    if response.deadline_site is not None:
        payload["deadline_site"] = response.deadline_site
    if response.cached is not None:
        payload["cached"] = response.cached
    return payload


def execute_job(
    job: BatchJob,
    attempt: int = 1,
    deadline_seconds: Optional[float] = None,
    cache_dir: anncache.CacheDir = None,
    fault_plan: Optional[FaultPlan] = None,
    metrics=None,
    trace_context: Optional[SpanContext] = None,
    result_cache: bool = False,
) -> dict:
    """Run one job to a plain-dict result (the backend-agnostic worker).

    Raises only for errors the engine classifies (``FaultInjected`` is
    transient; anything else is permanent); a deadline overrun is
    handled inside the facade by degrading to the trivial depth-1 cover
    and reporting ``fallback="trivial-cover"`` — graceful degradation,
    not failure.  ``metrics`` (usable on in-process backends only)
    routes the run's telemetry into a shared registry; process-pool
    workers leave it ``None``.

    ``trace_context`` (pickled with the submission, like ``fault_plan``)
    carries the coordinator's ``trace_id`` across the process fence:
    the worker builds a same-id :class:`Tracer`, maps under it, and
    ships its span tree back as ``payload["trace"]`` for the engine to
    graft under the job's ``batch_job`` span — one batch run, one tree.
    It deliberately is NOT a :class:`BatchJob` field: the spec digest
    (and hence resume identity) must not depend on whether a run was
    observed.

    ``result_cache`` (likewise a deployment knob, not a job field)
    turns the content-addressed result cache on for this execution:
    the facade serves a byte-identical stored response when the exact
    (network, library, options) triple was mapped before.
    """
    faults.install_plan(fault_plan, job=job.job_id, attempt=attempt)
    tracer = (
        Tracer(trace_id=trace_context.trace_id)
        if trace_context is not None
        else None
    )
    try:
        started = time.perf_counter()
        with obs_log.log_context(
            job_id=job.job_id,
            trace_id=tracer.trace_id if tracer is not None else None,
            attempt=attempt,
        ):
            library = _annotated_library(job.library, cache_dir)
            request = job.to_request(deadline_seconds)
            if result_cache:
                import dataclasses

                request = dataclasses.replace(request, result_cache=True)
            response = execute_map(
                request,
                library=library,
                cache_dir=cache_dir,
                metrics=metrics,
                tracer=tracer,
            )
        payload = _result_payload(job, response)
        payload["worker_seconds"] = round(time.perf_counter() - started, 4)
        if tracer is not None:
            payload["trace"] = tracer.to_dict()
        return payload
    finally:
        faults.clear_plan()
