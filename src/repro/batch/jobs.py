"""Picklable batch job specs and the worker function that runs them.

A :class:`BatchJob` is plain data — design name, library name, and the
mapping knobs — so it crosses process boundaries untouched; the worker
(:func:`execute_job`) rebuilds the heavyweight objects (netlist,
annotated library, tracer-free :class:`MappingOptions`) on its side of
the fence.  Workers return plain dicts for the same reason.

Determinism contract: a worker maps with :func:`repro.mapping.mapper.
map_network` and serializes the result with the same BLIF writer the
CLI uses, so for a given job spec the returned BLIF text — and hence
its SHA-256 digest — is byte-identical across backends, worker counts,
attempt numbers, and processes.  The engine's digest verification and
the checkpoint journal both lean on that.
"""

from __future__ import annotations

import hashlib
import io
import time
from dataclasses import asdict, dataclass
from typing import Optional

from ..deadline import Deadline, DeadlineExceeded
from ..library import anncache
from ..library.library import Library
from ..mapping.mapper import MappingOptions, MappingResult, map_network
from ..mapping.verify import verify_mapping
from ..network.netlist import Netlist
from ..testing import faults
from ..testing.faults import FaultPlan

#: Depth the trivial-cover fallback maps at when a deadline fires:
#: single-node clusters only, which turns the covering DP into a
#: per-gate cheapest-cell lookup — orders of magnitude faster and
#: always feasible (decomposition emits only base gates every standard
#: library covers).
FALLBACK_DEPTH = 1


@dataclass(frozen=True)
class BatchJob:
    """One (design, library, options) mapping job — pure picklable data."""

    design: str
    library: str
    mode: str = "async"
    max_depth: int = 5
    objective: str = "area"
    filter_mode: str = "exact"
    verify: bool = False
    explain: bool = False

    def __post_init__(self) -> None:
        if self.mode not in ("async", "sync"):
            raise ValueError(f"unknown mapping mode {self.mode!r}")

    @property
    def job_id(self) -> str:
        """Human-readable identity used in journals, logs, and matching."""
        suffix = "" if self.mode == "async" else f"+{self.mode}"
        return f"{self.design}@{self.library}{suffix}"

    def spec_digest(self) -> str:
        """Hash of every result-affecting field (resume compares this)."""
        payload = "|".join(
            f"{key}={value}" for key, value in sorted(asdict(self).items())
        )
        return hashlib.sha256(payload.encode()).hexdigest()[:16]

    def artifact_name(self) -> str:
        """The BLIF filename this job writes under the output directory."""
        stem = self.job_id.replace("@", "__").replace("+", "_")
        return f"{stem}.blif"


def netlist_blif(netlist: Netlist) -> str:
    """The canonical BLIF text of a mapped network."""
    from ..io import write_blif

    buffer = io.StringIO()
    write_blif(netlist, buffer)
    return buffer.getvalue()


def text_digest(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


# Worker-process-local cache of annotated libraries: with a process
# backend every worker pays the annotation cost at most once per
# library (warm from the on-disk cache when one is configured), not
# once per job.
_LIBRARY_CACHE: dict[tuple[str, object], Library] = {}


def _annotated_library(name: str, cache_dir: anncache.CacheDir) -> Library:
    from ..library.standard import load_library

    key = (name, str(cache_dir))
    library = _LIBRARY_CACHE.get(key)
    if library is None:
        library = load_library(name)
        _LIBRARY_CACHE[key] = library
    return library


def _result_payload(
    job: BatchJob, result: MappingResult, fallback: Optional[str]
) -> dict:
    blif = netlist_blif(result.mapped)
    digest = text_digest(blif)
    # A ``corrupt`` fault tears the payload *after* the digest was
    # computed — exactly what a torn write or bit-flip in transit looks
    # like to the engine's verification step.
    blif = faults.corrupt("netlist.build", blif)
    stats = result.stats
    payload = {
        "job_id": job.job_id,
        "spec": job.spec_digest(),
        "status": "ok",
        "digest": digest,
        "blif": blif,
        "area": result.area,
        "delay": round(result.delay, 4),
        "cells": int(sum(result.cell_usage().values())),
        "cell_usage": {k: int(v) for k, v in sorted(result.cell_usage().items())},
        "cones": stats.cones,
        "matches": stats.matches,
        "filter_invocations": stats.filter_invocations,
        "map_seconds": round(result.elapsed, 4),
        "annotate_seconds": round(result.annotate_elapsed, 4),
        "fallback": fallback,
    }
    if job.verify:
        report = verify_mapping(result.source, result.mapped)
        payload["verify"] = {
            "equivalent": bool(report.equivalent),
            "hazard_safe": bool(report.hazard_safe),
            "ok": bool(report.ok),
        }
    if job.explain and result.explain is not None:
        payload["explain"] = result.explain.to_dict()
    return payload


def execute_job(
    job: BatchJob,
    attempt: int = 1,
    deadline_seconds: Optional[float] = None,
    cache_dir: anncache.CacheDir = None,
    fault_plan: Optional[FaultPlan] = None,
) -> dict:
    """Run one job to a plain-dict result (the backend-agnostic worker).

    Raises only for errors the engine classifies (``FaultInjected`` is
    transient; anything else is permanent); a deadline overrun is
    *handled here* by degrading to the trivial depth-1 cover and
    reporting ``fallback="trivial-cover"`` — graceful degradation, not
    failure.
    """
    faults.install_plan(fault_plan, job=job.job_id, attempt=attempt)
    try:
        started = time.perf_counter()
        library = _annotated_library(job.library, cache_dir)
        deadline = (
            Deadline(deadline_seconds) if deadline_seconds is not None else None
        )
        options = MappingOptions(
            max_depth=job.max_depth,
            objective=job.objective,
            filter_mode=job.filter_mode,
            workers=1,
            annotation_cache_dir=cache_dir,
            explain=job.explain,
            deadline=deadline,
        )
        fallback = None
        try:
            result = map_network(job.design, library, options, mode=job.mode)
        except DeadlineExceeded as exc:
            # Graceful degradation: re-map with the trivial depth-1
            # cover, which needs no meaningful budget.  The injected
            # hang (if any) already fired this attempt, so the fallback
            # pass runs clean.
            fallback = "trivial-cover"
            fallback_options = MappingOptions(
                max_depth=FALLBACK_DEPTH,
                objective=job.objective,
                filter_mode=job.filter_mode,
                workers=1,
                annotation_cache_dir=cache_dir,
                explain=job.explain,
            )
            result = map_network(
                job.design, library, fallback_options, mode=job.mode
            )
            payload = _result_payload(job, result, fallback)
            payload["deadline_site"] = exc.site
            payload["worker_seconds"] = round(time.perf_counter() - started, 4)
            return payload
        payload = _result_payload(job, result, fallback)
        payload["worker_seconds"] = round(time.perf_counter() - started, 4)
        return payload
    finally:
        faults.clear_plan()
